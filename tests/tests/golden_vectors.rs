//! Golden-vector conformance suite.
//!
//! `tests/golden/` holds one canonical compressed frame per scene preset at
//! q = 2 cm, produced from the deterministic reduced-resolution simulator
//! frames, plus a manifest of sizes and content hashes. The suite pins down
//! both directions of the format:
//!
//! * **compression reproduces the committed bytes** — any encoder change
//!   that shifts the bitstream (even a better one) must consciously re-bless;
//! * **decompression of the committed bytes is byte-exact** — the decoded
//!   cloud's coordinate bit pattern matches the manifest hash, so silent
//!   decoder drift is caught even when round-trip error bounds still hold.
//!
//! Regenerate after an intentional format change with:
//!
//! ```text
//! DBGC_BLESS=1 cargo test -p dbgc-integration-tests --test golden_vectors
//! ```

mod common;

use std::fmt::Write as _;
use std::path::PathBuf;

use common::{small_config, small_frame};
use dbgc_lidar_sim::ScenePreset;

/// Seed for the golden frames; arbitrary but frozen.
const SEED: u64 = 7;
/// The paper's typical error bound: 2 cm.
const Q: f64 = 0.02;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

/// FNV-1a 64-bit over a byte stream; no external hashing deps.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash of a decoded cloud's exact coordinate bit pattern, in point order.
fn cloud_fnv(cloud: &dbgc_geom::PointCloud) -> u64 {
    fnv1a(
        cloud.points().iter().flat_map(|p| [p.x, p.y, p.z]).flat_map(|c| c.to_bits().to_le_bytes()),
    )
}

struct GoldenEntry {
    points: usize,
    bytes: usize,
    stream_fnv: u64,
    cloud_fnv: u64,
}

fn parse_manifest(text: &str) -> Vec<(String, GoldenEntry)> {
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|line| {
            let mut fields = line.split_whitespace();
            let name = fields.next().expect("preset name").to_string();
            let mut entry = GoldenEntry { points: 0, bytes: 0, stream_fnv: 0, cloud_fnv: 0 };
            for field in fields {
                let (k, v) = field.split_once('=').expect("k=v field");
                match k {
                    "points" => entry.points = v.parse().expect("points"),
                    "bytes" => entry.bytes = v.parse().expect("bytes"),
                    "stream_fnv" => {
                        entry.stream_fnv = u64::from_str_radix(v, 16).expect("stream_fnv")
                    }
                    "cloud_fnv" => entry.cloud_fnv = u64::from_str_radix(v, 16).expect("cloud_fnv"),
                    other => panic!("unknown manifest field {other}"),
                }
            }
            (name, entry)
        })
        .collect()
}

fn compress_preset(preset: ScenePreset, threads: usize) -> (dbgc::CompressedFrame, usize) {
    compress_preset_with(preset, threads, dbgc::EntropyProfile::Narrow)
}

fn compress_preset_with(
    preset: ScenePreset,
    threads: usize,
    profile: dbgc::EntropyProfile,
) -> (dbgc::CompressedFrame, usize) {
    let (cloud, meta) = small_frame(preset, SEED);
    let mut cfg = small_config(Q, meta).with_entropy_profile(profile);
    cfg.threads = threads;
    (dbgc::Dbgc::new(cfg).compress(&cloud).expect("compress"), cloud.len())
}

#[test]
fn golden_vectors_all_presets() {
    let dir = golden_dir();
    let bless = std::env::var_os("DBGC_BLESS").is_some();
    if bless {
        std::fs::create_dir_all(&dir).expect("create golden dir");
        let mut manifest = String::from(
            "# Golden DBGC streams: small_frame(preset, 7) at q = 0.02.\n\
             # Regenerate with DBGC_BLESS=1 (see golden_vectors.rs).\n",
        );
        for preset in ScenePreset::all() {
            let (frame, points) = compress_preset(preset, 0);
            let (decoded, _) = dbgc::decompress(&frame.bytes).expect("own stream");
            let _ = writeln!(
                manifest,
                "{} points={} bytes={} stream_fnv={:016x} cloud_fnv={:016x}",
                preset.name(),
                points,
                frame.bytes.len(),
                fnv1a(frame.bytes.iter().copied()),
                cloud_fnv(&decoded),
            );
            std::fs::write(dir.join(format!("{}.dbgc", preset.name())), &frame.bytes)
                .expect("write golden stream");
        }
        std::fs::write(dir.join("manifest.txt"), manifest).expect("write manifest");
        eprintln!("blessed {} golden vectors into {}", ScenePreset::all().len(), dir.display());
        return;
    }

    let manifest_text = std::fs::read_to_string(dir.join("manifest.txt"))
        .expect("golden manifest missing — run with DBGC_BLESS=1 to create it");
    let manifest = parse_manifest(&manifest_text);
    assert_eq!(manifest.len(), ScenePreset::all().len(), "manifest covers every preset");

    for preset in ScenePreset::all() {
        let entry = &manifest
            .iter()
            .find(|(name, _)| name == preset.name())
            .unwrap_or_else(|| panic!("{} missing from manifest", preset.name()))
            .1;
        let golden =
            std::fs::read(dir.join(format!("{}.dbgc", preset.name()))).expect("golden stream file");
        assert_eq!(golden.len(), entry.bytes, "{}: stream size", preset.name());
        assert_eq!(
            fnv1a(golden.iter().copied()),
            entry.stream_fnv,
            "{}: committed stream corrupted",
            preset.name()
        );

        // Compression reproduces the committed bytes (default thread count).
        let (frame, points) = compress_preset(preset, 0);
        assert_eq!(points, entry.points, "{}: simulator drifted", preset.name());
        assert_eq!(frame.bytes, golden, "{}: compressed bytes changed", preset.name());

        // Decompression of the committed bytes is byte-exact.
        let (decoded, _) = dbgc::decompress(&golden).expect("golden stream decodes");
        assert_eq!(decoded.len(), entry.points, "{}: decoded point count", preset.name());
        assert_eq!(
            cloud_fnv(&decoded),
            entry.cloud_fnv,
            "{}: decoded coordinates drifted",
            preset.name()
        );
    }
}

#[test]
fn golden_vectors_wide_profile() {
    // Version-3 (wide entropy profile) goldens live beside the v1 set as
    // `{preset}-wide.dbgc` + `manifest_wide.txt`. Blessing the wide set never
    // rewrites the v1 files, so v1 streams stay byte-identical by
    // construction; and a wide stream must decode to the *same* coordinate
    // bit pattern as the narrow golden — the profile changes transport, not
    // reconstruction — so `cloud_fnv` is cross-checked against the v1
    // manifest, not independently blessed.
    let dir = golden_dir();
    let narrow_manifest = std::fs::read_to_string(dir.join("manifest.txt"))
        .expect("v1 golden manifest missing — bless golden_vectors_all_presets first");
    let narrow = parse_manifest(&narrow_manifest);

    if std::env::var_os("DBGC_BLESS").is_some() {
        let mut manifest = String::from(
            "# Golden wide-profile (version 3) DBGC streams: small_frame(preset, 7)\n\
             # at q = 0.02, entropy_profile = wide. cloud_fnv must equal the v1\n\
             # manifest entry. Regenerate with DBGC_BLESS=1 (golden_vectors.rs).\n",
        );
        for preset in ScenePreset::all() {
            let (frame, points) = compress_preset_with(preset, 0, dbgc::EntropyProfile::Wide);
            assert_eq!(frame.bytes[4], 3, "wide stream must carry version 3");
            let (decoded, _) = dbgc::decompress(&frame.bytes).expect("own stream");
            let _ = writeln!(
                manifest,
                "{} points={} bytes={} stream_fnv={:016x} cloud_fnv={:016x}",
                preset.name(),
                points,
                frame.bytes.len(),
                fnv1a(frame.bytes.iter().copied()),
                cloud_fnv(&decoded),
            );
            std::fs::write(dir.join(format!("{}-wide.dbgc", preset.name())), &frame.bytes)
                .expect("write wide golden stream");
        }
        std::fs::write(dir.join("manifest_wide.txt"), manifest).expect("write wide manifest");
        eprintln!(
            "blessed {} wide golden vectors into {}",
            ScenePreset::all().len(),
            dir.display()
        );
        return;
    }

    let manifest_text = std::fs::read_to_string(dir.join("manifest_wide.txt"))
        .expect("wide golden manifest missing — run with DBGC_BLESS=1 to create it");
    let manifest = parse_manifest(&manifest_text);
    assert_eq!(manifest.len(), ScenePreset::all().len(), "wide manifest covers every preset");

    for preset in ScenePreset::all() {
        let entry = &manifest
            .iter()
            .find(|(name, _)| name == preset.name())
            .unwrap_or_else(|| panic!("{} missing from wide manifest", preset.name()))
            .1;
        let narrow_entry = &narrow
            .iter()
            .find(|(name, _)| name == preset.name())
            .unwrap_or_else(|| panic!("{} missing from v1 manifest", preset.name()))
            .1;
        assert_eq!(
            entry.cloud_fnv,
            narrow_entry.cloud_fnv,
            "{}: wide decode must reconstruct the identical cloud",
            preset.name()
        );

        let golden = std::fs::read(dir.join(format!("{}-wide.dbgc", preset.name())))
            .expect("wide golden stream file");
        assert_eq!(golden.len(), entry.bytes, "{}: wide stream size", preset.name());
        assert_eq!(golden[4], 3, "{}: wide golden must carry version 3", preset.name());
        assert_eq!(
            fnv1a(golden.iter().copied()),
            entry.stream_fnv,
            "{}: committed wide stream corrupted",
            preset.name()
        );

        let (frame, points) = compress_preset_with(preset, 0, dbgc::EntropyProfile::Wide);
        assert_eq!(points, entry.points, "{}: simulator drifted", preset.name());
        assert_eq!(frame.bytes, golden, "{}: wide compressed bytes changed", preset.name());

        let (decoded, _) = dbgc::decompress(&golden).expect("wide golden stream decodes");
        assert_eq!(decoded.len(), entry.points, "{}: decoded point count", preset.name());
        assert_eq!(
            cloud_fnv(&decoded),
            entry.cloud_fnv,
            "{}: wide decoded coordinates drifted",
            preset.name()
        );
    }
}

#[test]
fn golden_vectors_serial_path_matches() {
    // threads = 1 must produce the same committed bytes as the default
    // (parallel) path — the byte-identical guarantee, pinned to the goldens.
    let dir = golden_dir();
    if std::env::var_os("DBGC_BLESS").is_some() {
        return; // blessing happens in golden_vectors_all_presets
    }
    for preset in [ScenePreset::KittiCity, ScenePreset::FordCampus] {
        let golden =
            std::fs::read(dir.join(format!("{}.dbgc", preset.name()))).expect("golden stream file");
        let (frame, _) = compress_preset(preset, 1);
        assert_eq!(frame.bytes, golden, "{}: serial bytes differ from golden", preset.name());
    }
}
