//! Differential oracle suite for the queryable archive (`dbgc-store`).
//!
//! Every query answered by [`FrameStore::query`] — partial decode, pruned,
//! or fallback — must return exactly the points a brute-force full decode
//! plus per-point filter returns. The oracle is
//! [`dbgc_store::decode_annotated`] + [`Query::matches`]; comparisons are
//! order-normalized on position bit patterns.

mod common;

use common::{small_config, small_frame};
use dbgc::{split_index_trailer, Dbgc, DbgcConfig, IndexTrailer, SpatialDirectory};
use dbgc_geom::{Aabb, Point3, PointCloud};
use dbgc_lidar_sim::ScenePreset;
use dbgc_metrics::Collector;
use dbgc_store::{decode_annotated, DensityClass, FrameStore, Frustum, Query};

const SEED: u64 = 7;
const Q: f64 = 0.02;

/// Compress a reduced-resolution preset frame with the spatial index on.
fn compress_indexed(preset: ScenePreset) -> Vec<u8> {
    let (cloud, meta) = small_frame(preset, SEED);
    let cfg = small_config(Q, meta).with_spatial_index(true);
    Dbgc::new(cfg).compress(&cloud).unwrap().bytes
}

/// Order-normalize positions by their bit patterns.
fn norm(points: impl IntoIterator<Item = Point3>) -> Vec<[u64; 3]> {
    let mut v: Vec<[u64; 3]> =
        points.into_iter().map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()]).collect();
    v.sort_unstable();
    v
}

/// Assert the store answers `query` exactly like the full-decode oracle,
/// for a store holding a single frame ingested at `time_us`.
fn assert_oracle(store: &FrameStore, bytes: &[u8], query: &Query, time_us: u64, ctx: &str) {
    let res = store.query(query).unwrap();
    let oracle = decode_annotated(bytes).unwrap();
    let want: Vec<Point3> =
        oracle.points.iter().filter(|p| query.matches(p, time_us)).map(|p| p.pos).collect();
    assert_eq!(
        norm(res.points.iter().map(|r| r.point.pos)),
        norm(want),
        "query result diverges from oracle: {ctx}"
    );
}

/// The query battery run against every preset: selective and degenerate
/// geometry, per-class, LOD, time, and boolean composites of all of them.
fn battery() -> Vec<(&'static str, Query)> {
    let rim =
        Query::Aabb(Aabb { min: Point3::new(5.0, -20.0, -4.0), max: Point3::new(45.0, 20.0, 6.0) });
    let nowhere = Query::Aabb(Aabb {
        min: Point3::new(900.0, 900.0, 900.0),
        max: Point3::new(950.0, 950.0, 950.0),
    });
    let frustum = Frustum::look_at(
        Point3::new(0.0, 0.0, 0.0),
        Point3::new(30.0, 10.0, 0.0),
        Point3::new(0.0, 0.0, 1.0),
        1.0,
        1.6,
        0.5,
        80.0,
    )
    .expect("valid frustum");
    vec![
        ("all", Query::All),
        ("aabb", rim.clone()),
        ("aabb-empty", nowhere),
        ("frustum", Query::Frustum(frustum)),
        ("lod", Query::Lod { min: 1, max: 12 }),
        ("time-hit", Query::TimeRange { start_us: 0, end_us: u64::MAX }),
        ("time-miss", Query::TimeRange { start_us: 0, end_us: 1 }),
        ("dense", Query::DensityClass(DensityClass::Dense)),
        ("sparse", Query::DensityClass(DensityClass::Sparse)),
        ("outlier", Query::DensityClass(DensityClass::Outlier)),
        ("and", Query::and(rim.clone(), Query::not(Query::DensityClass(DensityClass::Outlier)))),
        (
            "or",
            Query::or(
                Query::Aabb(Aabb {
                    min: Point3::new(-40.0, -40.0, -4.0),
                    max: Point3::new(-5.0, -5.0, 4.0),
                }),
                Query::DensityClass(DensityClass::Outlier),
            ),
        ),
        ("not", Query::not(rim)),
    ]
}

#[test]
fn oracle_all_presets() {
    for preset in ScenePreset::all() {
        let bytes = compress_indexed(preset);
        let mut store = FrameStore::new();
        store.ingest(bytes.clone(), 1_000).unwrap();
        assert!(store.frames()[0].has_index(), "{}: index missing", preset.name());
        for (name, q) in battery() {
            assert_oracle(&store, &bytes, &q, 1_000, &format!("{}/{name}", preset.name()));
        }
    }
}

#[test]
fn oracle_seeded_random_clouds() {
    // Synthetic clouds exercising all three sections: xorshift clusters
    // (dense + sparse groups) plus isolated far points (outliers).
    for seed in [11u64, 57, 4242] {
        let mut x = seed | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut cloud = PointCloud::new();
        for _ in 0..8 {
            let (cx, cy, cz) = ((next() - 0.5) * 80.0, (next() - 0.5) * 80.0, (next() - 0.5) * 6.0);
            for _ in 0..400 {
                cloud.push(Point3::new(
                    cx + (next() - 0.5) * 3.0,
                    cy + (next() - 0.5) * 3.0,
                    cz + (next() - 0.5) * 0.5,
                ));
            }
        }
        for _ in 0..20 {
            cloud.push(Point3::new(
                (next() - 0.5) * 400.0,
                (next() - 0.5) * 400.0,
                (next() - 0.5) * 40.0,
            ));
        }
        let cfg = DbgcConfig::with_error_bound(Q).with_spatial_index(true);
        let bytes = Dbgc::new(cfg).compress(&cloud).unwrap().bytes;
        let mut store = FrameStore::new();
        store.ingest(bytes.clone(), 500).unwrap();
        for (name, q) in battery() {
            assert_oracle(&store, &bytes, &q, 500, &format!("seed {seed}/{name}"));
        }
    }
}

/// The paper's spider-web pattern, unrolled: a single-turn spiral sweeping
/// radius 20→35 m with small radial jitter. Radius is monotone in angle, so
/// the encoder's radial grouping yields angular arcs with tight AABBs —
/// exactly the geometry the spatial directory is built to prune — while the
/// jitter keeps the sparse sections from compressing to nothing.
fn spiral_cloud(n: usize) -> PointCloud {
    let mut x = 0x5eed_5eed_5eedu64;
    let mut jitter = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        ((x >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.3
    };
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            let th = t * std::f64::consts::TAU;
            let r = 20.0 + 15.0 * t + jitter();
            Point3::new(r * th.cos(), r * th.sin(), -1.7)
        })
        .collect()
}

#[test]
fn pruning_selective_aabb_touches_under_quarter() {
    let cloud = spiral_cloud(12_000);
    let mut cfg = DbgcConfig::with_error_bound(Q).with_spatial_index(true);
    cfg.groups = 14;
    cfg.th_r = 5.0;
    let bytes = Dbgc::new(cfg).compress(&cloud).unwrap().bytes;

    let collector = Collector::new();
    let mut store = FrameStore::with_metrics(&collector);
    store.ingest(bytes.clone(), 0).unwrap();

    // A box over the +y side: a narrow arc of the spiral.
    let q =
        Query::Aabb(Aabb { min: Point3::new(-3.0, 22.0, -3.0), max: Point3::new(3.0, 26.0, 0.0) });
    let res = store.query(&q).unwrap();
    assert!(!res.points.is_empty());
    assert_eq!(res.frames_partial, 1);
    assert_eq!(res.frames_fallback, 0);
    assert!(
        res.bytes_touched * 4 < res.bytes_total,
        "selective query touched {} of {} bytes (>= 25%)",
        res.bytes_touched,
        res.bytes_total
    );

    // The same accounting flows through the metrics byte channels.
    let snap = collector.snapshot();
    assert_eq!(snap.bytes.get("store.bytes_touched").copied(), Some(res.bytes_touched));
    assert_eq!(snap.bytes.get("store.bytes_total").copied(), Some(res.bytes_total));
    assert_eq!(snap.counters.get("store.frames_ingested").copied(), Some(1));

    // And the pruned result is still exactly the oracle's answer.
    assert_oracle(&store, &bytes, &q, 0, "spiral/selective");
}

#[test]
fn v1_index_less_streams_answer_by_full_decode() {
    let (cloud, meta) = small_frame(ScenePreset::KittiRoad, SEED);
    let bytes = Dbgc::new(small_config(Q, meta)).compress(&cloud).unwrap().bytes;
    assert!(matches!(split_index_trailer(&bytes), IndexTrailer::None));

    let mut store = FrameStore::new();
    store.ingest(bytes.clone(), 0).unwrap();
    assert!(!store.frames()[0].has_index());

    for (name, q) in battery() {
        assert_oracle(&store, &bytes, &q, 0, &format!("v1/{name}"));
    }
    // An index-less stream is not an index *failure*: every byte is read,
    // but the fallback counter stays untouched.
    let res = store.query(&Query::All).unwrap();
    assert_eq!(res.frames_fallback, 0);
    assert_eq!(store.index_fallbacks(), 0);
    assert_eq!(res.bytes_touched, res.bytes_total);
}

#[test]
fn corrupt_index_trailer_falls_back_to_full_decode() {
    let mut bytes = compress_indexed(ScenePreset::KittiCity);
    let body_len = match split_index_trailer(&bytes) {
        IndexTrailer::Valid { body, .. } => body.len(),
        other => panic!("expected valid trailer, got {other:?}"),
    };
    // Flip a byte inside the index payload: the CRC no longer matches.
    bytes[body_len + 2] ^= 0xff;

    let collector = Collector::new();
    let mut store = FrameStore::with_metrics(&collector);
    store.ingest(bytes.clone(), 0).unwrap();
    assert!(!store.frames()[0].has_index(), "corrupt index must be demoted");
    assert_eq!(collector.counter("store.index_corrupt").get(), 1);

    for (name, q) in battery() {
        assert_oracle(&store, &bytes, &q, 0, &format!("corrupt/{name}"));
    }
    let res = store.query(&Query::All).unwrap();
    assert_eq!(res.frames_fallback, 1);
    assert!(store.index_fallbacks() >= 1);
}

#[test]
fn lying_index_counts_fall_back_at_query_time() {
    // A CRC-valid directory whose per-group point counts lie (two groups
    // swapped, so the frame-level sum still checks out at ingest). The
    // partial decoder must catch the per-section mismatch and fall back.
    let bytes = compress_indexed(ScenePreset::KittiCampus);
    let (body, payload) = match split_index_trailer(&bytes) {
        IndexTrailer::Valid { body, payload } => (body.to_vec(), payload),
        other => panic!("expected valid trailer, got {other:?}"),
    };
    let mut dir = SpatialDirectory::parse(payload, body.len()).unwrap();
    let (mut a, mut b) = (usize::MAX, usize::MAX);
    'outer: for i in 0..dir.groups.len() {
        for j in i + 1..dir.groups.len() {
            if dir.groups[i].section.points != dir.groups[j].section.points {
                (a, b) = (i, j);
                break 'outer;
            }
        }
    }
    assert_ne!(a, usize::MAX, "need two groups with distinct point counts");
    let tmp = dir.groups[a].section.points;
    dir.groups[a].section.points = dir.groups[b].section.points;
    dir.groups[b].section.points = tmp;

    let mut tampered = body;
    dbgc::index::append_index_trailer(&mut tampered, &dir.serialize());

    let mut store = FrameStore::new();
    store.ingest(tampered.clone(), 0).unwrap();
    // The lie survives ingest (sums match) but not the decode cross-check.
    assert!(store.frames()[0].has_index());
    assert_oracle(&store, &tampered, &Query::All, 0, "lying-counts/all");
    let res = store.query(&Query::All).unwrap();
    assert_eq!(res.frames_fallback, 1);
    assert!(store.index_fallbacks() >= 1);
}

#[test]
fn session_server_handoff_archives_and_time_queries() {
    use dbgc_net::link::throttled_pipe;
    use dbgc_net::{Client, Server};

    let frames_meta: Vec<_> = (0..3).map(|k| small_frame(ScenePreset::KittiCity, 70 + k)).collect();
    let meta = frames_meta[0].1;
    let clouds: Vec<_> = frames_meta.into_iter().map(|(c, _)| c).collect();

    let (writer, reader) = throttled_pipe(None);
    let producer = {
        let clouds = clouds.clone();
        std::thread::spawn(move || {
            let cfg = small_config(Q, meta).with_spatial_index(true);
            let mut client = Client::new(Dbgc::new(cfg), writer);
            for c in &clouds {
                client.send_cloud(c).unwrap();
            }
        })
    };
    let mut server = Server::new(reader, false);
    assert_eq!(server.receive_all().unwrap(), 3);
    producer.join().unwrap();

    // Hand the session's frames to the archive: 10 fps starting at t0.
    let (t0, period) = (1_000_000u64, 100_000u64);
    let stored = server.drain_frames();
    assert_eq!(stored.len(), 3);
    let frame_bytes: Vec<Vec<u8>> = stored.iter().map(|f| f.bytes.clone()).collect();
    let mut store = FrameStore::new();
    store.archive_session(stored, t0, period).unwrap();
    assert_eq!(store.len(), 3);
    assert!(store.frames().iter().all(|f| f.has_index()));

    // Half-open window covering frames 1 and 2 only.
    let q = Query::TimeRange { start_us: t0 + period, end_us: t0 + 3 * period };
    let res = store.query(&q).unwrap();
    assert_eq!(res.frames_scanned, 3);
    assert_eq!(res.frames_pruned, 1, "frame 0 must be pruned by its timestamp");

    let mut want = Vec::new();
    for (seq, bytes) in frame_bytes.iter().enumerate() {
        let t = t0 + seq as u64 * period;
        want.extend(
            decode_annotated(bytes)
                .unwrap()
                .points
                .iter()
                .filter(|p| q.matches(p, t))
                .map(|p| p.pos),
        );
    }
    assert_eq!(norm(res.points.iter().map(|r| r.point.pos)), norm(want));
    assert_eq!(res.points.len(), clouds[1].len() + clouds[2].len());
}
