//! Property-based integration tests over randomly generated clouds.

use dbgc::{decompress, verify_roundtrip, Dbgc};
use dbgc_geom::{Point3, PointCloud};
use proptest::prelude::*;

/// Strategy: clouds mixing surface-like clusters and isolated points.
fn arb_cloud() -> impl Strategy<Value = PointCloud> {
    let cluster = (any::<u64>(), 2usize..60).prop_map(|(seed, n)| {
        let mut x = seed | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let cx = (next() - 0.5) * 100.0;
        let cy = (next() - 0.5) * 100.0;
        let cz = (next() - 0.5) * 8.0;
        (0..n)
            .map(|_| {
                Point3::new(
                    cx + (next() - 0.5) * 2.0,
                    cy + (next() - 0.5) * 2.0,
                    cz + (next() - 0.5) * 0.4,
                )
            })
            .collect::<Vec<_>>()
    });
    proptest::collection::vec(cluster, 0..12)
        .prop_map(|clusters| clusters.into_iter().flatten().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dbgc_roundtrip_any_cloud(cloud in arb_cloud(), q_idx in 0usize..3) {
        let q = [0.002, 0.01, 0.05][q_idx];
        let frame = Dbgc::with_error_bound(q).compress(&cloud).unwrap();
        let (restored, _) = decompress(&frame.bytes).unwrap();
        prop_assert_eq!(restored.len(), cloud.len());
        verify_roundtrip(&cloud, &restored, &frame, q).unwrap();
    }

    #[test]
    fn octree_roundtrip_any_cloud(cloud in arb_cloud()) {
        let q = 0.01;
        let enc = dbgc_octree::OctreeCodec::baseline().encode(cloud.points(), q);
        let dec = dbgc_octree::OctreeCodec::baseline().decode(&enc.bytes).unwrap();
        prop_assert_eq!(dec.points.len(), cloud.len());
        for (i, p) in cloud.iter().enumerate() {
            prop_assert!(p.linf_dist(dec.points[enc.mapping[i]]) <= q + 1e-9);
        }
    }

    #[test]
    fn kdtree_roundtrip_any_cloud(cloud in arb_cloud()) {
        let q = 0.01;
        let enc = dbgc_kdtree::KdTreeCodec.encode(cloud.points(), q);
        let dec = dbgc_kdtree::KdTreeCodec.decode(&enc.bytes).unwrap();
        prop_assert_eq!(dec.points.len(), cloud.len());
        for (i, p) in cloud.iter().enumerate() {
            prop_assert!(p.linf_dist(dec.points[enc.mapping[i]]) <= q + 1e-9);
        }
    }

    #[test]
    fn gpcc_roundtrip_any_cloud(cloud in arb_cloud()) {
        let q = 0.01;
        let enc = dbgc_gpcc::GpccCodec.encode(cloud.points(), q);
        let dec = dbgc_gpcc::GpccCodec.decode(&enc.bytes).unwrap();
        prop_assert_eq!(dec.points.len(), cloud.len());
        for (i, p) in cloud.iter().enumerate() {
            prop_assert!(p.linf_dist(dec.points[enc.mapping[i]]) <= q + 1e-9);
        }
    }

    #[test]
    fn random_bytes_never_panic_the_decompressor(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = decompress(&bytes);
    }

    #[test]
    fn clustering_algorithms_agree_on_extremes(cloud in arb_cloud()) {
        // With minPts = 1 every point is its own core in the exact
        // algorithms. (The approximate variant scales its threshold for the
        // larger 27-cell counting region, so it is not exactly comparable at
        // this degenerate setting and is exercised by its own suite.)
        prop_assume!(!cloud.is_empty());
        let params = dbgc_clustering::ClusterParams::new(0.5, 1);
        let b = dbgc_clustering::cell_based_cluster(cloud.points(), params);
        let c = dbgc_clustering::dbscan(cloud.points(), params).split();
        prop_assert_eq!(b.dense_count(), cloud.len());
        prop_assert_eq!(c.dense_count(), cloud.len());
        // And with an impossible threshold nothing is dense, in all three.
        let never = dbgc_clustering::ClusterParams::new(0.5, usize::MAX);
        prop_assert_eq!(
            dbgc_clustering::approx_cluster(cloud.points(), never).dense_count(),
            0
        );
        prop_assert_eq!(
            dbgc_clustering::cell_based_cluster(cloud.points(), never).dense_count(),
            0
        );
    }
}
