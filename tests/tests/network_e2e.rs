//! End-to-end network tests: sensor → client → link → server → verification.

mod common;

use common::{small_config, small_frame};
use dbgc::Dbgc;
use dbgc_lidar_sim::ScenePreset;
use dbgc_net::link::{throttled_pipe, LinkModel};
use dbgc_net::{Client, Server};

#[test]
fn stream_three_frames_over_memory_pipe() {
    let frames_meta: Vec<_> = (0..3).map(|k| small_frame(ScenePreset::KittiCity, 20 + k)).collect();
    let meta = frames_meta[0].1;
    let clouds: Vec<_> = frames_meta.into_iter().map(|(c, _)| c).collect();
    let (writer, reader) = throttled_pipe(None);
    let producer = {
        let clouds = clouds.clone();
        std::thread::spawn(move || {
            let mut client = Client::new(Dbgc::new(small_config(0.02, meta)), writer);
            clouds.iter().map(|c| client.send_cloud(c).unwrap()).collect::<Vec<_>>()
        })
    };
    let mut server = Server::new(reader, true);
    assert_eq!(server.receive_all().unwrap(), 3);
    let frames = producer.join().unwrap();
    for ((cloud, stored), frame) in clouds.iter().zip(server.frames()).zip(&frames) {
        let restored = stored.cloud.as_ref().expect("decompressed");
        dbgc::verify_roundtrip(cloud, restored, frame, 0.02).expect("bound holds");
    }
}

#[test]
fn stream_over_tcp_localhost() {
    use std::net::{TcpListener, TcpStream};
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (cloud, meta) = small_frame(ScenePreset::KittiRoad, 30);
    let client_cloud = cloud.clone();
    let producer = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).unwrap();
        let mut client = Client::new(Dbgc::new(small_config(0.02, meta)), stream);
        client.send_cloud(&client_cloud).unwrap()
    });
    let (stream, _) = listener.accept().unwrap();
    let mut server = Server::new(stream, true);
    assert_eq!(server.receive_all().unwrap(), 1);
    let frame = producer.join().unwrap();
    let restored = server.frames()[0].cloud.as_ref().unwrap();
    dbgc::verify_roundtrip(&cloud, restored, &frame, 0.02).expect("bound holds");
}

#[test]
fn compressed_stream_fits_4g_where_raw_does_not() {
    // The system-level claim of §4.4 at 10 fps.
    let (cloud, meta) = small_frame(ScenePreset::KittiCampus, 31);
    let frame = Dbgc::new(small_config(0.02, meta)).compress(&cloud).unwrap();
    // Scale to a full-resolution frame: small_frame has 500/2083 columns.
    // Reduced azimuth resolution hurts DBGC disproportionately (polylines
    // fragment at 4x ring spacing), so the linear extrapolation is an upper
    // bound on the full-resolution stream; the fig9_ratio harness measures
    // ~5-6 Mbps on full frames. Assert the scaled bound stays near the
    // uplink and the raw stream clearly exceeds it.
    let scale = 2083.0 / 500.0;
    let compressed_mbps =
        LinkModel::required_mbps((frame.bytes.len() as f64 * scale) as usize, 10.0);
    let raw_mbps = LinkModel::required_mbps((cloud.raw_size_bytes() as f64 * scale) as usize, 10.0);
    assert!(compressed_mbps < 10.0, "compressed stream needs {compressed_mbps:.1} Mbps");
    assert!(raw_mbps > 8.2 * 10.0, "raw stream must dwarf 4G ({raw_mbps:.1} Mbps)");
}

#[test]
fn corrupt_frame_mid_stream_is_dropped_and_stream_recovers() {
    // Client sends three frames; the link flips bytes inside the second.
    // The server must drop exactly that frame, record the error, and decode
    // the frames on either side of it.
    let frames_meta: Vec<_> = (0..3).map(|k| small_frame(ScenePreset::KittiCity, 40 + k)).collect();
    let meta = frames_meta[0].1;
    let clouds: Vec<_> = frames_meta.into_iter().map(|(c, _)| c).collect();

    let compressor = Dbgc::new(small_config(0.02, meta));
    let mut wire = Vec::new();
    let mut boundaries = vec![0usize];
    let frames: Vec<_> = clouds
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let f = compressor.compress(c).unwrap();
            dbgc_net::write_frame(
                &mut wire,
                &dbgc_net::WireFrame { sequence: i as u32, payload: f.bytes.clone() },
            )
            .unwrap();
            boundaries.push(wire.len());
            f
        })
        .collect();
    // Flip a burst of bytes in the middle of frame 1's payload.
    let mid = (boundaries[1] + boundaries[2]) / 2;
    for k in 0..4 {
        wire[mid + k * 9] ^= 0x5A;
    }

    let mut server = Server::new(&wire[..], true);
    assert_eq!(server.receive_all().unwrap(), 2, "frames 0 and 2 survive");
    assert_eq!(server.dropped().len(), 1, "the corrupt frame is logged");
    assert!(server.dropped()[0].bytes_skipped > 0);
    assert_eq!(server.frames()[0].sequence, 0);
    assert_eq!(server.frames()[1].sequence, 2);
    for (stored, idx) in server.frames().iter().zip([0usize, 2]) {
        let restored = stored.cloud.as_ref().expect("decompressed");
        dbgc::verify_roundtrip(&clouds[idx], restored, &frames[idx], 0.02).expect("bound holds");
    }
}

#[test]
fn oversized_tenant_is_shed_alone_neighbors_stay_intact() {
    // Fleet admission × the per-connection payload guard: one tenant
    // declares a frame far over `max_payload`. Its reader must treat the
    // oversized frame as garbage (resync past it) without stalling the
    // event loop, and the *other* tenants' sessions must complete
    // untouched.
    use dbgc_net::fleet::{FleetConfig, FleetServer};
    use dbgc_net::session::{ResilientClient, SessionConfig};
    use dbgc_net::{write_frame, Control, WireFrame};

    let mut config = FleetConfig::new(4);
    config.max_payload = 4096;
    config.shards = 2;
    let fleet = FleetServer::spawn(config);
    let handle = fleet.handle();

    // The offender: raw wire writes, because a resilient client would keep
    // retransmitting the never-acked oversized frame.
    let (mut bad_tx, _bad_ack) = handle.connect(3).unwrap();
    write_frame(&mut bad_tx, &Control::Hello { session_id: 3, last_acked: 0 }.to_frame()).unwrap();
    write_frame(&mut bad_tx, &WireFrame { sequence: 0, payload: vec![0xAB; 512] }).unwrap();
    write_frame(&mut bad_tx, &WireFrame { sequence: 1, payload: vec![0xCD; 16 * 1024] }).unwrap();
    write_frame(&mut bad_tx, &WireFrame { sequence: 2, payload: vec![0xEF; 512] }).unwrap();
    handle.sync();

    // Well-behaved neighbors on both shards deliver concurrently.
    let neighbors: Vec<_> = [1u64, 2]
        .into_iter()
        .map(|sid| {
            let handle = handle.clone();
            std::thread::spawn(move || {
                let h = handle.clone();
                let mut client =
                    ResilientClient::new(move || h.connect(sid), SessionConfig::fast_test(sid));
                for i in 0..4u8 {
                    client.send_payload(vec![i; 1024]).unwrap();
                }
                client.finish().unwrap()
            })
        })
        .collect();
    for t in neighbors {
        t.join().unwrap();
    }
    drop(bad_tx);

    let report = fleet.shutdown();
    let bad = report.tenant(3).expect("offender admitted");
    assert_eq!(bad.durable, vec![0], "only the in-budget frame before the oversize is stored");
    assert!(bad.resyncs >= 1, "the oversized frame is skipped as garbage");
    assert!(bad.gap_dropped >= 1, "the frame after the hole is gap-dropped, not mis-ordered");
    for sid in [1u64, 2] {
        let t = report.tenant(sid).expect("neighbor admitted");
        assert_eq!(t.durable, (0..4).collect::<Vec<u32>>(), "neighbor {sid} delivered in full");
        assert_eq!(t.resyncs, 0, "neighbor {sid} saw no fallout");
    }
    report.verify_partition().unwrap();
}

#[test]
fn store_mode_keeps_exact_bytes() {
    let (cloud, meta) = small_frame(ScenePreset::ApolloUrban, 32);
    let (writer, reader) = throttled_pipe(None);
    let producer = std::thread::spawn(move || {
        let mut client = Client::new(Dbgc::new(small_config(0.02, meta)), writer);
        client.send_cloud(&cloud).unwrap().bytes
    });
    let mut server = Server::new(reader, false);
    server.receive_all().unwrap();
    let bytes = producer.join().unwrap();
    assert_eq!(server.frames()[0].bytes, bytes);
    // Stored bytes remain decompressible later.
    let (restored, _) = dbgc::decompress(&server.frames()[0].bytes).unwrap();
    assert!(!restored.is_empty());
}
