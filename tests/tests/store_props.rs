//! Property-based tests for the query AST: random trees (depth ≤ 4) answered
//! by the archive must agree with the full-decode oracle, and the boolean
//! algebra must hold (`Not(Not(q)) ≡ q`, `And(q, All) ≡ q`, `Or` commutes).

use std::sync::OnceLock;

use dbgc::{Dbgc, DbgcConfig};
use dbgc_geom::{Aabb, Point3, PointCloud};
use dbgc_store::{decode_annotated, AnnotatedPoint, DensityClass, FrameStore, Frustum, Query};
use proptest::prelude::*;

const Q: f64 = 0.02;
const TIME_US: u64 = 1_000;

/// One archived frame plus its oracle decode.
struct Fixture {
    store: FrameStore,
    oracle: Vec<AnnotatedPoint>,
}

/// Three structurally different clouds: a spider-web ring (all sparse
/// groups), xorshift clusters with far outliers (all three sections), and a
/// dense ground patch.
fn fixtures() -> &'static [Fixture; 3] {
    static FIXTURES: OnceLock<[Fixture; 3]> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let ring: PointCloud = (0..3000)
            .map(|i| {
                let th = i as f64 / 3000.0 * std::f64::consts::TAU;
                Point3::new(25.0 * th.cos(), 25.0 * th.sin(), -1.7)
            })
            .collect();

        let mut x = 99u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut mixed = PointCloud::new();
        for _ in 0..6 {
            let (cx, cy) = ((next() - 0.5) * 70.0, (next() - 0.5) * 70.0);
            for _ in 0..350 {
                mixed.push(Point3::new(
                    cx + (next() - 0.5) * 3.0,
                    cy + (next() - 0.5) * 3.0,
                    (next() - 0.5) * 2.0,
                ));
            }
        }
        for _ in 0..15 {
            mixed.push(Point3::new(
                (next() - 0.5) * 300.0,
                (next() - 0.5) * 300.0,
                (next() - 0.5) * 30.0,
            ));
        }

        let patch: PointCloud = (0..2500)
            .map(|i| {
                let (r, c) = (i / 50, i % 50);
                Point3::new(5.0 + r as f64 * 0.08, -2.0 + c as f64 * 0.08, -1.6)
            })
            .collect();

        [ring, mixed, patch].map(|cloud| {
            let cfg = DbgcConfig::with_error_bound(Q).with_spatial_index(true);
            let bytes = Dbgc::new(cfg).compress(&cloud).unwrap().bytes;
            let oracle = decode_annotated(&bytes).unwrap().points;
            let mut store = FrameStore::new();
            store.ingest(bytes, TIME_US).unwrap();
            Fixture { store, oracle }
        })
    })
}

/// Deterministic xorshift64* over a seed word.
fn next_u64(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    state.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

fn next_f64(state: &mut u64, lo: f64, hi: f64) -> f64 {
    let u = (next_u64(state) >> 11) as f64 / (1u64 << 53) as f64;
    lo + u * (hi - lo)
}

/// A random query leaf: geometry sized to the fixtures' extents so boxes and
/// frusta hit often but not always.
fn gen_leaf(state: &mut u64) -> Query {
    match next_u64(state) % 6 {
        0 => Query::All,
        1 => {
            let cx = next_f64(state, -40.0, 40.0);
            let cy = next_f64(state, -40.0, 40.0);
            let (hx, hy) = (next_f64(state, 1.0, 30.0), next_f64(state, 1.0, 30.0));
            Query::Aabb(Aabb {
                min: Point3::new(cx - hx, cy - hy, -5.0),
                max: Point3::new(cx + hx, cy + hy, 3.0),
            })
        }
        2 => {
            let target = Point3::new(
                next_f64(state, -30.0, 30.0),
                next_f64(state, -30.0, 30.0),
                next_f64(state, -2.0, 2.0),
            );
            match Frustum::look_at(
                Point3::new(0.0, 0.0, 0.0),
                target,
                Point3::new(0.0, 0.0, 1.0),
                next_f64(state, 0.3, 1.4),
                next_f64(state, 0.8, 2.0),
                0.5,
                next_f64(state, 30.0, 120.0),
            ) {
                Some(f) => Query::Frustum(f),
                None => Query::All,
            }
        }
        3 => {
            let min = (next_u64(state) % 8) as u32;
            Query::Lod { min, max: min + (next_u64(state) % 10) as u32 }
        }
        4 => {
            let start = next_u64(state) % 2_000;
            Query::TimeRange { start_us: start, end_us: start + next_u64(state) % 2_000 }
        }
        _ => Query::DensityClass(
            [DensityClass::Dense, DensityClass::Sparse, DensityClass::Outlier]
                [(next_u64(state) % 3) as usize],
        ),
    }
}

/// A random AST of the given maximum depth.
fn gen_query(state: &mut u64, depth: u32) -> Query {
    if depth == 0 || next_u64(state) % 3 == 0 {
        return gen_leaf(state);
    }
    match next_u64(state) % 3 {
        0 => Query::and(gen_query(state, depth - 1), gen_query(state, depth - 1)),
        1 => Query::or(gen_query(state, depth - 1), gen_query(state, depth - 1)),
        _ => Query::not(gen_query(state, depth - 1)),
    }
}

/// Order-normalized positions of a store answer.
fn norm(points: impl IntoIterator<Item = Point3>) -> Vec<[u64; 3]> {
    let mut v: Vec<[u64; 3]> =
        points.into_iter().map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()]).collect();
    v.sort_unstable();
    v
}

fn answer(fx: &Fixture, q: &Query) -> Vec<[u64; 3]> {
    norm(fx.store.query(q).unwrap().points.iter().map(|r| r.point.pos))
}

fn oracle_answer(fx: &Fixture, q: &Query) -> Vec<[u64; 3]> {
    norm(fx.oracle.iter().filter(|p| q.matches(p, TIME_US)).map(|p| p.pos))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn random_ast_matches_oracle(seed in any::<u64>(), fixture in 0usize..3) {
        let fx = &fixtures()[fixture];
        let mut state = seed | 1;
        let q = gen_query(&mut state, 4);
        prop_assert_eq!(answer(fx, &q), oracle_answer(fx, &q), "query {:?}", q);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn double_negation_is_identity(seed in any::<u64>(), fixture in 0usize..3) {
        let fx = &fixtures()[fixture];
        let mut state = seed | 1;
        let q = gen_query(&mut state, 3);
        let nn = Query::not(Query::not(q.clone()));
        prop_assert_eq!(answer(fx, &nn), answer(fx, &q), "query {:?}", q);
    }

    #[test]
    fn and_all_is_identity(seed in any::<u64>(), fixture in 0usize..3) {
        let fx = &fixtures()[fixture];
        let mut state = seed | 1;
        let q = gen_query(&mut state, 3);
        let qa = Query::and(q.clone(), Query::All);
        prop_assert_eq!(answer(fx, &qa), answer(fx, &q), "query {:?}", q);
        // ... and both agree with the oracle, not just with each other.
        prop_assert_eq!(answer(fx, &q), oracle_answer(fx, &q), "query {:?}", q);
    }

    #[test]
    fn or_commutes(a_seed in any::<u64>(), b_seed in any::<u64>(), fixture in 0usize..3) {
        let fx = &fixtures()[fixture];
        let (mut sa, mut sb) = (a_seed | 1, b_seed | 1);
        let a = gen_query(&mut sa, 2);
        let b = gen_query(&mut sb, 2);
        let ab = Query::or(a.clone(), b.clone());
        let ba = Query::or(b, a);
        prop_assert_eq!(answer(fx, &ab), answer(fx, &ba), "query {:?}", ab);
    }
}
