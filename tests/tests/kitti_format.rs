//! KITTI `.bin` ingestion → DBGC → restore, through real files.

mod common;

use common::{small_config, small_frame};
use dbgc::{decompress, Dbgc};
use dbgc_geom::ErrorReport;
use dbgc_lidar_sim::kitti;
use dbgc_lidar_sim::ScenePreset;

#[test]
fn bin_file_to_dbgc_archive_and_back() {
    let dir = std::env::temp_dir().join("dbgc_it_kitti");
    std::fs::create_dir_all(&dir).unwrap();
    let bin = dir.join("it_frame.bin");

    let (cloud, meta) = small_frame(ScenePreset::KittiResidential, 50);
    kitti::write_bin(&bin, &cloud).unwrap();

    // Reading back goes through f32, which perturbs coordinates by < 1e-4 m;
    // compress the *read* cloud, as a real pipeline would.
    let loaded = kitti::read_bin(&bin).unwrap();
    assert_eq!(loaded.len(), cloud.len());

    let q = 0.02;
    let frame = Dbgc::new(small_config(q, meta)).compress(&loaded).unwrap();
    let archive = dir.join("it_frame.dbgc");
    std::fs::write(&archive, &frame.bytes).unwrap();

    let bytes = std::fs::read(&archive).unwrap();
    let (restored, _) = decompress(&bytes).unwrap();
    let report = ErrorReport::paired(&loaded, &restored, &frame.mapping).unwrap();
    assert!(report.max_euclidean_error <= 3f64.sqrt() * q * (1.0 + 1e-9));

    // Against the pre-f32 original the extra error is the f32 rounding only.
    let report = ErrorReport::paired(&cloud, &restored, &frame.mapping).unwrap();
    assert!(report.max_euclidean_error <= 3f64.sqrt() * q + 1e-3);

    std::fs::remove_file(&bin).unwrap();
    std::fs::remove_file(&archive).unwrap();
}

#[test]
fn archive_is_much_smaller_than_bin() {
    let (cloud, meta) = small_frame(ScenePreset::KittiCity, 51);
    let bin_size = kitti::to_bin_bytes(&cloud).len();
    let frame = Dbgc::new(small_config(0.02, meta)).compress(&cloud).unwrap();
    // .bin carries 16 bytes/point (with intensity); expect > 10x here.
    assert!(frame.bytes.len() * 10 < bin_size, "archive {} vs bin {bin_size}", frame.bytes.len());
}
