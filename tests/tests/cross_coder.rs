//! All five coders on the same frame: losslessness in count, error bounds
//! via each coder's mapping, and the paper's headline ordering.

mod common;

use common::{assert_permutation, small_config, small_frame};
use dbgc_lidar_sim::ScenePreset;

const Q: f64 = 0.02;

#[test]
fn octree_baseline_meets_bound() {
    let (cloud, _) = small_frame(ScenePreset::KittiCity, 3);
    let enc = dbgc_octree::OctreeCodec::baseline().encode(cloud.points(), Q);
    assert_permutation(&enc.mapping);
    let dec = dbgc_octree::OctreeCodec::baseline().decode(&enc.bytes).unwrap();
    assert_eq!(dec.points.len(), cloud.len());
    for (i, p) in cloud.iter().enumerate() {
        assert!(p.linf_dist(dec.points[enc.mapping[i]]) <= Q + 1e-9);
    }
}

#[test]
fn octree_i_meets_bound() {
    let (cloud, _) = small_frame(ScenePreset::KittiCity, 3);
    let codec = dbgc_octree::OctreeCodec::parent_context();
    let enc = codec.encode(cloud.points(), Q);
    let dec = codec.decode(&enc.bytes).unwrap();
    assert_eq!(dec.points.len(), cloud.len());
    for (i, p) in cloud.iter().enumerate() {
        assert!(p.linf_dist(dec.points[enc.mapping[i]]) <= Q + 1e-9);
    }
}

#[test]
fn kdtree_meets_bound() {
    let (cloud, _) = small_frame(ScenePreset::KittiCampus, 4);
    let enc = dbgc_kdtree::KdTreeCodec.encode(cloud.points(), Q);
    assert_permutation(&enc.mapping);
    let dec = dbgc_kdtree::KdTreeCodec.decode(&enc.bytes).unwrap();
    assert_eq!(dec.points.len(), cloud.len());
    for (i, p) in cloud.iter().enumerate() {
        assert!(p.linf_dist(dec.points[enc.mapping[i]]) <= Q + 1e-9);
    }
}

#[test]
fn gpcc_meets_bound() {
    let (cloud, _) = small_frame(ScenePreset::KittiRoad, 5);
    let enc = dbgc_gpcc::GpccCodec.encode(cloud.points(), Q);
    assert_permutation(&enc.mapping);
    let dec = dbgc_gpcc::GpccCodec.decode(&enc.bytes).unwrap();
    assert_eq!(dec.points.len(), cloud.len());
    for (i, p) in cloud.iter().enumerate() {
        assert!(p.linf_dist(dec.points[enc.mapping[i]]) <= Q + 1e-9);
    }
}

#[test]
fn dbgc_beats_all_baselines_on_lidar_frames() {
    // The paper's headline (Fig. 9): DBGC compresses LiDAR frames harder
    // than every baseline at the same error bound.
    let (cloud, meta) = small_frame(ScenePreset::KittiCity, 6);
    let dbgc = dbgc::Dbgc::new(small_config(Q, meta)).compress(&cloud).unwrap().bytes.len();
    let octree = dbgc_octree::OctreeCodec::baseline().encode(cloud.points(), Q).bytes.len();
    let octree_i = dbgc_octree::OctreeCodec::parent_context().encode(cloud.points(), Q).bytes.len();
    let draco = dbgc_kdtree::KdTreeCodec.encode(cloud.points(), Q).bytes.len();
    let gpcc = dbgc_gpcc::GpccCodec.encode(cloud.points(), Q).bytes.len();
    for (name, size) in
        [("octree", octree), ("octree_i", octree_i), ("draco", draco), ("gpcc", gpcc)]
    {
        assert!(dbgc < size, "DBGC ({dbgc}) must beat {name} ({size})");
    }
    // And Draco is the weakest of the tree coders on LiDAR data.
    assert!(draco > octree, "draco {draco} vs octree {octree}");
}
