//! The parallel compression path must be byte-for-byte equivalent to the
//! serial path: same bitstream, same mapping, for every configuration.
//!
//! `threads = 4` forces the shared pool to at least four workers (even on a
//! single-core machine), so the fan-out code paths — parallel spherical
//! conversion, per-group encode-to-buffer with in-order splice, sharded grid
//! build — genuinely execute with cross-thread interleaving.

mod common;

use common::{assert_permutation, small_config, small_frame};
use dbgc::{decompress, verify_roundtrip, ClusteringAlgorithm, Dbgc, DbgcConfig, SplitStrategy};
use dbgc_geom::{Point3, PointCloud};
use dbgc_lidar_sim::ScenePreset;

/// Compress `cloud` serially (`threads = 1`) and in parallel (`threads = 4`)
/// and assert the outputs are indistinguishable.
fn assert_parallel_matches_serial(cfg: &DbgcConfig, cloud: &PointCloud, what: &str) {
    let serial = Dbgc::new(cfg.clone().with_threads(1)).compress(cloud).unwrap();
    let parallel = Dbgc::new(cfg.clone().with_threads(4)).compress(cloud).unwrap();
    assert_eq!(serial.bytes, parallel.bytes, "{what}: bitstreams differ");
    assert_eq!(serial.mapping, parallel.mapping, "{what}: mappings differ");
    assert_permutation(&parallel.mapping);
}

#[test]
fn all_clustering_algorithms_match() {
    let (cloud, meta) = small_frame(ScenePreset::KittiCity, 70);
    for alg in [
        ClusteringAlgorithm::Approximate,
        ClusteringAlgorithm::CellBased,
        ClusteringAlgorithm::Dbscan,
    ] {
        let mut cfg = small_config(0.02, meta);
        cfg.split = SplitStrategy::Density(alg);
        assert_parallel_matches_serial(&cfg, &cloud, &format!("{alg:?}"));
    }
}

#[test]
fn both_coordinate_modes_match() {
    let (cloud, meta) = small_frame(ScenePreset::KittiRoad, 71);
    let spherical = small_config(0.02, meta);
    assert_parallel_matches_serial(&spherical, &cloud, "spherical");
    let cartesian = small_config(0.02, meta).without_conversion();
    assert_parallel_matches_serial(&cartesian, &cloud, "cartesian");
}

#[test]
fn edge_cases_match() {
    let meta = ScenePreset::KittiCity.sensor_meta();
    let base = small_config(0.02, meta);

    // Empty cloud.
    assert_parallel_matches_serial(&base, &PointCloud::new(), "empty");

    // Fewer points than groups (default groups = 3).
    let tiny: PointCloud = (0..2).map(|i| Point3::new(5.0 + i as f64, 1.0, -1.0)).collect();
    assert_parallel_matches_serial(&base, &tiny, "fewer points than groups");

    let (cloud, meta) = small_frame(ScenePreset::KittiResidential, 72);
    // All-dense: every point goes to the octree, no sparse groups.
    let mut all_dense = small_config(0.02, meta);
    all_dense.split = SplitStrategy::NearestFraction(1.0);
    assert_parallel_matches_serial(&all_dense, &cloud, "all dense");

    // All-sparse: every point goes through ORG + SPA.
    let mut all_sparse = small_config(0.02, meta);
    all_sparse.split = SplitStrategy::NearestFraction(0.0);
    assert_parallel_matches_serial(&all_sparse, &cloud, "all sparse");
}

#[test]
fn den_stage_shards_merge_deterministically() {
    // The packed-grid den stage builds its cell-count map in parallel shards
    // of 2^14 points and sum-merges them; the verdict must not depend on the
    // shard schedule. 48k points guarantee several shards per worker, and the
    // blob/scatter mix exercises both dense and sparse verdicts across shard
    // boundaries.
    use dbgc_clustering::{approx_cluster_threads, ClusterParams};

    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut cloud = PointCloud::new();
    for b in 0..24 {
        // A tight blob (dense) plus a halo of scatter (sparse) per block.
        let (cx, cy) = (10.0 * (b % 6) as f64, 10.0 * (b / 6) as f64);
        for _ in 0..1500 {
            cloud.push(Point3::new(cx + 0.3 * next(), cy + 0.3 * next(), next()));
        }
        for _ in 0..500 {
            cloud.push(Point3::new(cx + 8.0 * next(), cy + 8.0 * next(), 4.0 * next()));
        }
    }
    assert!(cloud.len() > (1 << 15), "cloud must span multiple count shards");

    let params = ClusterParams { eps: 0.5, min_pts: 40 };
    let serial = approx_cluster_threads(cloud.points(), params, 1);
    for threads in [2, 4] {
        let parallel = approx_cluster_threads(cloud.points(), params, threads);
        assert_eq!(serial.dense, parallel.dense, "den split diverged at {threads} threads");
    }
    // Sanity: the mix actually produces both classes, so the equality above
    // is not comparing degenerate all-true/all-false vectors.
    let dense = serial.dense_count();
    assert!(dense > 0 && dense < cloud.len(), "degenerate split: {dense}/{}", cloud.len());
}

#[test]
fn many_groups_match() {
    // More groups than pool threads exercises the work-stealing queue.
    let (cloud, meta) = small_frame(ScenePreset::ApolloUrban, 73);
    let mut cfg = small_config(0.02, meta);
    cfg.groups = 11;
    assert_parallel_matches_serial(&cfg, &cloud, "11 groups");
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Thread scheduling varies run to run; the bytes must not.
    let (cloud, meta) = small_frame(ScenePreset::KittiCampus, 74);
    let dbgc = Dbgc::new(small_config(0.02, meta).with_threads(4));
    let first = dbgc.compress(&cloud).unwrap();
    for _ in 0..4 {
        let again = dbgc.compress(&cloud).unwrap();
        assert_eq!(first.bytes, again.bytes);
        assert_eq!(first.mapping, again.mapping);
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Random clouds round-trip through the parallel path within the
        /// error bound, and still match the serial bytes.
        #[test]
        fn parallel_roundtrip_random_clouds(
            seed in 0u64..1_000_000,
            n in 0usize..600,
        ) {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let cloud: PointCloud = (0..n)
                .map(|_| {
                    let r = 2.0 + 70.0 * next();
                    let th = std::f64::consts::TAU * next();
                    Point3::new(r * th.cos(), r * th.sin(), -2.0 + 3.0 * next())
                })
                .collect();

            let cfg = DbgcConfig::with_error_bound(0.02);
            let serial = Dbgc::new(cfg.clone().with_threads(1)).compress(&cloud).unwrap();
            let parallel = Dbgc::new(cfg.with_threads(4)).compress(&cloud).unwrap();
            prop_assert_eq!(&serial.bytes, &parallel.bytes);
            prop_assert_eq!(&serial.mapping, &parallel.mapping);

            let (restored, _) = decompress(&parallel.bytes).unwrap();
            prop_assert_eq!(restored.len(), cloud.len());
            verify_roundtrip(&cloud, &restored, &parallel, 0.02).unwrap();
        }
    }
}
