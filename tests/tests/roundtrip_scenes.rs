//! End-to-end DBGC round trips across every scene preset and several error
//! bounds: one-to-one mapping, error bound, duplicate preservation.

mod common;

use common::{assert_permutation, small_config, small_frame};
use dbgc::{decompress, verify_roundtrip, Dbgc};
use dbgc_lidar_sim::ScenePreset;

fn check_scene(preset: ScenePreset, q: f64) {
    let (cloud, meta) = small_frame(preset, 42);
    assert!(cloud.len() > 5_000, "{}: frame too small", preset.name());
    let frame = Dbgc::new(small_config(q, meta)).compress(&cloud).expect("compress");
    assert_permutation(&frame.mapping);
    let (restored, _) = decompress(&frame.bytes).expect("decompress");
    assert_eq!(restored.len(), cloud.len());
    let report = verify_roundtrip(&cloud, &restored, &frame, q).expect("bound holds");
    assert!(report.max_euclidean_error <= 3f64.sqrt() * q * (1.0 + 1e-9));
    // A real frame must compress substantially.
    assert!(
        frame.compression_ratio() > 3.0,
        "{} at q={q}: ratio only {:.2}",
        preset.name(),
        frame.compression_ratio()
    );
}

#[test]
fn kitti_campus_2cm() {
    check_scene(ScenePreset::KittiCampus, 0.02);
}

#[test]
fn kitti_city_2cm() {
    check_scene(ScenePreset::KittiCity, 0.02);
}

#[test]
fn kitti_residential_2cm() {
    check_scene(ScenePreset::KittiResidential, 0.02);
}

#[test]
fn kitti_road_2cm() {
    check_scene(ScenePreset::KittiRoad, 0.02);
}

#[test]
fn apollo_urban_2cm() {
    check_scene(ScenePreset::ApolloUrban, 0.02);
}

#[test]
fn ford_campus_2cm() {
    check_scene(ScenePreset::FordCampus, 0.02);
}

#[test]
fn city_fine_bound() {
    check_scene(ScenePreset::KittiCity, 0.0006);
}

#[test]
fn city_medium_bound() {
    check_scene(ScenePreset::KittiCity, 0.005);
}

#[test]
fn coarser_bounds_give_smaller_streams() {
    let (cloud, meta) = small_frame(ScenePreset::KittiCampus, 7);
    let mut last = usize::MAX;
    for q in [0.0006, 0.0025, 0.01, 0.02] {
        let frame = Dbgc::new(small_config(q, meta)).compress(&cloud).expect("compress");
        assert!(frame.bytes.len() < last, "q={q} grew the stream");
        last = frame.bytes.len();
    }
}

#[test]
fn duplicated_frame_compresses_and_preserves_counts() {
    // Concatenate a frame with itself: every point occurs twice.
    let (base, meta) = small_frame(ScenePreset::KittiRoad, 9);
    let doubled: dbgc_geom::PointCloud = base.iter().chain(base.iter()).copied().collect();
    let frame = Dbgc::new(small_config(0.02, meta)).compress(&doubled).expect("compress");
    let (restored, _) = decompress(&frame.bytes).expect("decompress");
    assert_eq!(restored.len(), doubled.len());
    verify_roundtrip(&doubled, &restored, &frame, 0.02).expect("bound holds");
}
