//! Shared helpers for the integration suites.

use dbgc::DbgcConfig;
use dbgc_geom::{PointCloud, SensorMeta};
use dbgc_lidar_sim::{LidarSimulator, NoiseModel, ScenePreset};

/// A reduced-resolution frame (~500 azimuth columns instead of 2083) so
/// integration tests stay fast in debug builds while keeping the full scene
/// structure. Deterministic in `(preset, seed)`. Returns the matching sensor
/// metadata — the compressor's polyline organization needs the *actual*
/// sample spacings `u_θ`/`u_φ`.
pub fn small_frame(preset: ScenePreset, seed: u64) -> (PointCloud, SensorMeta) {
    let meta = SensorMeta { h_samples: 500, ..preset.sensor_meta() };
    let sim = LidarSimulator::new(meta, NoiseModel::realistic());
    let scene = preset.build_scene(seed);
    (sim.scan(&scene, dbgc_geom::Point3::ZERO, seed), meta)
}

/// DBGC configuration matched to a reduced-resolution frame.
pub fn small_config(q: f64, meta: SensorMeta) -> DbgcConfig {
    let mut cfg = DbgcConfig::with_error_bound(q);
    cfg.sensor = meta;
    cfg
}

/// Assert `mapping` is a permutation of `0..n`.
#[allow(dead_code)] // used by some suites only
pub fn assert_permutation(mapping: &[usize]) {
    let mut seen = vec![false; mapping.len()];
    for &m in mapping {
        assert!(m < mapping.len(), "mapping target {m} out of range");
        assert!(!seen[m], "duplicate mapping target {m}");
        seen[m] = true;
    }
}
