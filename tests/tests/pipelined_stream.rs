//! Pipelined compression feeding the network server: the full online path of
//! §4.4 with the worker pool in front of the uplink.

mod common;

use common::{small_config, small_frame};
use dbgc::Dbgc;
use dbgc_lidar_sim::ScenePreset;
use dbgc_net::protocol::{write_frame, WireFrame};
use dbgc_net::{PipelinedCompressor, Server};

#[test]
fn pipelined_frames_stream_in_order_over_tcp() {
    use std::net::{TcpListener, TcpStream};
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let frames_meta: Vec<_> =
        (0..4).map(|k| small_frame(ScenePreset::KittiCampus, 70 + k)).collect();
    let meta = frames_meta[0].1;
    let clouds: Vec<_> = frames_meta.into_iter().map(|(c, _)| c).collect();

    let producer = {
        let clouds = clouds.clone();
        std::thread::spawn(move || {
            let mut pipe = PipelinedCompressor::new(Dbgc::new(small_config(0.02, meta)), 2);
            for c in &clouds {
                pipe.submit(c.clone());
            }
            let mut transport = TcpStream::connect(addr).unwrap();
            let mut seq = 0u32;
            let mut sent = Vec::new();
            while let Some(result) = pipe.next_ordered() {
                let frame = result.expect("finite clouds compress");
                write_frame(
                    &mut transport,
                    &WireFrame { sequence: seq, payload: frame.bytes.clone() },
                )
                .unwrap();
                seq += 1;
                sent.push(frame);
            }
            sent
        })
    };

    let (stream, _) = listener.accept().unwrap();
    let mut server = Server::new(stream, true);
    let received = server.receive_all().unwrap();
    let sent = producer.join().unwrap();

    assert_eq!(received, clouds.len());
    for ((i, stored), frame) in server.frames().iter().enumerate().zip(&sent) {
        assert_eq!(stored.sequence, i as u32);
        let restored = stored.cloud.as_ref().expect("decompressed");
        // In-order delivery: frame i must match cloud i.
        assert_eq!(restored.len(), clouds[i].len(), "frame {i} out of order");
        dbgc::verify_roundtrip(&clouds[i], restored, frame, 0.02).expect("bound holds");
    }
}

#[test]
fn pipelined_compressor_saturates_submissions() {
    // Submit a burst larger than the worker count; everything must come back
    // exactly once, in order.
    let (cloud, meta) = small_frame(ScenePreset::KittiRoad, 80);
    let mut pipe = PipelinedCompressor::new(Dbgc::new(small_config(0.05, meta)), 3);
    const BURST: usize = 9;
    for _ in 0..BURST {
        pipe.submit(cloud.clone());
    }
    assert_eq!(pipe.in_flight(), BURST as u64);
    let mut sizes = Vec::new();
    while let Some(result) = pipe.next_ordered() {
        sizes.push(result.unwrap().bytes.len());
    }
    assert_eq!(sizes.len(), BURST);
    // Deterministic compressor: identical inputs give identical outputs.
    assert!(sizes.windows(2).all(|w| w[0] == w[1]));
}
