//! Golden spatial-directory vectors.
//!
//! For every scene preset this suite compresses the same deterministic frame
//! the stream goldens use (`small_frame(preset, 7)` at q = 0.02), once with
//! the spatial index and once without, and pins down:
//!
//! * **the directory bytes** — an FNV-1a hash of the serialized index payload
//!   per preset, so any change to the directory format or to what the encoder
//!   records is a conscious re-bless;
//! * **v1 compatibility** — the indexed stream is exactly the committed
//!   golden stream plus the trailer: the body is byte-identical, and a v1
//!   decode of the indexed stream returns bit-identical coordinates.
//!
//! Regenerate after an intentional index-format change with:
//!
//! ```text
//! DBGC_BLESS=1 cargo test -p dbgc-integration-tests --test golden_index
//! ```

mod common;

use std::fmt::Write as _;
use std::path::PathBuf;

use common::{small_config, small_frame};
use dbgc::{split_index_trailer, IndexTrailer, SpatialDirectory};
use dbgc_lidar_sim::ScenePreset;

/// Seed for the golden frames; matches `golden_vectors.rs`.
const SEED: u64 = 7;
/// The paper's typical error bound: 2 cm.
const Q: f64 = 0.02;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

/// FNV-1a 64-bit over a byte stream; no external hashing deps.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct IndexEntry {
    index_bytes: usize,
    groups: usize,
    index_fnv: u64,
}

fn parse_manifest(text: &str) -> Vec<(String, IndexEntry)> {
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|line| {
            let mut fields = line.split_whitespace();
            let name = fields.next().expect("preset name").to_string();
            let mut entry = IndexEntry { index_bytes: 0, groups: 0, index_fnv: 0 };
            for field in fields {
                let (k, v) = field.split_once('=').expect("k=v field");
                match k {
                    "index_bytes" => entry.index_bytes = v.parse().expect("index_bytes"),
                    "groups" => entry.groups = v.parse().expect("groups"),
                    "index_fnv" => entry.index_fnv = u64::from_str_radix(v, 16).expect("index_fnv"),
                    other => panic!("unknown manifest field {other}"),
                }
            }
            (name, entry)
        })
        .collect()
}

/// Compress the golden frame with the spatial index on; returns the full
/// stream and its split (body, index payload).
fn compress_indexed(preset: ScenePreset) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let (cloud, meta) = small_frame(preset, SEED);
    let cfg = small_config(Q, meta).with_spatial_index(true);
    let bytes = dbgc::Dbgc::new(cfg).compress(&cloud).expect("compress").bytes;
    let (body, payload) = match split_index_trailer(&bytes) {
        IndexTrailer::Valid { body, payload } => (body.to_vec(), payload.to_vec()),
        other => panic!("{}: expected valid index trailer, got {other:?}", preset.name()),
    };
    (bytes, body, payload)
}

#[test]
fn golden_index_all_presets() {
    let dir = golden_dir();
    let bless = std::env::var_os("DBGC_BLESS").is_some();
    if bless {
        std::fs::create_dir_all(&dir).expect("create golden dir");
        let mut manifest = String::from(
            "# Golden spatial directories: small_frame(preset, 7) at q = 0.02,\n\
             # spatial_index = true. Regenerate with DBGC_BLESS=1 (golden_index.rs).\n",
        );
        for preset in ScenePreset::all() {
            let (_, body, payload) = compress_indexed(preset);
            let parsed = SpatialDirectory::parse(&payload, body.len()).expect("own directory");
            let _ = writeln!(
                manifest,
                "{} index_bytes={} groups={} index_fnv={:016x}",
                preset.name(),
                payload.len(),
                parsed.groups.len(),
                fnv1a(payload.iter().copied()),
            );
        }
        std::fs::write(dir.join("index_manifest.txt"), manifest).expect("write index manifest");
        eprintln!("blessed {} golden directories into {}", ScenePreset::all().len(), dir.display());
        return;
    }

    let manifest_text = std::fs::read_to_string(dir.join("index_manifest.txt"))
        .expect("index manifest missing — run with DBGC_BLESS=1 to create it");
    let manifest = parse_manifest(&manifest_text);
    assert_eq!(manifest.len(), ScenePreset::all().len(), "manifest covers every preset");

    for preset in ScenePreset::all() {
        let entry = &manifest
            .iter()
            .find(|(name, _)| name == preset.name())
            .unwrap_or_else(|| panic!("{} missing from index manifest", preset.name()))
            .1;
        let (bytes, body, payload) = compress_indexed(preset);

        assert_eq!(payload.len(), entry.index_bytes, "{}: directory size", preset.name());
        assert_eq!(
            fnv1a(payload.iter().copied()),
            entry.index_fnv,
            "{}: directory bytes drifted",
            preset.name()
        );
        let parsed = SpatialDirectory::parse(&payload, body.len()).expect("own directory parses");
        assert_eq!(parsed.groups.len(), entry.groups, "{}: group count", preset.name());

        // The indexed stream is the committed golden stream plus a trailer:
        // v1 decoders see byte-identical input.
        let golden =
            std::fs::read(dir.join(format!("{}.dbgc", preset.name()))).expect("golden stream file");
        assert_eq!(body, golden, "{}: indexed body differs from golden stream", preset.name());

        // And decoding through the trailer matches decoding the bare body.
        let (via_trailer, _) = dbgc::decompress(&bytes).expect("indexed stream decodes");
        let (bare, _) = dbgc::decompress(&golden).expect("golden stream decodes");
        let same = via_trailer.points().iter().zip(bare.points().iter()).all(|(a, b)| {
            a.x.to_bits() == b.x.to_bits()
                && a.y.to_bits() == b.y.to_bits()
                && a.z.to_bits() == b.z.to_bits()
        });
        assert!(
            same && via_trailer.len() == bare.len(),
            "{}: indexed decode diverges from index-less decode",
            preset.name()
        );
    }
}
