//! Determinism and robustness of the bitstream.

mod common;

use common::{small_config, small_frame};
use dbgc::{decompress, Dbgc};
use dbgc_lidar_sim::ScenePreset;

#[test]
fn compression_is_deterministic() {
    let (cloud, meta) = small_frame(ScenePreset::KittiCity, 60);
    let dbgc = Dbgc::new(small_config(0.02, meta));
    let a = dbgc.compress(&cloud).unwrap();
    let b = dbgc.compress(&cloud).unwrap();
    assert_eq!(a.bytes, b.bytes, "byte-identical streams");
    assert_eq!(a.mapping, b.mapping);
}

#[test]
fn decompression_is_deterministic() {
    let (cloud, meta) = small_frame(ScenePreset::KittiRoad, 61);
    let frame = Dbgc::new(small_config(0.02, meta)).compress(&cloud).unwrap();
    let (a, _) = decompress(&frame.bytes).unwrap();
    let (b, _) = decompress(&frame.bytes).unwrap();
    assert_eq!(a, b);
}

#[test]
fn corruption_never_panics() {
    let (cloud, meta) = small_frame(ScenePreset::KittiCampus, 62);
    let frame = Dbgc::new(small_config(0.02, meta)).compress(&cloud).unwrap();
    // Every truncation point of the first 200 bytes plus a spread beyond.
    for cut in (0..frame.bytes.len().min(200)).chain((200..frame.bytes.len()).step_by(997)) {
        let _ = decompress(&frame.bytes[..cut]);
    }
    // Single-bit flips across the stream.
    let mut x = 0x243F6A8885A308D3u64;
    for _ in 0..200 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let mut bytes = frame.bytes.clone();
        let at = (x as usize) % bytes.len();
        bytes[at] ^= 1 << ((x >> 17) % 8);
        let _ = decompress(&bytes); // error or garbage, never a panic
    }
}

#[test]
fn foreign_streams_rejected_cleanly() {
    for stream in [
        &b""[..],
        &b"DBGC"[..],
        &b"DBGC\x07rest-of-garbage"[..],
        &[0u8; 64][..],
        &b"DBGF\x01\x00\x00\x00\x00\x00\x00\x00\x00"[..],
    ] {
        assert!(decompress(stream).is_err());
    }
}
