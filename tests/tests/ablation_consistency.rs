//! Fig. 11 consistency: every ablation still round-trips within the bound,
//! and full DBGC compresses at least as well as each ablated variant.

mod common;

use common::{small_config, small_frame};
use dbgc::{decompress, verify_roundtrip, Dbgc, DbgcConfig};
use dbgc_lidar_sim::ScenePreset;

const Q: f64 = 0.02;

fn run(make: impl FnOnce(DbgcConfig) -> DbgcConfig) -> (usize, f64) {
    let (cloud, meta) = small_frame(ScenePreset::KittiCampus, 11);
    let cfg = make(small_config(Q, meta));
    let frame = Dbgc::new(cfg).compress(&cloud).expect("compress");
    let (restored, _) = decompress(&frame.bytes).expect("decompress");
    let report = verify_roundtrip(&cloud, &restored, &frame, Q).expect("bound holds");
    (frame.bytes.len(), report.max_euclidean_error)
}

#[test]
fn full_dbgc_at_least_matches_minus_radial() {
    // On the simulated scenes the radial optimization is roughly
    // cost-neutral (see EXPERIMENTS.md): it must not *lose* noticeably.
    let (full, _) = run(|c| c);
    let (ablated, _) = run(DbgcConfig::without_radial);
    assert!((full as f64) <= ablated as f64 * 1.02, "full {full} vs -Radial {ablated}");
}

#[test]
fn full_dbgc_roughly_matches_minus_group_at_2cm() {
    // Grouping pays at fine bounds (Fig. 11); at 2 cm it is near-neutral.
    let (full, _) = run(|c| c);
    let (ablated, _) = run(DbgcConfig::without_grouping);
    assert!((full as f64) <= ablated as f64 * 1.06, "full {full} vs -Group {ablated}");
}

#[test]
fn grouping_pays_at_fine_bounds() {
    let (cloud, meta) = small_frame(ScenePreset::KittiCampus, 11);
    let q = 0.0025;
    let full = Dbgc::new(small_config(q, meta)).compress(&cloud).unwrap();
    let ablated = Dbgc::new(small_config(q, meta).without_grouping()).compress(&cloud).unwrap();
    assert!(
        full.bytes.len() < ablated.bytes.len(),
        "full {} vs -Group {} at q={q}",
        full.bytes.len(),
        ablated.bytes.len()
    );
}

#[test]
fn full_dbgc_beats_minus_conversion_substantially() {
    // The paper's strongest ablation: Cartesian polyline coding reaches only
    // ~29% of DBGC's ratio. Shape check: −Conversion costs much more.
    let (full, _) = run(|c| c);
    let (ablated, _) = run(DbgcConfig::without_conversion);
    assert!(
        ablated as f64 > full as f64 * 1.05,
        "-Conversion ({ablated}) should cost clearly above full DBGC ({full})"
    );
}

#[test]
fn ablations_respect_error_bound() {
    for make in
        [DbgcConfig::without_radial, DbgcConfig::without_grouping, DbgcConfig::without_conversion]
    {
        let (_, err) = run(make);
        assert!(err <= 3f64.sqrt() * Q * (1.0 + 1e-9));
    }
}

#[test]
fn outlier_modes_consistent_with_table2() {
    use dbgc::OutlierMode;
    let (cloud, meta) = small_frame(ScenePreset::KittiCity, 12);
    let mut sizes = Vec::new();
    for mode in [OutlierMode::Quadtree, OutlierMode::Octree, OutlierMode::None] {
        let mut cfg = small_config(Q, meta);
        cfg.outlier_mode = mode;
        let frame = Dbgc::new(cfg).compress(&cloud).expect("compress");
        let (restored, _) = decompress(&frame.bytes).expect("decompress");
        assert_eq!(restored.len(), cloud.len());
        sizes.push(frame.bytes.len());
    }
    // Quadtree and octree must both beat storing outliers raw.
    assert!(sizes[0] < sizes[2], "quadtree {} vs none {}", sizes[0], sizes[2]);
    assert!(sizes[1] < sizes[2], "octree {} vs none {}", sizes[1], sizes[2]);
}
