//! Regression replay: every corpus file must decode without panicking,
//! hanging, or allocating unboundedly — through *every* decoder, not just
//! the one it was minimized against, since hostile bytes don't care which
//! decoder they reach.
//!
//! The corpus is generated deterministically (`cargo run -p dbgc-fuzz --
//! --emit-regressions tests/tests/corpus`) and extended by any failure the
//! fuzz CLI minimizes; see `crates/fuzz`.

use dbgc_fuzz::{decode_target, Target};

fn corpus_files() -> Vec<(String, Vec<u8>)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|entry| {
            let path = entry.expect("corpus entry").path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            (name, std::fs::read(&path).expect("read corpus file"))
        })
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_not_empty() {
    assert!(corpus_files().len() >= 50, "regression corpus went missing");
}

#[test]
fn corpus_replays_through_dbgc_decompress() {
    for (name, bytes) in corpus_files() {
        // Err or a valid cloud; a panic fails the test on its own.
        decode_target(Target::Dbgc, &bytes)
            .unwrap_or_else(|e| panic!("{name}: dbgc contract violated: {e}"));
    }
}

#[test]
fn corpus_replays_through_all_baseline_decoders() {
    for (name, bytes) in corpus_files() {
        for target in Target::ALL {
            decode_target(target, &bytes)
                .unwrap_or_else(|e| panic!("{name}: {} contract violated: {e}", target.name()));
        }
    }
}

#[test]
fn truncations_of_valid_streams_never_panic() {
    // Beyond the checked-in corpus: systematically cut every seed stream at
    // many points; each prefix must be Err or a valid decode.
    for input in dbgc_fuzz::build_seed_inputs_sized(2, 64) {
        let n = input.bytes.len();
        for cut in (0..n).step_by((n / 37).max(1)) {
            decode_target(input.target, &input.bytes[..cut])
                .unwrap_or_else(|e| panic!("{} truncated at {cut}/{n}: {e}", input.target.name()));
        }
    }
}
