//! Fleet ingestion end-to-end: many sensor clients stream *real* compressed
//! clouds into one fleet server; the drained frames feed the PR-7 archival
//! path (`FrameStore::archive_session`) and stay queryable and
//! roundtrip-exact per tenant.

mod common;

use common::{small_config, small_frame};
use dbgc::Dbgc;
use dbgc_lidar_sim::ScenePreset;
use dbgc_net::fleet::{FleetConfig, FleetServer};
use dbgc_net::session::{ResilientClient, SessionConfig};
use dbgc_store::{FrameStore, Query};

const Q: f64 = 0.02;

#[test]
fn fleet_drain_feeds_the_archive_per_tenant() {
    let presets = [ScenePreset::KittiCity, ScenePreset::KittiRoad, ScenePreset::ApolloUrban];
    let frames_per_tenant = 3usize;

    struct TenantStream {
        session_id: u64,
        payloads: Vec<Vec<u8>>,
        clouds: Vec<dbgc_geom::PointCloud>,
        frames: Vec<dbgc::CompressedFrame>,
    }

    // Compress each tenant's stream up front (clients ship opaque bytes; the
    // fleet stores them without decompressing, like the archival server).
    let mut streams: Vec<TenantStream> = Vec::new();
    for (t, preset) in presets.iter().enumerate() {
        let session_id = 100 + t as u64;
        let mut payloads = Vec::new();
        let mut clouds = Vec::new();
        let mut frames = Vec::new();
        for k in 0..frames_per_tenant {
            let (cloud, meta) = small_frame(*preset, 80 + (t * 10 + k) as u64);
            let frame =
                Dbgc::new(small_config(Q, meta).with_spatial_index(true)).compress(&cloud).unwrap();
            payloads.push(frame.bytes.clone());
            clouds.push(cloud);
            frames.push(frame);
        }
        streams.push(TenantStream { session_id, payloads, clouds, frames });
    }

    let mut config = FleetConfig::new(presets.len());
    config.shards = 2;
    let fleet = FleetServer::spawn(config);
    let handle = fleet.handle();

    let clients: Vec<_> = streams
        .iter()
        .map(|tenant| {
            let handle = handle.clone();
            let session_id = tenant.session_id;
            let payloads = tenant.payloads.clone();
            std::thread::spawn(move || {
                let h = handle.clone();
                let mut client = ResilientClient::new(
                    move || h.connect(session_id),
                    SessionConfig::fast_test(session_id),
                );
                for payload in payloads {
                    client.send_payload(payload).unwrap();
                }
                client.finish().unwrap()
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    // The archival hand-off: one FrameStore per tenant, 10 fps timestamps.
    let (t0, period) = (1_000_000u64, 100_000u64);
    let drained = handle.drain();
    assert_eq!(drained.len(), presets.len(), "every tenant drains");
    for (sid, stored) in drained {
        let TenantStream { payloads, clouds, frames, .. } =
            streams.iter().find(|t| t.session_id == sid).expect("drained session was one we drove");
        assert_eq!(stored.len(), frames_per_tenant, "tenant {sid} delivered in full");
        assert!(
            stored.iter().map(|f| f.sequence).eq(0..frames_per_tenant as u32),
            "tenant {sid} frames arrive in order"
        );
        for (got, want) in stored.iter().zip(payloads) {
            assert_eq!(&got.bytes, want, "tenant {sid} bytes survive the fleet verbatim");
        }

        let mut store = FrameStore::new();
        store.archive_session(stored, t0, period).unwrap();
        assert_eq!(store.len(), frames_per_tenant);

        // The archive stays queryable and decodable per tenant.
        let q = Query::TimeRange { start_us: t0 + period, end_us: t0 + 2 * period };
        let res = store.query(&q).unwrap();
        assert_eq!(res.frames_pruned, 2, "tenant {sid}: only frame 1 is in-window");
        let (restored, _) = dbgc::decompress(&store.frames()[0].bytes).unwrap();
        dbgc::verify_roundtrip(&clouds[0], &restored, &frames[0], Q)
            .unwrap_or_else(|e| panic!("tenant {sid} roundtrip: {e}"));
    }

    let report = fleet.shutdown();
    assert_eq!(report.tenants.len(), presets.len());
    assert!(report.tenants.iter().all(|t| t.resident_frames.is_empty()), "drain emptied the fleet");
    report.verify_partition().unwrap();
}
