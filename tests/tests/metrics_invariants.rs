//! Metric-invariant suite: the observability layer must *prove* its own
//! numbers. Byte channels partition the stream exactly, span trees are
//! well-formed under every threading mode, recording never changes the
//! bitstream, and the net-server counters agree with its drop/store lists.

mod common;

use common::{small_config, small_frame};
use dbgc::Dbgc;
use dbgc_lidar_sim::ScenePreset;
use dbgc_metrics::Collector;

const Q: f64 = 0.02;

fn compressor(threads: usize) -> (Dbgc, dbgc_geom::PointCloud) {
    let (cloud, meta) = small_frame(ScenePreset::KittiCity, 3);
    let mut cfg = small_config(Q, meta);
    cfg.threads = threads;
    (Dbgc::new(cfg), cloud)
}

#[test]
fn byte_channels_sum_to_stream_size() {
    for preset in ScenePreset::all() {
        let (cloud, meta) = small_frame(preset, 3);
        let collector = Collector::new();
        let frame = Dbgc::new(small_config(Q, meta))
            .compress_with_metrics(&cloud, &collector)
            .expect("compress");
        let snap = collector.snapshot();
        assert_eq!(
            snap.bytes_total() as usize,
            frame.bytes.len(),
            "{}: byte channels must partition the stream",
            preset.name()
        );
        // And channel-by-channel they match the reported section sizes.
        let s = &frame.stats.sections;
        assert_eq!(snap.bytes["header"] as usize, s.header);
        assert_eq!(snap.bytes["dense"] as usize, s.dense);
        assert_eq!(snap.bytes["sparse"] as usize, s.sparse);
        assert_eq!(snap.bytes["outlier"] as usize, s.outlier);
    }
}

#[test]
fn span_trees_well_formed_across_thread_modes() {
    for threads in [0usize, 1, 4] {
        let (dbgc, cloud) = compressor(threads);
        let collector = Collector::new();
        let frame = dbgc.compress_with_metrics(&cloud, &collector).expect("compress");
        let (decoded, _) =
            dbgc::decompress_with_metrics(&frame.bytes, &collector).expect("own stream");
        assert_eq!(decoded.len(), cloud.len());

        let snap = collector.snapshot();
        snap.validate_spans().unwrap_or_else(|e| panic!("threads={threads}: {e}"));
        let roots: Vec<_> = snap.spans.iter().filter(|s| s.parent.is_none()).collect();
        let names: Vec<_> = roots.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["compress", "decompress"], "threads={threads}");

        // The compress root's direct children are the pipeline stages; the
        // per-group org/spa spans recorded on pool workers must hang off the
        // sparse_groups stage, not float free.
        let compress_root = roots[0];
        let stages: Vec<_> =
            snap.span_children(compress_root.id).iter().map(|s| s.name.clone()).collect();
        for stage in ["den", "oct", "cor", "sparse_groups", "out"] {
            assert!(stages.contains(&stage.to_string()), "threads={threads}: missing {stage}");
        }
        let group_stage = snap
            .spans
            .iter()
            .find(|s| s.name == "sparse_groups")
            .expect("sparse_groups stage span");
        let group_children = snap.span_children(group_stage.id);
        assert!(
            group_children.iter().any(|s| s.name == "org")
                && group_children.iter().any(|s| s.name == "spa"),
            "threads={threads}: per-group org/spa spans must nest under sparse_groups"
        );
    }
}

#[test]
fn recording_is_bitstream_invariant() {
    for threads in [0usize, 1] {
        let (dbgc, cloud) = compressor(threads);
        let plain = dbgc.compress(&cloud).expect("compress");
        let collector = Collector::new();
        let instrumented = dbgc.compress_with_metrics(&cloud, &collector).expect("compress");
        assert_eq!(plain.bytes, instrumented.bytes, "threads={threads}");
        assert_eq!(plain.mapping, instrumented.mapping, "threads={threads}");
        // And the decoder's instrumented path decodes the same cloud.
        let (a, _) = dbgc::decompress(&plain.bytes).expect("plain decode");
        let (b, _) = dbgc::decompress_with_metrics(&plain.bytes, &collector).expect("decode");
        assert_eq!(a.points(), b.points());
    }
}

#[test]
fn net_server_counters_match_corrupt_frame_recovery() {
    use dbgc_net::{write_frame, Server, WireFrame};

    // Three frames on the wire, the middle one corrupted: the server must
    // store 2, drop 1, and its counters must say exactly that.
    let (cloud, meta) = small_frame(ScenePreset::KittiRoad, 5);
    let dbgc = Dbgc::new(small_config(Q, meta));
    let mut buf = Vec::new();
    let mut offsets = vec![0usize];
    let mut payload_sizes = Vec::new();
    for i in 0..3u32 {
        let payload = dbgc.compress(&cloud).expect("compress").bytes;
        payload_sizes.push(payload.len());
        write_frame(&mut buf, &WireFrame { sequence: i, payload }).expect("write frame");
        offsets.push(buf.len());
    }
    let mid = (offsets[1] + offsets[2]) / 2;
    for d in 0..3 {
        buf[mid + d * 7] ^= 0x55;
    }

    let collector = Collector::new();
    let mut server = Server::new(&buf[..], true).with_metrics(&collector);
    let received = server.receive_all().expect("stream drains");
    assert_eq!(received, 2);
    assert_eq!(server.dropped().len(), 1);

    let snap = collector.snapshot();
    assert_eq!(snap.counters["net.frames_received"], 2);
    assert_eq!(snap.counters["net.frames_dropped"], server.dropped().len() as u64);
    assert_eq!(snap.counters["net.resyncs"], 1);
    assert_eq!(snap.counters["net.bytes_skipped"], server.dropped()[0].bytes_skipped);
    assert!(snap.counters["net.bytes_skipped"] > 0);
    let stored_bytes: u64 = server.frames().iter().map(|f| f.bytes.len() as u64).sum();
    assert_eq!(snap.counters["net.bytes_received"], stored_bytes);
    // Two decoded frames => two decompress span trees, all well-formed.
    assert_eq!(snap.spans.iter().filter(|s| s.name == "decompress").count(), 2);
    snap.validate_spans().expect("server span trees well-formed");
    assert_eq!(snap.counters["decompress.frames"], 2);
}

#[test]
fn chaos_counters_partition_intact_frames() {
    use dbgc_net::chaos::{run_chaos, ChaosConfig};

    // For every chaos smoke seed: each frame the link delivered intact was
    // either stored, deduplicated, dropped as an out-of-order gap arrival,
    // or failed decompression — exactly one of the four, so the counters
    // must partition `net.frames_intact` with nothing left over.
    for seed in 1..=8u64 {
        let report = run_chaos(&ChaosConfig::smoke(seed));
        report.verify().unwrap_or_else(|e| panic!("{e}\n{}", report.summary()));
        let intact = report.counter("net.frames_intact");
        let partition = report.counter("net.frames_stored")
            + report.counter("net.frames_deduped")
            + report.counter("net.frames_gap_dropped")
            + report.counter("net.decode_failures");
        assert!(intact > 0, "seed {seed}: no intact frames counted\n{}", report.summary());
        assert_eq!(
            intact,
            partition,
            "seed {seed}: counters must partition intact frames\n{}",
            report.summary()
        );
        assert_eq!(report.counter("net.frames_stored"), report.frames_sent as u64);
    }
}

#[test]
fn pipelined_compressor_records_queue_depth() {
    let (cloud, meta) = small_frame(ScenePreset::KittiCampus, 3);
    let dbgc = Dbgc::new(small_config(Q, meta));
    let collector = Collector::new();
    let mut pipe = dbgc_net::PipelinedCompressor::with_metrics(dbgc, 2, &collector);
    for _ in 0..4 {
        pipe.submit(cloud.clone());
    }
    let mut yielded = 0;
    while let Some(result) = pipe.next_ordered() {
        result.expect("compresses");
        yielded += 1;
    }
    assert_eq!(yielded, 4);

    let snap = collector.snapshot();
    assert_eq!(snap.counters["net.frames_submitted"], 4);
    assert_eq!(snap.counters["net.frames_yielded"], 4);
    let depth = &snap.histograms["net.queue_depth"];
    assert_eq!(depth.count, 4);
    assert!(depth.max >= 1, "at least one submission saw a non-empty queue");
    // Worker-side compress spans all landed in the shared collector.
    assert_eq!(snap.spans.iter().filter(|s| s.name == "compress").count(), 4);
    snap.validate_spans().expect("worker span trees well-formed");
    assert_eq!(snap.counters["compress.frames"], 4);
}
