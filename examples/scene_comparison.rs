//! Compression across all six evaluation scenes and several error bounds —
//! a miniature of the paper's Fig. 9 for interactive exploration.
//!
//! ```text
//! cargo run --release -p dbgc-examples --bin scene_comparison
//! ```

use dbgc::{decompress, verify_roundtrip, Dbgc};
use dbgc_lidar_sim::{frame, ScenePreset};

fn main() {
    let bounds_cm = [2.0, 1.0, 0.5];
    print!("{:<18}", "scene");
    for q in bounds_cm {
        print!("  ratio@{q}cm");
    }
    println!();
    for preset in ScenePreset::all() {
        let cloud = frame(preset, 1, 0);
        print!("{:<18}", preset.name());
        for q_cm in bounds_cm {
            let q = q_cm / 100.0;
            let compressed = Dbgc::with_error_bound(q).compress(&cloud).expect("compress");
            // Always verify what we report.
            let (restored, _) = decompress(&compressed.bytes).expect("decompress");
            verify_roundtrip(&cloud, &restored, &compressed, q).expect("bound holds");
            print!("  {:>9.2}", compressed.compression_ratio());
        }
        println!("  ({} pts)", cloud.len());
    }
}
