//! Online remote survey: a sensor streams frames through DBGC over a
//! simulated 4G uplink to a storage server (paper §3.1 / §4.4).
//!
//! The client compresses each frame and writes it to a bandwidth-throttled
//! pipe modelling the 8.2 Mbps mobile uplink; the server decompresses and
//! stores. The run reports per-frame latency and confirms the compressed
//! stream fits the uplink while the raw stream would not.
//!
//! A second scenario replays the same uplink with injected faults — bit
//! flips, truncations, mid-frame disconnects, stalls, and bandwidth
//! collapses — and prints the resilient session's recovery report: every
//! frame still arrives exactly once, in order, via retransmits and
//! reconnects.
//!
//! ```text
//! cargo run --release -p dbgc-examples --bin online_survey
//! ```

use std::time::Instant;

use dbgc::Dbgc;
use dbgc_lidar_sim::{frame, ScenePreset};
use dbgc_net::link::{throttled_pipe, LinkModel};
use dbgc_net::{Client, Server};

const FRAMES: u32 = 5;
const FPS: f64 = 10.0;

fn main() {
    let uplink = LinkModel::mobile_4g();
    let (writer, reader) = throttled_pipe(Some(uplink));

    let producer = std::thread::spawn(move || {
        let mut client = Client::new(Dbgc::with_error_bound(0.02), writer);
        let mut sent = Vec::new();
        for k in 0..FRAMES {
            let cloud = frame(ScenePreset::KittiCampus, 7, k);
            let t = Instant::now();
            let compressed = client.send_cloud(&cloud).expect("send");
            sent.push((cloud.len(), compressed.bytes.len(), t.elapsed()));
        }
        sent
    });

    let mut server = Server::new(reader, true);
    let t0 = Instant::now();
    let received = server.receive_all().expect("stream intact");
    let wall = t0.elapsed();
    let sent = producer.join().expect("producer thread");

    println!("streamed {received} frames over a {:.1} Mbps uplink", uplink.bits_per_second / 1e6);
    let mut total_bytes = 0usize;
    for (k, (points, bytes, latency)) in sent.iter().enumerate() {
        total_bytes += bytes;
        println!(
            "frame {k}: {points} pts -> {bytes} B, compress+transfer {:.0} ms, \
             uplink share {:.1} Mbps",
            latency.as_secs_f64() * 1000.0,
            LinkModel::required_mbps(*bytes, FPS)
        );
    }
    let avg = total_bytes / sent.len();
    let need = LinkModel::required_mbps(avg, FPS);
    let raw_need = LinkModel::required_mbps(sent[0].0 * 12, FPS);
    println!("wall clock: {:.2} s for {FRAMES} frames", wall.as_secs_f64());
    println!(
        "bandwidth at {FPS} fps: compressed {need:.1} Mbps vs raw {raw_need:.0} Mbps \
         (uplink {:.1} Mbps) -> online streaming {}",
        uplink.bits_per_second / 1e6,
        if need <= uplink.bits_per_second / 1e6 { "FEASIBLE" } else { "infeasible" }
    );
    for stored in server.frames() {
        assert!(stored.cloud.is_some(), "server decompressed every frame");
    }

    faulty_uplink_scenario();
}

/// The same 4G uplink, now hostile: a seeded fault schedule corrupts,
/// truncates, stalls, and disconnects the link mid-stream while the
/// resilient session retries, reconnects, and retransmits until the store
/// holds every frame exactly once, in order.
fn faulty_uplink_scenario() {
    use dbgc_net::chaos::{run_chaos, ChaosConfig};

    println!();
    println!("--- degraded 4G uplink (seeded fault injection) ---");
    let config = ChaosConfig::smoke(42);
    let report = run_chaos(&config);
    let mut by_kind: Vec<String> = Vec::new();
    for (kind, n) in ["bit-flip", "drop", "disconnect", "stall", "duplicate", "reorder", "collapse"]
        .iter()
        .zip(report.faults_by_kind.iter())
    {
        if *n > 0 {
            by_kind.push(format!("{kind} x{n}"));
        }
    }
    println!(
        "injected faults: {}",
        if by_kind.is_empty() { "none".into() } else { by_kind.join(", ") }
    );
    println!("recovery report: {}", report.summary());
    match report.verify() {
        Ok(()) => println!(
            "all {} frames recovered exactly once, in order -> degraded-link streaming SURVIVES",
            report.frames_sent
        ),
        Err(e) => println!("recovery FAILED: {e}"),
    }
}
