//! Online remote survey: a sensor streams frames through DBGC over a
//! simulated 4G uplink to a storage server (paper §3.1 / §4.4).
//!
//! The client compresses each frame and writes it to a bandwidth-throttled
//! pipe modelling the 8.2 Mbps mobile uplink; the server decompresses and
//! stores. The run reports per-frame latency and confirms the compressed
//! stream fits the uplink while the raw stream would not.
//!
//! ```text
//! cargo run --release -p dbgc-examples --bin online_survey
//! ```

use std::time::Instant;

use dbgc::Dbgc;
use dbgc_lidar_sim::{frame, ScenePreset};
use dbgc_net::link::{throttled_pipe, LinkModel};
use dbgc_net::{Client, Server};

const FRAMES: u32 = 5;
const FPS: f64 = 10.0;

fn main() {
    let uplink = LinkModel::mobile_4g();
    let (writer, reader) = throttled_pipe(Some(uplink));

    let producer = std::thread::spawn(move || {
        let mut client = Client::new(Dbgc::with_error_bound(0.02), writer);
        let mut sent = Vec::new();
        for k in 0..FRAMES {
            let cloud = frame(ScenePreset::KittiCampus, 7, k);
            let t = Instant::now();
            let compressed = client.send_cloud(&cloud).expect("send");
            sent.push((cloud.len(), compressed.bytes.len(), t.elapsed()));
        }
        sent
    });

    let mut server = Server::new(reader, true);
    let t0 = Instant::now();
    let received = server.receive_all().expect("stream intact");
    let wall = t0.elapsed();
    let sent = producer.join().expect("producer thread");

    println!("streamed {received} frames over a {:.1} Mbps uplink", uplink.bits_per_second / 1e6);
    let mut total_bytes = 0usize;
    for (k, (points, bytes, latency)) in sent.iter().enumerate() {
        total_bytes += bytes;
        println!(
            "frame {k}: {points} pts -> {bytes} B, compress+transfer {:.0} ms, \
             uplink share {:.1} Mbps",
            latency.as_secs_f64() * 1000.0,
            LinkModel::required_mbps(*bytes, FPS)
        );
    }
    let avg = total_bytes / sent.len();
    let need = LinkModel::required_mbps(avg, FPS);
    let raw_need = LinkModel::required_mbps(sent[0].0 * 12, FPS);
    println!("wall clock: {:.2} s for {FRAMES} frames", wall.as_secs_f64());
    println!(
        "bandwidth at {FPS} fps: compressed {need:.1} Mbps vs raw {raw_need:.0} Mbps \
         (uplink {:.1} Mbps) -> online streaming {}",
        uplink.bits_per_second / 1e6,
        if need <= uplink.bits_per_second / 1e6 { "FEASIBLE" } else { "infeasible" }
    );
    for stored in server.frames() {
        assert!(stored.cloud.is_some(), "server decompressed every frame");
    }
}
