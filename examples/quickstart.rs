//! Quickstart: compress one LiDAR frame, decompress it, verify the bound.
//!
//! ```text
//! cargo run --release -p dbgc-examples --bin quickstart
//! ```

use dbgc::{decompress, verify_roundtrip, Dbgc};
use dbgc_lidar_sim::{frame, ScenePreset};

fn main() {
    // A simulated Velodyne HDL-64E frame of a city scene (~100 K points).
    let cloud = frame(ScenePreset::KittiCity, 1, 0);
    println!("input: {} points ({} bytes raw)", cloud.len(), cloud.raw_size_bytes());

    // Compress with the paper's typical 2 cm error bound.
    let q = 0.02;
    let dbgc = Dbgc::with_error_bound(q);
    let compressed = dbgc.compress(&cloud).expect("valid config and finite cloud");
    let s = &compressed.stats;
    println!(
        "compressed: {} bytes  (ratio {:.1}x, {:.2} bits/point)",
        compressed.bytes.len(),
        compressed.compression_ratio(),
        s.bits_per_point()
    );
    println!(
        "split: {:.1}% dense (octree), {:.1}% sparse (polylines, {} lines), {:.2}% outliers",
        100.0 * s.dense_fraction(),
        100.0 * s.sparse_points as f64 / s.total_points as f64,
        s.polylines,
        100.0 * s.outlier_fraction()
    );
    println!(
        "sections: header {} B | dense {} B | sparse {} B | outliers {} B",
        s.sections.header, s.sections.dense, s.sections.sparse, s.sections.outlier
    );

    // Decompress and verify: one-to-one mapping, error within the bound.
    let (restored, _) = decompress(&compressed.bytes).expect("stream we just produced");
    let report = verify_roundtrip(&cloud, &restored, &compressed, q).expect("bound holds");
    println!(
        "verified: {} point pairs, max per-axis error {:.4} m, max Euclidean {:.4} m \
         (bound sqrt(3)*q = {:.4} m)",
        report.pairs,
        report.max_axis_error,
        report.max_euclidean_error,
        3f64.sqrt() * q
    );
}
