//! File-based workflow: KITTI `.bin` in, `.dbgc` archive out, verified
//! restore — how a survey pipeline would archive scans.
//!
//! ```text
//! cargo run --release -p dbgc-examples --bin format_roundtrip [-- <frame.bin>]
//! ```
//!
//! Without an argument, a simulated frame is written to a temp `.bin` first.

use std::path::PathBuf;

use dbgc::{decompress, Dbgc};
use dbgc_geom::ErrorReport;
use dbgc_lidar_sim::kitti;

fn main() {
    let arg = std::env::args().nth(1);
    let dir = std::env::temp_dir().join("dbgc_format_roundtrip");
    std::fs::create_dir_all(&dir).expect("temp dir");

    let bin_path: PathBuf = match arg {
        Some(p) => PathBuf::from(p),
        None => {
            let path = dir.join("frame0.bin");
            let cloud = dbgc_lidar_sim::frame(dbgc_lidar_sim::ScenePreset::KittiResidential, 3, 0);
            kitti::write_bin(&path, &cloud).expect("write .bin");
            println!("no input given; wrote simulated frame to {}", path.display());
            path
        }
    };

    let cloud = kitti::read_bin(&bin_path).expect("readable KITTI .bin");
    let raw_bytes = std::fs::metadata(&bin_path).expect("stat").len();
    println!("read {} points from {} ({raw_bytes} bytes)", cloud.len(), bin_path.display());

    let q = 0.02;
    let compressed = Dbgc::with_error_bound(q).compress(&cloud).expect("compress");
    let dbgc_path = bin_path.with_extension("dbgc");
    std::fs::write(&dbgc_path, &compressed.bytes).expect("write .dbgc");
    println!(
        "wrote {} ({} bytes, {:.1}x smaller than the .bin file)",
        dbgc_path.display(),
        compressed.bytes.len(),
        raw_bytes as f64 / compressed.bytes.len() as f64
    );

    // Restore from disk and verify against the original.
    let archived = std::fs::read(&dbgc_path).expect("read .dbgc");
    let (restored, _) = decompress(&archived).expect("decompress archive");
    let report = ErrorReport::paired(&cloud, &restored, &compressed.mapping).expect("one-to-one");
    println!(
        "restored {} points; max Euclidean error {:.4} m (bound sqrt(3)*{q} = {:.4} m)",
        restored.len(),
        report.max_euclidean_error,
        3f64.sqrt() * q
    );
    assert!(report.max_euclidean_error <= 3f64.sqrt() * q * 1.000001);

    // Round-trip back to .bin for downstream tools.
    let out_bin = bin_path.with_extension("restored.bin");
    kitti::write_bin(&out_bin, &restored).expect("write restored .bin");
    println!("wrote decompressed cloud to {}", out_bin.display());
}
