//! Partial decode: seek to the sections a query's plan could not rule out.
//!
//! Each DBGC section is independently decodable from its byte span (the
//! entropy coder is re-initialised per section), so a query whose plan skips
//! a section never touches its bytes. Everything decoded is cross-checked
//! against the directory (exact point counts, strict span framing); any
//! disagreement aborts with [`StoreError::IndexMismatch`] so the caller can
//! fall back to a trusted full decode.

use dbgc::index::{SectionEntry, SpatialDirectory};
use dbgc::layout::{decode_dense_span, decode_group_span, decode_outlier_span};
use dbgc::StreamHeader;

use crate::oracle::AnnotatedPoint;
use crate::plan::{plan, SectionMeta, Verdict};
use crate::query::{DensityClass, Query};
use crate::StoreError;

/// Result of a partial decode of one frame.
#[derive(Debug, Default)]
pub(crate) struct PartialOutcome {
    /// Matching points, in stream order, annotated with provenance.
    pub points: Vec<AnnotatedPoint>,
    /// Section payload bytes actually read and decoded.
    pub section_bytes: u64,
    /// Sections decoded (verdict `Take` or `Test`).
    pub sections_decoded: usize,
    /// Sections skipped outright.
    pub sections_skipped: usize,
}

/// Check that a parsed directory actually describes `body`: the layout
/// invariants below hold for every stream the encoder emits, so any
/// violation means the index does not belong to this body.
pub(crate) fn validate_directory(
    dir: &SpatialDirectory,
    header: &StreamHeader,
    body_len: usize,
) -> Result<(), StoreError> {
    if dir.header_len != header.header_len {
        return Err(StoreError::IndexMismatch("header length disagrees"));
    }
    if dir.points != header.declared_points {
        return Err(StoreError::IndexMismatch("point count disagrees with header"));
    }
    if dir.groups.len() != header.n_groups {
        return Err(StoreError::IndexMismatch("group count disagrees with header"));
    }
    // Sections tile the body exactly: dense starts right after the header,
    // each section starts where the previous one ended, and the outlier
    // section ends at the body's end.
    if dir.dense.offset != header.header_len {
        return Err(StoreError::IndexMismatch("dense section misplaced"));
    }
    let mut cursor = dir.dense.offset + dir.dense.len;
    for g in &dir.groups {
        if g.section.offset != cursor {
            return Err(StoreError::IndexMismatch("group sections not contiguous"));
        }
        cursor += g.section.len;
    }
    if dir.outlier.offset != cursor || dir.outlier.offset + dir.outlier.len != body_len {
        return Err(StoreError::IndexMismatch("outlier section misplaced"));
    }
    let recorded: usize = [dir.dense.points, dir.outlier.points]
        .into_iter()
        .chain(dir.groups.iter().map(|g| g.section.points))
        .sum();
    if recorded != dir.points {
        return Err(StoreError::IndexMismatch("section point counts do not sum"));
    }
    Ok(())
}

fn section_span<'a>(body: &'a [u8], entry: &SectionEntry) -> &'a [u8] {
    // Bounds were established by `SpatialDirectory::parse` + tiling checks.
    &body[entry.offset..entry.offset + entry.len]
}

/// Decode only the sections of `body` that `query` might match, per the
/// directory `dir` (which must have passed [`validate_directory`]).
pub(crate) fn partial_decode_frame(
    body: &[u8],
    header: &StreamHeader,
    dir: &SpatialDirectory,
    query: &Query,
    time_us: u64,
) -> Result<PartialOutcome, StoreError> {
    let mut out = PartialOutcome::default();

    let dense_meta = SectionMeta {
        aabb: dir.dense.aabb,
        empty: dir.dense.points == 0,
        class: Some(DensityClass::Dense),
        lod_depth: Some(dir.dense_depth),
        time_us: Some(time_us),
        r_interval: None,
    };
    match plan(query, &dense_meta) {
        Verdict::Skip => out.sections_skipped += 1,
        verdict => {
            let span = section_span(body, &dir.dense);
            let (pts, depth) = decode_dense_span(span, header, dir.dense.points)?;
            if pts.len() != dir.dense.points {
                return Err(StoreError::IndexMismatch("dense point count lied"));
            }
            if depth != dir.dense_depth {
                return Err(StoreError::IndexMismatch("dense depth lied"));
            }
            out.section_bytes += span.len() as u64;
            out.sections_decoded += 1;
            emit(
                &mut out.points,
                pts,
                DensityClass::Dense,
                dir.dense_depth,
                None,
                verdict,
                query,
                time_us,
            );
        }
    }

    for (g, entry) in dir.groups.iter().enumerate() {
        let meta = SectionMeta {
            aabb: entry.section.aabb,
            empty: entry.section.points == 0,
            class: Some(DensityClass::Sparse),
            lod_depth: Some(0),
            time_us: Some(time_us),
            r_interval: Some((entry.r_min, entry.r_max)),
        };
        match plan(query, &meta) {
            Verdict::Skip => out.sections_skipped += 1,
            verdict => {
                let span = section_span(body, &entry.section);
                let pts = decode_group_span(span, header, entry.section.points)?;
                if pts.len() != entry.section.points {
                    return Err(StoreError::IndexMismatch("group point count lied"));
                }
                out.section_bytes += span.len() as u64;
                out.sections_decoded += 1;
                emit(
                    &mut out.points,
                    pts,
                    DensityClass::Sparse,
                    0,
                    Some(g as u32),
                    verdict,
                    query,
                    time_us,
                );
            }
        }
    }

    let outlier_meta = SectionMeta {
        aabb: dir.outlier.aabb,
        empty: dir.outlier.points == 0,
        class: Some(DensityClass::Outlier),
        lod_depth: Some(0),
        time_us: Some(time_us),
        r_interval: None,
    };
    match plan(query, &outlier_meta) {
        Verdict::Skip => out.sections_skipped += 1,
        verdict => {
            let span = section_span(body, &dir.outlier);
            let pts = decode_outlier_span(span, header, dir.outlier.points)?;
            if pts.len() != dir.outlier.points {
                return Err(StoreError::IndexMismatch("outlier point count lied"));
            }
            out.section_bytes += span.len() as u64;
            out.sections_decoded += 1;
            emit(&mut out.points, pts, DensityClass::Outlier, 0, None, verdict, query, time_us);
        }
    }

    Ok(out)
}

/// Append decoded points, filtering per point only when the verdict demands
/// it (`Take` keeps everything without re-testing).
#[allow(clippy::too_many_arguments)]
fn emit(
    out: &mut Vec<AnnotatedPoint>,
    pts: Vec<dbgc_geom::Point3>,
    class: DensityClass,
    lod_depth: u32,
    group: Option<u32>,
    verdict: Verdict,
    query: &Query,
    time_us: u64,
) {
    for pos in pts {
        let ap = AnnotatedPoint { pos, class, lod_depth, group };
        if verdict == Verdict::Take || query.matches(&ap, time_us) {
            out.push(ap);
        }
    }
}
