//! Composable query AST over archived DBGC frames.
//!
//! A [`Query`] is evaluated in two places with *identical* point-level
//! semantics:
//!
//! * the oracle path filters every decoded point with [`Query::matches`];
//! * the planner ([`crate::plan`]) derives a conservative three-valued
//!   verdict per stream section from the spatial directory, so partial
//!   decode can skip sections whose points provably cannot match.
//!
//! Correctness therefore never depends on the planner being *precise* —
//! only on it being *sound* — and the differential tests pin exactly that.

use dbgc_geom::{Aabb, Point3};

use crate::oracle::AnnotatedPoint;

/// Provenance class of a decoded point: which stream section produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DensityClass {
    /// Octree-coded dense region.
    Dense,
    /// Polyline-coded sparse group.
    Sparse,
    /// Outlier section (quadtree / octree / raw).
    Outlier,
}

/// A convex viewing frustum described by inward-pointing half-space planes.
///
/// A point is inside when `normal · p + offset >= 0` holds for **every**
/// plane. Any convex polytope works; [`Frustum::look_at`] builds the usual
/// six-plane camera volume.
#[derive(Debug, Clone, PartialEq)]
pub struct Frustum {
    planes: Vec<Plane>,
}

/// One half-space: inside is `normal · p + offset >= 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plane {
    /// Plane normal, pointing into the kept half-space.
    pub normal: Point3,
    /// Signed offset: the plane is `normal · p + offset = 0`.
    pub offset: f64,
}

impl Plane {
    /// Signed distance-like evaluation; non-negative means inside.
    pub fn eval(&self, p: Point3) -> f64 {
        self.normal.dot(p) + self.offset
    }
}

impl Frustum {
    /// Builds a frustum from explicit half-space planes.
    ///
    /// Returns `None` when any plane is non-finite or has a zero normal.
    pub fn from_planes(planes: Vec<Plane>) -> Option<Frustum> {
        for pl in &planes {
            if !pl.normal.is_finite() || !pl.offset.is_finite() || pl.normal.norm2() == 0.0 {
                return None;
            }
        }
        Some(Frustum { planes })
    }

    /// Classic six-plane camera frustum.
    ///
    /// * `eye` — camera position, `target` — point looked at;
    /// * `up` — approximate up vector (must not be parallel to the view axis);
    /// * `fov_y` — full vertical field of view in radians, `aspect` — w/h;
    /// * `near`/`far` — positive view-axis distances with `near < far`.
    pub fn look_at(
        eye: Point3,
        target: Point3,
        up: Point3,
        fov_y: f64,
        aspect: f64,
        near: f64,
        far: f64,
    ) -> Option<Frustum> {
        // Positive-form comparisons so NaN in any parameter fails the check.
        let params_ok =
            fov_y > 0.0 && fov_y < std::f64::consts::PI && aspect > 0.0 && near > 0.0 && far > near;
        if !params_ok {
            return None;
        }
        let fwd = target - eye;
        if fwd.norm2() == 0.0 {
            return None;
        }
        let fwd = fwd * (1.0 / fwd.norm());
        let right = fwd.cross(up);
        if right.norm2() < 1e-18 {
            return None;
        }
        let right = right * (1.0 / right.norm());
        let cam_up = right.cross(fwd);

        let tan_y = (fov_y / 2.0).tan();
        let tan_x = tan_y * aspect;
        // Side planes: normals tilt the forward axis toward the inside.
        let mk = |axis: Point3, tan: f64, sign: f64| {
            let n = axis * (-sign) + fwd * tan;
            let n = n * (1.0 / n.norm());
            Plane { normal: n, offset: -n.dot(eye) }
        };
        let planes = vec![
            // Near: keep points with fwd·(p - eye) >= near.
            Plane { normal: fwd, offset: -fwd.dot(eye) - near },
            // Far: keep points with fwd·(p - eye) <= far.
            Plane { normal: -fwd, offset: fwd.dot(eye) + far },
            mk(right, tan_x, 1.0),
            mk(right, tan_x, -1.0),
            mk(cam_up, tan_y, 1.0),
            mk(cam_up, tan_y, -1.0),
        ];
        Frustum::from_planes(planes)
    }

    /// The half-space planes, inward normals.
    pub fn planes(&self) -> &[Plane] {
        &self.planes
    }

    /// Point-in-frustum test (inclusive on boundaries).
    pub fn contains(&self, p: Point3) -> bool {
        self.planes.iter().all(|pl| pl.eval(p) >= 0.0)
    }
}

/// Composable query over an archive of compressed frames.
///
/// Spatial predicates (`Aabb`, `Frustum`) filter point positions; `Lod`,
/// `DensityClass` filter provenance; `TimeRange` filters the frame capture
/// timestamp. `And` / `Or` / `Not` compose arbitrarily.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Matches every point.
    All,
    /// Points inside the axis-aligned box (inclusive bounds).
    Aabb(Aabb),
    /// Points inside the convex frustum (inclusive bounds).
    Frustum(Frustum),
    /// Points whose section LOD depth `d` satisfies `min <= d <= max`.
    /// Dense sections carry their octree depth; sparse and outlier points
    /// have depth 0.
    Lod {
        /// Minimum depth, inclusive.
        min: u32,
        /// Maximum depth, inclusive.
        max: u32,
    },
    /// Points from frames captured in `[start_us, end_us)`.
    TimeRange {
        /// Inclusive start, microseconds.
        start_us: u64,
        /// Exclusive end, microseconds.
        end_us: u64,
    },
    /// Points produced by the given stream section class.
    DensityClass(DensityClass),
    /// Both sub-queries match.
    And(Box<Query>, Box<Query>),
    /// Either sub-query matches.
    Or(Box<Query>, Box<Query>),
    /// The sub-query does not match.
    Not(Box<Query>),
}

impl Query {
    /// Convenience constructor: `a AND b`.
    pub fn and(a: Query, b: Query) -> Query {
        Query::And(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `a OR b`.
    pub fn or(a: Query, b: Query) -> Query {
        Query::Or(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `NOT q`.
    // Not `std::ops::Not`: this is an associated constructor taking the
    // sub-query by value, symmetric with `Query::and` / `Query::or`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(q: Query) -> Query {
        Query::Not(Box::new(q))
    }

    /// Point-level semantics — the single source of truth the planner and
    /// the differential oracle both answer to.
    pub fn matches(&self, point: &AnnotatedPoint, time_us: u64) -> bool {
        match self {
            Query::All => true,
            Query::Aabb(bb) => bb.contains(point.pos),
            Query::Frustum(fr) => fr.contains(point.pos),
            Query::Lod { min, max } => (*min..=*max).contains(&point.lod_depth),
            Query::TimeRange { start_us, end_us } => (*start_us..*end_us).contains(&time_us),
            Query::DensityClass(c) => point.class == *c,
            Query::And(a, b) => a.matches(point, time_us) && b.matches(point, time_us),
            Query::Or(a, b) => a.matches(point, time_us) || b.matches(point, time_us),
            Query::Not(q) => !q.matches(point, time_us),
        }
    }

    /// AST depth (a leaf has depth 1); proptest strategies bound this.
    pub fn depth(&self) -> usize {
        match self {
            Query::And(a, b) | Query::Or(a, b) => 1 + a.depth().max(b.depth()),
            Query::Not(q) => 1 + q.depth(),
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frustum_look_at_contains_target() {
        let eye = Point3::new(0.0, 0.0, 0.0);
        let target = Point3::new(10.0, 0.0, 0.0);
        let fr =
            Frustum::look_at(eye, target, Point3::new(0.0, 0.0, 1.0), 1.0, 1.5, 0.5, 50.0).unwrap();
        assert!(fr.contains(target));
        assert!(fr.contains(Point3::new(5.0, 0.3, 0.2)));
        // Behind the eye.
        assert!(!fr.contains(Point3::new(-5.0, 0.0, 0.0)));
        // Past the far plane.
        assert!(!fr.contains(Point3::new(80.0, 0.0, 0.0)));
        // Way off axis.
        assert!(!fr.contains(Point3::new(5.0, 40.0, 0.0)));
    }

    #[test]
    fn frustum_rejects_degenerate_setups() {
        let o = Point3::new(0.0, 0.0, 0.0);
        let z = Point3::new(0.0, 0.0, 1.0);
        assert!(Frustum::look_at(o, o, z, 1.0, 1.0, 0.5, 50.0).is_none());
        assert!(Frustum::look_at(o, z, z, 1.0, 1.0, 0.5, 50.0).is_none());
        assert!(Frustum::look_at(o, Point3::new(1.0, 0.0, 0.0), z, 1.0, 1.0, 5.0, 1.0).is_none());
        assert!(Frustum::from_planes(vec![Plane { normal: o, offset: 0.0 }]).is_none());
    }

    #[test]
    fn query_depth_counts_nesting() {
        let q = Query::not(Query::and(Query::All, Query::or(Query::All, Query::All)));
        assert_eq!(q.depth(), 4);
    }
}
