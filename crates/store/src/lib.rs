//! # dbgc-store — queryable archive of compressed DBGC frames
//!
//! Compressed LiDAR archives are usually opaque: answering "which points were
//! inside this box around the crosswalk?" means decompressing every frame in
//! full. This crate makes DBGC streams *queryable* by exploiting the spatial
//! directory the encoder can append to each stream (see
//! [`dbgc::SpatialDirectory`]): per-section AABBs, point counts, density
//! classes, LOD depth and byte offsets, CRC-guarded in a trailer that v1
//! decoders skip cleanly.
//!
//! Three layers:
//!
//! * [`Query`] — a composable AST (`Aabb`, `Frustum`, `Lod`, `TimeRange`,
//!   `DensityClass` under `And`/`Or`/`Not`) with point-level semantics in
//!   [`Query::matches`];
//! * [`plan`] — a conservative three-valued planner that folds a query over
//!   directory metadata into per-section [`Verdict`]s;
//! * [`FrameStore`] — the archive: ingests streamed frames (including
//!   wire-v3 [`dbgc_net::SessionServer`] hand-off), answers queries by
//!   *partial decode* — seeking straight to the sections the planner could
//!   not rule out, re-initialising entropy state per section — and degrades
//!   to a full-decode fallback (counted in the `store.index_fallbacks`
//!   metric) whenever a frame's index is missing, corrupt or inconsistent.
//!
//! Correctness story: the partial path is differentially tested against
//! [`oracle::decode_annotated`] — a brute-force full decode + filter — for
//! every query; the planner only ever trades precision, never soundness.
//!
//! ```
//! use dbgc::{Dbgc, DbgcConfig};
//! use dbgc_geom::{Aabb, Point3, PointCloud};
//! use dbgc_store::{FrameStore, Query};
//!
//! let cloud: PointCloud = (0..2000)
//!     .map(|i| {
//!         let th = i as f64 / 2000.0 * std::f64::consts::TAU;
//!         Point3::new(20.0 * th.cos(), 20.0 * th.sin(), -1.5)
//!     })
//!     .collect();
//! let dbgc = Dbgc::new(DbgcConfig::with_error_bound(0.02).with_spatial_index(true));
//! let frame = dbgc.compress(&cloud).unwrap();
//!
//! let mut store = FrameStore::new();
//! store.ingest(frame.bytes, 0).unwrap();
//!
//! // Points in a box around the +x rim — decoded by seeking only to the
//! // sparse groups whose directory AABB intersects the box.
//! let q = Query::Aabb(Aabb {
//!     min: Point3::new(15.0, -5.0, -2.0),
//!     max: Point3::new(25.0, 5.0, 0.0),
//! });
//! let hit = store.query(&q).unwrap();
//! assert!(!hit.points.is_empty());
//! assert!(hit.bytes_touched < hit.bytes_total);
//! ```

#![warn(missing_docs)]

pub mod oracle;
mod partial;
pub mod plan;
pub mod query;
pub mod store;

pub use oracle::{decode_annotated, AnnotatedCloud, AnnotatedPoint};
pub use plan::{plan, SectionMeta, Verdict};
pub use query::{DensityClass, Frustum, Plane, Query};
pub use store::{ArchivedFrame, FrameStore, PointRecord, QueryResult};

use dbgc::DbgcError;

/// Errors the archive can produce.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying stream failed to decode.
    Decode(DbgcError),
    /// A frame was structurally unusable (bad header, count mismatch, …).
    BadFrame(&'static str),
    /// The spatial directory disagreed with the stream it indexes; the
    /// caller falls back to a full decode.
    IndexMismatch(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Decode(e) => write!(f, "stream decode failed: {e}"),
            StoreError::BadFrame(msg) => write!(f, "bad frame: {msg}"),
            StoreError::IndexMismatch(msg) => write!(f, "index mismatch: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DbgcError> for StoreError {
    fn from(e: DbgcError) -> StoreError {
        StoreError::Decode(e)
    }
}
