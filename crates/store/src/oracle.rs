//! Annotated full decode — the differential oracle.
//!
//! [`decode_annotated`] decodes a complete stream exactly like
//! [`dbgc::decompress`] (same section order, same budgets, same strictness)
//! but tags every point with its provenance: density class, LOD depth and
//! sparse-group index. Queries answered by brute-force filtering this output
//! are the ground truth the planner/partial-decode path is tested against —
//! and the store's runtime fallback when a frame has no usable index.

use dbgc::layout::{decode_dense_span, decode_group_span, decode_outlier_span, section_spans};
use dbgc::{split_index_trailer, IndexTrailer, StreamHeader};
use dbgc_geom::Point3;

use crate::query::DensityClass;
use crate::StoreError;

/// One decoded point plus the provenance a [`crate::Query`] can see.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnotatedPoint {
    /// Decoded position (bit-identical to `dbgc::decompress` output).
    pub pos: Point3,
    /// Stream section the point came from.
    pub class: DensityClass,
    /// LOD depth: the dense octree's depth for dense points, 0 otherwise.
    pub lod_depth: u32,
    /// Sparse-group index for [`DensityClass::Sparse`] points.
    pub group: Option<u32>,
}

/// A fully decoded, annotated frame in canonical decode order.
#[derive(Debug, Clone, Default)]
pub struct AnnotatedCloud {
    /// Points in the exact order `dbgc::decompress` emits them.
    pub points: Vec<AnnotatedPoint>,
}

/// Decode `bytes` completely, annotating each point with its provenance.
///
/// Accepts index-less v1 streams, indexed streams (the CRC-valid trailer is
/// skipped) and streams whose trailer is corrupt (the recoverable body is
/// decoded — this leniency is what makes the oracle usable as the corrupt-
/// index fallback). Point positions and order are bit-identical to
/// [`dbgc::decompress`] on the same input.
pub fn decode_annotated(bytes: &[u8]) -> Result<AnnotatedCloud, StoreError> {
    let body = match split_index_trailer(bytes) {
        IndexTrailer::Valid { body, .. } | IndexTrailer::Corrupt { body } => body,
        IndexTrailer::None => bytes,
    };
    let header = dbgc::layout::parse_header(body)?;
    decode_annotated_body(body, &header)
}

/// Annotated decode of a trailer-stripped body with a parsed header.
pub(crate) fn decode_annotated_body(
    body: &[u8],
    header: &StreamHeader,
) -> Result<AnnotatedCloud, StoreError> {
    let spans = section_spans(body, header)?;
    let declared = header.declared_points;
    let mut points = Vec::with_capacity(declared.min(body.len()));

    let (dense_pts, dense_depth) = decode_dense_span(&body[spans.dense], header, declared)?;
    points.extend(dense_pts.into_iter().map(|pos| AnnotatedPoint {
        pos,
        class: DensityClass::Dense,
        lod_depth: dense_depth,
        group: None,
    }));

    for (g, span) in spans.groups.iter().enumerate() {
        let budget = declared.saturating_sub(points.len());
        let group_pts = decode_group_span(&body[span.clone()], header, budget)?;
        points.extend(group_pts.into_iter().map(|pos| AnnotatedPoint {
            pos,
            class: DensityClass::Sparse,
            lod_depth: 0,
            group: Some(g as u32),
        }));
    }

    let budget = declared.saturating_sub(points.len());
    let outlier_pts = decode_outlier_span(&body[spans.outlier], header, budget)?;
    points.extend(outlier_pts.into_iter().map(|pos| AnnotatedPoint {
        pos,
        class: DensityClass::Outlier,
        lod_depth: 0,
        group: None,
    }));

    if points.len() != declared {
        return Err(StoreError::BadFrame("decoded point count disagrees with header"));
    }
    Ok(AnnotatedCloud { points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgc::{decompress, Dbgc, DbgcConfig};
    use dbgc_geom::{Point3, PointCloud};
    use rand::{Rng, SeedableRng};

    fn cloud(seed: u64, n: usize) -> PointCloud {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let th = rng.gen_range(0.0..std::f64::consts::TAU);
                let r = rng.gen_range(2.0..40.0);
                Point3::new(r * th.cos(), r * th.sin(), rng.gen_range(-2.0..6.0))
            })
            .collect()
    }

    #[test]
    fn annotations_match_sequential_decode() {
        let cloud = cloud(41, 4000);
        for indexed in [false, true] {
            let cfg = DbgcConfig::with_error_bound(0.02).with_spatial_index(indexed);
            let frame = Dbgc::new(cfg).compress(&cloud).unwrap();
            let (plain, _) = decompress(&frame.bytes).unwrap();
            let ann = decode_annotated(&frame.bytes).unwrap();
            assert_eq!(ann.points.len(), plain.len());
            for (a, p) in ann.points.iter().zip(plain.points()) {
                assert_eq!(a.pos, *p, "annotated decode must be bit-identical");
            }
            let stats = &frame.stats;
            let dense = ann.points.iter().filter(|p| p.class == DensityClass::Dense).count();
            let sparse = ann.points.iter().filter(|p| p.class == DensityClass::Sparse).count();
            let outlier = ann.points.iter().filter(|p| p.class == DensityClass::Outlier).count();
            assert_eq!(dense, stats.dense_points);
            assert_eq!(sparse, stats.sparse_points);
            assert_eq!(outlier, stats.outlier_points);
        }
    }

    #[test]
    fn corrupt_trailer_still_decodes_body() {
        let cloud = cloud(42, 1500);
        let cfg = DbgcConfig::with_error_bound(0.02).with_spatial_index(true);
        let frame = Dbgc::new(cfg).compress(&cloud).unwrap();
        let mut bytes = frame.bytes.clone();
        let info = dbgc::inspect(&bytes).unwrap();
        assert!(info.index_bytes > 0);
        // Flip a bit inside the trailer payload: strict decompress refuses,
        // the oracle recovers the body.
        let at = bytes.len() - info.index_bytes + 6;
        bytes[at] ^= 0x40;
        assert!(decompress(&bytes).is_err());
        let ann = decode_annotated(&bytes).unwrap();
        assert_eq!(ann.points.len(), cloud.len());
    }

    #[test]
    fn garbage_is_rejected_without_panic() {
        assert!(decode_annotated(b"not a stream").is_err());
        assert!(decode_annotated(&[]).is_err());
    }
}
