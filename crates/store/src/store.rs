//! The frame archive: ingest compressed frames, answer queries by partial
//! decode, fall back to full decode when the index cannot be trusted.

use dbgc::layout::parse_header;
use dbgc::{split_index_trailer, IndexTrailer, SpatialDirectory, StreamHeader};
use dbgc_metrics::Collector;
use dbgc_net::StoredFrame;

use crate::oracle::{decode_annotated_body, AnnotatedPoint};
use crate::partial::{partial_decode_frame, validate_directory};
use crate::plan::{plan, SectionMeta, Verdict};
use crate::query::Query;
use crate::StoreError;

/// One archived frame: raw bytes plus everything the planner needs, parsed
/// once at ingest.
#[derive(Debug, Clone)]
pub struct ArchivedFrame {
    /// Archive-assigned frame id (dense, in ingest order).
    pub id: u64,
    /// Capture timestamp in microseconds ([`Query::TimeRange`] filters it).
    pub time_us: u64,
    /// The full stream as received, index trailer included.
    pub bytes: Vec<u8>,
    pub(crate) body_len: usize,
    pub(crate) header: StreamHeader,
    pub(crate) directory: Option<SpatialDirectory>,
    /// An index trailer was present but corrupt or inconsistent.
    pub(crate) index_corrupt: bool,
}

impl ArchivedFrame {
    /// The validated spatial directory, when the frame carries one.
    pub fn directory(&self) -> Option<&SpatialDirectory> {
        self.directory.as_ref()
    }

    /// Whether queries can partially decode this frame.
    pub fn has_index(&self) -> bool {
        self.directory.is_some()
    }
}

/// Result of [`FrameStore::query`].
#[derive(Debug, Default)]
pub struct QueryResult {
    /// Matching points in archive order (frames by id, stream order within
    /// a frame), annotated with provenance.
    pub points: Vec<PointRecord>,
    /// Frames examined (everything in the store).
    pub frames_scanned: usize,
    /// Frames pruned without touching any payload bytes.
    pub frames_pruned: usize,
    /// Frames answered by partial decode.
    pub frames_partial: usize,
    /// Frames answered by the full-decode fallback.
    pub frames_fallback: usize,
    /// Compressed bytes actually read to answer the query.
    pub bytes_touched: u64,
    /// Total compressed bytes archived.
    pub bytes_total: u64,
}

/// One matching point with its frame provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointRecord {
    /// Archive id of the frame the point came from.
    pub frame_id: u64,
    /// The frame's capture timestamp (µs).
    pub time_us: u64,
    /// The point itself plus section provenance.
    pub point: AnnotatedPoint,
}

/// An archive of compressed DBGC frames that answers [`Query`]s without
/// decompressing more than it has to.
///
/// Ingest accepts indexed streams, index-less v1 streams, and streams with a
/// corrupt trailer (the recoverable body is kept). Queries use the spatial
/// directory to prune and partially decode; anything suspicious about an
/// index demotes that frame to the full-decode fallback and bumps the
/// `store.index_fallbacks` counter.
#[derive(Debug, Clone)]
pub struct FrameStore {
    frames: Vec<ArchivedFrame>,
    metrics: Collector,
}

impl Default for FrameStore {
    fn default() -> FrameStore {
        FrameStore::new()
    }
}

impl FrameStore {
    /// An empty archive with its own metrics collector.
    pub fn new() -> FrameStore {
        FrameStore { frames: Vec::new(), metrics: Collector::new() }
    }

    /// An empty archive reporting into an existing collector.
    pub fn with_metrics(collector: &Collector) -> FrameStore {
        FrameStore { frames: Vec::new(), metrics: collector.clone() }
    }

    /// Archive one compressed stream captured at `time_us`. Returns the
    /// assigned frame id.
    ///
    /// The header must parse (undecodable frames are rejected up front); a
    /// missing or corrupt index is fine — such frames are queried via the
    /// full-decode fallback.
    pub fn ingest(&mut self, bytes: Vec<u8>, time_us: u64) -> Result<u64, StoreError> {
        let (body_len, directory, mut index_corrupt) = match split_index_trailer(&bytes) {
            IndexTrailer::None => (bytes.len(), None, false),
            IndexTrailer::Corrupt { body } => (body.len(), None, true),
            IndexTrailer::Valid { body, payload } => {
                match SpatialDirectory::parse(payload, body.len()) {
                    Ok(dir) => (body.len(), Some(dir), false),
                    Err(_) => (body.len(), None, true),
                }
            }
        };
        let header = parse_header(&bytes[..body_len])?;
        // A directory that does not describe this body is as good as no
        // directory — but worth counting.
        let directory = match directory {
            Some(dir) => match validate_directory(&dir, &header, body_len) {
                Ok(()) => Some(dir),
                Err(_) => {
                    index_corrupt = true;
                    None
                }
            },
            None => None,
        };
        if index_corrupt {
            self.metrics.incr("store.index_corrupt", 1);
        }
        let id = self.frames.len() as u64;
        self.frames.push(ArchivedFrame {
            id,
            time_us,
            bytes,
            body_len,
            header,
            directory,
            index_corrupt,
        });
        self.metrics.incr("store.frames_ingested", 1);
        Ok(id)
    }

    /// Archive every frame a wire-v3 session server handed over (see
    /// [`dbgc_net::SessionServer::into_frames`]), stamping frame `seq` with
    /// `t0_us + seq * frame_period_us`. Returns the assigned ids.
    pub fn archive_session(
        &mut self,
        frames: impl IntoIterator<Item = StoredFrame>,
        t0_us: u64,
        frame_period_us: u64,
    ) -> Result<Vec<u64>, StoreError> {
        frames
            .into_iter()
            .map(|f| self.ingest(f.bytes, t0_us + u64::from(f.sequence) * frame_period_us))
            .collect()
    }

    /// Number of archived frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The archived frames, in ingest order.
    pub fn frames(&self) -> &[ArchivedFrame] {
        &self.frames
    }

    /// The metrics collector the store reports into (`store.*` counters,
    /// `store.bytes_touched` / `store.bytes_total` byte channels).
    pub fn metrics(&self) -> &Collector {
        &self.metrics
    }

    /// How many frame queries degraded to the full-decode fallback because
    /// an index was corrupt, inconsistent, or lied about the stream.
    pub fn index_fallbacks(&self) -> u64 {
        self.metrics.counter("store.index_fallbacks").get()
    }

    /// Answer `query` over every archived frame.
    ///
    /// Frames the planner can rule out wholesale (by time range or frame
    /// AABB) cost zero payload bytes; indexed frames decode only surviving
    /// sections; unindexed or untrustworthy frames are fully decoded and
    /// filtered — results are identical either way.
    pub fn query(&self, query: &Query) -> Result<QueryResult, StoreError> {
        let _span = self.metrics.span("store.query");
        let mut res = QueryResult { frames_scanned: self.frames.len(), ..QueryResult::default() };
        for frame in &self.frames {
            res.bytes_total += frame.bytes.len() as u64;
            let frame_meta = SectionMeta {
                aabb: frame.directory.as_ref().and_then(|d| d.frame_aabb()),
                empty: frame.header.declared_points == 0,
                class: None,
                lod_depth: None,
                time_us: Some(frame.time_us),
                r_interval: None,
            };
            if plan(query, &frame_meta) == Verdict::Skip {
                res.frames_pruned += 1;
                continue;
            }
            let body = &frame.bytes[..frame.body_len];
            let index_bytes = (frame.bytes.len() - frame.body_len) as u64;
            let mut full_decode_needed = true;
            if let Some(dir) = frame.directory.as_ref() {
                match partial_decode_frame(body, &frame.header, dir, query, frame.time_us) {
                    Ok(out) => {
                        full_decode_needed = false;
                        res.frames_partial += 1;
                        res.bytes_touched +=
                            frame.header.header_len as u64 + index_bytes + out.section_bytes;
                        self.metrics.incr("store.sections_skipped", out.sections_skipped as u64);
                        self.metrics.incr("store.sections_decoded", out.sections_decoded as u64);
                        res.points.extend(out.points.into_iter().map(|point| PointRecord {
                            frame_id: frame.id,
                            time_us: frame.time_us,
                            point,
                        }));
                    }
                    // The index lied about the stream: degrade to the
                    // trusted full decode below.
                    Err(StoreError::Decode(_) | StoreError::IndexMismatch(_)) => {}
                    Err(e) => return Err(e),
                }
            }
            if full_decode_needed {
                if frame.directory.is_some() || frame.index_corrupt {
                    res.frames_fallback += 1;
                    self.metrics.incr("store.index_fallbacks", 1);
                }
                res.bytes_touched += frame.bytes.len() as u64;
                let full = decode_annotated_body(body, &frame.header)?;
                res.points.extend(
                    full.points.into_iter().filter(|p| query.matches(p, frame.time_us)).map(
                        |point| PointRecord { frame_id: frame.id, time_us: frame.time_us, point },
                    ),
                );
            }
        }
        self.metrics.add_bytes("store.bytes_touched", res.bytes_touched);
        self.metrics.add_bytes("store.bytes_total", res.bytes_total);
        self.metrics.incr("store.frames_pruned", res.frames_pruned as u64);
        Ok(res)
    }
}
