//! Conservative three-valued query planner over spatial-directory metadata.
//!
//! For every stream section (dense octree, each sparse group, outliers) the
//! directory records an AABB, a point count, a density class, an LOD depth
//! and — for groups — the decoded-norm interval. [`plan`] folds a [`Query`]
//! over that metadata into a [`Verdict`]:
//!
//! * [`Verdict::Take`] — **every** point of the section matches: decode it,
//!   keep everything, no per-point filtering;
//! * [`Verdict::Skip`] — **no** point can match: never touch its bytes;
//! * [`Verdict::Test`] — undecided: decode and filter per point with
//!   [`Query::matches`].
//!
//! Soundness discipline: `Take`/`Skip` are only produced by *exact*
//! comparisons (AABB containment/disjointness use pure `>=`/`<=` on the same
//! floats the oracle compares) or by comparisons slackened with an explicit
//! margin wherever derived arithmetic (norms, plane dot products) could
//! round. Anything marginal degrades to `Test`, which is always correct.

use dbgc_geom::{Aabb, Point3};

use crate::query::{DensityClass, Frustum, Query};

/// Planner decision for one stream section (or a whole frame).
///
/// Ordered `Skip < Test < Take` so `And` folds with `min` and `Or` with
/// `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// No point of the section can match; skip its bytes entirely.
    Skip,
    /// Some points may match; decode and filter per point.
    Test,
    /// Every point of the section matches; decode and keep all.
    Take,
}

impl Verdict {
    fn not(self) -> Verdict {
        match self {
            Verdict::Skip => Verdict::Take,
            Verdict::Test => Verdict::Test,
            Verdict::Take => Verdict::Skip,
        }
    }

    fn and(self, other: Verdict) -> Verdict {
        // Ordering Skip < Test < Take makes `and` = min, `or` = max.
        self.min(other)
    }

    fn or(self, other: Verdict) -> Verdict {
        self.max(other)
    }
}

/// What the planner knows about one section (or one whole frame).
///
/// `None` fields mean "unknown" and force [`Verdict::Test`] for predicates
/// that need them; known fields allow exact `Take`/`Skip` decisions.
#[derive(Debug, Clone, Copy, Default)]
pub struct SectionMeta {
    /// Recorded bounds of every decoded point, or `None` when unknown.
    pub aabb: Option<Aabb>,
    /// Section is known to decode to zero points.
    pub empty: bool,
    /// Density class when the unit is a single section; `None` for frames.
    pub class: Option<DensityClass>,
    /// LOD depth when section-constant (`None` for mixed/unknown).
    pub lod_depth: Option<u32>,
    /// Frame capture timestamp (µs); known for archived frames.
    pub time_us: Option<u64>,
    /// Decoded-norm interval `[r_min, r_max]` for sparse groups.
    pub r_interval: Option<(f64, f64)>,
}

/// Relative + absolute slack applied wherever the planner compares *derived*
/// quantities (norms, plane evaluations) rather than raw coordinates.
const MARGIN: f64 = 1e-9;

/// Folds `query` over `meta` into a sound three-valued verdict.
pub fn plan(query: &Query, meta: &SectionMeta) -> Verdict {
    if meta.empty {
        // An empty section yields no points either way; skipping is always
        // sound and must short-circuit *before* `Not` could flip it.
        return Verdict::Skip;
    }
    eval(query, meta)
}

fn eval(query: &Query, meta: &SectionMeta) -> Verdict {
    match query {
        Query::All => Verdict::Take,
        Query::Aabb(q) => match meta.aabb {
            Some(bb) => aabb_verdict(q, bb, meta.r_interval),
            None => Verdict::Test,
        },
        Query::Frustum(fr) => match meta.aabb {
            Some(bb) => frustum_verdict(fr, bb),
            None => Verdict::Test,
        },
        Query::Lod { min, max } => match meta.lod_depth {
            Some(d) if (*min..=*max).contains(&d) => Verdict::Take,
            Some(_) => Verdict::Skip,
            None => Verdict::Test,
        },
        Query::TimeRange { start_us, end_us } => match meta.time_us {
            Some(t) if (*start_us..*end_us).contains(&t) => Verdict::Take,
            Some(_) => Verdict::Skip,
            None => Verdict::Test,
        },
        Query::DensityClass(c) => match meta.class {
            Some(mc) if mc == *c => Verdict::Take,
            Some(_) => Verdict::Skip,
            None => Verdict::Test,
        },
        Query::And(a, b) => eval(a, meta).and(eval(b, meta)),
        Query::Or(a, b) => eval(a, meta).or(eval(b, meta)),
        Query::Not(q) => eval(q, meta).not(),
    }
}

/// AABB query vs section AABB: containment and disjointness are pure float
/// comparisons on the exact values the oracle compares, so both `Take` and
/// `Skip` are exact. The optional radial interval adds an origin-distance
/// prune (with margin, since norms involve sqrt rounding).
fn aabb_verdict(q: &Aabb, bb: Aabb, r_interval: Option<(f64, f64)>) -> Verdict {
    let contained = bb.min.x >= q.min.x
        && bb.min.y >= q.min.y
        && bb.min.z >= q.min.z
        && bb.max.x <= q.max.x
        && bb.max.y <= q.max.y
        && bb.max.z <= q.max.z;
    if contained {
        return Verdict::Take;
    }
    let disjoint = bb.min.x > q.max.x
        || bb.max.x < q.min.x
        || bb.min.y > q.max.y
        || bb.max.y < q.min.y
        || bb.min.z > q.max.z
        || bb.max.z < q.min.z;
    if disjoint {
        return Verdict::Skip;
    }
    if let Some((r_min, r_max)) = r_interval {
        let (d_min, d_max) = origin_distance_interval(q);
        // Any point inside `q` has norm in [d_min, d_max]; any group point
        // has norm in [r_min, r_max]. Disjoint intervals (with slack for
        // sqrt rounding) mean no group point can be inside `q`.
        if r_max < d_min * (1.0 - MARGIN) - MARGIN || r_min > d_max * (1.0 + MARGIN) + MARGIN {
            return Verdict::Skip;
        }
    }
    Verdict::Test
}

/// `[min distance, max distance]` from the origin to points of `q`.
fn origin_distance_interval(q: &Aabb) -> (f64, f64) {
    let clamp_axis = |lo: f64, hi: f64| -> (f64, f64) {
        let near = if lo > 0.0 {
            lo
        } else if hi < 0.0 {
            -hi
        } else {
            0.0
        };
        (near, lo.abs().max(hi.abs()))
    };
    let (nx, fx) = clamp_axis(q.min.x, q.max.x);
    let (ny, fy) = clamp_axis(q.min.y, q.max.y);
    let (nz, fz) = clamp_axis(q.min.z, q.max.z);
    ((nx * nx + ny * ny + nz * nz).sqrt(), (fx * fx + fy * fy + fz * fz).sqrt())
}

/// Frustum vs section AABB. Plane evaluations are derived dot products, so
/// `Take`/`Skip` both require clearing an explicit margin; borderline boxes
/// fall through to `Test` and get filtered per point.
fn frustum_verdict(fr: &Frustum, bb: Aabb) -> Verdict {
    let corners = aabb_corners(bb);
    let scale = 1.0 + bb.min.norm().max(bb.max.norm());
    let mut all_inside = true;
    for plane in fr.planes() {
        let eps = MARGIN * (scale + plane.offset.abs());
        // Outside test: if the corner maximizing the plane evaluation is
        // still clearly negative, the whole (convex) box is outside.
        let best = corners.iter().map(|&c| plane.eval(c)).fold(f64::NEG_INFINITY, f64::max);
        if best < -eps {
            return Verdict::Skip;
        }
        // Inside test: every corner clearly non-negative ⇒ the whole box is
        // inside this half-space.
        let worst = corners.iter().map(|&c| plane.eval(c)).fold(f64::INFINITY, f64::min);
        if worst < eps {
            all_inside = false;
        }
    }
    if all_inside {
        Verdict::Take
    } else {
        Verdict::Test
    }
}

fn aabb_corners(bb: Aabb) -> [Point3; 8] {
    let (lo, hi) = (bb.min, bb.max);
    [
        Point3::new(lo.x, lo.y, lo.z),
        Point3::new(hi.x, lo.y, lo.z),
        Point3::new(lo.x, hi.y, lo.z),
        Point3::new(hi.x, hi.y, lo.z),
        Point3::new(lo.x, lo.y, hi.z),
        Point3::new(hi.x, lo.y, hi.z),
        Point3::new(lo.x, hi.y, hi.z),
        Point3::new(hi.x, hi.y, hi.z),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(min: [f64; 3], max: [f64; 3]) -> Aabb {
        Aabb { min: Point3::new(min[0], min[1], min[2]), max: Point3::new(max[0], max[1], max[2]) }
    }

    fn meta_with_aabb(bb: Aabb) -> SectionMeta {
        SectionMeta { aabb: Some(bb), ..SectionMeta::default() }
    }

    #[test]
    fn aabb_take_skip_test() {
        let section = boxed([1.0, 1.0, 1.0], [2.0, 2.0, 2.0]);
        let meta = meta_with_aabb(section);
        assert_eq!(plan(&Query::Aabb(boxed([0.0; 3], [3.0; 3])), &meta), Verdict::Take);
        assert_eq!(plan(&Query::Aabb(boxed([5.0; 3], [6.0; 3])), &meta), Verdict::Skip);
        assert_eq!(plan(&Query::Aabb(boxed([1.5; 3], [6.0; 3])), &meta), Verdict::Test);
        // Touching boundaries share points — not disjoint.
        assert_eq!(plan(&Query::Aabb(boxed([2.0; 3], [6.0; 3])), &meta), Verdict::Test);
    }

    #[test]
    fn radial_interval_prunes_overlapping_box() {
        // Section box overlaps the query box, but all its points sit on a
        // shell far from the query region.
        let section = boxed([-100.0, -100.0, -5.0], [100.0, 100.0, 5.0]);
        let meta = SectionMeta {
            aabb: Some(section),
            r_interval: Some((80.0, 100.0)),
            ..SectionMeta::default()
        };
        // Query box near the origin: max distance ~8.6 << 80.
        let q = Query::Aabb(boxed([-5.0; 3], [5.0; 3]));
        assert_eq!(plan(&q, &meta), Verdict::Skip);
        // Without the interval it would be Test.
        let meta2 = meta_with_aabb(section);
        assert_eq!(plan(&q, &meta2), Verdict::Test);
    }

    #[test]
    fn empty_section_skips_even_under_not() {
        let meta = SectionMeta { empty: true, ..SectionMeta::default() };
        assert_eq!(plan(&Query::All, &meta), Verdict::Skip);
        assert_eq!(plan(&Query::not(Query::All), &meta), Verdict::Skip);
    }

    #[test]
    fn not_swaps_take_and_skip() {
        let meta = SectionMeta { class: Some(DensityClass::Dense), ..SectionMeta::default() };
        let q = Query::DensityClass(DensityClass::Dense);
        assert_eq!(plan(&q, &meta), Verdict::Take);
        assert_eq!(plan(&Query::not(q.clone()), &meta), Verdict::Skip);
        assert_eq!(plan(&Query::not(Query::not(q.clone())), &meta), plan(&q, &meta));
    }

    #[test]
    fn and_or_fold_as_min_max() {
        let meta = SectionMeta {
            class: Some(DensityClass::Sparse),
            lod_depth: Some(0),
            ..SectionMeta::default()
        };
        let take = Query::DensityClass(DensityClass::Sparse);
        let skip = Query::DensityClass(DensityClass::Dense);
        let test = Query::Aabb(boxed([0.0; 3], [1.0; 3])); // aabb unknown
        assert_eq!(plan(&Query::and(take.clone(), skip.clone()), &meta), Verdict::Skip);
        assert_eq!(plan(&Query::and(take.clone(), test.clone()), &meta), Verdict::Test);
        assert_eq!(plan(&Query::or(skip.clone(), test.clone()), &meta), Verdict::Test);
        assert_eq!(plan(&Query::or(skip.clone(), take.clone()), &meta), Verdict::Take);
    }

    #[test]
    fn frustum_verdicts() {
        let eye = Point3::new(0.0, 0.0, 0.0);
        let fr = Frustum::look_at(
            eye,
            Point3::new(10.0, 0.0, 0.0),
            Point3::new(0.0, 0.0, 1.0),
            1.2,
            1.0,
            0.5,
            100.0,
        )
        .unwrap();
        // Tight box on the axis, well inside.
        let inside = meta_with_aabb(boxed([5.0, -0.5, -0.5], [6.0, 0.5, 0.5]));
        assert_eq!(plan(&Query::Frustum(fr.clone()), &inside), Verdict::Take);
        // Behind the eye.
        let behind = meta_with_aabb(boxed([-20.0, -1.0, -1.0], [-10.0, 1.0, 1.0]));
        assert_eq!(plan(&Query::Frustum(fr.clone()), &behind), Verdict::Skip);
        // Straddling a side plane.
        let straddle = meta_with_aabb(boxed([5.0, -50.0, -0.5], [6.0, 50.0, 0.5]));
        assert_eq!(plan(&Query::Frustum(fr), &straddle), Verdict::Test);
    }

    #[test]
    fn time_and_lod_are_exact() {
        let meta =
            SectionMeta { time_us: Some(1_000), lod_depth: Some(9), ..SectionMeta::default() };
        assert_eq!(plan(&Query::TimeRange { start_us: 0, end_us: 2_000 }, &meta), Verdict::Take);
        assert_eq!(
            plan(&Query::TimeRange { start_us: 2_000, end_us: 3_000 }, &meta),
            Verdict::Skip
        );
        // End is exclusive.
        assert_eq!(plan(&Query::TimeRange { start_us: 0, end_us: 1_000 }, &meta), Verdict::Skip);
        assert_eq!(plan(&Query::Lod { min: 0, max: 8 }, &meta), Verdict::Skip);
        assert_eq!(plan(&Query::Lod { min: 9, max: 9 }, &meta), Verdict::Take);
    }
}
