//! Point-in-time snapshots and their versioned JSON serialization.
//!
//! The workspace carries no serde; the JSON writer here is the one place
//! hand-rolled JSON lives, and every producer (CLI `--metrics-out`, the
//! `dbgc-bench` harnesses, CI artifacts) goes through it so there is a
//! single schema to parse:
//!
//! ```json
//! {
//!   "schema": "dbgc-metrics",
//!   "version": 1,
//!   "labels": { "preset": "kitti-city" },
//!   "counters": { "compress.frames": 3 },
//!   "bytes": { "header": 40, "dense": 9000, "sparse": 60000, "outlier": 800 },
//!   "gauges": { "e2e.frames_per_s": 5.4 },
//!   "histograms": { "net.queue_depth": { "count": 12, "sum": 30, "min": 0,
//!                    "max": 5, "buckets": [{ "lo": 0, "hi": 0, "count": 2 }] } },
//!   "spans": [{ "id": 1, "parent": null, "name": "compress",
//!               "start_us": 0, "end_us": 181234 }]
//! }
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::HistogramSnapshot;
use crate::span::SpanRecord;
use crate::{SCHEMA, SCHEMA_VERSION};

/// A point-in-time copy of every instrument in a [`crate::Collector`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Byte-accounting channels by substream name.
    pub bytes: BTreeMap<String, u64>,
    /// f64 gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// String labels by name.
    pub labels: BTreeMap<String, String>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Finished spans, in finish order.
    pub spans: Vec<SpanRecord>,
}

impl Snapshot {
    /// Sum of all byte-accounting channels.
    ///
    /// For a single compressed frame this must equal the stream size — the
    /// invariant the metric-invariant suite pins down.
    pub fn bytes_total(&self) -> u64 {
        self.bytes.values().sum()
    }

    /// The finished spans whose parent is `id`.
    pub fn span_children(&self, id: u64) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == Some(id)).collect()
    }

    /// Check span-tree well-formedness: unique positive ids, every parent
    /// finished and present, no negative durations, and every child interval
    /// contained in its parent's (children finish before their parent).
    pub fn validate_spans(&self) -> Result<(), String> {
        let mut by_id: BTreeMap<u64, &SpanRecord> = BTreeMap::new();
        for s in &self.spans {
            if s.id == 0 {
                return Err(format!("span '{}' has id 0", s.name));
            }
            if by_id.insert(s.id, s).is_some() {
                return Err(format!("duplicate span id {}", s.id));
            }
            if s.end_ns < s.start_ns {
                return Err(format!("span '{}' has negative duration", s.name));
            }
        }
        for s in &self.spans {
            if let Some(pid) = s.parent {
                let Some(p) = by_id.get(&pid) else {
                    return Err(format!("span '{}' has orphan parent id {pid}", s.name));
                };
                if s.start_ns < p.start_ns || s.end_ns > p.end_ns {
                    return Err(format!(
                        "span '{}' [{}, {}] escapes its parent '{}' [{}, {}]",
                        s.name, s.start_ns, s.end_ns, p.name, p.start_ns, p.end_ns
                    ));
                }
            }
        }
        Ok(())
    }

    /// Serialize to the versioned JSON document described in the module docs.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(out, "  \"version\": {SCHEMA_VERSION},");

        let _ = write!(out, "  \"labels\": ");
        write_map(&mut out, self.labels.iter(), |out, v| {
            let _ = write!(out, "\"{}\"", json_escape(v));
        });
        out.push_str(",\n");

        let _ = write!(out, "  \"counters\": ");
        write_map(&mut out, self.counters.iter(), |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str(",\n");

        let _ = write!(out, "  \"bytes\": ");
        write_map(&mut out, self.bytes.iter(), |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str(",\n");

        let _ = write!(out, "  \"gauges\": ");
        write_map(&mut out, self.gauges.iter(), |out, v| write_f64(out, **v));
        out.push_str(",\n");

        let _ = write!(out, "  \"histograms\": ");
        write_map(&mut out, self.histograms.iter(), |out, h| {
            let _ = write!(out, "{{ \"count\": {}, \"sum\": {}, ", h.count, h.sum);
            let _ = write!(out, "\"min\": {}, \"max\": {}, \"buckets\": [", h.min, h.max);
            for (i, b) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ =
                    write!(out, "{{ \"lo\": {}, \"hi\": {}, \"count\": {} }}", b.lo, b.hi, b.count);
            }
            out.push_str("] }");
        });
        out.push_str(",\n");

        out.push_str("  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {{ \"id\": {}, \"parent\": ", s.id);
            match s.parent {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(
                out,
                ", \"name\": \"{}\", \"start_us\": {}, \"end_us\": {} }}",
                json_escape(&s.name),
                s.start_ns / 1_000,
                s.end_ns / 1_000
            );
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parse the `"gauges"` object out of a document produced by
    /// [`Snapshot::to_json`]. The workspace carries no JSON library, so CI
    /// gates that diff two benchmark snapshots use this focused reader
    /// instead; it relies on the writer's layout (the `"gauges"` key at the
    /// start of its own line), which the round-trip test below pins.
    /// Non-finite gauges were written as `null` and are skipped.
    pub fn gauges_from_json(json: &str) -> Result<BTreeMap<String, f64>, String> {
        // The writer puts each top-level key at the start of a line and
        // escapes newlines inside strings, so this anchor cannot match
        // inside a label value.
        let anchor = "\n  \"gauges\": ";
        let idx = json.find(anchor).ok_or("no top-level \"gauges\" key")?;
        let mut s = json[idx + anchor.len()..].trim_start();
        s = s.strip_prefix('{').ok_or("gauges value is not an object")?;
        let mut out = BTreeMap::new();
        loop {
            s = s.trim_start_matches([' ', '\n', '\t', ',']);
            if s.starts_with('}') {
                return Ok(out);
            }
            let (key, rest) = parse_json_string(s)?;
            s = rest.trim_start();
            s = s.strip_prefix(':').ok_or_else(|| format!("missing ':' after \"{key}\""))?;
            s = s.trim_start();
            if let Some(rest) = s.strip_prefix("null") {
                s = rest;
                continue;
            }
            let end = s
                .find(|c: char| !matches!(c, '0'..='9' | '+' | '-' | '.' | 'e' | 'E'))
                .unwrap_or(s.len());
            let v: f64 = s[..end].parse().map_err(|e| format!("bad number for \"{key}\": {e}"))?;
            out.insert(key, v);
            s = &s[end..];
        }
    }
}

/// Parse a JSON string literal at the start of `s`; returns the unescaped
/// value and the remainder after the closing quote.
fn parse_json_string(s: &str) -> Result<(String, &str), String> {
    let s = s.strip_prefix('"').ok_or("expected string")?;
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &s[i + 1..])),
            '\\' => match chars.next().map(|(_, e)| e) {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                        code = code * 16 + h.to_digit(16).ok_or("bad \\u escape")?;
                    }
                    out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                }
                other => return Err(format!("unknown escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

/// Write a `{ "k": v, ... }` object using `value` for each payload.
fn write_map<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, V)>,
    value: impl Fn(&mut String, &V),
) {
    out.push('{');
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, " \"{}\": ", json_escape(k));
        value(out, &v);
    }
    if !first {
        out.push(' ');
    }
    out.push('}');
}

/// Write an f64 as JSON (non-finite values become `null`).
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Collector;

    #[test]
    fn json_contains_schema_and_instruments() {
        let c = Collector::new();
        c.incr("compress.frames", 3);
        c.add_bytes("dense", 9000);
        c.set_gauge("fps", 5.5);
        c.set_label("preset", "kitti-city");
        c.record("sizes", 100);
        c.span("root").finish();
        let json = c.snapshot().to_json();
        for needle in [
            "\"schema\": \"dbgc-metrics\"",
            "\"version\": 1",
            "\"compress.frames\": 3",
            "\"dense\": 9000",
            "\"fps\": 5.5",
            "\"preset\": \"kitti-city\"",
            "\"count\": 1",
            "\"name\": \"root\"",
            "\"parent\": null",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn empty_snapshot_serializes() {
        let json = Snapshot::default().to_json();
        assert!(json.contains("\"spans\": []"));
        assert!(json.contains("\"counters\": {}"));
    }

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn gauges_round_trip_through_json() {
        let c = Collector::new();
        c.set_gauge("serial.frames_per_s", 12.81);
        c.set_gauge("speedup", 1.0);
        c.set_gauge("neg", -3.5e-2);
        c.set_gauge("skip.nan", f64::NAN);
        c.set_label("weird \"label\"", "has \"gauges\": inside");
        let json = c.snapshot().to_json();
        let gauges = Snapshot::gauges_from_json(&json).unwrap();
        assert_eq!(gauges["serial.frames_per_s"], 12.81);
        assert_eq!(gauges["speedup"], 1.0);
        assert_eq!(gauges["neg"], -3.5e-2);
        assert!(!gauges.contains_key("skip.nan"), "null gauges are skipped");
        assert_eq!(gauges.len(), 3);
    }

    #[test]
    fn gauges_parser_rejects_garbage() {
        assert!(Snapshot::gauges_from_json("{}").is_err());
        assert!(Snapshot::gauges_from_json("\n  \"gauges\": [1]").is_err());
        assert!(Snapshot::gauges_from_json("\n  \"gauges\": { \"a\": x }").is_err());
    }

    #[test]
    fn non_finite_gauges_become_null() {
        let c = Collector::new();
        c.set_gauge("bad", f64::NAN);
        assert!(c.snapshot().to_json().contains("\"bad\": null"));
    }

    #[test]
    fn validate_rejects_malformed_trees() {
        let good = SpanRecord { id: 1, parent: None, name: "a".into(), start_ns: 0, end_ns: 10 };
        let orphan =
            SpanRecord { id: 2, parent: Some(99), name: "b".into(), start_ns: 1, end_ns: 2 };
        let escapes =
            SpanRecord { id: 3, parent: Some(1), name: "c".into(), start_ns: 5, end_ns: 20 };

        let mut s = Snapshot { spans: vec![good.clone()], ..Default::default() };
        s.validate_spans().unwrap();

        s.spans = vec![good.clone(), orphan];
        assert!(s.validate_spans().unwrap_err().contains("orphan"));

        s.spans = vec![good.clone(), escapes];
        assert!(s.validate_spans().unwrap_err().contains("escapes"));

        s.spans = vec![good.clone(), good];
        assert!(s.validate_spans().unwrap_err().contains("duplicate"));
    }
}
