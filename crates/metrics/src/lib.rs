//! # dbgc-metrics — pipeline observability for DBGC
//!
//! A std-only (offline, shim-compatible) metrics layer shared by the
//! compressor core, the network server, the CLI and the experiment
//! harnesses. It provides exactly the four instruments the paper's
//! evaluation (§4) is built on:
//!
//! * **hierarchical spans** ([`Span`]) with monotonic wall-clock timing.
//!   Span handles are `Send + Sync`, so a stage span created on the calling
//!   thread can hand out children to `dbgc-parallel` pool workers; the
//!   owning stage is attributed by *wall-clock* (the interval the stage
//!   actually occupied), never by summed worker CPU time;
//! * **atomic counters** and f64 **gauges** ([`Collector::incr`],
//!   [`Collector::set_gauge`]);
//! * **log-bucket histograms** ([`Histogram`]): power-of-two buckets,
//!   lock-free recording;
//! * **per-substream byte accounting** ([`Collector::add_bytes`]): named
//!   byte channels (header/dense/sparse/outlier, …) whose sum must equal
//!   the frame total — [`Snapshot::bytes_total`] makes the invariant
//!   testable.
//!
//! Everything funnels into a [`Collector`] — a cheap-to-clone `Arc` handle —
//! and out through [`Collector::snapshot`], a point-in-time [`Snapshot`]
//! that serializes to a versioned JSON document ([`Snapshot::to_json`],
//! schema [`SCHEMA`]`/`[`SCHEMA_VERSION`]). Every producer in the workspace
//! (CLI `--metrics-out`, `dbgc-bench` harnesses, the net server) emits this
//! one schema instead of bespoke structs.
//!
//! Recording costs one atomic op for counters/histogram samples and one
//! short mutex push per finished span; crates that embed the layer gate it
//! behind a default-on `metrics` cargo feature that compiles recording to
//! no-ops when disabled.

#![warn(missing_docs)]

mod efficiency;
mod hist;
mod snapshot;
mod span;

pub use efficiency::StageEfficiency;
pub use hist::{Histogram, HistogramSnapshot};
pub use snapshot::{json_escape, Snapshot};
pub use span::{Span, SpanRecord};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Snapshot schema name; bump [`SCHEMA_VERSION`] on breaking changes.
pub const SCHEMA: &str = "dbgc-metrics";
/// Snapshot schema version emitted by [`Snapshot::to_json`].
pub const SCHEMA_VERSION: u32 = 1;

/// A named atomic counter handle; cheap to clone, lock-free to bump.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

pub(crate) struct Inner {
    pub(crate) epoch: Instant,
    pub(crate) next_span_id: AtomicU64,
    pub(crate) spans: Mutex<Vec<SpanRecord>>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    bytes: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, u64>>, // f64 bit patterns
    labels: Mutex<BTreeMap<String, String>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// The shared metrics sink: clone freely, record from any thread.
///
/// All instruments are created on first use by name; names are stable keys
/// in the emitted snapshot, so pick dotted lowercase identifiers
/// (`net.frames_received`, `compress.points_in`).
#[derive(Clone)]
pub struct Collector {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector").finish_non_exhaustive()
    }
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    /// A fresh, empty collector; its span clock starts now.
    pub fn new() -> Collector {
        Collector {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                next_span_id: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
                bytes: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                labels: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Start a root span. Finish it by dropping (or [`Span::finish`]).
    pub fn span(&self, name: &str) -> Span {
        Span::new(self.clone(), None, name)
    }

    /// The counter registered under `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("counters lock");
        Counter(Arc::clone(map.entry(name.to_string()).or_default()))
    }

    /// Add `n` to the counter `name` (convenience over [`Collector::counter`]).
    pub fn incr(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Account `n` bytes to the substream channel `name`.
    ///
    /// Channels live in their own namespace so snapshots can check the
    /// accounting invariant: the per-substream values of one frame must sum
    /// to the frame's total stream size.
    pub fn add_bytes(&self, channel: &str, n: u64) {
        let cell = {
            let mut map = self.inner.bytes.lock().expect("bytes lock");
            Arc::clone(map.entry(channel.to_string()).or_default())
        };
        cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Set the f64 gauge `name` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut map = self.inner.gauges.lock().expect("gauges lock");
        map.insert(name.to_string(), value.to_bits());
    }

    /// Attach a string label (preset name, mode, hostname, …).
    pub fn set_label(&self, name: &str, value: &str) {
        let mut map = self.inner.labels.lock().expect("labels lock");
        map.insert(name.to_string(), value.to_string());
    }

    /// The log-bucket histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.histograms.lock().expect("histograms lock");
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(Histogram::new())))
    }

    /// Record one sample into histogram `name`.
    pub fn record(&self, name: &str, value: u64) {
        self.histogram(name).record(value);
    }

    /// A point-in-time snapshot of every instrument.
    ///
    /// Unfinished spans are *not* included — snapshot after the work you
    /// want to read about has completed (or keep the collector and snapshot
    /// again later; recording continues unaffected).
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .expect("counters lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let bytes = self
            .inner
            .bytes
            .lock()
            .expect("bytes lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .expect("gauges lock")
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(*v)))
            .collect();
        let labels = self.inner.labels.lock().expect("labels lock").clone();
        let histograms = self
            .inner
            .histograms
            .lock()
            .expect("histograms lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let spans = self.inner.spans.lock().expect("spans lock").clone();
        Snapshot { counters, bytes, gauges, labels, histograms, spans }
    }

    pub(crate) fn inner(&self) -> &Inner {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_clones_and_threads() {
        let c = Collector::new();
        let handle = c.counter("frames");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr("frames", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(handle.get(), 4000);
        assert_eq!(c.snapshot().counters["frames"], 4000);
    }

    #[test]
    fn byte_channels_are_a_separate_namespace() {
        let c = Collector::new();
        c.incr("dense", 5);
        c.add_bytes("dense", 100);
        c.add_bytes("sparse", 200);
        let s = c.snapshot();
        assert_eq!(s.counters["dense"], 5);
        assert_eq!(s.bytes["dense"], 100);
        assert_eq!(s.bytes_total(), 300);
    }

    #[test]
    fn gauges_and_labels_round_trip() {
        let c = Collector::new();
        c.set_gauge("fps", 9.75);
        c.set_gauge("fps", 10.25); // last write wins
        c.set_label("preset", "kitti-city");
        let s = c.snapshot();
        assert_eq!(s.gauges["fps"], 10.25);
        assert_eq!(s.labels["preset"], "kitti-city");
    }

    #[test]
    fn spans_record_a_tree() {
        let c = Collector::new();
        {
            let root = c.span("compress");
            {
                let child = root.child("den");
                std::thread::sleep(std::time::Duration::from_millis(1));
                child.finish();
            }
            root.finish();
        }
        let s = c.snapshot();
        assert_eq!(s.spans.len(), 2);
        s.validate_spans().unwrap();
        let root = s.spans.iter().find(|r| r.name == "compress").unwrap();
        let child = s.spans.iter().find(|r| r.name == "den").unwrap();
        assert_eq!(child.parent, Some(root.id));
        assert!(child.end_ns > child.start_ns, "child slept, duration must be positive");
    }

    #[test]
    fn span_handles_cross_threads() {
        let c = Collector::new();
        let stage = c.span("group");
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let stage = &stage;
                scope.spawn(move || {
                    let worker = stage.child("org");
                    worker.finish();
                });
            }
        });
        stage.finish();
        let s = c.snapshot();
        assert_eq!(s.spans.len(), 4);
        s.validate_spans().unwrap();
    }

    #[test]
    fn snapshot_is_stable_under_concurrent_recording() {
        let c = Collector::new();
        let writer = {
            let c = c.clone();
            std::thread::spawn(move || {
                for i in 0..5000u64 {
                    c.incr("n", 1);
                    c.record("h", i);
                }
            })
        };
        // Snapshots taken mid-flight must be internally consistent (never
        // panic, histogram count matches bucket sum).
        for _ in 0..20 {
            let s = c.snapshot();
            for h in s.histograms.values() {
                assert_eq!(h.count, h.buckets.iter().map(|b| b.count).sum::<u64>());
            }
        }
        writer.join().unwrap();
        assert_eq!(c.snapshot().counters["n"], 5000);
    }
}
