//! Parallel-efficiency arithmetic for stage timings.
//!
//! A parallelized stage is characterized by three numbers derived from its
//! serial and parallel wall-clock times and the worker count:
//!
//! * **speedup** `S = t_serial / t_parallel` — how many times faster the
//!   parallel run retired the stage;
//! * **efficiency** `E = S / workers` — the fraction of the added hardware
//!   that did useful work (1.0 = perfect linear scaling);
//! * **idle fraction** `1 − E` — the share of worker-seconds spent waiting
//!   (serial sections, barrier skew, splice/merge overhead).
//!
//! [`StageEfficiency`] computes them once and [`StageEfficiency::record`]
//! publishes them as `<prefix>.speedup` / `<prefix>.efficiency` /
//! `<prefix>.idle_frac` gauges, so every harness reports scaling in the same
//! vocabulary and CI gates can compare runs structurally.

use crate::Collector;

/// Speedup/efficiency/idle summary of one parallelized stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageEfficiency {
    /// Serial wall-clock seconds.
    pub serial_s: f64,
    /// Parallel wall-clock seconds.
    pub parallel_s: f64,
    /// Total parallelism of the parallel run (workers incl. the caller).
    pub workers: usize,
}

impl StageEfficiency {
    /// Summary of a stage that took `serial_s` alone and `parallel_s` on
    /// `workers` threads.
    pub fn new(serial_s: f64, parallel_s: f64, workers: usize) -> StageEfficiency {
        StageEfficiency { serial_s, parallel_s, workers }
    }

    /// `t_serial / t_parallel`; 0.0 when the parallel time is degenerate.
    pub fn speedup(&self) -> f64 {
        if self.parallel_s > 0.0 && self.serial_s.is_finite() {
            self.serial_s / self.parallel_s
        } else {
            0.0
        }
    }

    /// Speedup per worker, clamped to `[0, ∞)`; 1.0 is perfect scaling.
    /// (Super-linear values are possible — cache effects — and reported
    /// as-is rather than clamped to 1.)
    pub fn efficiency(&self) -> f64 {
        if self.workers == 0 {
            return 0.0;
        }
        self.speedup() / self.workers as f64
    }

    /// Fraction of worker-seconds that bought nothing: `1 − efficiency`,
    /// clamped at 0 for super-linear stages.
    pub fn idle_fraction(&self) -> f64 {
        (1.0 - self.efficiency()).max(0.0)
    }

    /// Publish the three derived gauges under `prefix`
    /// (`<prefix>.speedup`, `<prefix>.efficiency`, `<prefix>.idle_frac`).
    pub fn record(&self, collector: &Collector, prefix: &str) {
        collector.set_gauge(&format!("{prefix}.speedup"), self.speedup());
        collector.set_gauge(&format!("{prefix}.efficiency"), self.efficiency());
        collector.set_gauge(&format!("{prefix}.idle_frac"), self.idle_fraction());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_scaling() {
        let e = StageEfficiency::new(4.0, 1.0, 4);
        assert_eq!(e.speedup(), 4.0);
        assert_eq!(e.efficiency(), 1.0);
        assert_eq!(e.idle_fraction(), 0.0);
    }

    #[test]
    fn half_efficiency_half_idle() {
        let e = StageEfficiency::new(2.0, 1.0, 4);
        assert_eq!(e.speedup(), 2.0);
        assert_eq!(e.efficiency(), 0.5);
        assert_eq!(e.idle_fraction(), 0.5);
    }

    #[test]
    fn superlinear_reports_zero_idle() {
        let e = StageEfficiency::new(5.0, 1.0, 4);
        assert!(e.efficiency() > 1.0);
        assert_eq!(e.idle_fraction(), 0.0);
    }

    #[test]
    fn degenerate_times_are_safe() {
        assert_eq!(StageEfficiency::new(1.0, 0.0, 4).speedup(), 0.0);
        assert_eq!(StageEfficiency::new(f64::INFINITY, 1.0, 4).speedup(), 0.0);
        assert_eq!(StageEfficiency::new(1.0, 1.0, 0).efficiency(), 0.0);
    }

    #[test]
    fn record_publishes_the_three_gauges() {
        let c = Collector::new();
        StageEfficiency::new(3.0, 1.0, 4).record(&c, "den");
        let snap = c.snapshot();
        assert_eq!(snap.gauges["den.speedup"], 3.0);
        assert_eq!(snap.gauges["den.efficiency"], 0.75);
        assert_eq!(snap.gauges["den.idle_frac"], 0.25);
    }
}
