//! Hierarchical wall-clock spans.
//!
//! A [`Span`] measures the wall-clock interval between its creation and its
//! finish (explicit [`Span::finish`] or drop). Spans form a tree through
//! [`Span::child`]; the handle is `Send + Sync`, so a stage span can be
//! shared with pool workers by reference and children created on any thread
//! are attributed to it. Because the *stage* span brackets the whole
//! fan-out, its duration is the stage's wall-clock occupancy — overlapping
//! worker children do not inflate it the way summed CPU time would.

use std::sync::atomic::Ordering;
use std::time::Instant;

use crate::Collector;

/// One finished span, in a [`crate::Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the collector (> 0).
    pub id: u64,
    /// Parent span id; `None` for roots.
    pub parent: Option<u64>,
    /// Span name as given to [`Collector::span`] / [`Span::child`].
    pub name: String,
    /// Start, in nanoseconds since the collector's epoch.
    pub start_ns: u64,
    /// End, in nanoseconds since the collector's epoch (`>= start_ns`).
    pub end_ns: u64,
}

impl SpanRecord {
    /// The span's wall-clock duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A live span; finishes (and records itself) on drop.
#[derive(Debug)]
pub struct Span {
    collector: Collector,
    id: u64,
    parent: Option<u64>,
    name: String,
    start: Instant,
}

impl Span {
    pub(crate) fn new(collector: Collector, parent: Option<u64>, name: &str) -> Span {
        let id = collector.inner().next_span_id.fetch_add(1, Ordering::Relaxed);
        Span { collector, id, parent, name: name.to_string(), start: Instant::now() }
    }

    /// This span's id (stable in the snapshot's records).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Start a child span. The child borrows nothing: it holds its own
    /// collector handle, so it may outlive the parent *handle* (though a
    /// well-formed tree finishes children first) and may be created and
    /// finished on a different thread.
    pub fn child(&self, name: &str) -> Span {
        Span::new(self.collector.clone(), Some(self.id), name)
    }

    /// Finish the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let inner = self.collector.inner();
        let start_ns = self.start.saturating_duration_since(inner.epoch).as_nanos() as u64;
        let end_ns = inner.epoch.elapsed().as_nanos() as u64;
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            start_ns,
            end_ns: end_ns.max(start_ns),
        };
        inner.spans.lock().expect("spans lock").push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_on_drop_and_explicit_agree() {
        let c = Collector::new();
        {
            let _implicit = c.span("a");
        }
        c.span("b").finish();
        let s = c.snapshot();
        assert_eq!(s.spans.len(), 2);
        assert!(s.spans.iter().all(|r| r.end_ns >= r.start_ns));
    }

    #[test]
    fn ids_are_unique_and_positive() {
        let c = Collector::new();
        let a = c.span("a");
        let b = c.span("b");
        let child = a.child("c");
        assert!(a.id() > 0);
        assert!(a.id() != b.id() && b.id() != child.id() && a.id() != child.id());
    }
}
