//! Lock-free log-bucket histograms.
//!
//! Values are `u64` (byte sizes, microseconds, queue depths). Bucket `0`
//! holds the value `0`; bucket `k >= 1` holds `[2^(k-1), 2^k)`. 65 buckets
//! cover the full `u64` range, recording costs one `fetch_add`, and the
//! exact count/sum/min/max ride along so snapshots can report means without
//! bucket-quantization error.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 65;

/// A concurrent histogram with power-of-two buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index for `value`: 0 for 0, else `64 - leading_zeros`.
fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy (empty buckets elided).
    pub fn snapshot(&self) -> HistogramSnapshot {
        // Read count last so it never exceeds the bucket sum mid-recording.
        let buckets: Vec<BucketCount> = (0..BUCKETS)
            .filter_map(|k| {
                let count = self.buckets[k].load(Ordering::Relaxed);
                (count > 0).then(|| BucketCount {
                    lo: if k == 0 { 0 } else { 1u64 << (k - 1) },
                    hi: if k == 0 {
                        0
                    } else if k == BUCKETS - 1 {
                        u64::MAX
                    } else {
                        (1u64 << k) - 1
                    },
                    count,
                })
            })
            .collect();
        let count = buckets.iter().map(|b| b.count).sum();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// One non-empty bucket: the inclusive value range `[lo, hi]` and its count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCount {
    /// Smallest value the bucket holds.
    pub lo: u64,
    /// Largest value the bucket holds.
    pub hi: u64,
    /// Number of recorded samples in range.
    pub count: u64,
}

/// A point-in-time histogram copy, as embedded in [`crate::Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples (equals the sum of bucket counts).
    pub count: u64,
    /// Sum of all sample values.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Non-empty buckets in ascending value order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 100, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        // 0 | 1 | {2,3} | {100,100} | MAX
        assert_eq!(s.buckets.len(), 5);
        assert_eq!(s.buckets.iter().map(|b| b.count).sum::<u64>(), 7);
        let b100 = s.buckets.iter().find(|b| b.lo <= 100 && 100 <= b.hi).unwrap();
        assert_eq!((b100.lo, b100.hi, b100.count), (64, 127, 2));
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(Histogram::new().snapshot().mean(), 0.0);
        let h = Histogram::new();
        h.record(10);
        h.record(20);
        assert_eq!(h.snapshot().mean(), 15.0);
    }
}
