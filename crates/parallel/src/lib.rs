//! A shared, std-only thread pool for intra-frame parallelism.
//!
//! The build environment carries no external crates, so this crate plays the
//! role `rayon` would: a process-wide worker pool ([`ThreadPool::global`])
//! that every parallel stage of the compressor — and every frame-level worker
//! in `dbgc-net` — submits to, so concurrent frames share one set of OS
//! threads instead of oversubscribing the machine.
//!
//! Execution model: a scoped run splits `n` tasks over the pool via an atomic
//! work-stealing counter. The **caller participates** — it drains the same
//! counter while waiting — which has two consequences:
//!
//! * a pool of `threads() == 1` degenerates to an inline serial loop;
//! * nested or concurrent scoped runs cannot deadlock: even if every pool
//!   worker is busy elsewhere, the calling thread completes its own tasks.
//!
//! Determinism: [`ThreadPool::map`] returns results **in input order**
//! regardless of which thread computed what, so parallel callers can produce
//! byte-identical output to their serial equivalents.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// A growable worker pool executing scoped parallel runs.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    /// Worker join handles; `len() + 1` (the caller) = total parallelism.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("threads", &self.threads()).finish()
    }
}

/// One scoped run: tasks `0..n` drained through an atomic counter.
struct Run {
    /// Lifetime-erased task body; sound because the initiating call waits
    /// for `completed == n` before returning, so the borrow outlives every
    /// invocation.
    f: &'static (dyn Fn(usize) + Sync),
    n: usize,
    next: AtomicUsize,
    completed: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done_lock: Mutex<()>,
    done: Condvar,
}

impl Run {
    /// Drain tasks until the counter is exhausted.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.f)(i))) {
                let mut slot = self.panic.lock().expect("panic slot");
                slot.get_or_insert(payload);
            }
            if self.completed.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
                let _guard = self.done_lock.lock().expect("done lock");
                self.done.notify_all();
            }
        }
    }
}

/// The number of threads this process should use by default: the
/// `DBGC_THREADS` environment variable if set, else the hardware parallelism.
pub fn recommended_threads() -> usize {
    std::env::var("DBGC_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

impl ThreadPool {
    /// A pool with `threads` total parallelism (including the calling
    /// thread), i.e. `threads - 1` worker threads.
    pub fn new(threads: usize) -> ThreadPool {
        let pool = ThreadPool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                shutdown: AtomicBool::new(false),
            }),
            workers: Mutex::new(Vec::new()),
        };
        pool.ensure_total(threads);
        pool
    }

    /// The process-wide pool, sized by [`recommended_threads`] on first use.
    /// Explicit thread requests above that grow it on demand (see
    /// [`ensure_total`](ThreadPool::ensure_total)).
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(recommended_threads()))
    }

    /// Current total parallelism (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.workers.lock().expect("workers lock").len() + 1
    }

    /// Grow the pool so total parallelism is at least `threads`; never
    /// shrinks. Requests are capped at 256 as an oversubscription backstop.
    pub fn ensure_total(&self, threads: usize) {
        let target = threads.clamp(1, 256) - 1;
        let mut workers = self.workers.lock().expect("workers lock");
        while workers.len() < target {
            let shared = Arc::clone(&self.shared);
            let name = format!("dbgc-pool-{}", workers.len());
            let handle = std::thread::Builder::new()
                .name(name)
                .spawn(move || worker_loop(&shared))
                .expect("spawn pool worker");
            workers.push(handle);
        }
    }

    /// Run `f(i)` for every `i in 0..n` across the pool; returns when all
    /// calls have finished. Panics in tasks are forwarded to the caller
    /// after the run settles.
    pub fn for_each_index(&self, n: usize, f: impl Fn(usize) + Sync) {
        if n == 0 {
            return;
        }
        let helpers = (self.threads() - 1).min(n - 1);
        if helpers == 0 {
            // Inline serial loop: no queueing, no atomics.
            for i in 0..n {
                f(i);
            }
            return;
        }
        // Erase the closure's lifetime; sound because we wait for
        // `completed == n` below, so `f` outlives every task invocation.
        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f_ref) };
        let run = Arc::new(Run {
            f: f_static,
            n,
            next: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
        });

        {
            let mut queue = self.shared.queue.lock().expect("queue lock");
            for _ in 0..helpers {
                let run = Arc::clone(&run);
                queue.push_back(Box::new(move || run.work()));
            }
        }
        self.shared.available.notify_all();

        // The caller works the same counter, then waits for stragglers.
        run.work();
        let mut guard = run.done_lock.lock().expect("done lock");
        while run.completed.load(Ordering::Acquire) < n {
            guard = run.done.wait(guard).expect("done wait");
        }
        drop(guard);
        let payload = run.panic.lock().expect("panic slot").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Run `f` over contiguous blocks of `0..n` of at most `grain` items.
    pub fn for_each_block(&self, n: usize, grain: usize, f: impl Fn(Range<usize>) + Sync) {
        let grain = grain.max(1);
        let blocks = n.div_ceil(grain);
        self.for_each_index(blocks, |b| {
            let lo = b * grain;
            f(lo..(lo + grain).min(n));
        });
    }

    /// Parallel map preserving input order: `out[i] = f(i, &items[i])`.
    ///
    /// The output is identical to the serial
    /// `items.iter().enumerate().map(..).collect()` for any thread count.
    pub fn map<T: Sync, R: Send>(&self, items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R> {
        let n = items.len();
        let grain = (n / (self.threads() * 4)).max(1);
        self.map_with_grain(items, grain, f)
    }

    /// [`map`](ThreadPool::map) with an explicit block size (use small grains
    /// for expensive items, large grains for cheap ones).
    pub fn map_with_grain<T: Sync, R: Send>(
        &self,
        items: &[T],
        grain: usize,
        f: impl Fn(usize, &T) -> R + Sync,
    ) -> Vec<R> {
        let n = items.len();
        let mut out: Vec<R> = Vec::with_capacity(n);
        let ptr = SendPtr(out.as_mut_ptr());
        self.for_each_block(n, grain, |range| {
            for i in range {
                let value = f(i, &items[i]);
                // SAFETY: blocks are disjoint, each slot written exactly
                // once, and the buffer has capacity n. On panic `out` is
                // dropped with len 0 (written elements leak, which is safe).
                unsafe { ptr.get().add(i).write(value) };
            }
        });
        // SAFETY: every slot 0..n was initialized (no panic reached here).
        unsafe { out.set_len(n) };
        out
    }

    /// Parallel map into a caller-owned arena: `f(i, &items[i], &mut out[i])`
    /// refills each slot in place, so slot-internal allocations (buffers,
    /// nested vecs) survive across calls instead of being reallocated per
    /// item. `out` is resized with `R::default()` first; as with
    /// [`map`](ThreadPool::map), slots are written in input order semantics
    /// regardless of which thread ran them.
    pub fn map_into<T: Sync, R: Default + Send>(
        &self,
        items: &[T],
        grain: usize,
        out: &mut Vec<R>,
        f: impl Fn(usize, &T, &mut R) + Sync,
    ) {
        let n = items.len();
        out.resize_with(n, R::default);
        let ptr = SendPtr(out.as_mut_ptr());
        self.for_each_block(n, grain, |range| {
            for i in range {
                // SAFETY: blocks are disjoint, so each slot is borrowed
                // exclusively by exactly one worker; all slots were
                // initialized by `resize_with` above.
                f(i, &items[i], unsafe { &mut *ptr.get().add(i) });
            }
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for handle in self.workers.lock().expect("workers lock").drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.available.wait(queue).expect("queue wait");
            }
        };
        job();
    }
}

/// A raw pointer that may cross threads; the parallel-map protocol (disjoint
/// writes, write-before-read-back) makes the accesses sound.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let pool = ThreadPool::new(4);
        let items: Vec<u64> = (0..10_000).collect();
        let out = pool.map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3 + 1
        });
        assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn map_matches_serial_for_any_grain() {
        let pool = ThreadPool::new(3);
        let items: Vec<i64> = (0..257).map(|i| i * i - 40).collect();
        let expected: Vec<i64> = items.iter().map(|&x| x.rotate_left(3)).collect();
        for grain in [1, 2, 7, 64, 1000] {
            let got = pool.map_with_grain(&items, grain, |_, &x| x.rotate_left(3));
            assert_eq!(got, expected, "grain {grain}");
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut touched = vec![false; 100];
        let cell = Mutex::new(&mut touched);
        pool.for_each_index(100, |i| {
            cell.lock().unwrap()[i] = true;
        });
        assert!(touched.iter().all(|&t| t));
    }

    #[test]
    fn empty_and_tiny_runs() {
        let pool = ThreadPool::new(4);
        pool.for_each_index(0, |_| panic!("must not run"));
        let out: Vec<u8> = pool.map(&[42u8], |_, &x| x);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn actually_uses_worker_threads() {
        let pool = ThreadPool::new(4);
        let caller = std::thread::current().id();
        let seen_other = AtomicBool::new(false);
        // Tasks long enough that workers get a chance to steal some.
        pool.for_each_index(64, |_| {
            if std::thread::current().id() != caller {
                seen_other.store(true, Ordering::Relaxed);
            }
            std::thread::sleep(std::time::Duration::from_micros(500));
        });
        assert!(seen_other.load(Ordering::Relaxed), "no task ran on a pool worker");
    }

    #[test]
    fn panics_propagate_to_caller() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.for_each_index(16, |i| {
                if i == 7 {
                    panic!("task 7 exploded");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("task 7"), "unexpected payload: {msg}");
        // Pool remains usable after a panicked run.
        assert_eq!(pool.map(&[1, 2, 3], |_, &x: &i32| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn concurrent_scoped_runs_share_the_pool() {
        let pool = Arc::new(ThreadPool::new(3));
        let total = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let total = Arc::clone(&total);
            handles.push(std::thread::spawn(move || {
                pool.for_each_index(100, |_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn ensure_total_grows_never_shrinks() {
        let pool = ThreadPool::new(1);
        pool.ensure_total(3);
        assert_eq!(pool.threads(), 3);
        pool.ensure_total(2);
        assert_eq!(pool.threads(), 3);
    }

    #[test]
    fn map_into_reuses_slot_allocations() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..500).collect();
        let mut arena: Vec<Vec<u8>> = Vec::new();
        pool.map_into(&items, 7, &mut arena, |i, &x, slot| {
            slot.clear();
            slot.extend(std::iter::repeat(i as u8).take(x % 13));
        });
        let caps: Vec<usize> = arena.iter().map(|s| s.capacity()).collect();
        assert_eq!(arena.len(), 500);
        for (i, slot) in arena.iter().enumerate() {
            assert_eq!(slot.len(), i % 13);
            assert!(slot.iter().all(|&b| b == i as u8));
        }
        // A second run must refill the same slots without growing them.
        pool.map_into(&items, 7, &mut arena, |_, &x, slot| {
            slot.clear();
            slot.extend(std::iter::repeat(9u8).take(x % 13));
        });
        assert_eq!(caps, arena.iter().map(|s| s.capacity()).collect::<Vec<_>>());
    }

    #[test]
    fn global_pool_is_shared() {
        let a = ThreadPool::global() as *const _;
        let b = ThreadPool::global() as *const _;
        assert_eq!(a, b);
        assert!(ThreadPool::global().threads() >= 1);
    }
}
