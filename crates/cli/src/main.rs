//! `dbgc-cli`: the standalone DBGC compression tool (the paper's "standalone
//! compression tool" deployment, §3.1).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = dbgc_cli::run(&args, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(match e {
            dbgc_cli::CliError::Usage(_) => 2,
            _ => 1,
        });
    }
}
