//! Hand-rolled argument parsing (the workspace carries no CLI dependency).

use std::fmt;
use std::path::PathBuf;

use dbgc::{ClusteringAlgorithm, DbgcConfig, EntropyProfile, OutlierMode, SplitStrategy};
use dbgc_lidar_sim::ScenePreset;

/// Usage text shown on parse failures and `--help`.
pub const USAGE: &str = "\
dbgc-cli — density-based geometry compression for LiDAR point clouds

USAGE:
    dbgc-cli compress   <in.{bin,ply,pcd}> <out.dbgc> [compression options]
    dbgc-cli decompress <in.dbgc> <out.{bin,ply,pcd}>
    dbgc-cli info       <in.dbgc>
    dbgc-cli roundtrip  <in.{bin,ply,pcd}> [compression options]
    dbgc-cli convert    <in.{bin,ply,pcd}> <out.{bin,ply,pcd}>
    dbgc-cli simulate   <scene> <out.{bin,ply,pcd}> [--seed N] [--frame K]
    dbgc-cli query      <in.dbgc> [query options] [--out <out.{bin,ply,pcd}>]

Point-cloud formats are chosen by file extension: KITTI .bin, PLY .ply
(binary little-endian), PCD .pcd (binary).

COMPRESSION OPTIONS:
    --error-bound <metres>   per-axis error bound q_xyz (default 0.02)
    --groups <n>             radial groups for sparse points (default 3)
    --clustering <alg>       approx | cell | dbscan (default approx)
    --outliers <mode>        quadtree | octree | none (default quadtree)
    --no-radial              disable radial-optimized delta encoding
    --no-conversion          compress sparse channels in Cartesian space
    --threads <n>            intra-frame worker threads: 0 = all cores
                             (default), 1 = serial; output is byte-identical
                             for every setting
    --entropy-profile <p>    narrow | dual | wide (default narrow): how many
                             interleaved range-coder lanes the entropy stages
                             use; dual writes stream version 2, wide version 3
    --metrics-out <path>     write a JSON metrics snapshot (spans, counters,
                             per-section byte accounting) after the run
    --index                  append a spatial directory to the stream so
                             archives can answer queries by partial decode

QUERY OPTIONS (combined with AND; no options selects every point):
    --aabb <x0,y0,z0,x1,y1,z1>   points inside the axis-aligned box
    --class <dense|sparse|outlier>  points from that stream section
    --lod <min..max>             dense-octree LOD depth range (inclusive)
    --invert                     negate the combined query
    --out <path>                 write matching points to a point-cloud file

SCENES:
    kitti-campus kitti-city kitti-residential kitti-road apollo-urban ford-campus";

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `compress <in> <out.dbgc>`: point-cloud file → DBGC stream.
    Compress {
        /// Input point-cloud file (.bin/.ply/.pcd).
        input: PathBuf,
        /// Output .dbgc stream path.
        output: PathBuf,
        /// Compression configuration assembled from the flags.
        config: DbgcConfig,
        /// Where to write the JSON metrics snapshot, when requested.
        metrics_out: Option<PathBuf>,
    },
    /// `decompress <in.dbgc> <out>`: DBGC stream → point-cloud file.
    Decompress {
        /// Input .dbgc stream path.
        input: PathBuf,
        /// Output point-cloud file (.bin/.ply/.pcd).
        output: PathBuf,
    },
    /// `info <in.dbgc>`: header and section breakdown, no decoding.
    Info {
        /// The .dbgc stream to inspect.
        input: PathBuf,
    },
    /// `roundtrip <in>`: compress + decompress + verify in memory.
    Roundtrip {
        /// Input point-cloud file (.bin/.ply/.pcd).
        input: PathBuf,
        /// Compression configuration assembled from the flags.
        config: DbgcConfig,
        /// Where to write the JSON metrics snapshot, when requested.
        metrics_out: Option<PathBuf>,
    },
    /// `convert <in> <out>`: translate between .bin/.ply/.pcd.
    Convert {
        /// Source point-cloud file.
        input: PathBuf,
        /// Destination point-cloud file (format from extension).
        output: PathBuf,
    },
    /// `query <in.dbgc>`: filter an archived stream without full decode.
    Query {
        /// The .dbgc stream to query.
        input: PathBuf,
        /// The assembled query (AND of the given predicates).
        query: dbgc_store::Query,
        /// Optional point-cloud file to write the matches to.
        output: Option<PathBuf>,
    },
    /// `simulate <scene> <out>`: generate a synthetic frame.
    Simulate {
        /// Scene preset to ray-cast.
        scene: ScenePreset,
        /// Output point-cloud file.
        output: PathBuf,
        /// Layout/noise seed.
        seed: u64,
        /// Frame index along the simulated drive.
        frame: u32,
    },
    /// `--help`: print usage.
    Help,
}

/// Why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// No command word was given.
    MissingCommand,
    /// The command word is not one of the known commands.
    UnknownCommand(String),
    /// A required positional argument or flag value is absent.
    MissingArgument(&'static str),
    /// A flag that no command recognizes.
    UnknownFlag(String),
    /// A flag value failed to parse or is out of range.
    BadValue {
        /// The flag or positional slot that failed.
        flag: &'static str,
        /// The offending value.
        value: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingCommand => write!(f, "no command given"),
            ParseError::UnknownCommand(c) => write!(f, "unknown command '{c}'"),
            ParseError::MissingArgument(what) => write!(f, "missing argument: {what}"),
            ParseError::UnknownFlag(flag) => write!(f, "unknown flag '{flag}'"),
            ParseError::BadValue { flag, value } => {
                write!(f, "invalid value '{value}' for {flag}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

fn parse_scene(name: &str) -> Option<ScenePreset> {
    ScenePreset::all().into_iter().find(|p| p.name() == name)
}

/// Parse the compression-option flags shared by `compress` and `roundtrip`:
/// the [`DbgcConfig`] plus the optional `--metrics-out` snapshot path.
fn parse_config(args: &[String]) -> Result<(DbgcConfig, Option<PathBuf>), ParseError> {
    let mut config = DbgcConfig::default();
    let mut metrics_out = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--error-bound" => {
                let v = args.get(i + 1).ok_or(ParseError::MissingArgument("--error-bound"))?;
                config.q_xyz = v
                    .parse::<f64>()
                    .ok()
                    .filter(|q| *q > 0.0)
                    .ok_or(ParseError::BadValue { flag: "--error-bound", value: v.clone() })?;
                i += 2;
            }
            "--groups" => {
                let v = args.get(i + 1).ok_or(ParseError::MissingArgument("--groups"))?;
                config.groups = v
                    .parse::<usize>()
                    .ok()
                    .filter(|g| *g >= 1)
                    .ok_or(ParseError::BadValue { flag: "--groups", value: v.clone() })?;
                i += 2;
            }
            "--clustering" => {
                let v = args.get(i + 1).ok_or(ParseError::MissingArgument("--clustering"))?;
                let alg = match v.as_str() {
                    "approx" => ClusteringAlgorithm::Approximate,
                    "cell" => ClusteringAlgorithm::CellBased,
                    "dbscan" => ClusteringAlgorithm::Dbscan,
                    _ => {
                        return Err(ParseError::BadValue { flag: "--clustering", value: v.clone() })
                    }
                };
                config.split = SplitStrategy::Density(alg);
                i += 2;
            }
            "--outliers" => {
                let v = args.get(i + 1).ok_or(ParseError::MissingArgument("--outliers"))?;
                config.outlier_mode = match v.as_str() {
                    "quadtree" => OutlierMode::Quadtree,
                    "octree" => OutlierMode::Octree,
                    "none" => OutlierMode::None,
                    _ => return Err(ParseError::BadValue { flag: "--outliers", value: v.clone() }),
                };
                i += 2;
            }
            "--no-radial" => {
                config.radial_optimized = false;
                i += 1;
            }
            "--threads" => {
                let v = args.get(i + 1).ok_or(ParseError::MissingArgument("--threads"))?;
                config.threads = v
                    .parse::<usize>()
                    .map_err(|_| ParseError::BadValue { flag: "--threads", value: v.clone() })?;
                i += 2;
            }
            "--no-conversion" => {
                config.spherical_conversion = false;
                config.radial_optimized = false;
                i += 1;
            }
            "--entropy-profile" => {
                let v = args.get(i + 1).ok_or(ParseError::MissingArgument("--entropy-profile"))?;
                config.entropy_profile = match v.as_str() {
                    "narrow" => EntropyProfile::Narrow,
                    "dual" => EntropyProfile::Dual,
                    "wide" => EntropyProfile::Wide,
                    _ => {
                        return Err(ParseError::BadValue {
                            flag: "--entropy-profile",
                            value: v.clone(),
                        })
                    }
                };
                i += 2;
            }
            "--metrics-out" => {
                let v = args.get(i + 1).ok_or(ParseError::MissingArgument("--metrics-out"))?;
                metrics_out = Some(PathBuf::from(v));
                i += 2;
            }
            "--index" => {
                config.spatial_index = true;
                i += 1;
            }
            other => return Err(ParseError::UnknownFlag(other.to_string())),
        }
    }
    Ok((config, metrics_out))
}

/// Parse the `query` flags into an AND-combined [`dbgc_store::Query`] plus
/// an optional output path.
fn parse_query(args: &[String]) -> Result<(dbgc_store::Query, Option<PathBuf>), ParseError> {
    use dbgc_store::{DensityClass, Query};
    let mut predicates: Vec<Query> = Vec::new();
    let mut invert = false;
    let mut output = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--aabb" => {
                let v = args.get(i + 1).ok_or(ParseError::MissingArgument("--aabb"))?;
                let nums: Vec<f64> =
                    v.split(',').filter_map(|s| s.trim().parse::<f64>().ok()).collect();
                let bad = || ParseError::BadValue { flag: "--aabb", value: v.clone() };
                if nums.len() != 6 || nums.iter().any(|n| !n.is_finite()) {
                    return Err(bad());
                }
                let (min, max) = (
                    dbgc_geom::Point3::new(nums[0], nums[1], nums[2]),
                    dbgc_geom::Point3::new(nums[3], nums[4], nums[5]),
                );
                if min.x > max.x || min.y > max.y || min.z > max.z {
                    return Err(bad());
                }
                predicates.push(Query::Aabb(dbgc_geom::Aabb { min, max }));
                i += 2;
            }
            "--class" => {
                let v = args.get(i + 1).ok_or(ParseError::MissingArgument("--class"))?;
                let class = match v.as_str() {
                    "dense" => DensityClass::Dense,
                    "sparse" => DensityClass::Sparse,
                    "outlier" => DensityClass::Outlier,
                    _ => return Err(ParseError::BadValue { flag: "--class", value: v.clone() }),
                };
                predicates.push(Query::DensityClass(class));
                i += 2;
            }
            "--lod" => {
                let v = args.get(i + 1).ok_or(ParseError::MissingArgument("--lod"))?;
                let bad = || ParseError::BadValue { flag: "--lod", value: v.clone() };
                let (lo, hi) = v.split_once("..").ok_or_else(bad)?;
                let min: u32 = lo.parse().map_err(|_| bad())?;
                let max: u32 = hi.parse().map_err(|_| bad())?;
                if min > max {
                    return Err(bad());
                }
                predicates.push(Query::Lod { min, max });
                i += 2;
            }
            "--invert" => {
                invert = true;
                i += 1;
            }
            "--out" => {
                let v = args.get(i + 1).ok_or(ParseError::MissingArgument("--out"))?;
                output = Some(PathBuf::from(v));
                i += 2;
            }
            other => return Err(ParseError::UnknownFlag(other.to_string())),
        }
    }
    let mut query = predicates.into_iter().reduce(dbgc_store::Query::and).unwrap_or(Query::All);
    if invert {
        query = Query::not(query);
    }
    Ok((query, output))
}

/// Parse an argument vector (without `argv\[0\]`).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some(command) = args.first() else {
        return Err(ParseError::MissingCommand);
    };
    match command.as_str() {
        "--help" | "-h" | "help" => Ok(Command::Help),
        "compress" => {
            let input = args.get(1).ok_or(ParseError::MissingArgument("<in.bin>"))?;
            let output = args.get(2).ok_or(ParseError::MissingArgument("<out.dbgc>"))?;
            let (config, metrics_out) = parse_config(&args[3..])?;
            Ok(Command::Compress {
                input: input.into(),
                output: output.into(),
                config,
                metrics_out,
            })
        }
        "decompress" => {
            let input = args.get(1).ok_or(ParseError::MissingArgument("<in.dbgc>"))?;
            let output = args.get(2).ok_or(ParseError::MissingArgument("<out.bin>"))?;
            Ok(Command::Decompress { input: input.into(), output: output.into() })
        }
        "info" => {
            let input = args.get(1).ok_or(ParseError::MissingArgument("<in.dbgc>"))?;
            Ok(Command::Info { input: input.into() })
        }
        "roundtrip" => {
            let input = args.get(1).ok_or(ParseError::MissingArgument("<in.bin>"))?;
            let (config, metrics_out) = parse_config(&args[2..])?;
            Ok(Command::Roundtrip { input: input.into(), config, metrics_out })
        }
        "convert" => {
            let input = args.get(1).ok_or(ParseError::MissingArgument("<in>"))?;
            let output = args.get(2).ok_or(ParseError::MissingArgument("<out>"))?;
            Ok(Command::Convert { input: input.into(), output: output.into() })
        }
        "query" => {
            let input = args.get(1).ok_or(ParseError::MissingArgument("<in.dbgc>"))?;
            let (query, output) = parse_query(&args[2..])?;
            Ok(Command::Query { input: input.into(), query, output })
        }
        "simulate" => {
            let scene_name = args.get(1).ok_or(ParseError::MissingArgument("<scene>"))?;
            let scene = parse_scene(scene_name)
                .ok_or(ParseError::BadValue { flag: "<scene>", value: scene_name.clone() })?;
            let output = args.get(2).ok_or(ParseError::MissingArgument("<out.bin>"))?;
            let mut seed = 1u64;
            let mut frame = 0u32;
            let mut i = 3;
            while i < args.len() {
                match args[i].as_str() {
                    "--seed" => {
                        let v = args.get(i + 1).ok_or(ParseError::MissingArgument("--seed"))?;
                        seed = v.parse().map_err(|_| ParseError::BadValue {
                            flag: "--seed",
                            value: v.clone(),
                        })?;
                        i += 2;
                    }
                    "--frame" => {
                        let v = args.get(i + 1).ok_or(ParseError::MissingArgument("--frame"))?;
                        frame = v.parse().map_err(|_| ParseError::BadValue {
                            flag: "--frame",
                            value: v.clone(),
                        })?;
                        i += 2;
                    }
                    other => return Err(ParseError::UnknownFlag(other.to_string())),
                }
            }
            Ok(Command::Simulate { scene, output: output.into(), seed, frame })
        }
        other => Err(ParseError::UnknownCommand(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_compress_defaults() {
        let cmd = parse(&argv("compress in.bin out.dbgc")).unwrap();
        let Command::Compress { input, output, config, metrics_out } = cmd else {
            panic!("wrong command")
        };
        assert_eq!(input, PathBuf::from("in.bin"));
        assert_eq!(output, PathBuf::from("out.dbgc"));
        assert_eq!(config, DbgcConfig::default());
        assert_eq!(metrics_out, None);
    }

    #[test]
    fn parse_metrics_out() {
        let cmd = parse(&argv("compress a b --metrics-out m.json --threads 2")).unwrap();
        let Command::Compress { config, metrics_out, .. } = cmd else { panic!("wrong command") };
        assert_eq!(metrics_out, Some(PathBuf::from("m.json")));
        assert_eq!(config.threads, 2);

        let cmd = parse(&argv("roundtrip a --metrics-out rt.json")).unwrap();
        let Command::Roundtrip { metrics_out, .. } = cmd else { panic!("wrong command") };
        assert_eq!(metrics_out, Some(PathBuf::from("rt.json")));

        assert_eq!(
            parse(&argv("compress a b --metrics-out")),
            Err(ParseError::MissingArgument("--metrics-out"))
        );
    }

    #[test]
    fn parse_compress_with_options() {
        let cmd = parse(&argv(
            "compress a b --error-bound 0.005 --groups 2 --clustering cell \
             --outliers octree --no-radial",
        ))
        .unwrap();
        let Command::Compress { config, .. } = cmd else { panic!("wrong command") };
        assert_eq!(config.q_xyz, 0.005);
        assert_eq!(config.groups, 2);
        assert_eq!(config.split, SplitStrategy::Density(ClusteringAlgorithm::CellBased));
        assert_eq!(config.outlier_mode, OutlierMode::Octree);
        assert!(!config.radial_optimized);
        config.validate().unwrap();
    }

    #[test]
    fn parse_threads() {
        let cmd = parse(&argv("compress a b --threads 4")).unwrap();
        let Command::Compress { config, .. } = cmd else { panic!("wrong command") };
        assert_eq!(config.threads, 4);
        assert!(matches!(
            parse(&argv("compress a b --threads many")),
            Err(ParseError::BadValue { flag: "--threads", .. })
        ));
    }

    #[test]
    fn parse_entropy_profile() {
        for (word, profile) in [
            ("narrow", EntropyProfile::Narrow),
            ("dual", EntropyProfile::Dual),
            ("wide", EntropyProfile::Wide),
        ] {
            let cmd = parse(&argv(&format!("compress a b --entropy-profile {word}"))).unwrap();
            let Command::Compress { config, .. } = cmd else { panic!("wrong command") };
            assert_eq!(config.entropy_profile, profile);
            config.validate().unwrap();
        }
        assert!(matches!(
            parse(&argv("compress a b --entropy-profile turbo")),
            Err(ParseError::BadValue { flag: "--entropy-profile", .. })
        ));
        assert_eq!(
            parse(&argv("compress a b --entropy-profile")),
            Err(ParseError::MissingArgument("--entropy-profile"))
        );
    }

    #[test]
    fn no_conversion_also_disables_radial() {
        let cmd = parse(&argv("roundtrip a --no-conversion")).unwrap();
        let Command::Roundtrip { config, .. } = cmd else { panic!("wrong command") };
        assert!(!config.spherical_conversion && !config.radial_optimized);
        config.validate().unwrap();
    }

    #[test]
    fn parse_simulate() {
        let cmd = parse(&argv("simulate kitti-city out.bin --seed 9 --frame 3")).unwrap();
        assert_eq!(
            cmd,
            Command::Simulate {
                scene: ScenePreset::KittiCity,
                output: "out.bin".into(),
                seed: 9,
                frame: 3
            }
        );
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(parse(&[]), Err(ParseError::MissingCommand));
        assert_eq!(parse(&argv("squash a b")), Err(ParseError::UnknownCommand("squash".into())));
        assert_eq!(
            parse(&argv("compress only-one")),
            Err(ParseError::MissingArgument("<out.dbgc>"))
        );
        assert!(matches!(
            parse(&argv("compress a b --error-bound zero")),
            Err(ParseError::BadValue { flag: "--error-bound", .. })
        ));
        assert!(matches!(
            parse(&argv("compress a b --error-bound -1")),
            Err(ParseError::BadValue { .. })
        ));
        assert!(matches!(
            parse(&argv("simulate mars out.bin")),
            Err(ParseError::BadValue { flag: "<scene>", .. })
        ));
        assert!(matches!(
            parse(&argv("compress a b --frobnicate")),
            Err(ParseError::UnknownFlag(_))
        ));
    }

    #[test]
    fn parse_index_flag() {
        let cmd = parse(&argv("compress a b --index")).unwrap();
        let Command::Compress { config, .. } = cmd else { panic!("wrong command") };
        assert!(config.spatial_index);
    }

    #[test]
    fn parse_query() {
        use dbgc_store::{DensityClass, Query};
        let cmd =
            parse(&argv("query in.dbgc --aabb -1,-2,-3,4,5,6 --class sparse --out m.ply")).unwrap();
        let Command::Query { input, query, output } = cmd else { panic!("wrong command") };
        assert_eq!(input, PathBuf::from("in.dbgc"));
        assert_eq!(output, Some(PathBuf::from("m.ply")));
        let Query::And(a, b) = query else { panic!("expected AND") };
        assert!(matches!(*a, Query::Aabb(bb) if bb.min.x == -1.0 && bb.max.z == 6.0));
        assert_eq!(*b, Query::DensityClass(DensityClass::Sparse));

        assert_eq!(
            parse(&argv("query in.dbgc")).unwrap(),
            Command::Query { input: "in.dbgc".into(), query: Query::All, output: None }
        );
        let Command::Query { query, .. } = parse(&argv("query f --lod 2..5 --invert")).unwrap()
        else {
            panic!("wrong command")
        };
        assert_eq!(query, Query::not(Query::Lod { min: 2, max: 5 }));

        assert!(matches!(
            parse(&argv("query f --aabb 1,2,3")),
            Err(ParseError::BadValue { flag: "--aabb", .. })
        ));
        assert!(matches!(
            parse(&argv("query f --aabb 9,0,0,1,1,1")),
            Err(ParseError::BadValue { flag: "--aabb", .. })
        ));
        assert!(matches!(
            parse(&argv("query f --lod 5..2")),
            Err(ParseError::BadValue { flag: "--lod", .. })
        ));
        assert!(matches!(
            parse(&argv("query f --class medium")),
            Err(ParseError::BadValue { flag: "--class", .. })
        ));
    }

    #[test]
    fn parse_convert() {
        let cmd = parse(&argv("convert a.bin b.ply")).unwrap();
        assert_eq!(cmd, Command::Convert { input: "a.bin".into(), output: "b.ply".into() });
    }

    #[test]
    fn help_variants() {
        for h in ["--help", "-h", "help"] {
            assert_eq!(parse(&argv(h)).unwrap(), Command::Help);
        }
    }
}
