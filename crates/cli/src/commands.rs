//! Command implementations.

use std::io::Write;

use std::path::Path;

use dbgc::{decompress, inspect, Dbgc};
use dbgc_geom::{ErrorReport, PointCloud};
use dbgc_lidar_sim::{kitti, pcd, ply};

use crate::args::{Command, USAGE};
use crate::CliError;

/// Load a point cloud, dispatching on the file extension.
pub fn read_cloud(path: &Path) -> Result<PointCloud, CliError> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("bin") => Ok(kitti::read_bin(path)?),
        Some("ply") => Ok(ply::read_ply(path)?),
        Some("pcd") => Ok(pcd::read_pcd(path)?),
        other => Err(CliError::Invalid(format!(
            "unknown point-cloud extension {other:?} (expected bin/ply/pcd): {}",
            path.display()
        ))),
    }
}

/// Write a point cloud, dispatching on the file extension.
pub fn write_cloud(path: &Path, cloud: &PointCloud) -> Result<(), CliError> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("bin") => Ok(kitti::write_bin(path, cloud)?),
        Some("ply") => Ok(ply::write_ply(path, cloud, ply::PlyFormat::BinaryLittleEndian)?),
        Some("pcd") => Ok(pcd::write_pcd(path, cloud, pcd::PcdFormat::Binary)?),
        other => Err(CliError::Invalid(format!(
            "unknown point-cloud extension {other:?} (expected bin/ply/pcd): {}",
            path.display()
        ))),
    }
}

/// Build the collector for a `--metrics-out` run, pre-labelled with the
/// command and input path.
fn metrics_collector(command: &str, input: &Path) -> dbgc::metrics::Collector {
    let collector = dbgc::metrics::Collector::new();
    collector.set_label("command", command);
    collector.set_label("input", &input.display().to_string());
    collector
}

/// Write the collector's snapshot as JSON to `path`.
fn write_metrics_snapshot(
    path: &Path,
    collector: &dbgc::metrics::Collector,
) -> Result<(), CliError> {
    std::fs::write(path, collector.snapshot().to_json())?;
    Ok(())
}

/// Execute a parsed command, writing its report to `out`.
pub fn execute(command: Command, out: &mut impl Write) -> Result<(), CliError> {
    match command {
        Command::Help => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        Command::Compress { input, output, config, metrics_out } => {
            config.validate().map_err(CliError::Invalid)?;
            let cloud = read_cloud(&input)?;
            let dbgc = Dbgc::new(config);
            let collector = metrics_out.as_ref().map(|_| metrics_collector("compress", &input));
            let frame = match &collector {
                Some(c) => dbgc.compress_with_metrics(&cloud, c)?,
                None => dbgc.compress(&cloud)?,
            };
            std::fs::write(&output, &frame.bytes)?;
            if let (Some(path), Some(c)) = (&metrics_out, &collector) {
                c.set_gauge("compression_ratio", frame.compression_ratio());
                c.set_gauge("bits_per_point", frame.stats.bits_per_point());
                write_metrics_snapshot(path, c)?;
                writeln!(out, "metrics snapshot -> {}", path.display())?;
            }
            let s = &frame.stats;
            writeln!(
                out,
                "{} -> {}: {} points, {} bytes, ratio {:.2}x ({:.2} bits/point)",
                input.display(),
                output.display(),
                s.total_points,
                frame.bytes.len(),
                frame.compression_ratio(),
                s.bits_per_point()
            )?;
            writeln!(
                out,
                "split: {:.1}% dense | {} polylines | {:.2}% outliers",
                100.0 * s.dense_fraction(),
                s.polylines,
                100.0 * s.outlier_fraction()
            )?;
            Ok(())
        }
        Command::Decompress { input, output } => {
            let bytes = std::fs::read(&input)?;
            let (cloud, _) = decompress(&bytes)?;
            write_cloud(&output, &cloud)?;
            writeln!(
                out,
                "{} -> {}: {} points restored",
                input.display(),
                output.display(),
                cloud.len()
            )?;
            Ok(())
        }
        Command::Info { input } => {
            let bytes = std::fs::read(&input)?;
            let info = inspect(&bytes)?;
            writeln!(out, "{}:", input.display())?;
            writeln!(out, "  points        {}", info.points)?;
            writeln!(out, "  error bound   {} m", info.q_xyz)?;
            writeln!(
                out,
                "  mode          {}{}",
                if info.spherical { "spherical" } else { "cartesian" },
                if info.radial { " + radial-optimized" } else { "" }
            )?;
            writeln!(out, "  groups        {}", info.groups)?;
            writeln!(out, "  total bytes   {}", info.total_bytes)?;
            writeln!(out, "    dense       {}", info.dense_bytes)?;
            writeln!(out, "    sparse      {}", info.sparse_bytes)?;
            writeln!(out, "    outliers    {}", info.outlier_bytes)?;
            if info.index_bytes > 0 {
                writeln!(out, "    index       {}", info.index_bytes)?;
            }
            writeln!(out, "  ratio         {:.2}x", info.compression_ratio())?;
            Ok(())
        }
        Command::Query { input, query, output } => {
            let bytes = std::fs::read(&input)?;
            let mut store = dbgc_store::FrameStore::new();
            store.ingest(bytes, 0).map_err(|e| CliError::Invalid(e.to_string()))?;
            let indexed = store.frames()[0].has_index();
            let res = store.query(&query).map_err(|e| CliError::Invalid(e.to_string()))?;
            writeln!(
                out,
                "{}: {} matching points ({})",
                input.display(),
                res.points.len(),
                if indexed { "partial decode" } else { "full decode, no index" }
            )?;
            writeln!(
                out,
                "  bytes touched {} / {} ({:.1}%)",
                res.bytes_touched,
                res.bytes_total,
                100.0 * res.bytes_touched as f64 / res.bytes_total.max(1) as f64
            )?;
            if let Some(path) = output {
                let cloud: PointCloud = res.points.iter().map(|r| r.point.pos).collect();
                write_cloud(&path, &cloud)?;
                writeln!(out, "  matches -> {}", path.display())?;
            }
            Ok(())
        }
        Command::Roundtrip { input, config, metrics_out } => {
            config.validate().map_err(CliError::Invalid)?;
            let q = config.q_xyz;
            let cloud = read_cloud(&input)?;
            let dbgc = Dbgc::new(config);
            let collector = metrics_out.as_ref().map(|_| metrics_collector("roundtrip", &input));
            let frame = match &collector {
                Some(c) => dbgc.compress_with_metrics(&cloud, c)?,
                None => dbgc.compress(&cloud)?,
            };
            let (restored, _) = match &collector {
                Some(c) => dbgc::decompress_with_metrics(&frame.bytes, c)?,
                None => decompress(&frame.bytes)?,
            };
            let report = ErrorReport::paired(&cloud, &restored, &frame.mapping)
                .map_err(|e| CliError::Invalid(e.to_string()))?;
            let bound = 3f64.sqrt() * q;
            writeln!(
                out,
                "{}: {} points, ratio {:.2}x, max error {:.4} m (bound {:.4} m) -> {}",
                input.display(),
                cloud.len(),
                frame.compression_ratio(),
                report.max_euclidean_error,
                bound,
                if report.max_euclidean_error <= bound * (1.0 + 1e-9) { "OK" } else { "VIOLATION" }
            )?;
            if let (Some(path), Some(c)) = (&metrics_out, &collector) {
                c.set_gauge("compression_ratio", frame.compression_ratio());
                c.set_gauge("max_euclidean_error", report.max_euclidean_error);
                write_metrics_snapshot(path, c)?;
                writeln!(out, "metrics snapshot -> {}", path.display())?;
            }
            if report.max_euclidean_error > bound * (1.0 + 1e-9) {
                return Err(CliError::Invalid("error bound violated".into()));
            }
            Ok(())
        }
        Command::Convert { input, output } => {
            let cloud = read_cloud(&input)?;
            write_cloud(&output, &cloud)?;
            writeln!(
                out,
                "{} -> {}: {} points converted",
                input.display(),
                output.display(),
                cloud.len()
            )?;
            Ok(())
        }
        Command::Simulate { scene, output, seed, frame } => {
            let cloud = dbgc_lidar_sim::frame(scene, seed, frame);
            write_cloud(&output, &cloud)?;
            writeln!(
                out,
                "wrote {} ({} points, scene {}, seed {seed}, frame {frame})",
                output.display(),
                cloud.len(),
                scene.name()
            )?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use dbgc_geom::{Point3, PointCloud};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dbgc_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn ring_bin(name: &str, n: usize) -> PathBuf {
        let cloud: PointCloud = (0..n)
            .map(|i| {
                let th = i as f64 / n as f64 * std::f64::consts::TAU;
                Point3::new(25.0 * th.cos(), 25.0 * th.sin(), -1.7)
            })
            .collect();
        let path = tmp(name);
        kitti::write_bin(&path, &cloud).unwrap();
        path
    }

    fn run_str(line: &str) -> String {
        let argv: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        let mut out = Vec::new();
        execute(parse(&argv).unwrap(), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn compress_decompress_info_flow() {
        let bin = ring_bin("flow.bin", 4000);
        let dbgc_path = tmp("flow.dbgc");
        let restored = tmp("flow.out.bin");

        let report = run_str(&format!(
            "compress {} {} --error-bound 0.02",
            bin.display(),
            dbgc_path.display()
        ));
        assert!(report.contains("4000 points"), "{report}");
        assert!(report.contains("ratio"));

        let report = run_str(&format!("info {}", dbgc_path.display()));
        assert!(report.contains("points        4000"), "{report}");
        assert!(report.contains("spherical + radial-optimized"));

        let report = run_str(&format!("decompress {} {}", dbgc_path.display(), restored.display()));
        assert!(report.contains("4000 points restored"));

        let back = kitti::read_bin(&restored).unwrap();
        assert_eq!(back.len(), 4000);
    }

    #[test]
    fn compress_writes_metrics_snapshot() {
        let bin = ring_bin("met.bin", 2500);
        let dbgc_path = tmp("met.dbgc");
        let snap_path = tmp("met.json");
        let report = run_str(&format!(
            "compress {} {} --metrics-out {}",
            bin.display(),
            dbgc_path.display(),
            snap_path.display()
        ));
        assert!(report.contains("metrics snapshot"), "{report}");
        let json = std::fs::read_to_string(&snap_path).unwrap();
        for needle in [
            "\"schema\": \"dbgc-metrics\"",
            "\"version\": 1",
            "\"command\": \"compress\"",
            "\"compress.frames\": 1",
            "\"compression_ratio\"",
            "\"name\": \"compress\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // The snapshot's byte channels must partition the written stream.
        let stream_len = std::fs::metadata(&dbgc_path).unwrap().len();
        assert!(json.contains("\"header\""), "{json}");
        let collector = dbgc::metrics::Collector::new();
        let cloud = kitti::read_bin(&bin).unwrap();
        let frame = Dbgc::new(dbgc::DbgcConfig::default())
            .compress_with_metrics(&cloud, &collector)
            .unwrap();
        assert_eq!(frame.bytes.len() as u64, stream_len);
        assert_eq!(collector.snapshot().bytes_total(), stream_len);
    }

    #[test]
    fn roundtrip_metrics_snapshot_has_decode_spans() {
        let bin = ring_bin("metrt.bin", 1500);
        let snap_path = tmp("metrt.json");
        let report =
            run_str(&format!("roundtrip {} --metrics-out {}", bin.display(), snap_path.display()));
        assert!(report.contains("-> OK"), "{report}");
        let json = std::fs::read_to_string(&snap_path).unwrap();
        assert!(json.contains("\"name\": \"decompress\""), "{json}");
        assert!(json.contains("\"decompress.frames\": 1"), "{json}");
        assert!(json.contains("\"max_euclidean_error\""), "{json}");
    }

    #[test]
    fn roundtrip_reports_ok() {
        let bin = ring_bin("rt.bin", 3000);
        let report = run_str(&format!("roundtrip {} --error-bound 0.01", bin.display()));
        assert!(report.contains("-> OK"), "{report}");
    }

    #[test]
    fn simulate_writes_a_frame() {
        let out_path = tmp("sim.bin");
        let report =
            run_str(&format!("simulate kitti-road {} --seed 2 --frame 1", out_path.display()));
        assert!(report.contains("kitti-road"), "{report}");
        let cloud = kitti::read_bin(&out_path).unwrap();
        assert!(cloud.len() > 50_000);
    }

    #[test]
    fn query_flow_partial_and_full() {
        let bin = ring_bin("query.bin", 5000);
        let indexed = tmp("query.dbgc");
        let plain = tmp("query_plain.dbgc");
        run_str(&format!("compress {} {} --index", bin.display(), indexed.display()));
        run_str(&format!("compress {} {}", bin.display(), plain.display()));

        let report = run_str(&format!("info {}", indexed.display()));
        assert!(report.contains("index"), "{report}");

        // A selective box over the +x rim: the indexed stream answers it by
        // partial decode without reading most section bytes.
        let matches_out = tmp("query_hits.bin");
        let report = run_str(&format!(
            "query {} --aabb 20,-9,-3,26,9,0 --out {}",
            indexed.display(),
            matches_out.display()
        ));
        assert!(report.contains("partial decode"), "{report}");
        let hits = kitti::read_bin(&matches_out).unwrap();
        assert!(!hits.is_empty() && hits.len() < 5000, "{} hits", hits.len());

        // Same query on the index-less stream: same points, full decode.
        let report_plain = run_str(&format!("query {} --aabb 20,-9,-3,26,9,0", plain.display()));
        assert!(report_plain.contains("full decode, no index"), "{report_plain}");
        let n: usize = report_plain
            .split(": ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        assert_eq!(n, hits.len());

        // `query` with no predicates returns everything.
        let report_all = run_str(&format!("query {}", indexed.display()));
        assert!(report_all.contains("5000 matching points"), "{report_all}");
    }

    #[test]
    fn convert_between_formats() {
        let bin = ring_bin("conv.bin", 600);
        let ply_path = tmp("conv.ply");
        let pcd_path = tmp("conv.pcd");
        run_str(&format!("convert {} {}", bin.display(), ply_path.display()));
        run_str(&format!("convert {} {}", ply_path.display(), pcd_path.display()));
        let back = dbgc_lidar_sim::pcd::read_pcd(&pcd_path).unwrap();
        assert_eq!(back.len(), 600);
    }

    #[test]
    fn compress_from_ply() {
        let bin = ring_bin("cp.bin", 900);
        let ply_path = tmp("cp.ply");
        run_str(&format!("convert {} {}", bin.display(), ply_path.display()));
        let dbgc_path = tmp("cp.dbgc");
        let report = run_str(&format!("compress {} {}", ply_path.display(), dbgc_path.display()));
        assert!(report.contains("900 points"), "{report}");
    }

    #[test]
    fn unknown_extension_rejected() {
        let argv: Vec<String> =
            ["convert", "a.xyz", "b.bin"].iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        assert!(matches!(execute(parse(&argv).unwrap(), &mut out), Err(CliError::Invalid(_))));
    }

    #[test]
    fn help_prints_usage() {
        let report = run_str("--help");
        assert!(report.contains("USAGE"));
    }

    #[test]
    fn missing_file_is_io_error() {
        let argv: Vec<String> =
            ["info", "/nonexistent/never.dbgc"].iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        assert!(matches!(execute(parse(&argv).unwrap(), &mut out), Err(CliError::Io(_))));
    }
}
