//! Implementation of the `dbgc-cli` command-line tool.
//!
//! The binary (`src/main.rs`) is a thin shell around [`run`]; keeping the
//! logic in a library makes every command, and the argument parser itself,
//! unit-testable without spawning processes.
//!
//! Commands:
//!
//! * `compress <in.bin> <out.dbgc> [options]` — KITTI `.bin` → DBGC stream;
//! * `decompress <in.dbgc> <out.bin>` — DBGC stream → KITTI `.bin`;
//! * `info <in.dbgc>` — header and section breakdown, no decoding;
//! * `roundtrip <in.bin> [options]` — compress + decompress + verify in
//!   memory, reporting ratio and measured error;
//! * `simulate <scene> <out.bin> [--seed N] [--frame K]` — generate a
//!   synthetic frame for experimentation.

#![warn(missing_docs)]

pub mod args;
pub mod commands;

use std::fmt;

pub use args::{parse, Command, ParseError};

/// CLI failure: bad usage or a failing command.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing failed; usage is appended to the message.
    Usage(ParseError),
    /// Reading or writing a file or stream failed.
    Io(std::io::Error),
    /// Compression or decompression failed.
    Dbgc(dbgc::DbgcError),
    /// Invalid configuration or input content.
    Invalid(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(e) => write!(f, "{e}\n\n{}", args::USAGE),
            CliError::Io(e) => write!(f, "I/O error: {e}"),
            CliError::Dbgc(e) => write!(f, "{e}"),
            CliError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<dbgc::DbgcError> for CliError {
    fn from(e: dbgc::DbgcError) -> Self {
        CliError::Dbgc(e)
    }
}

/// Parse arguments (excluding `argv\[0\]`) and run the selected command,
/// writing human-readable output to `out`.
pub fn run(argv: &[String], out: &mut impl std::io::Write) -> Result<(), CliError> {
    let command = parse(argv).map_err(CliError::Usage)?;
    commands::execute(command, out)
}
