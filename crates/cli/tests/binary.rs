//! Smoke tests for the actual `dbgc-cli` binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_dbgc-cli")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dbgc_cli_bin_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn help_exits_zero() {
    let out = Command::new(bin()).arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn bad_usage_exits_two() {
    let out = Command::new(bin()).arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_file_exits_one() {
    let out = Command::new(bin()).args(["info", "/nonexistent/never.dbgc"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn full_flow_through_the_binary() {
    let bin_path = tmp("bflow.bin");
    let dbgc_path = tmp("bflow.dbgc");
    let restored = tmp("bflow.out.ply");

    // Write a small .bin via the library (the simulate command would produce
    // a full-size frame, which is slow under the default test profile).
    let cloud: dbgc_geom::PointCloud = (0..2000)
        .map(|i| {
            let th = i as f64 / 2000.0 * std::f64::consts::TAU;
            dbgc_geom::Point3::new(30.0 * th.cos(), 30.0 * th.sin(), -1.7)
        })
        .collect();
    dbgc_lidar_sim::kitti::write_bin(&bin_path, &cloud).unwrap();

    let out = Command::new(bin())
        .args(["compress", bin_path.to_str().unwrap(), dbgc_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("2000 points"));

    let out = Command::new(bin()).args(["info", dbgc_path.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());

    let out = Command::new(bin())
        .args(["decompress", dbgc_path.to_str().unwrap(), restored.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let back = dbgc_lidar_sim::ply::read_ply(&restored).unwrap();
    assert_eq!(back.len(), 2000);
}
