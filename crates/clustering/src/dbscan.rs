//! Classic DBSCAN \[15\], grid-accelerated, as the reference algorithm.

use dbgc_geom::Point3;

use crate::grid::UniformGrid;
use crate::params::ClusterParams;
use crate::DensitySplit;

/// Full DBSCAN output: cluster labels plus the dense/sparse split.
#[derive(Debug, Clone)]
pub struct DbscanResult {
    /// `labels[i] = Some(c)` when point `i` belongs to cluster `c`; `None`
    /// for noise.
    pub labels: Vec<Option<u32>>,
    /// `core[i]` is true when point `i` passed the `minPts` density test.
    pub core: Vec<bool>,
    /// Number of clusters found.
    pub clusters: usize,
}

impl DbscanResult {
    /// Dense points are exactly the clustered (non-noise) points.
    pub fn split(&self) -> DensitySplit {
        DensitySplit { dense: self.labels.iter().map(Option::is_some).collect() }
    }
}

/// Run DBSCAN over `points`.
///
/// Core points have `count_within(ε) >= minPts` (count includes the point
/// itself); clusters grow through core points; border points join the first
/// cluster that reaches them.
pub fn dbscan(points: &[Point3], params: ClusterParams) -> DbscanResult {
    let grid = UniformGrid::build(points, params.eps);
    let mut labels: Vec<Option<u32>> = vec![None; points.len()];
    let mut core = vec![false; points.len()];
    let mut visited = vec![false; points.len()];
    let mut clusters = 0u32;
    let mut nbrs = Vec::new();
    let mut stack: Vec<u32> = Vec::new();

    for i in 0..points.len() {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        if grid.count_within(i, params.eps) < params.min_pts {
            continue; // noise (may become a border point later)
        }
        // Start a new cluster from core point i.
        core[i] = true;
        let cluster = clusters;
        clusters += 1;
        labels[i] = Some(cluster);
        grid.neighbors_within(i, params.eps, &mut nbrs);
        stack.clear();
        stack.extend_from_slice(&nbrs);
        while let Some(j) = stack.pop() {
            let j = j as usize;
            if labels[j].is_none() {
                labels[j] = Some(cluster);
            }
            if visited[j] {
                continue;
            }
            visited[j] = true;
            if grid.count_within(j, params.eps) >= params.min_pts {
                core[j] = true;
                grid.neighbors_within(j, params.eps, &mut nbrs);
                stack.extend_from_slice(&nbrs);
            }
        }
    }
    DbscanResult { labels, core, clusters: clusters as usize }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// Two tight blobs and scattered noise.
    fn blobs_and_noise() -> (Vec<Point3>, usize, usize) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(60);
        let mut pts = Vec::new();
        let blob = |pts: &mut Vec<Point3>, cx: f64, cy: f64, rng: &mut rand::rngs::StdRng| {
            for _ in 0..200 {
                pts.push(Point3::new(
                    cx + rng.gen_range(-0.05..0.05),
                    cy + rng.gen_range(-0.05..0.05),
                    rng.gen_range(-0.05..0.05),
                ));
            }
        };
        blob(&mut pts, 0.0, 0.0, &mut rng);
        blob(&mut pts, 5.0, 5.0, &mut rng);
        let blob_points = pts.len();
        for _ in 0..50 {
            pts.push(Point3::new(
                rng.gen_range(-20.0..20.0),
                rng.gen_range(-20.0..20.0),
                rng.gen_range(10.0..30.0), // far from blobs
            ));
        }
        (pts, blob_points, 50)
    }

    #[test]
    fn finds_two_clusters() {
        let (pts, blob_points, _) = blobs_and_noise();
        let res = dbscan(&pts, ClusterParams::new(0.2, 10));
        assert_eq!(res.clusters, 2);
        let split = res.split();
        // All blob points clustered; noise mostly unclustered.
        assert!(split.dense[..blob_points].iter().all(|&d| d));
        let noise_dense = split.dense[blob_points..].iter().filter(|&&d| d).count();
        assert_eq!(noise_dense, 0);
    }

    #[test]
    fn all_noise_when_min_pts_too_high() {
        let (pts, _, _) = blobs_and_noise();
        let res = dbscan(&pts, ClusterParams::new(0.2, 100_000));
        assert_eq!(res.clusters, 0);
        assert_eq!(res.split().dense_count(), 0);
    }

    #[test]
    fn everything_clusters_when_min_pts_is_one() {
        let (pts, _, _) = blobs_and_noise();
        let res = dbscan(&pts, ClusterParams::new(0.2, 1));
        assert_eq!(res.split().dense_count(), pts.len());
    }

    #[test]
    fn empty_input() {
        let res = dbscan(&[], ClusterParams::new(0.2, 5));
        assert_eq!(res.clusters, 0);
        assert!(res.labels.is_empty());
    }

    #[test]
    fn border_points_join_cluster() {
        // A line of points where ends have fewer neighbours than the middle.
        let pts: Vec<Point3> = (0..20).map(|i| Point3::new(i as f64 * 0.05, 0.0, 0.0)).collect();
        // minPts 4: middle points are core (2 each side + self within 0.1),
        // end points are border.
        let res = dbscan(&pts, ClusterParams::new(0.1, 4));
        assert_eq!(res.clusters, 1);
        assert_eq!(res.split().dense_count(), 20);
    }
}
