//! The paper's cell-based clustering (§3.2).
//!
//! Identical expansion structure to DBSCAN, with two changes that exploit the
//! octree cell structure:
//!
//! 1. **Dense-cell shortcut** — when a point lies in a cell already known to
//!    be dense, the (expensive) neighbour-count check is skipped: the point
//!    is dense and its neighbours are expanded directly.
//! 2. **Second pass** — after expansion, *every* point inside a dense cell is
//!    promoted to dense, even if it was individually sparse. A cube cell that
//!    holds a core point will be materialized in the octree anyway, so
//!    including its other points is free and improves the octree's ratio.

use dbgc_geom::{FxHashSet, Point3};

use crate::grid::UniformGrid;
use crate::params::ClusterParams;
use crate::DensitySplit;

/// Run the cell-based clustering. Cells are grid cells of side ε.
pub fn cell_based_cluster(points: &[Point3], params: ClusterParams) -> DensitySplit {
    let grid = UniformGrid::build(points, params.eps);
    let mut dense = vec![false; points.len()];
    let mut visited = vec![false; points.len()];
    let mut dense_cells: FxHashSet<crate::grid::Cell> = FxHashSet::default();
    let mut nbrs = Vec::new();
    let mut stack: Vec<u32> = Vec::new();

    for i in 0..points.len() {
        if visited[i] {
            continue;
        }
        stack.clear();
        stack.push(i as u32);
        while let Some(p) = stack.pop() {
            let p = p as usize;
            if visited[p] {
                continue;
            }
            visited[p] = true;
            let cell = grid.cell_of(p);
            if dense_cells.contains(&cell) {
                // Shortcut: skip the neighbour-count check.
                dense[p] = true;
                grid.neighbors_within(p, params.eps, &mut nbrs);
                stack.extend(nbrs.iter().copied().filter(|&j| !visited[j as usize]));
            } else {
                grid.neighbors_within(p, params.eps, &mut nbrs);
                if nbrs.len() + 1 >= params.min_pts {
                    // Core point: mark its cell dense and expand.
                    dense[p] = true;
                    dense_cells.insert(cell);
                    for &j in &nbrs {
                        // Border membership: neighbours of a core point are
                        // part of the cluster.
                        dense[j as usize] = true;
                    }
                    stack.extend(nbrs.iter().copied().filter(|&j| !visited[j as usize]));
                }
                // Otherwise backtrack: p stays sparse (for now).
            }
        }
    }

    // Second pass: a point may have been processed before its cell became
    // dense; promote every point inside a dense cell.
    for (i, flag) in dense.iter_mut().enumerate() {
        if !*flag && dense_cells.contains(&grid.cell_of(i)) {
            *flag = true;
        }
    }
    DensitySplit { dense }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::dbscan;
    use rand::{Rng, SeedableRng};

    fn lidar_like(seed: u64) -> Vec<Point3> {
        // Dense disc near the origin, sparse ring far away.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        for _ in 0..3000 {
            let r = rng.gen_range(0.5..5.0);
            let th = rng.gen_range(0.0..std::f64::consts::TAU);
            pts.push(Point3::new(r * th.cos(), r * th.sin(), rng.gen_range(-0.1..0.1)));
        }
        for _ in 0..500 {
            let r = rng.gen_range(30.0..60.0);
            let th = rng.gen_range(0.0..std::f64::consts::TAU);
            pts.push(Point3::new(r * th.cos(), r * th.sin(), rng.gen_range(-0.5..0.5)));
        }
        pts
    }

    #[test]
    fn near_points_dense_far_points_sparse() {
        let pts = lidar_like(70);
        let params = ClusterParams::new(0.5, 20);
        let split = cell_based_cluster(&pts, params);
        let near_dense = split.dense[..3000].iter().filter(|&&d| d).count();
        let far_dense = split.dense[3000..].iter().filter(|&&d| d).count();
        // Threshold leaves headroom for the workspace RNG's sampling stream
        // (the statistic concentrates around ~2850 across seeds).
        assert!(near_dense > 2800, "near disc should be dense ({near_dense}/3000)");
        assert!(far_dense < 50, "far ring should be sparse ({far_dense}/500)");
    }

    #[test]
    fn covers_all_dbscan_core_points() {
        // Every point is popped exactly once, and a popped point is either in
        // a dense cell (marked dense) or neighbour-checked (core → dense), so
        // no DBSCAN core point can stay sparse. Border points may differ:
        // the dense-cell shortcut skips the neighbour check that would have
        // claimed them, which the cell promotion pass only partly recovers.
        let pts = lidar_like(71);
        let params = ClusterParams::new(0.5, 20);
        let cell = cell_based_cluster(&pts, params);
        let reference = dbscan(&pts, params);
        for i in 0..pts.len() {
            if reference.core[i] {
                assert!(cell.dense[i], "core point {i} not dense in cell-based");
            }
        }
    }

    #[test]
    fn dense_sets_nearly_identical_to_dbscan() {
        // §3.2: the shortcut is an optimization, not a semantic change.
        let pts = lidar_like(72);
        let params = ClusterParams::new(0.5, 20);
        let cell = cell_based_cluster(&pts, params);
        let reference = dbscan(&pts, params).split();
        let diff = cell.dense.iter().zip(&reference.dense).filter(|(a, b)| a != b).count();
        assert!(diff < pts.len() / 20, "dense sets differ on {diff}/{} points", pts.len());
    }

    #[test]
    fn empty_and_singleton() {
        let params = ClusterParams::new(0.2, 5);
        assert_eq!(cell_based_cluster(&[], params).dense_count(), 0);
        let one = [Point3::ZERO];
        assert_eq!(cell_based_cluster(&one, params).dense_count(), 0);
    }

    #[test]
    fn paper_parameters_on_synthetic_surface() {
        // Surface-sampled points at KITTI-like near-field density should be
        // dense under the paper's (ε = 0.2 m, minPts = 524) at q = 2 cm.
        let mut rng = rand::rngs::StdRng::seed_from_u64(73);
        let pts: Vec<Point3> = (0..40_000)
            .map(|_| Point3::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0), 0.0))
            .collect();
        // Surface density 2500 pts/m² → ~314 in an ε-disc... just below 524;
        // use 60k points to clear the threshold.
        let dense_pts: Vec<Point3> = (0..100_000)
            .map(|_| Point3::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0), 0.0))
            .collect();
        let params = ClusterParams::paper_default(0.02);
        let low = cell_based_cluster(&pts, params);
        let high = cell_based_cluster(&dense_pts, params);
        assert!(high.dense_fraction() > 0.9, "got {}", high.dense_fraction());
        assert!(low.dense_fraction() < high.dense_fraction());
    }
}
