//! Approximate `O(n)` clustering (paper §4.3).
//!
//! Instead of per-point neighbour counts, the cloud is bucketed into cells of
//! side ε and a cell is dense when the total point count over its 3×3×3
//! surrounding block reaches `minPts`. Dense cells are then dilated by one
//! ring (a sparse cell touching a dense cell becomes dense), and finally all
//! points in dense cells are classified dense.
//!
//! The paper reports the resulting dense sets are nearly identical to the
//! exact cell-based algorithm while clustering runs ~2× faster.
//!
//! Two implementations share the passes above:
//!
//! * the **packed** fast path keys cells by a single `u64` (three 21-bit
//!   biased fields), so per-point keys compute in parallel chunks, the count
//!   map builds from per-shard maps merged by summation (order-independent,
//!   hence deterministic for any thread count), and a cell's 27 neighbours
//!   are 27 wrapping adds instead of 27 tuple constructions;
//! * the **cell-tuple** path is the original formulation, kept both as the
//!   fallback for clouds whose cell coordinates overflow the packed range
//!   (beyond ±2²⁰ cells ≈ ±200 km at ε = 0.2 m) and as the scalar reference
//!   the equivalence tests compare against.
//!
//! Every pass is a pure function of the point set, so the resulting
//! [`DensitySplit`] — and therefore the compressed bitstream — is identical
//! across implementations and thread counts.

use dbgc_geom::{FxHashMap, FxHashSet, Point3};

use crate::grid::{Cell, UniformGrid};
use crate::params::ClusterParams;
use crate::{par_map_t, DensitySplit};

/// The 3×3×3 cell block around a point covers ~2.9× the area a planar
/// surface patch exposes inside the ε-ball (9ε² vs πε²), so the box counts
/// run systematically higher than the exact algorithm's ball counts. Scaling
/// `minPts` by this factor keeps the two algorithms' dense sets nearly
/// identical (§4.3's claim), instead of the approximation over-marking.
const BOX_TO_BALL: f64 = 9.0 / std::f64::consts::PI;

/// Bits per packed cell field.
const FIELD: u32 = 21;
/// Bias making packed fields non-negative.
const BIAS: i64 = 1 << (FIELD - 1);
/// Largest biased field value the pack accepts; the boundary values are
/// rejected so a ±1 neighbour offset can never borrow into the next field.
const FIELD_MAX: i64 = (1 << FIELD) - 2;
/// Sentinel for a cell outside the packed range (never a valid key: valid
/// keys have bit 63 clear and no all-ones field).
const INVALID_KEY: u64 = u64::MAX;

/// Run the approximate clustering on the process-wide pool.
pub fn approx_cluster(points: &[Point3], params: ClusterParams) -> DensitySplit {
    approx_cluster_threads(points, params, 0)
}

/// [`approx_cluster`] with explicit thread semantics (`0` = current pool,
/// `1` = inline serial, `n > 1` = grow the pool), mirroring
/// `DbgcConfig::threads`. The split is identical for every setting.
pub fn approx_cluster_threads(
    points: &[Point3],
    params: ClusterParams,
    threads: usize,
) -> DensitySplit {
    let params = ClusterParams {
        eps: params.eps,
        min_pts: ((params.min_pts as f64 * BOX_TO_BALL).round() as usize).max(1),
    };
    let keys = par_map_t(points, threads, |_, &p| pack_cell(p, params.eps));
    if keys.contains(&INVALID_KEY) {
        return approx_cells(points, params, threads);
    }
    approx_packed(&keys, params.min_pts, threads)
}

/// Pack the cell of `p` into one `u64` (x, y, z as biased 21-bit fields),
/// or [`INVALID_KEY`] when a coordinate falls outside the packable range.
#[inline]
fn pack_cell(p: Point3, side: f64) -> u64 {
    let cx = (p.x / side).floor() as i64 + BIAS;
    let cy = (p.y / side).floor() as i64 + BIAS;
    let cz = (p.z / side).floor() as i64 + BIAS;
    let ok = |c: i64| (1..=FIELD_MAX).contains(&c);
    if !ok(cx) || !ok(cy) || !ok(cz) {
        return INVALID_KEY;
    }
    ((cx as u64) << (2 * FIELD)) | ((cy as u64) << FIELD) | cz as u64
}

/// The 27 packed-key deltas of a cell's 3×3×3 neighbourhood. Fields of valid
/// keys stay in `[1, FIELD_MAX]`, so the wrapping add never crosses a field
/// boundary and `key + offset` is exactly the neighbour's key.
fn neighbor_offsets() -> [u64; 27] {
    let mut out = [0u64; 27];
    let mut i = 0;
    for dx in -1i64..=1 {
        for dy in -1i64..=1 {
            for dz in -1i64..=1 {
                out[i] = ((dx << (2 * FIELD)) + (dy << FIELD) + dz) as u64;
                i += 1;
            }
        }
    }
    out
}

/// Chunk length for the sharded count build; big enough that shard-merge
/// overhead stays negligible, small enough to spread a frame over the pool.
const COUNT_CHUNK: usize = 1 << 14;

fn approx_packed(keys: &[u64], min_pts: usize, threads: usize) -> DensitySplit {
    // Pass 1: per-cell counts. Each worker counts one contiguous chunk into
    // a private shard; shards merge by summation, which is order-independent
    // — the merged map is identical for any shard count or merge order.
    let ranges: Vec<(usize, usize)> = (0..keys.len())
        .step_by(COUNT_CHUNK.max(1))
        .map(|lo| (lo, (lo + COUNT_CHUNK).min(keys.len())))
        .collect();
    let shards: Vec<FxHashMap<u64, u32>> = par_map_t(&ranges, threads, |_, &(lo, hi)| {
        let mut shard: FxHashMap<u64, u32> = FxHashMap::default();
        for &k in &keys[lo..hi] {
            *shard.entry(k).or_insert(0) += 1;
        }
        shard
    });
    let mut shards = shards.into_iter();
    let mut counts = shards.next().unwrap_or_default();
    for shard in shards {
        for (key, c) in shard {
            *counts.entry(key).or_insert(0) += c;
        }
    }
    let cell_list: Vec<u64> = counts.keys().copied().collect();
    let offsets = neighbor_offsets();

    // Pass 2: a cell is dense when its 3×3×3 neighbourhood holds >= minPts.
    // Each cell's verdict is independent, so the scan fans out over the pool.
    let dense_flags = par_map_t(&cell_list, threads, |_, &key| {
        let mut total = 0usize;
        for &off in &offsets {
            if let Some(&c) = counts.get(&key.wrapping_add(off)) {
                total += c as usize;
                if total >= min_pts {
                    return true;
                }
            }
        }
        false
    });
    let dense_cells: FxHashSet<u64> =
        cell_list.iter().zip(&dense_flags).filter(|(_, &d)| d).map(|(&c, _)| c).collect();

    // Pass 3: dilate by one ring (border cells of a cluster). Reads only the
    // pass-2 set, so it parallelizes the same way.
    let dilated_flags = par_map_t(&cell_list, threads, |i, &key| {
        if dense_flags[i] {
            return true;
        }
        offsets.iter().any(|&off| dense_cells.contains(&key.wrapping_add(off)))
    });
    let dilated: FxHashSet<u64> =
        cell_list.iter().zip(&dilated_flags).filter(|(_, &d)| d).map(|(&c, _)| c).collect();

    // Pass 4: classify points by cell membership, reusing the cached keys.
    let dense = par_map_t(keys, threads, |_, &k| dilated.contains(&k));
    DensitySplit { dense }
}

/// The original cell-tuple formulation over a [`UniformGrid`]; `params` are
/// already `BOX_TO_BALL`-scaled.
fn approx_cells(points: &[Point3], params: ClusterParams, threads: usize) -> DensitySplit {
    let grid = UniformGrid::build(points, params.eps);

    // Pass 1: per-cell counts.
    let counts: FxHashMap<Cell, usize> =
        grid.iter_cells().map(|(&c, idxs)| (c, idxs.len())).collect();
    let cell_list: Vec<Cell> = grid.iter_cells().map(|(&c, _)| c).collect();

    // Pass 2: 3×3×3 density verdicts.
    let dense_flags = par_map_t(&cell_list, threads, |_, &(cx, cy, cz)| {
        let mut total = 0usize;
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    total += counts.get(&(cx + dx, cy + dy, cz + dz)).copied().unwrap_or(0);
                    if total >= params.min_pts {
                        return true;
                    }
                }
            }
        }
        false
    });
    let dense_cells: FxHashSet<Cell> =
        cell_list.iter().zip(&dense_flags).filter(|(_, &d)| d).map(|(&c, _)| c).collect();

    // Pass 3: one-ring dilation.
    let dilated_flags = par_map_t(&cell_list, threads, |i, &(cx, cy, cz)| {
        if dense_flags[i] {
            return true;
        }
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    if dense_cells.contains(&(cx + dx, cy + dy, cz + dz)) {
                        return true;
                    }
                }
            }
        }
        false
    });
    let dilated: FxHashSet<Cell> =
        cell_list.iter().zip(&dilated_flags).filter(|(_, &d)| d).map(|(&c, _)| c).collect();

    // Pass 4: classify points by cell membership.
    let dense = par_map_t(points, threads, |i, _| dilated.contains(&grid.cell_of(i)));
    DensitySplit { dense }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell_based::cell_based_cluster;
    use rand::{Rng, SeedableRng};

    fn mixed_cloud(seed: u64) -> Vec<Point3> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        // Dense slab.
        for _ in 0..5000 {
            pts.push(Point3::new(
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-0.2..0.2),
            ));
        }
        // Sparse halo.
        for _ in 0..800 {
            let r = rng.gen_range(20.0..70.0);
            let th = rng.gen_range(0.0..std::f64::consts::TAU);
            pts.push(Point3::new(r * th.cos(), r * th.sin(), rng.gen_range(-1.0..2.0)));
        }
        pts
    }

    #[test]
    fn splits_dense_from_sparse() {
        let pts = mixed_cloud(80);
        let split = approx_cluster(&pts, ClusterParams::new(0.5, 30));
        let slab = split.dense[..5000].iter().filter(|&&d| d).count();
        let halo = split.dense[5000..].iter().filter(|&&d| d).count();
        assert!(slab > 4900, "slab dense: {slab}/5000");
        assert!(halo < 80, "halo dense: {halo}/800");
    }

    #[test]
    fn nearly_matches_exact_cell_based() {
        // §4.3: "the sets of resulting dense points generated by the two
        // algorithms are nearly the same".
        let pts = mixed_cloud(81);
        let params = ClusterParams::new(0.5, 30);
        let approx = approx_cluster(&pts, params);
        let exact = cell_based_cluster(&pts, params);
        let diff = approx.dense.iter().zip(&exact.dense).filter(|(a, b)| a != b).count();
        assert!(
            (diff as f64) < pts.len() as f64 * 0.05,
            "dense sets differ on {diff}/{} points",
            pts.len()
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(approx_cluster(&[], ClusterParams::new(0.2, 5)).dense_count(), 0);
    }

    #[test]
    fn min_pts_one_marks_dense_blob() {
        // 1 × box-to-ball rounds to 3: any block with >= 3 points is dense,
        // so the slab is fully covered.
        let pts = mixed_cloud(82);
        let split = approx_cluster(&pts, ClusterParams::new(0.5, 1));
        assert!(split.dense[..5000].iter().all(|&d| d));
    }

    /// The packed fast path must reproduce the cell-tuple reference exactly —
    /// it is the same algorithm over a different cell key.
    #[test]
    fn packed_matches_cell_tuple_reference() {
        for seed in [83, 84, 85] {
            let pts = mixed_cloud(seed);
            for min_pts in [1, 10, 30] {
                let params = ClusterParams::new(0.5, min_pts);
                let scaled = ClusterParams {
                    eps: params.eps,
                    min_pts: ((min_pts as f64 * BOX_TO_BALL).round() as usize).max(1),
                };
                let packed = approx_cluster(&pts, params);
                let cells = approx_cells(&pts, scaled, 0);
                assert_eq!(packed, cells, "seed {seed} min_pts {min_pts}");
            }
        }
    }

    /// Far-away coordinates overflow the packed fields and must take the
    /// fallback instead of silently clamping (which would misclassify).
    #[test]
    fn out_of_range_coordinates_fall_back() {
        let mut pts = mixed_cloud(86);
        pts.push(Point3::new(1.0e7, 0.0, 0.0)); // ~2·10^7 cells at ε=0.5
        assert_eq!(pack_cell(pts[pts.len() - 1], 0.5), INVALID_KEY);
        let params = ClusterParams::new(0.5, 30);
        let split = approx_cluster(&pts, params);
        assert_eq!(split.dense.len(), pts.len());
        assert!(!split.dense[pts.len() - 1], "isolated far point is sparse");
        // The in-range prefix classifies exactly as without the outlier.
        let base = approx_cluster(&pts[..pts.len() - 1], params);
        // The far point cannot affect any 3×3×3 neighbourhood near origin.
        assert_eq!(&split.dense[..pts.len() - 1], &base.dense[..]);
    }

    /// Thread-count independence: the split is a pure function of the cloud.
    #[test]
    fn thread_count_does_not_change_split() {
        let pts = mixed_cloud(87);
        let params = ClusterParams::new(0.5, 30);
        let serial = approx_cluster_threads(&pts, params, 1);
        let pooled = approx_cluster_threads(&pts, params, 4);
        assert_eq!(serial, pooled);
    }
}
