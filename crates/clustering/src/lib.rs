//! Density-based clustering for LiDAR point clouds (paper §3.2, §4.3).
//!
//! DBGC splits a cloud into *dense* points (compressed with an octree) and
//! *sparse* points (compressed as polylines in spherical coordinates). The
//! split is a density-based clustering in the spirit of DBSCAN \[15\], with
//! parameters tied to the compression error bound:
//!
//! * `ε = k · q_xyz` (radius of the density neighbourhood, `k = 10`);
//! * `minPts = ⌈(4/3)π ε³ / (2q)³⌉ = ⌈π k³ / 6⌉` — the number of octree leaf
//!   cells (side `2q`) that fit in the ε-sphere, so a core point's
//!   neighbourhood is dense enough to fill the octree around it.
//!
//! Three algorithms are provided:
//!
//! * [`dbscan()`](fn@dbscan) — the classic point-level DBSCAN, as a reference;
//! * [`cell_based`] — the paper's optimized variant: once a cell is known to
//!   be dense, points inside it skip the neighbour-count check, and a second
//!   pass promotes every point in a dense cell;
//! * [`approx`] — the `O(n)` approximation of §4.3: per-cell point counts,
//!   summed over the 3×3×3 surrounding cells, followed by a one-ring
//!   dilation of the dense-cell set.
//!
//! Clustering runs on the *encoder only* — the decoder never needs to
//! reproduce it — so variants may differ slightly in their dense sets without
//! affecting correctness, only the compression ratio.

#![warn(missing_docs)]

pub mod approx;
pub mod cell_based;
pub mod dbscan;
pub mod grid;
pub mod params;

pub use approx::{approx_cluster, approx_cluster_threads};
pub use cell_based::cell_based_cluster;
pub use dbscan::{dbscan, DbscanResult};
pub use grid::UniformGrid;
pub use params::ClusterParams;

/// Ordered map over `items` with explicit thread semantics matching
/// `DbgcConfig::threads`:
/// `0` = use the current pool, `1` = inline serial (no pool touch), `n > 1` =
/// grow the pool to at least `n` workers first. Output is identical for every
/// setting.
#[cfg(feature = "parallel")]
pub(crate) fn par_map_t<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    if threads != 1 {
        let pool = dbgc_parallel::ThreadPool::global();
        if threads > 1 {
            pool.ensure_total(threads);
        }
        return pool.map(items, f);
    }
    items.iter().enumerate().map(|(i, t)| f(i, t)).collect()
}

/// Serial fallback of [`par_map_t`] when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
pub(crate) fn par_map_t<T, R>(items: &[T], threads: usize, f: impl Fn(usize, &T) -> R) -> Vec<R> {
    let _ = threads;
    items.iter().enumerate().map(|(i, t)| f(i, t)).collect()
}

/// Outcome of a dense/sparse split: `dense[i]` tells whether input point `i`
/// was classified dense.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DensitySplit {
    /// Per-input-point classification; `true` = dense.
    pub dense: Vec<bool>,
}

impl DensitySplit {
    /// Number of dense points.
    pub fn dense_count(&self) -> usize {
        self.dense.iter().filter(|&&d| d).count()
    }

    /// Fraction of points classified dense (0.0 for an empty cloud).
    pub fn dense_fraction(&self) -> f64 {
        if self.dense.is_empty() {
            0.0
        } else {
            self.dense_count() as f64 / self.dense.len() as f64
        }
    }

    /// Partition `points` into `(dense, sparse)` index lists.
    pub fn partition_indices(&self) -> (Vec<usize>, Vec<usize>) {
        let mut dense = Vec::new();
        let mut sparse = Vec::new();
        for (i, &d) in self.dense.iter().enumerate() {
            if d {
                dense.push(i);
            } else {
                sparse.push(i);
            }
        }
        (dense, sparse)
    }
}
