//! Clustering parameters derived from the compression error bound (§3.2).

use std::f64::consts::PI;

/// DBSCAN-style parameters tied to the octree error bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterParams {
    /// Neighbourhood radius ε.
    pub eps: f64,
    /// Minimum neighbourhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

impl ClusterParams {
    /// The paper's derivation: `ε = k·q`, `minPts = ⌈π k³ / 6⌉` — the number
    /// of octree leaf cells of side `2q` that fit in the ε-sphere.
    pub fn from_error_bound(q_xyz: f64, k: u32) -> ClusterParams {
        assert!(q_xyz > 0.0, "error bound must be positive");
        assert!(k >= 2, "k must be at least 2 so ε covers adjacent leaf cells");
        let k = k as f64;
        let eps = k * q_xyz;
        let min_pts = (PI * k * k * k / 6.0).ceil() as usize;
        ClusterParams { eps, min_pts }
    }

    /// The paper's default `k = 10`.
    pub fn paper_default(q_xyz: f64) -> ClusterParams {
        ClusterParams::from_error_bound(q_xyz, 10)
    }

    /// Surface-calibrated `minPts`: `⌈π k² / 12⌉`.
    ///
    /// The paper's volume derivation (`⌈πk³/6⌉ = 524` at `k = 10`) assumes
    /// the ε-ball around a core point is *filled* with occupied leaf cells,
    /// but LiDAR returns lie on 2D surfaces: a planar patch through the
    /// ε-ball covers only `~πε²/(2q)² = πk²/4` leaf cells, the scan grid is
    /// 2-4× denser azimuthally than vertically, and dropout/occlusion thin
    /// the patch further — so only a third or so of those cells hold a
    /// point. `minPts = ⌈πk²/12⌉` (= 27 at `k = 10`) maximizes the end-to-end
    /// compression ratio on the simulated scenes and yields the dense/sparse
    /// regime the paper reports; with the literal 524 *nothing* qualifies at
    /// KITTI resolutions (see DESIGN.md).
    pub fn surface_default(q_xyz: f64, k: u32) -> ClusterParams {
        let mut p = ClusterParams::from_error_bound(q_xyz, k);
        let kf = k as f64;
        p.min_pts = (PI * kf * kf / 12.0).ceil() as usize;
        p
    }

    /// Explicit parameters (for experiments that sweep them).
    pub fn new(eps: f64, min_pts: usize) -> ClusterParams {
        assert!(eps > 0.0 && min_pts >= 1);
        ClusterParams { eps, min_pts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = ClusterParams::paper_default(0.02);
        assert!((p.eps - 0.2).abs() < 1e-12);
        // π·1000/6 ≈ 523.6 → 524.
        assert_eq!(p.min_pts, 524);
    }

    #[test]
    fn surface_default_values() {
        let p = ClusterParams::surface_default(0.02, 10);
        assert!((p.eps - 0.2).abs() < 1e-12);
        assert_eq!(p.min_pts, 27); // ⌈π·100/12⌉ = ⌈26.18⌉
    }

    #[test]
    fn min_pts_scales_cubically() {
        let p2 = ClusterParams::from_error_bound(0.02, 2);
        let p4 = ClusterParams::from_error_bound(0.02, 4);
        assert_eq!(p2.min_pts, 5); // ⌈π·8/6⌉ = ⌈4.19⌉
        assert_eq!(p4.min_pts, 34); // ⌈π·64/6⌉ = ⌈33.5⌉
    }

    #[test]
    #[should_panic]
    fn k_below_two_rejected() {
        let _ = ClusterParams::from_error_bound(0.02, 1);
    }
}
