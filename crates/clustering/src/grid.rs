//! Uniform grid index over a point cloud, with cell side = ε.
//!
//! With cell side ε, all neighbours within ε of a point lie in the 3×3×3
//! block of cells around the point's own cell, so range queries touch at most
//! 27 cells.

use dbgc_geom::FxHashMap;
use dbgc_geom::Point3;

/// Integer cell coordinates.
pub type Cell = (i64, i64, i64);

/// Below this size the sharded build's merge overhead outweighs the
/// parallel insert win; build serially.
#[cfg(feature = "parallel")]
const PARALLEL_BUILD_MIN_POINTS: usize = 1 << 14;

/// A hash-grid over points with fixed cell side.
#[derive(Debug, Clone)]
pub struct UniformGrid<'a> {
    points: &'a [Point3],
    cell_side: f64,
    cells: FxHashMap<Cell, Vec<u32>>,
}

impl<'a> UniformGrid<'a> {
    /// Index `points` with the given cell side (`> 0`).
    ///
    /// Per-cell index lists are always in ascending point order, whichever
    /// build strategy runs, so downstream range queries are deterministic.
    pub fn build(points: &'a [Point3], cell_side: f64) -> Self {
        assert!(cell_side > 0.0, "cell side must be positive");
        #[cfg(feature = "parallel")]
        {
            let pool = dbgc_parallel::ThreadPool::global();
            if pool.threads() > 1 && points.len() >= PARALLEL_BUILD_MIN_POINTS {
                return Self::build_sharded(points, cell_side, pool);
            }
        }
        Self::build_serial(points, cell_side)
    }

    fn build_serial(points: &'a [Point3], cell_side: f64) -> Self {
        let mut cells: FxHashMap<Cell, Vec<u32>> = FxHashMap::default();
        for (i, &p) in points.iter().enumerate() {
            cells.entry(Self::cell_for(p, cell_side)).or_default().push(i as u32);
        }
        UniformGrid { points, cell_side, cells }
    }

    /// Parallel build: each worker indexes one contiguous chunk of the input
    /// into a private shard, then shards merge in chunk order. Chunks are
    /// ascending index ranges, so shard-order concatenation keeps every
    /// per-cell list in ascending order — identical to the serial build.
    #[cfg(feature = "parallel")]
    fn build_sharded(
        points: &'a [Point3],
        cell_side: f64,
        pool: &dbgc_parallel::ThreadPool,
    ) -> Self {
        let n = points.len();
        let chunk_len = n.div_ceil(pool.threads());
        let ranges: Vec<std::ops::Range<usize>> = (0..n.div_ceil(chunk_len))
            .map(|c| c * chunk_len..((c + 1) * chunk_len).min(n))
            .collect();
        let shards: Vec<FxHashMap<Cell, Vec<u32>>> = pool.map_with_grain(&ranges, 1, |_, range| {
            let mut shard: FxHashMap<Cell, Vec<u32>> = FxHashMap::default();
            for i in range.clone() {
                shard.entry(Self::cell_for(points[i], cell_side)).or_default().push(i as u32);
            }
            shard
        });
        let mut shards = shards.into_iter();
        let mut cells = shards.next().unwrap_or_default();
        for shard in shards {
            for (cell, idxs) in shard {
                cells.entry(cell).or_default().extend_from_slice(&idxs);
            }
        }
        UniformGrid { points, cell_side, cells }
    }

    #[inline]
    fn cell_for(p: Point3, side: f64) -> Cell {
        ((p.x / side).floor() as i64, (p.y / side).floor() as i64, (p.z / side).floor() as i64)
    }

    /// Cell of point index `i`.
    #[inline]
    pub fn cell_of(&self, i: usize) -> Cell {
        Self::cell_for(self.points[i], self.cell_side)
    }

    /// Number of non-empty cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Iterate over `(cell, point indices)` pairs.
    pub fn iter_cells(&self) -> impl Iterator<Item = (&Cell, &Vec<u32>)> {
        self.cells.iter()
    }

    /// Points in a specific cell (empty slice if none).
    pub fn points_in_cell(&self, cell: Cell) -> &[u32] {
        self.cells.get(&cell).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of points in `cell`.
    pub fn count_in_cell(&self, cell: Cell) -> usize {
        self.cells.get(&cell).map_or(0, Vec::len)
    }

    /// Indices of all points within `radius` of point `i` (excluding `i`
    /// itself). `radius` must be `<= cell_side` for the 27-cell scan to be
    /// exhaustive.
    pub fn neighbors_within(&self, i: usize, radius: f64, out: &mut Vec<u32>) {
        debug_assert!(radius <= self.cell_side * (1.0 + 1e-9));
        out.clear();
        let p = self.points[i];
        let (cx, cy, cz) = self.cell_of(i);
        let r2 = radius * radius;
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    if let Some(idxs) = self.cells.get(&(cx + dx, cy + dy, cz + dz)) {
                        for &j in idxs {
                            if j as usize != i && p.dist2(self.points[j as usize]) <= r2 {
                                out.push(j);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Count of points within `radius` of point `i`, including `i` itself
    /// (the DBSCAN `|N_ε(p)|` convention).
    pub fn count_within(&self, i: usize, radius: f64) -> usize {
        let p = self.points[i];
        let (cx, cy, cz) = self.cell_of(i);
        let r2 = radius * radius;
        let mut count = 0usize;
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    if let Some(idxs) = self.cells.get(&(cx + dx, cy + dy, cz + dz)) {
                        count += idxs
                            .iter()
                            .filter(|&&j| p.dist2(self.points[j as usize]) <= r2)
                            .count();
                    }
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points() -> Vec<Point3> {
        vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(0.05, 0.0, 0.0),
            Point3::new(0.0, 0.09, 0.0),
            Point3::new(1.0, 1.0, 1.0),
            Point3::new(-0.09, 0.0, 0.0),
        ]
    }

    #[test]
    fn neighbors_within_radius() {
        let pts = grid_points();
        let grid = UniformGrid::build(&pts, 0.1);
        let mut out = Vec::new();
        grid.neighbors_within(0, 0.1, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2, 4]);
    }

    #[test]
    fn count_includes_self() {
        let pts = grid_points();
        let grid = UniformGrid::build(&pts, 0.1);
        assert_eq!(grid.count_within(0, 0.1), 4);
        assert_eq!(grid.count_within(3, 0.1), 1); // isolated point
    }

    #[test]
    fn neighbors_across_cell_borders() {
        // Points in adjacent cells but within radius.
        let pts = vec![Point3::new(0.099, 0.0, 0.0), Point3::new(0.101, 0.0, 0.0)];
        let grid = UniformGrid::build(&pts, 0.1);
        let mut out = Vec::new();
        grid.neighbors_within(0, 0.1, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn negative_coordinates() {
        let pts = vec![Point3::new(-0.05, -0.05, -0.05), Point3::new(0.01, 0.01, 0.01)];
        let grid = UniformGrid::build(&pts, 0.1);
        let mut out = Vec::new();
        grid.neighbors_within(0, 0.2_f64.min(0.1), &mut out);
        // dist ≈ 0.104 > 0.1: not a neighbour at radius 0.1.
        assert!(out.is_empty());
        assert_eq!(grid.cell_of(0), (-1, -1, -1));
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn sharded_build_matches_serial() {
        use rand::{Rng, SeedableRng};
        dbgc_parallel::ThreadPool::global().ensure_total(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(51);
        // Enough points to clear PARALLEL_BUILD_MIN_POINTS.
        let pts: Vec<Point3> = (0..PARALLEL_BUILD_MIN_POINTS + 1000)
            .map(|_| {
                Point3::new(
                    rng.gen_range(-20.0..20.0),
                    rng.gen_range(-20.0..20.0),
                    rng.gen_range(-2.0..2.0),
                )
            })
            .collect();
        let sharded = UniformGrid::build(&pts, 0.5);
        let serial = UniformGrid::build_serial(&pts, 0.5);
        assert_eq!(sharded.cell_count(), serial.cell_count());
        for (cell, idxs) in serial.iter_cells() {
            assert_eq!(sharded.points_in_cell(*cell), idxs.as_slice(), "cell {cell:?}");
        }
    }

    #[test]
    fn exhaustive_against_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(50);
        let pts: Vec<Point3> = (0..500)
            .map(|_| {
                Point3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let radius = 0.15;
        let grid = UniformGrid::build(&pts, radius);
        let mut out = Vec::new();
        for i in 0..pts.len() {
            grid.neighbors_within(i, radius, &mut out);
            let mut got: Vec<u32> = out.clone();
            got.sort_unstable();
            let mut expected: Vec<u32> = (0..pts.len() as u32)
                .filter(|&j| j as usize != i && pts[i].dist(pts[j as usize]) <= radius)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "mismatch at point {i}");
            assert_eq!(grid.count_within(i, radius), expected.len() + 1);
        }
    }
}
