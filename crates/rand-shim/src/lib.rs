//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the small slice of the `rand` 0.8 API it actually uses: [`Rng`] with
//! `gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through SplitMix64
//! — not the upstream ChaCha12, so *sequences differ from upstream `rand`*,
//! which is fine for every call site (they assert statistical or structural
//! properties, never exact values).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a range (the subset of
/// `rand::distributions::uniform::SampleUniform` the workspace needs).
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Sample uniformly from `[lo, hi]`.
    fn sample_closed<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling; the tiny modulo bias is
                // irrelevant for the test workloads this shim serves.
                let r = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + r as i128) as $t
            }
            fn sample_closed<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                // 53 random bits in [0, 1); never returns `hi`.
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = lo as f64 + (hi as f64 - lo as f64) * unit;
                if v as $t >= hi { lo } else { v as $t }
            }
            fn sample_closed<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                (lo as f64 + (hi as f64 - lo as f64) * unit) as $t
            }
        }
    )*};
}
impl_sample_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from this range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_closed(rng, lo, hi)
    }
}

/// The random-generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state; the
            // all-zero state (xoshiro's fixed point) cannot occur.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5..7);
            assert!((-5..7).contains(&v));
            let f = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u = rng.gen_range(3u32..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((4200..=5800).contains(&hits), "p=0.25 gave {hits}/20000");
    }

    #[test]
    fn uniform_int_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
