//! Deterministic structure-aware corruption fuzzing for the DBGC decoders.
//!
//! The engine takes *valid* bitstreams produced by the real encoders (seeded
//! simulator frames), applies seed-driven mutations — bit flips, truncation,
//! length-field tampering, section splicing, random bytes — and asserts the
//! decoders' hostile-input contract: every decode returns `Err` or a valid
//! point cloud; never a panic, a hang, or an unbounded allocation.
//!
//! Everything is driven by the workspace `rand` shim, so a `(seed, iters)`
//! pair replays bit-identically on any machine; failures are minimized and
//! written to the regression corpus under `tests/tests/corpus/`.

#![warn(missing_docs)]

use dbgc_codec::varint::{write_uvarint, ByteReader};
use dbgc_geom::{Point3, SensorMeta};
use dbgc_lidar_sim::{LidarSimulator, NoiseModel, ScenePreset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Decoder under test. Corpus file names embed [`Target::name`], so replay
/// knows which decoder each regression input belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// `dbgc::decompress` on a full DBGC stream.
    Dbgc,
    /// The baseline octree coder.
    OctreeBaseline,
    /// The parent-context octree coder (Octree_i).
    OctreeParent,
    /// The 2D quadtree coder.
    Quadtree,
    /// The kd-tree baseline coder.
    Kdtree,
    /// The G-PCC-style octree coder.
    Gpcc,
    /// The wire protocol reader (resynchronizing `FrameReader` drain).
    Wire,
    /// The chaos transport: bytes are a [`dbgc_net::FaultSchedule`] driving a
    /// full client/server session, held to the safety invariant.
    WireFault,
    /// The queryable archive: bytes are ingested into a
    /// [`dbgc_store::FrameStore`] and queried; mutated index trailers must
    /// degrade to the full-decode fallback, never desync query results.
    StoreIndex,
}

impl Target {
    /// Every fuzzed decoder.
    pub const ALL: [Target; 9] = [
        Target::Dbgc,
        Target::OctreeBaseline,
        Target::OctreeParent,
        Target::Quadtree,
        Target::Kdtree,
        Target::Gpcc,
        Target::Wire,
        Target::WireFault,
        Target::StoreIndex,
    ];

    /// Stable name used in corpus file names and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            Target::Dbgc => "dbgc",
            Target::OctreeBaseline => "octree",
            Target::OctreeParent => "octree-parent",
            Target::Quadtree => "quadtree",
            Target::Kdtree => "kdtree",
            Target::Gpcc => "gpcc",
            Target::Wire => "wire",
            Target::WireFault => "wirefault",
            Target::StoreIndex => "store-index",
        }
    }

    /// Inverse of [`Target::name`].
    pub fn from_name(name: &str) -> Option<Target> {
        Target::ALL.into_iter().find(|t| t.name() == name)
    }
}

fn finite(points: &[Point3]) -> Result<(), String> {
    match points.iter().position(|p| ![p.x, p.y, p.z].iter().all(|v| v.is_finite())) {
        None => Ok(()),
        Some(i) => Err(format!("decoded point {i} is not finite")),
    }
}

/// Run `bytes` through `target`'s decoder and check the hostile-input
/// contract: `Err` is fine, `Ok` must carry only finite points. Panics,
/// hangs, and allocation blowups are the *harness's* job to catch — this
/// function only validates what a successful decode returned.
pub fn decode_target(target: Target, bytes: &[u8]) -> Result<(), String> {
    match target {
        Target::Dbgc => match dbgc::decompress(bytes) {
            Ok((cloud, _)) => finite(cloud.points()),
            Err(_) => Ok(()),
        },
        Target::OctreeBaseline => match dbgc_octree::OctreeCodec::baseline().decode(bytes) {
            Ok(dec) => finite(&dec.points),
            Err(_) => Ok(()),
        },
        Target::OctreeParent => match dbgc_octree::OctreeCodec::parent_context().decode(bytes) {
            Ok(dec) => finite(&dec.points),
            Err(_) => Ok(()),
        },
        Target::Quadtree => match dbgc_octree::QuadtreeCodec.decode(bytes) {
            Ok(dec) => {
                match dec.points.iter().position(|(x, y)| !x.is_finite() || !y.is_finite()) {
                    None => Ok(()),
                    Some(i) => Err(format!("decoded point {i} is not finite")),
                }
            }
            Err(_) => Ok(()),
        },
        Target::Kdtree => match dbgc_kdtree::KdTreeCodec.decode(bytes) {
            Ok(dec) => finite(&dec.points),
            Err(_) => Ok(()),
        },
        Target::Gpcc => match dbgc_gpcc::GpccCodec.decode(bytes) {
            Ok(dec) => finite(&dec.points),
            Err(_) => Ok(()),
        },
        Target::Wire => {
            // Drain the whole byte stream through the resynchronizing
            // reader; any outcome short of a panic/hang is acceptable.
            let mut reader = dbgc_net::FrameReader::new(bytes);
            while reader.next_frame().is_ok() {}
            Ok(())
        }
        Target::WireFault => {
            // The input is a serialized fault schedule. Decoding is total
            // (hostile bytes clamp to a valid schedule), and the schedule
            // then drives a real client/server session over a faulty link.
            // The contract is the chaos safety invariant: whatever the
            // schedule destroyed, the store holds an exactly-once in-order
            // prefix with intact payloads and partitioned counters.
            let schedule = dbgc_net::FaultSchedule::from_bytes(bytes);
            let config = dbgc_net::chaos::ChaosConfig::fuzz(0);
            dbgc_net::chaos::run_chaos_with_schedule(&config, schedule).verify_safety()
        }
        Target::StoreIndex => {
            // Contract: ingest+query never panic or overallocate, and
            // whenever the archive answers at all, its answer equals the
            // full-decode oracle — a tampered index may only cost
            // performance (fallback), never correctness.
            use dbgc_store::{decode_annotated, DensityClass, FrameStore, Query};
            let mut store = FrameStore::new();
            if store.ingest(bytes.to_vec(), 0).is_err() {
                return Ok(());
            }
            let queries = [
                Query::All,
                Query::Aabb(dbgc_geom::Aabb {
                    min: Point3::new(-12.0, -12.0, -4.0),
                    max: Point3::new(12.0, 12.0, 4.0),
                }),
                Query::not(Query::DensityClass(DensityClass::Dense)),
            ];
            let oracle = decode_annotated(bytes);
            for q in queries {
                match (store.query(&q), &oracle) {
                    // On any fully decodable stream the partial path must
                    // answer, and answer identically.
                    (Ok(res), Ok(oracle)) => {
                        let want: Vec<Point3> = oracle
                            .points
                            .iter()
                            .filter(|p| q.matches(p, 0))
                            .map(|p| p.pos)
                            .collect();
                        let got: Vec<Point3> = res.points.iter().map(|r| r.point.pos).collect();
                        if got != want {
                            return Err(format!(
                                "query {q:?} returned {} points, oracle {}",
                                got.len(),
                                want.len()
                            ));
                        }
                        finite(&got)?;
                    }
                    (Err(e), Ok(_)) => {
                        return Err(format!("oracle succeeded but query failed: {e}"))
                    }
                    // Oracle can't decode the whole stream. A query may
                    // still answer from the sections that are intact (a
                    // skipped section's corruption is invisible to a
                    // partial read, by design) — any finite answer or a
                    // clean error is acceptable.
                    (Ok(res), Err(_)) => {
                        finite(&res.points.iter().map(|r| r.point.pos).collect::<Vec<_>>())?;
                    }
                    (Err(_), Err(_)) => {}
                }
            }
            Ok(())
        }
    }
}

/// A seed bitstream: a valid encoder output for one target.
#[derive(Debug, Clone)]
pub struct SeedInput {
    /// Which decoder this stream belongs to.
    pub target: Target,
    /// The valid bitstream.
    pub bytes: Vec<u8>,
}

/// Build one valid bitstream per target from a deterministic simulator frame.
///
/// The frame is reduced-resolution (fast in debug builds) but structurally
/// real: rings, objects, outliers. `seed` varies the scene.
pub fn build_seed_inputs(seed: u64) -> Vec<SeedInput> {
    build_seed_inputs_sized(seed, 220)
}

/// [`build_seed_inputs`] with an explicit azimuth resolution; the regression
/// corpus uses small frames so checked-in files stay a few KB each.
pub fn build_seed_inputs_sized(seed: u64, h_samples: u32) -> Vec<SeedInput> {
    let presets = [ScenePreset::KittiCity, ScenePreset::KittiRoad, ScenePreset::ApolloUrban];
    let preset = presets[(seed % presets.len() as u64) as usize];
    let meta = SensorMeta { h_samples, ..preset.sensor_meta() };
    let sim = LidarSimulator::new(meta, NoiseModel::realistic());
    let cloud = sim.scan(&preset.build_scene(seed), Point3::ZERO, seed);
    let points: Vec<Point3> = cloud.points().to_vec();
    let q = 0.02;

    let mut cfg = dbgc::DbgcConfig::with_error_bound(q);
    cfg.sensor = meta;
    let indexed_bytes = dbgc::Dbgc::new(cfg.clone().with_spatial_index(true))
        .compress(&cloud)
        .expect("seed frame compresses")
        .bytes;
    // A wide-profile (version 3) stream rides along as a second Dbgc seed,
    // so mutations and regression inputs exercise the four-lane decode path
    // (per-lane renormalization, lane-length framing) as deeply as v1.
    let wide_bytes = dbgc::Dbgc::new(cfg.clone().with_entropy_profile(dbgc::EntropyProfile::Wide))
        .compress(&cloud)
        .expect("seed frame compresses")
        .bytes;
    let dbgc_bytes = dbgc::Dbgc::new(cfg).compress(&cloud).expect("seed frame compresses").bytes;

    let xy: Vec<(f64, f64)> = points.iter().map(|p| (p.x, p.y)).collect();
    let mut wire = Vec::new();
    for (i, payload) in [&dbgc_bytes, &dbgc_bytes].iter().enumerate() {
        dbgc_net::write_frame(
            &mut wire,
            &dbgc_net::WireFrame { sequence: i as u32, payload: (*payload).clone() },
        )
        .expect("in-memory write");
    }

    vec![
        SeedInput { target: Target::Dbgc, bytes: dbgc_bytes },
        SeedInput { target: Target::Dbgc, bytes: wide_bytes },
        SeedInput {
            target: Target::OctreeBaseline,
            bytes: dbgc_octree::OctreeCodec::baseline().encode(&points, q).bytes,
        },
        SeedInput {
            target: Target::OctreeParent,
            bytes: dbgc_octree::OctreeCodec::parent_context().encode(&points, q).bytes,
        },
        SeedInput {
            target: Target::Quadtree,
            bytes: dbgc_octree::QuadtreeCodec.encode(&xy, q).bytes,
        },
        SeedInput {
            target: Target::Kdtree,
            bytes: dbgc_kdtree::KdTreeCodec.encode(&points, q).bytes,
        },
        SeedInput { target: Target::Gpcc, bytes: dbgc_gpcc::GpccCodec.encode(&points, q).bytes },
        SeedInput { target: Target::Wire, bytes: wire },
        SeedInput {
            target: Target::WireFault,
            bytes: dbgc_net::chaos::ChaosConfig::fuzz(seed).schedule().to_bytes(),
        },
        SeedInput { target: Target::StoreIndex, bytes: indexed_bytes },
    ]
}

/// The seed-driven mutation engine.
#[derive(Debug)]
pub struct Mutator {
    rng: StdRng,
}

/// Names of the mutation strategies, for reporting.
pub const MUTATIONS: [&str; 8] = [
    "bit-flip",
    "byte-noise",
    "truncate",
    "extend",
    "length-tamper",
    "splice",
    "duplicate",
    "fill-run",
];

impl Mutator {
    /// A mutator replaying deterministically for `seed`.
    pub fn new(seed: u64) -> Mutator {
        Mutator { rng: StdRng::seed_from_u64(seed) }
    }

    /// Mutate `base` into a hostile variant; `donor` supplies foreign bytes
    /// for splicing (typically another target's valid stream). Returns the
    /// mutated bytes and the strategy name.
    pub fn mutate(&mut self, base: &[u8], donor: &[u8]) -> (Vec<u8>, &'static str) {
        if base.is_empty() {
            let n = self.rng.gen_range(1usize..64);
            return ((0..n).map(|_| self.rng.next_u64() as u8).collect(), "byte-noise");
        }
        let kind = MUTATIONS[self.rng.gen_range(0usize..MUTATIONS.len())];
        let mut out = base.to_vec();
        match kind {
            "bit-flip" => {
                for _ in 0..self.rng.gen_range(1usize..=16) {
                    let i = self.rng.gen_range(0usize..out.len());
                    out[i] ^= 1 << self.rng.gen_range(0u32..8);
                }
            }
            "byte-noise" => {
                for _ in 0..self.rng.gen_range(1usize..=8) {
                    let i = self.rng.gen_range(0usize..out.len());
                    out[i] = self.rng.next_u64() as u8;
                }
            }
            "truncate" => out.truncate(self.rng.gen_range(0usize..out.len())),
            "extend" => {
                for _ in 0..self.rng.gen_range(1usize..=64) {
                    out.push(self.rng.next_u64() as u8);
                }
            }
            "length-tamper" => self.tamper_varint(&mut out),
            "splice" => {
                // Replace a random range with a random range of the donor.
                let src = random_range(&mut self.rng, donor.len().max(1));
                let dst = random_range(&mut self.rng, out.len());
                let chunk: Vec<u8> = donor.get(src).unwrap_or(&[]).to_vec();
                out.splice(dst, chunk);
            }
            "duplicate" => {
                let src = random_range(&mut self.rng, out.len());
                let chunk = out[src].to_vec();
                let at = self.rng.gen_range(0usize..=out.len());
                out.splice(at..at, chunk);
            }
            "fill-run" => {
                let range = random_range(&mut self.rng, out.len());
                let fill = [0x00, 0xFF, 0x80][self.rng.gen_range(0usize..3)];
                out[range].fill(fill);
            }
            _ => unreachable!("mutation list is exhaustive"),
        }
        (out, kind)
    }

    /// Structure-aware length tampering: find a decodable varint at a random
    /// offset and rewrite it with a hostile value, shifting the tail.
    fn tamper_varint(&mut self, out: &mut Vec<u8>) {
        for _ in 0..8 {
            let at = self.rng.gen_range(0usize..out.len());
            let mut r = ByteReader::new(&out[at..]);
            let Ok(v) = r.read_uvarint() else { continue };
            let consumed = r.position();
            let hostile = match self.rng.gen_range(0u32..4) {
                0 => v.wrapping_mul(self.rng.gen_range(2u64..=1024)),
                1 => v.wrapping_add(self.rng.gen_range(1u64..=255)),
                2 => v.saturating_sub(self.rng.gen_range(1u64..=255)),
                _ => u64::MAX >> self.rng.gen_range(0u32..40),
            };
            let mut patched = out[..at].to_vec();
            write_uvarint(&mut patched, hostile);
            patched.extend_from_slice(&out[at + consumed..]);
            *out = patched;
            return;
        }
        // No decodable varint found in 8 probes: fall back to a byte flip.
        let i = self.rng.gen_range(0usize..out.len());
        out[i] ^= 0xFF;
    }
}

fn random_range(rng: &mut StdRng, len: usize) -> std::ops::Range<usize> {
    let a = rng.gen_range(0usize..=len);
    let b = rng.gen_range(0usize..=len);
    a.min(b)..a.max(b)
}

/// Shrink a failing input while `still_fails` keeps returning `true`.
///
/// Greedy ddmin-style reduction: repeated passes that drop exponentially
/// smaller chunks, bounded by `max_probes` decode attempts so minimizing a
/// hang (where every probe costs a timeout) stays cheap.
pub fn minimize(
    input: &[u8],
    still_fails: &mut dyn FnMut(&[u8]) -> bool,
    max_probes: usize,
) -> Vec<u8> {
    let mut best = input.to_vec();
    let mut probes = 0usize;
    let mut chunk = (best.len() / 2).max(1);
    while chunk >= 1 && probes < max_probes {
        let mut progressed = false;
        let mut start = 0usize;
        while start < best.len() && probes < max_probes {
            let end = (start + chunk).min(best.len());
            let mut candidate = best[..start].to_vec();
            candidate.extend_from_slice(&best[end..]);
            probes += 1;
            if !candidate.is_empty() && still_fails(&candidate) {
                best = candidate;
                progressed = true;
                // Retry the same offset: the next chunk slid into it.
            } else {
                start += chunk;
            }
        }
        if !progressed {
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }
    best
}

/// Deterministic hostile inputs covering the historical decoder failure
/// classes: truncation inside entropy-coded payloads (the range coder used
/// to zero-fill), tampered count/length fields (used to drive unbounded
/// allocations and BFS blowups), and flipped wire bytes. Derived from valid
/// seed streams, so they exercise deep decode paths, not just header checks.
pub fn regression_inputs() -> Vec<(Target, &'static str, Vec<u8>)> {
    let mut out = Vec::new();
    for input in build_seed_inputs_sized(1, 64) {
        let bytes = &input.bytes;
        let n = bytes.len();
        // Truncations: inside the header, mid-payload, and just short of the
        // end (the range decoder's flush tail).
        for (label, cut) in
            [("trunc-head", n / 8), ("trunc-mid", n / 2), ("trunc-tail", n.saturating_sub(3))]
        {
            out.push((input.target, label, bytes[..cut].to_vec()));
        }
        // Tamper varints near the stream front with a huge value — counts,
        // lengths, and depths all live there. A handful per target keeps the
        // checked-in corpus small.
        let mut tampers = 0;
        for at in (0..n.min(80)).step_by(7) {
            if tampers >= 6 {
                break;
            }
            let mut r = ByteReader::new(&bytes[at..]);
            let Ok(_) = r.read_uvarint() else { continue };
            let consumed = r.position();
            let mut tampered = bytes[..at].to_vec();
            write_uvarint(&mut tampered, u64::MAX >> 8);
            tampered.extend_from_slice(&bytes[at + consumed..]);
            out.push((input.target, "count-tamper", tampered));
            tampers += 1;
        }
        // A burst of flipped bits mid-stream (desyncs entropy coders).
        let mut flipped = bytes.clone();
        for i in 0..8usize {
            let pos = n / 3 + i * 5;
            if pos < n {
                flipped[pos] ^= 0xA5;
            }
        }
        out.push((input.target, "bit-burst", flipped));
    }
    out
}

/// FNV-1a hash of `bytes`, used for stable corpus file names.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutator_is_deterministic() {
        let base: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        let a: Vec<_> = {
            let mut m = Mutator::new(42);
            (0..50).map(|_| m.mutate(&base, &base).0).collect()
        };
        let b: Vec<_> = {
            let mut m = Mutator::new(42);
            (0..50).map(|_| m.mutate(&base, &base).0).collect()
        };
        assert_eq!(a, b);
        let c = Mutator::new(43).mutate(&base, &base).0;
        assert!(a[0] != c || a[1] != c, "different seeds should diverge");
    }

    #[test]
    fn mutations_actually_change_bytes() {
        let base: Vec<u8> = (0..500u32).map(|i| (i * 7) as u8).collect();
        let mut m = Mutator::new(7);
        let changed = (0..100).filter(|_| m.mutate(&base, &base).0 != base).count();
        assert!(changed > 90, "only {changed}/100 mutations changed the input");
    }

    #[test]
    fn seed_inputs_are_valid_streams() {
        for input in build_seed_inputs(1) {
            assert!(!input.bytes.is_empty(), "{} seed empty", input.target.name());
            decode_target(input.target, &input.bytes)
                .unwrap_or_else(|e| panic!("{} seed rejected: {e}", input.target.name()));
        }
    }

    #[test]
    fn minimizer_shrinks_while_preserving_failure() {
        // Failure = "contains byte 0xEE"; minimal reproducer is 1 byte.
        let mut input = vec![1u8; 300];
        input[137] = 0xEE;
        let out = minimize(&input, &mut |b: &[u8]| b.contains(&0xEE), 10_000);
        assert_eq!(out, vec![0xEE]);
    }

    #[test]
    fn smoke_fuzz_each_target() {
        // A miniature in-process fuzz run; the CI job drives far more
        // iterations through the binary.
        let seeds = build_seed_inputs(3);
        let mut m = Mutator::new(11);
        for round in 0..seeds.len() * 30 {
            let input = &seeds[round % seeds.len()];
            let donor = &seeds[(round + 1) % seeds.len()];
            let (mutated, kind) = m.mutate(&input.bytes, &donor.bytes);
            decode_target(input.target, &mutated).unwrap_or_else(|e| {
                panic!("{} violated contract under {kind}: {e}", input.target.name())
            });
        }
    }
}
