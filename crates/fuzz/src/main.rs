//! Deterministic corruption-fuzzing CLI for the DBGC decoders.
//!
//! ```text
//! cargo run -p dbgc-fuzz -- --seed 1 --iters 10000
//! ```
//!
//! Compresses simulator frames with the real encoders, mutates the streams
//! (seed-driven, replayable), and asserts every decode returns `Err` or a
//! valid cloud within the time and allocation budgets. A violation is
//! minimized and written to the regression corpus (default
//! `tests/tests/corpus/`), and the process exits nonzero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use dbgc_fuzz::{build_seed_inputs, content_hash, decode_target, minimize, Mutator, Target};

/// System allocator wrapper that tracks the peak live allocation of threads
/// that opted in (the decode workers), so the harness can assert decoders
/// stay allocation-bounded on hostile inputs.
struct TrackingAlloc;

static LIVE: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TRACKED: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKED.with(|t| t.get()) {
            let live =
                LIVE.fetch_add(layout.size() as i64, Ordering::Relaxed) + layout.size() as i64;
            PEAK.fetch_max(live.max(0) as u64, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if TRACKED.with(|t| t.get()) {
            LIVE.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        }
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

fn reset_peak() {
    LIVE.store(0, Ordering::Relaxed);
    PEAK.store(0, Ordering::Relaxed);
}

#[derive(Debug, Clone)]
struct Options {
    seed: u64,
    iters: u64,
    corpus: PathBuf,
    time_budget: Duration,
    mem_budget: u64,
    targets: Vec<Target>,
    wire_faults: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        seed: 1,
        iters: 1000,
        corpus: PathBuf::from("tests/tests/corpus"),
        time_budget: Duration::from_secs(5),
        mem_budget: 256 << 20,
        targets: Target::ALL.to_vec(),
        wire_faults: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--iters" => opts.iters = value("--iters")?.parse().map_err(|e| format!("{e}"))?,
            "--corpus" => opts.corpus = PathBuf::from(value("--corpus")?),
            "--time-budget-ms" => {
                opts.time_budget = Duration::from_millis(
                    value("--time-budget-ms")?.parse().map_err(|e| format!("{e}"))?,
                )
            }
            "--mem-budget-mb" => {
                opts.mem_budget =
                    value("--mem-budget-mb")?.parse::<u64>().map_err(|e| format!("{e}"))? << 20
            }
            "--emit-regressions" => {
                let dir = PathBuf::from(value("--emit-regressions")?);
                std::fs::create_dir_all(&dir).map_err(|e| format!("{e}"))?;
                for (target, label, bytes) in dbgc_fuzz::regression_inputs() {
                    let name = format!(
                        "crash-{}-{label}-{:016x}.bin",
                        target.name(),
                        content_hash(&bytes)
                    );
                    std::fs::write(dir.join(&name), &bytes).map_err(|e| format!("{e}"))?;
                }
                println!("regression corpus written to {}", dir.display());
                std::process::exit(0);
            }
            "--wire-faults" => opts.wire_faults = true,
            "--target" => {
                let name = value("--target")?;
                let t = Target::from_name(&name).ok_or(format!("unknown target {name}"))?;
                opts.targets = vec![t];
            }
            "--help" | "-h" => {
                println!(
                    "fuzz --seed N --iters M [--corpus DIR] [--target NAME] \
                     [--time-budget-ms T] [--mem-budget-mb B] [--wire-faults]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(opts)
}

/// One decode attempt's outcome, as seen by the harness.
#[derive(Debug, Clone)]
enum CaseResult {
    Pass,
    /// Contract violation, panic, over-allocation, or hang.
    Fail(String),
}

/// Run one decode on a watchdog-supervised worker thread, enforcing the
/// time and allocation budgets. A fresh thread per case keeps a hung decode
/// from wedging the harness: the stuck worker is abandoned and reported.
fn run_case(target: Target, input: Vec<u8>, time_budget: Duration, mem_budget: u64) -> CaseResult {
    let (tx, rx) = mpsc::channel();
    reset_peak();
    std::thread::Builder::new()
        .name(format!("fuzz-{}", target.name()))
        .stack_size(16 << 20)
        .spawn(move || {
            TRACKED.with(|t| t.set(true));
            let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                decode_target(target, &input)
            }));
            TRACKED.with(|t| t.set(false));
            let _ = tx.send(verdict);
        })
        .expect("spawn fuzz worker");
    match rx.recv_timeout(time_budget) {
        Ok(Ok(Ok(()))) => {
            let peak = PEAK.load(Ordering::Relaxed);
            if peak > mem_budget {
                CaseResult::Fail(format!("peak allocation {peak} bytes exceeds budget"))
            } else {
                CaseResult::Pass
            }
        }
        Ok(Ok(Err(violation))) => CaseResult::Fail(violation),
        Ok(Err(_panic)) => CaseResult::Fail("decoder panicked".into()),
        Err(mpsc::RecvTimeoutError::Timeout) => {
            CaseResult::Fail(format!("decode exceeded {:?} budget", time_budget))
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            CaseResult::Fail("worker died without reporting".into())
        }
    }
}

/// Minimize a failing input, write it to the regression corpus, and exit
/// nonzero. Shared by the mutation loop and the wire-fault mode.
fn fail_and_minimize(opts: &Options, target: Target, input: &[u8], reason: &str) -> ! {
    let time_budget = opts.time_budget;
    let mem_budget = opts.mem_budget;
    // Hangs pay the full timeout per probe; keep those cheap. Wire-fault
    // probes each run a full chaos session, so cap them harder too.
    let probes = if reason.contains("budget") {
        64
    } else if target == Target::WireFault {
        256
    } else {
        2048
    };
    eprintln!("minimizing ({probes} probes max)...");
    let minimized = minimize(
        input,
        &mut |candidate: &[u8]| {
            matches!(
                run_case(target, candidate.to_vec(), time_budget, mem_budget),
                CaseResult::Fail(_)
            )
        },
        probes,
    );
    std::fs::create_dir_all(&opts.corpus).expect("create corpus dir");
    let path =
        opts.corpus.join(format!("crash-{}-{:016x}.bin", target.name(), content_hash(&minimized)));
    std::fs::write(&path, &minimized).expect("write corpus file");
    eprintln!(
        "minimized {} -> {} bytes; regression input written to {}",
        input.len(),
        minimized.len(),
        path.display()
    );
    std::process::exit(1);
}

/// Wire-fault mode: drive seeded and mutated fault schedules through the
/// chaos harness under the same watchdog and budgets as the decoders. Even
/// iterations replay the generated schedule for `seed + iter` verbatim;
/// odd ones mutate it, so both the generator's envelope and arbitrary
/// schedule bytes get coverage.
fn run_wire_faults(opts: &Options) {
    let mut mutator = Mutator::new(opts.seed);
    let started = Instant::now();
    for iter in 0..opts.iters {
        let seed = opts.seed + iter;
        let generated = dbgc_net::chaos::ChaosConfig::fuzz(seed).schedule().to_bytes();
        let (input, kind) = if iter % 2 == 0 {
            (generated, "generated")
        } else {
            let donor = dbgc_net::chaos::ChaosConfig::fuzz(seed ^ 0x5EED).schedule().to_bytes();
            mutator.mutate(&generated, &donor)
        };
        if let CaseResult::Fail(reason) =
            run_case(Target::WireFault, input.clone(), opts.time_budget, opts.mem_budget)
        {
            // Drop the silencer installed by main; take_hook resets to the
            // default printing hook for the minimization phase.
            drop(std::panic::take_hook());
            eprintln!("FAILURE at iter {iter} (schedule seed {seed}, {kind}): {reason}");
            fail_and_minimize(opts, Target::WireFault, &input, &reason);
        }
        if (iter + 1) % 100 == 0 {
            eprintln!(
                "{}/{} schedules, {:.1}s elapsed",
                iter + 1,
                opts.iters,
                started.elapsed().as_secs_f64()
            );
        }
    }
    drop(std::panic::take_hook());
    println!(
        "OK: {} fault schedules (seeds {}..{}) survived in {:.1}s with zero violations",
        opts.iters,
        opts.seed,
        opts.seed + opts.iters,
        started.elapsed().as_secs_f64()
    );
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    // Panics inside catch_unwind would spam the console; keep the default
    // hook silent and report through the harness instead.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    if opts.wire_faults {
        run_wire_faults(&opts);
        return;
    }

    let seeds = build_seed_inputs(opts.seed);
    let seeds: Vec<_> = seeds.into_iter().filter(|s| opts.targets.contains(&s.target)).collect();
    if seeds.is_empty() {
        eprintln!("error: no seed inputs for the selected targets");
        std::process::exit(2);
    }
    let mut mutator = Mutator::new(opts.seed);
    let started = Instant::now();
    let mut per_mutation: std::collections::BTreeMap<&'static str, u64> = Default::default();

    for iter in 0..opts.iters {
        let base = &seeds[(iter as usize) % seeds.len()];
        let donor = &seeds[(iter as usize + 1) % seeds.len()];
        let (mutated, kind) = mutator.mutate(&base.bytes, &donor.bytes);
        *per_mutation.entry(kind).or_default() += 1;
        let result = run_case(base.target, mutated.clone(), opts.time_budget, opts.mem_budget);
        if let CaseResult::Fail(reason) = result {
            std::panic::set_hook(default_hook);
            eprintln!(
                "FAILURE at iter {iter} (seed {}, target {}, mutation {kind}): {reason}",
                opts.seed,
                base.target.name()
            );
            fail_and_minimize(&opts, base.target, &mutated, &reason);
        }
        if (iter + 1) % 1000 == 0 {
            eprintln!(
                "{}/{} iterations, {:.1}s elapsed",
                iter + 1,
                opts.iters,
                started.elapsed().as_secs_f64()
            );
        }
    }
    std::panic::set_hook(default_hook);
    let breakdown: Vec<String> = per_mutation.iter().map(|(k, v)| format!("{k}: {v}")).collect();
    println!(
        "OK: {} iterations over {} targets in {:.1}s with zero violations ({})",
        opts.iters,
        seeds.len(),
        started.elapsed().as_secs_f64(),
        breakdown.join(", ")
    );
}
