//! Criterion benches for the queryable archive: partial decode vs full
//! decode, with bytes-touched reporting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbgc::{Dbgc, DbgcConfig};
use dbgc_geom::{Aabb, Point3};
use dbgc_lidar_sim::{frame, ScenePreset};
use dbgc_store::{decode_annotated, DensityClass, FrameStore, Query};

/// A selective box over one street-side region of the scene.
fn selective_box() -> Query {
    Query::Aabb(Aabb { min: Point3::new(10.0, -8.0, -3.0), max: Point3::new(30.0, 8.0, 2.0) })
}

fn bench_store_query(c: &mut Criterion) {
    let cloud = frame(ScenePreset::KittiCity, 1, 0);
    let dbgc = Dbgc::new(DbgcConfig::with_error_bound(0.02).with_spatial_index(true));
    let bytes = dbgc.compress(&cloud).unwrap().bytes;

    let mut store = FrameStore::new();
    store.ingest(bytes.clone(), 0).unwrap();

    // Report the pruning effect once, outside the timing loops: how many of
    // the archive's compressed bytes a selective query actually reads.
    let res = store.query(&selective_box()).unwrap();
    eprintln!(
        "store_query: selective AABB touches {} of {} bytes ({:.1}%), {} of {} points",
        res.bytes_touched,
        res.bytes_total,
        100.0 * res.bytes_touched as f64 / res.bytes_total as f64,
        res.points.len(),
        cloud.len()
    );

    let mut g = c.benchmark_group("store_query");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.sample_size(10);

    let queries: [(&str, Query); 4] = [
        ("aabb_selective", selective_box()),
        ("aabb_all", Query::All),
        ("dense_only", Query::DensityClass(DensityClass::Dense)),
        (
            "composite",
            Query::and(selective_box(), Query::not(Query::DensityClass(DensityClass::Outlier))),
        ),
    ];
    for (name, q) in &queries {
        g.bench_with_input(BenchmarkId::new("partial", name), q, |b, q| {
            b.iter(|| store.query(q).unwrap());
        });
    }
    // The oracle: decode everything, filter per point — what every query
    // would cost without the spatial directory.
    for (name, q) in &queries {
        g.bench_with_input(BenchmarkId::new("full_decode", name), q, |b, q| {
            b.iter(|| {
                let ann = decode_annotated(&bytes).unwrap();
                ann.points.iter().filter(|p| q.matches(p, 0)).count()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_store_query);
criterion_main!(benches);
