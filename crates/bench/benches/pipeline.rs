//! Criterion benches for the end-to-end DBGC pipeline on simulated frames.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbgc::{decompress, Dbgc};
use dbgc_lidar_sim::{frame, ScenePreset};

fn bench_pipeline(c: &mut Criterion) {
    let cloud = frame(ScenePreset::KittiCity, 1, 0);
    let mut g = c.benchmark_group("dbgc_pipeline");
    g.throughput(Throughput::Elements(cloud.len() as u64));
    g.sample_size(10);
    for q in [0.02f64, 0.005] {
        g.bench_with_input(BenchmarkId::new("compress", format!("q{q}")), &q, |b, &q| {
            let dbgc = Dbgc::with_error_bound(q);
            b.iter(|| dbgc.compress(&cloud).unwrap());
        });
        let bytes = Dbgc::with_error_bound(q).compress(&cloud).unwrap().bytes;
        g.bench_with_input(
            BenchmarkId::new("decompress", format!("q{q}")),
            &bytes,
            |b, bytes| {
                b.iter(|| decompress(bytes).unwrap());
            },
        );
    }
    g.finish();

    // Simulator cost, for context (frame generation is not part of DBGC).
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("city_frame", |b| {
        b.iter(|| frame(ScenePreset::KittiCity, 1, 0));
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
