//! Criterion benches for the end-to-end DBGC pipeline on simulated frames.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbgc::{decompress, Dbgc, DbgcConfig};
use dbgc_lidar_sim::{frame, ScenePreset};

fn bench_pipeline(c: &mut Criterion) {
    let cloud = frame(ScenePreset::KittiCity, 1, 0);
    let mut g = c.benchmark_group("dbgc_pipeline");
    g.throughput(Throughput::Elements(cloud.len() as u64));
    g.sample_size(10);
    for q in [0.02f64, 0.005] {
        g.bench_with_input(BenchmarkId::new("compress", format!("q{q}")), &q, |b, &q| {
            let dbgc = Dbgc::with_error_bound(q);
            b.iter(|| dbgc.compress(&cloud).unwrap());
        });
        let bytes = Dbgc::with_error_bound(q).compress(&cloud).unwrap().bytes;
        g.bench_with_input(BenchmarkId::new("decompress", format!("q{q}")), &bytes, |b, bytes| {
            b.iter(|| decompress(bytes).unwrap());
        });
    }
    g.finish();

    // Serial vs intra-frame-parallel compression. `threads = 1` runs every
    // stage inline; `threads = n` grows the shared pool to n workers. On a
    // host with fewer cores than n the pool still has n OS threads, so the
    // numbers show scheduling overhead rather than speedup — read them
    // together with `available_parallelism`.
    let mut g = c.benchmark_group("dbgc_parallel_scaling");
    g.sample_size(10);
    for preset in [ScenePreset::KittiCity, ScenePreset::KittiRoad] {
        let cloud = frame(preset, 1, 0);
        g.throughput(Throughput::Elements(cloud.len() as u64));
        for threads in [1usize, 2, 4, 8] {
            let dbgc = Dbgc::new(DbgcConfig::with_error_bound(0.02).with_threads(threads));
            g.bench_with_input(
                BenchmarkId::new(preset.name(), format!("{threads}t")),
                &dbgc,
                |b, dbgc| {
                    b.iter(|| dbgc.compress(&cloud).unwrap());
                },
            );
        }
    }
    g.finish();

    // Simulator cost, for context (frame generation is not part of DBGC).
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("city_frame", |b| {
        b.iter(|| frame(ScenePreset::KittiCity, 1, 0));
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
