//! Criterion micro-benches for the entropy-coding substrates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn skewed_bytes(n: usize) -> Vec<u8> {
    (0..n as u32).map(|i| if i % 11 == 0 { (i % 7) as u8 + 1 } else { 0 }).collect()
}

fn textish_bytes(n: usize) -> Vec<u8> {
    b"polyline organization in spherical coordinates ".iter().cycle().take(n).copied().collect()
}

fn random_bytes(n: usize) -> Vec<u8> {
    (0..n as u32).map(|i| (i.wrapping_mul(2654435761) >> 17) as u8).collect()
}

fn bench_range_coder(c: &mut Criterion) {
    let mut g = c.benchmark_group("range_coder");
    for (label, data) in [("skewed", skewed_bytes(1 << 16)), ("random", random_bytes(1 << 16))] {
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::new("compress", label), &data, |b, data| {
            b.iter(|| dbgc_codec::range::rc_compress_bytes(data));
        });
        let compressed = dbgc_codec::range::rc_compress_bytes(&data);
        g.bench_with_input(BenchmarkId::new("decompress", label), &compressed, |b, comp| {
            b.iter(|| dbgc_codec::range::rc_decompress_bytes(comp, data.len()).unwrap());
        });
    }
    g.finish();
}

fn bench_deflate(c: &mut Criterion) {
    let mut g = c.benchmark_group("deflate");
    for (label, data) in [("textish", textish_bytes(1 << 16)), ("random", random_bytes(1 << 16))] {
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::new("compress", label), &data, |b, data| {
            b.iter(|| dbgc_codec::deflate_compress(data));
        });
        let compressed = dbgc_codec::deflate_compress(&data);
        g.bench_with_input(BenchmarkId::new("decompress", label), &compressed, |b, comp| {
            b.iter(|| dbgc_codec::deflate_decompress(comp).unwrap());
        });
    }
    g.finish();
}

fn bench_intseq(c: &mut Criterion) {
    let vals: Vec<i64> = (0..50_000).map(|i| 1000 + (i % 17) - 8).collect();
    let mut g = c.benchmark_group("intseq");
    g.throughput(Throughput::Elements(vals.len() as u64));
    g.bench_function("delta_rc_compress", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            dbgc_codec::intseq::compress_ints_delta_rc(&mut out, &vals);
            out
        });
    });
    g.bench_function("varint_encode", |b| {
        b.iter(|| dbgc_codec::intseq::ints_to_bytes(&vals));
    });
    g.finish();
}

fn bench_huffman(c: &mut Criterion) {
    let data = textish_bytes(1 << 16);
    let mut freqs = vec![0u64; 256];
    for &b in &data {
        freqs[b as usize] += 1;
    }
    c.bench_function("huffman/encode_64k", |b| {
        let enc = dbgc_codec::HuffmanEncoder::from_frequencies(&freqs);
        b.iter(|| {
            let mut w = dbgc_codec::BitWriter::new();
            for &byte in &data {
                enc.encode(&mut w, byte as usize);
            }
            w.finish()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_range_coder, bench_deflate, bench_intseq, bench_huffman
}
criterion_main!(benches);
