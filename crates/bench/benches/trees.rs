//! Criterion benches for the tree geometry coders.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbgc_geom::{Point3, PointCloud};
use rand::{Rng, SeedableRng};

fn test_cloud(n: usize) -> PointCloud {
    // LiDAR-ish: ground rings + a couple of walls.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut pts = Vec::with_capacity(n);
    while pts.len() < n {
        let ring = rng.gen_range(0..48);
        let r = 3.0 + ring as f64 * 1.5;
        let th = rng.gen_range(0.0..std::f64::consts::TAU);
        pts.push(Point3::new(
            r * th.cos() + rng.gen_range(-0.01..0.01),
            r * th.sin() + rng.gen_range(-0.01..0.01),
            -1.73 + rng.gen_range(-0.01..0.01),
        ));
    }
    PointCloud::from_points(pts)
}

fn bench_tree_coders(c: &mut Criterion) {
    let cloud = test_cloud(20_000);
    let q = 0.02;
    let mut g = c.benchmark_group("tree_encode");
    g.throughput(Throughput::Elements(cloud.len() as u64));
    g.bench_function("octree", |b| {
        b.iter(|| dbgc_octree::OctreeCodec::baseline().encode(cloud.points(), q));
    });
    g.bench_function("octree_i", |b| {
        b.iter(|| dbgc_octree::OctreeCodec::parent_context().encode(cloud.points(), q));
    });
    g.bench_function("kdtree", |b| {
        b.iter(|| dbgc_kdtree::KdTreeCodec.encode(cloud.points(), q));
    });
    g.bench_function("gpcc", |b| {
        b.iter(|| dbgc_gpcc::GpccCodec.encode(cloud.points(), q));
    });
    g.finish();

    let mut g = c.benchmark_group("tree_decode");
    g.throughput(Throughput::Elements(cloud.len() as u64));
    let oct = dbgc_octree::OctreeCodec::baseline().encode(cloud.points(), q);
    g.bench_with_input(BenchmarkId::new("octree", oct.bytes.len()), &oct.bytes, |b, bytes| {
        b.iter(|| dbgc_octree::OctreeCodec::baseline().decode(bytes).unwrap());
    });
    let kd = dbgc_kdtree::KdTreeCodec.encode(cloud.points(), q);
    g.bench_with_input(BenchmarkId::new("kdtree", kd.bytes.len()), &kd.bytes, |b, bytes| {
        b.iter(|| dbgc_kdtree::KdTreeCodec.decode(bytes).unwrap());
    });
    let gp = dbgc_gpcc::GpccCodec.encode(cloud.points(), q);
    g.bench_with_input(BenchmarkId::new("gpcc", gp.bytes.len()), &gp.bytes, |b, bytes| {
        b.iter(|| dbgc_gpcc::GpccCodec.decode(bytes).unwrap());
    });
    g.finish();

    // Quadtree on the projected cloud (the outlier substrate).
    let xy: Vec<(f64, f64)> = cloud.iter().map(|p| (p.x, p.y)).collect();
    c.bench_function("quadtree/encode_20k", |b| {
        b.iter(|| dbgc_octree::QuadtreeCodec.encode(&xy, q));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tree_coders
}
criterion_main!(benches);
