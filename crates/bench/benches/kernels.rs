//! Criterion micro-benches for the single-core hot-path kernels: the fused
//! Fenwick model step, range-coder renormalization, and the SoA sparse-stage
//! loops (organize grid + consensus-windowed radial coding).
//!
//! Besides the human-readable criterion output, a compact second pass writes
//! `BENCH_kernels.json` (dbgc-metrics v1 snapshot) to the repo root so CI can
//! trend the kernel throughputs alongside `BENCH_e2e.json`.

use std::time::Instant;

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use dbgc::sparse::organize::{organize_sparse_points_with, OrganizeScratch};
use dbgc::sparse::radial::{encode_radial_into, RadialStreams};
use dbgc_codec::{
    bitpack_decode, bitpack_encode, delta_decode, delta_encode, AdaptiveModel, ContextModel,
    DualRangeDecoder, DualRangeEncoder, RangeDecoder, RangeEncoder, WideRangeDecoder,
    WideRangeEncoder,
};
use dbgc_geom::{Point3, Spherical};

/// Skewed symbol stream over `alphabet` symbols (residual-like statistics).
fn skewed_symbols(n: usize, alphabet: usize) -> Vec<usize> {
    (0..n as u32)
        .map(|i| {
            let r = (i.wrapping_mul(2654435761) >> 16) as usize;
            if i % 7 == 0 {
                r % alphabet
            } else {
                r % alphabet.div_ceil(8).max(1)
            }
        })
        .collect()
}

fn model_encode(syms: &[usize], alphabet: usize) -> Vec<u8> {
    let mut m = AdaptiveModel::new(alphabet);
    let mut enc = RangeEncoder::new();
    for &s in syms {
        m.encode(&mut enc, s);
    }
    enc.finish()
}

fn model_decode(bytes: &[u8], n: usize, alphabet: usize) -> usize {
    let mut m = AdaptiveModel::new(alphabet);
    let mut dec = RangeDecoder::new(bytes);
    let mut acc = 0usize;
    for _ in 0..n {
        acc ^= m.decode(&mut dec).expect("valid stream");
    }
    acc
}

fn dual_encode(syms: &[usize], alphabet: usize) -> Vec<u8> {
    let mut m = AdaptiveModel::new(alphabet);
    let mut enc = DualRangeEncoder::new();
    for &s in syms {
        m.encode(&mut enc, s);
    }
    enc.finish()
}

fn dual_decode(bytes: &[u8], n: usize, alphabet: usize) -> usize {
    let mut m = AdaptiveModel::new(alphabet);
    let mut dec = DualRangeDecoder::new(bytes).expect("valid frame");
    let mut acc = 0usize;
    for _ in 0..n {
        acc ^= m.decode(&mut dec).expect("valid stream");
    }
    acc
}

fn wide_encode(syms: &[usize], alphabet: usize) -> Vec<u8> {
    let mut m = AdaptiveModel::new(alphabet);
    let mut enc = WideRangeEncoder::new();
    for &s in syms {
        m.encode(&mut enc, s);
    }
    enc.finish()
}

fn wide_decode(bytes: &[u8], n: usize, alphabet: usize) -> usize {
    let mut m = AdaptiveModel::new(alphabet);
    let mut dec = WideRangeDecoder::new(bytes).expect("valid frame");
    let mut acc = 0usize;
    for _ in 0..n {
        acc ^= m.decode(&mut dec).expect("valid stream");
    }
    acc
}

/// Delta-like residual payload for the bit-packing kernel (small magnitudes
/// with occasional spikes, the width pattern the OR-fold scan sees).
fn residuals(n: usize) -> Vec<i64> {
    (0..n as u32)
        .map(|i| {
            let r = (i.wrapping_mul(2654435761) >> 18) as i64;
            if i % 97 == 0 {
                r * 5 - 8000
            } else {
                (r % 37) - 18
            }
        })
        .collect()
}

fn context_encode(stream: &[(usize, usize)], contexts: usize, alphabet: usize) -> Vec<u8> {
    let mut m = ContextModel::new(contexts, alphabet);
    let mut enc = RangeEncoder::new();
    for &(c, s) in stream {
        m.encode(&mut enc, c, s);
    }
    enc.finish()
}

/// Uniform 16-bit payload: every `encode` call renormalizes, so this is a
/// renorm-bandwidth measurement more than a modeling one.
fn range_renorm(vals: &[u16]) -> Vec<u8> {
    let mut enc = RangeEncoder::new();
    for &v in vals {
        enc.encode_bits(v as u64, 16);
    }
    enc.finish()
}

/// A ring-structured synthetic sweep: `rings` polar lines of `per_ring`
/// azimuthal steps with mild radial texture and periodic dropouts, the shape
/// the organize grid and consensus window are built for.
fn ring_cloud(
    rings: usize,
    per_ring: usize,
    u_theta: f64,
    u_phi: f64,
) -> (Vec<Spherical>, Vec<Point3>) {
    let mut sph = Vec::with_capacity(rings * per_ring);
    for ring in 0..rings {
        let phi = 0.3 + ring as f64 * u_phi;
        for k in 0..per_ring {
            if (ring + k) % 23 == 0 {
                continue; // dropout: forces seed/extend decisions
            }
            let theta = k as f64 * u_theta;
            let r = 8.0 + ((k / 40) % 5) as f64 * 3.0 + (k % 7) as f64 * 0.01;
            sph.push(Spherical { r, theta, phi });
        }
    }
    let cart: Vec<Point3> = sph.iter().map(|s| s.to_cartesian()).collect();
    (sph, cart)
}

/// Quantized ring polylines for the radial kernel, sorted by head (φ, θ) the
/// way the organize stage emits them.
fn ring_lines(rings: usize, per_ring: usize) -> Vec<Vec<[i64; 3]>> {
    (0..rings as i64)
        .map(|ring| {
            (0..per_ring as i64)
                .map(|k| {
                    let r = 4000 + ((k / 40) % 5) * 1500 + (k % 7) + ring % 3;
                    [k * 10, ring * 4, r]
                })
                .collect()
        })
        .collect()
}

const MODEL_SYMS: usize = 1 << 16;
const RENORM_VALS: usize = 1 << 15;
const RINGS: usize = 64;
const PER_RING: usize = 500;
const U_THETA: f64 = 0.002;
const U_PHI: f64 = 0.008;

fn bench_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("model");
    let alphabet = 64usize;
    let syms = skewed_symbols(MODEL_SYMS, alphabet);
    g.throughput(Throughput::Elements(syms.len() as u64));
    g.bench_with_input(BenchmarkId::new("encode", alphabet), &syms, |b, syms| {
        b.iter(|| model_encode(syms, alphabet));
    });
    let bytes = model_encode(&syms, alphabet);
    g.bench_with_input(BenchmarkId::new("decode", alphabet), &bytes, |b, bytes| {
        b.iter(|| model_decode(bytes, syms.len(), alphabet));
    });
    let stream: Vec<(usize, usize)> = syms.iter().enumerate().map(|(i, &s)| (i % 16, s)).collect();
    g.bench_with_input(BenchmarkId::new("context_encode", "16x64"), &stream, |b, stream| {
        b.iter(|| context_encode(stream, 16, alphabet));
    });
    let dual_bytes = dual_encode(&syms, alphabet);
    g.bench_with_input(BenchmarkId::new("dual_decode", alphabet), &dual_bytes, |b, bytes| {
        b.iter(|| dual_decode(bytes, syms.len(), alphabet));
    });
    let wide_bytes = wide_encode(&syms, alphabet);
    g.bench_with_input(BenchmarkId::new("wide_decode", alphabet), &wide_bytes, |b, bytes| {
        b.iter(|| wide_decode(bytes, syms.len(), alphabet));
    });
    g.finish();
}

fn bench_bitpack(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitpack");
    let vals = residuals(MODEL_SYMS);
    g.throughput(Throughput::Elements(vals.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| bitpack_encode(&vals));
    });
    let packed = bitpack_encode(&vals);
    g.bench_function("decode", |b| {
        b.iter(|| bitpack_decode(&packed).expect("valid"));
    });
    g.bench_function("delta_encode", |b| {
        b.iter(|| delta_encode(&vals));
    });
    let deltas = delta_encode(&vals);
    g.bench_function("delta_decode", |b| {
        b.iter(|| delta_decode(&deltas));
    });
    g.finish();
}

fn bench_range(c: &mut Criterion) {
    let mut g = c.benchmark_group("range");
    let vals: Vec<u16> =
        (0..RENORM_VALS as u32).map(|i| (i.wrapping_mul(40503) >> 8) as u16).collect();
    g.throughput(Throughput::Bytes(2 * vals.len() as u64));
    g.bench_with_input(BenchmarkId::new("renorm_bits", 16), &vals, |b, vals| {
        b.iter(|| range_renorm(vals));
    });
    g.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse");
    let (sph, cart) = ring_cloud(RINGS, PER_RING, U_THETA, U_PHI);
    g.throughput(Throughput::Elements(sph.len() as u64));
    let mut scratch = OrganizeScratch::default();
    g.bench_function("organize", |b| {
        b.iter(|| organize_sparse_points_with(&sph, &cart, U_THETA, U_PHI, 3, &mut scratch));
    });
    let lines = ring_lines(RINGS, PER_RING);
    let points: usize = lines.iter().map(Vec::len).sum();
    g.throughput(Throughput::Elements(points as u64));
    let mut streams = RadialStreams::default();
    g.bench_function("radial_encode", |b| {
        b.iter(|| {
            encode_radial_into(&lines, 8, 50, &mut streams);
            black_box(streams.tail_nabla.len())
        });
    });
    g.finish();
}

/// Mean seconds per call over an adaptively sized batch (quiet pass for the
/// JSON snapshot; criterion's printed numbers come from the groups above).
fn secs_per_call<F: FnMut()>(mut f: F) -> f64 {
    let t = Instant::now();
    f();
    let once = t.elapsed().max(std::time::Duration::from_nanos(20));
    let batch =
        (std::time::Duration::from_millis(40).as_nanos() / once.as_nanos()).clamp(1, 1 << 18);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / batch as f64);
    }
    best
}

fn write_snapshot() {
    let collector = dbgc::metrics::Collector::new();
    let alphabet = 64usize;
    let syms = skewed_symbols(MODEL_SYMS, alphabet);
    let bytes = model_encode(&syms, alphabet);
    let n = syms.len() as f64;
    let s = secs_per_call(|| {
        black_box(model_encode(&syms, alphabet));
    });
    collector.set_gauge("model.encode.melem_per_s", n / s / 1e6);
    let s = secs_per_call(|| {
        black_box(model_decode(&bytes, syms.len(), alphabet));
    });
    collector.set_gauge("model.decode.melem_per_s", n / s / 1e6);
    let dual_bytes = dual_encode(&syms, alphabet);
    let s = secs_per_call(|| {
        black_box(dual_decode(&dual_bytes, syms.len(), alphabet));
    });
    collector.set_gauge("model.dual_decode.melem_per_s", n / s / 1e6);
    let wide_bytes = wide_encode(&syms, alphabet);
    let s = secs_per_call(|| {
        black_box(wide_decode(&wide_bytes, syms.len(), alphabet));
    });
    collector.set_gauge("model.wide_decode.melem_per_s", n / s / 1e6);

    let resid = residuals(MODEL_SYMS);
    let s = secs_per_call(|| {
        black_box(bitpack_encode(&resid));
    });
    collector.set_gauge("bitpack.encode.melem_per_s", resid.len() as f64 / s / 1e6);
    let packed = bitpack_encode(&resid);
    let s = secs_per_call(|| {
        black_box(bitpack_decode(&packed).expect("valid"));
    });
    collector.set_gauge("bitpack.decode.melem_per_s", resid.len() as f64 / s / 1e6);
    let s = secs_per_call(|| {
        black_box(delta_encode(&resid));
    });
    collector.set_gauge("delta.encode.melem_per_s", resid.len() as f64 / s / 1e6);
    let deltas = delta_encode(&resid);
    let s = secs_per_call(|| {
        black_box(delta_decode(&deltas));
    });
    collector.set_gauge("delta.decode.melem_per_s", resid.len() as f64 / s / 1e6);

    let vals: Vec<u16> =
        (0..RENORM_VALS as u32).map(|i| (i.wrapping_mul(40503) >> 8) as u16).collect();
    let s = secs_per_call(|| {
        black_box(range_renorm(&vals));
    });
    collector.set_gauge("range.renorm.mib_per_s", 2.0 * vals.len() as f64 / s / (1 << 20) as f64);

    let (sph, cart) = ring_cloud(RINGS, PER_RING, U_THETA, U_PHI);
    let mut scratch = OrganizeScratch::default();
    let s = secs_per_call(|| {
        black_box(
            organize_sparse_points_with(&sph, &cart, U_THETA, U_PHI, 3, &mut scratch)
                .polylines
                .len(),
        );
    });
    collector.set_gauge("sparse.organize.melem_per_s", sph.len() as f64 / s / 1e6);

    let lines = ring_lines(RINGS, PER_RING);
    let points: usize = lines.iter().map(Vec::len).sum();
    let mut streams = RadialStreams::default();
    let s = secs_per_call(|| {
        encode_radial_into(&lines, 8, 50, &mut streams);
        black_box(streams.tail_nabla.len());
    });
    collector.set_gauge("sparse.radial_encode.melem_per_s", points as f64 / s / 1e6);

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    match std::fs::write(root.join("BENCH_kernels.json"), collector.snapshot().to_json()) {
        Ok(()) => println!("wrote BENCH_kernels.json"),
        Err(e) => eprintln!("warning: could not write BENCH_kernels.json: {e}"),
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_model(&mut c);
    bench_range(&mut c);
    bench_bitpack(&mut c);
    bench_sparse(&mut c);
    write_snapshot();
}
