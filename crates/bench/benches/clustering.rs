//! Criterion benches for the clustering algorithms (§4.3's speedup claims).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dbgc_clustering::{approx_cluster, cell_based_cluster, dbscan, ClusterParams};
use dbgc_geom::Point3;
use rand::{Rng, SeedableRng};

fn mixed_cloud(n: usize) -> Vec<Point3> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    (0..n)
        .map(|i| {
            if i % 3 == 0 {
                // Sparse far field.
                let r = rng.gen_range(25.0..80.0);
                let th = rng.gen_range(0.0..std::f64::consts::TAU);
                Point3::new(r * th.cos(), r * th.sin(), rng.gen_range(-1.8..2.0))
            } else {
                // Dense near field.
                Point3::new(
                    rng.gen_range(-6.0..6.0),
                    rng.gen_range(-6.0..6.0),
                    rng.gen_range(-1.8..-1.6),
                )
            }
        })
        .collect()
}

fn bench_clustering(c: &mut Criterion) {
    let points = mixed_cloud(60_000);
    let params = ClusterParams::surface_default(0.02, 10);
    let mut g = c.benchmark_group("clustering_60k");
    g.throughput(Throughput::Elements(points.len() as u64));
    g.sample_size(10);
    g.bench_function("approximate", |b| {
        b.iter(|| approx_cluster(&points, params));
    });
    g.bench_function("cell_based", |b| {
        b.iter(|| cell_based_cluster(&points, params));
    });
    g.bench_function("dbscan", |b| {
        b.iter(|| dbscan(&points, params));
    });
    g.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
