//! Fig. 13: DBGC time breakdown at q = 2 cm — compression (DEN/OCT/COR/ORG/
//! SPA/OUT) and decompression (OCT/SPA/COR/OUT) — plus the §4.4 peak-memory
//! figures.
//!
//! ```text
//! cargo run --release -p dbgc-bench --bin fig13_breakdown
//! ```

use dbgc::Dbgc;
use dbgc_bench::{
    bench_collector, peak_rss_bytes, print_table, scene_frame, write_metrics_snapshot, Q_TYPICAL,
};
use dbgc_lidar_sim::ScenePreset;

fn main() {
    let cloud = scene_frame(ScenePreset::KittiCity);
    let collector = bench_collector("fig13_breakdown", ScenePreset::KittiCity);
    println!(
        "Fig. 13 — {} ({} points), q = {} m\n",
        ScenePreset::KittiCity.name(),
        cloud.len(),
        Q_TYPICAL
    );

    // Average over a few repetitions for stable fractions.
    const REPS: usize = 3;
    let mut frame = None;
    let mut comp_fracs = [0.0f64; 6];
    let mut comp_total = 0.0;
    for _ in 0..REPS {
        let f = Dbgc::with_error_bound(Q_TYPICAL)
            .compress_with_metrics(&cloud, &collector)
            .expect("compress");
        for (i, (_, frac)) in f.stats.timing.fractions().iter().enumerate() {
            comp_fracs[i] += frac / REPS as f64;
        }
        comp_total += f.stats.timing.total().as_secs_f64() / REPS as f64;
        frame = Some(f);
    }
    let frame = frame.expect("at least one repetition");

    println!("compression breakdown (total {:.3} s):", comp_total);
    let labels = ["DEN", "OCT", "COR", "ORG", "SPA", "OUT"];
    let header: Vec<String> = labels.iter().map(|s| s.to_string()).collect();
    let row: Vec<String> = comp_fracs.iter().map(|f| format!("{:.0}%", f * 100.0)).collect();
    print_table(&header, &[row]);
    println!("(paper: DEN 31%, ORG 22%, SPA 44% dominate; OCT/COR/OUT negligible)\n");

    let mut dec_stats = None;
    let mut dec_total = 0.0;
    for _ in 0..REPS {
        let (restored, st) =
            dbgc::decompress_with_metrics(&frame.bytes, &collector).expect("own stream");
        assert_eq!(restored.len(), cloud.len());
        dec_total += st.total().as_secs_f64() / REPS as f64;
        dec_stats = Some(st);
    }
    let st = dec_stats.expect("at least one repetition");
    println!("decompression breakdown (total {:.3} s):", dec_total);
    let header: Vec<String> = ["OCT", "SPA", "COR", "OUT"].iter().map(|s| s.to_string()).collect();
    let t = st.total().as_secs_f64().max(1e-12);
    let row = vec![
        format!("{:.0}%", st.oct.as_secs_f64() / t * 100.0),
        format!("{:.0}%", st.spa.as_secs_f64() / t * 100.0),
        format!("{:.0}%", st.cor.as_secs_f64() / t * 100.0),
        format!("{:.0}%", st.out.as_secs_f64() / t * 100.0),
    ];
    print_table(&header, &[row]);
    println!("(paper: SPA dominates decompression)\n");

    if let Some(rss) = peak_rss_bytes() {
        println!(
            "peak RSS after compress+decompress: {:.0} MiB \
             (paper: ~45 MB compression, ~12 MB decompression)",
            rss as f64 / (1 << 20) as f64
        );
        collector.set_gauge("peak_rss_bytes", rss as f64);
    }
    let stage_labels = ["den", "oct", "cor", "org", "spa", "out"];
    for (label, frac) in stage_labels.iter().zip(comp_fracs) {
        collector.set_gauge(&format!("compress.fraction.{label}"), frac);
    }
    collector.set_gauge("compress.total_s", comp_total);
    collector.set_gauge("decompress.total_s", dec_total);
    if let Some(path) = write_metrics_snapshot("fig13_breakdown", &collector) {
        println!("metrics snapshot -> {}", path.display());
    }
}
