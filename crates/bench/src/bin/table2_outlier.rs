//! Table 2: outlier-compression alternatives (quadtree+Δz vs octree vs
//! uncompressed) across the four KITTI scenes at q = 2 cm.
//!
//! ```text
//! cargo run --release -p dbgc-bench --bin table2_outlier
//! ```

use dbgc::{Dbgc, DbgcConfig, OutlierMode};
use dbgc_bench::{f2, print_table, scene_frame, Q_TYPICAL};
use dbgc_lidar_sim::ScenePreset;

fn main() {
    println!("Table 2 — outlier compression schemes, q = {Q_TYPICAL} m\n");
    let modes = [
        ("Outlier (quadtree)", OutlierMode::Quadtree),
        ("Octree", OutlierMode::Octree),
        ("None", OutlierMode::None),
    ];
    let mut header = vec!["scheme".to_string()];
    header.extend(ScenePreset::kitti().iter().map(|p| p.name().to_string()));
    let mut rows = Vec::new();
    let clouds: Vec<_> = ScenePreset::kitti().iter().map(|&p| scene_frame(p)).collect();
    for (name, mode) in modes {
        let mut row = vec![name.to_string()];
        for cloud in &clouds {
            let mut cfg = DbgcConfig::with_error_bound(Q_TYPICAL);
            cfg.outlier_mode = mode;
            let frame = Dbgc::new(cfg).compress(cloud).expect("compress");
            row.push(f2(frame.compression_ratio()));
        }
        rows.push(row);
    }
    print_table(&header, &rows);
    println!(
        "\nExpected shape (paper Table 2): quadtree slightly above octree; \
         both clearly above None. The gap to None is small here because the \
         simulated scenes yield ~1-2% outliers (paper: 1.2%), so outlier \
         handling moves the total by a few percent."
    );
}
