//! Fig. 12: compression (12a) and decompression (12b) time vs. error bound,
//! all five coders, city scene.
//!
//! ```text
//! cargo run --release -p dbgc-bench --bin fig12_time
//! ```

use dbgc_bench::{print_table, scene_frame, timed, Coder, ERROR_BOUNDS};
use dbgc_lidar_sim::ScenePreset;

fn main() {
    let cloud = scene_frame(ScenePreset::KittiCity);
    println!(
        "Fig. 12 — {} ({} points): time vs error bound (seconds)\n",
        ScenePreset::KittiCity.name(),
        cloud.len()
    );
    for (label, compressing) in [("12a: compression", true), ("12b: decompression", false)] {
        println!("{label}");
        let mut header = vec!["q (cm)".to_string()];
        header.extend(Coder::all().iter().map(|c| c.name().to_string()));
        let mut rows = Vec::new();
        for &q in ERROR_BOUNDS.iter().rev() {
            let mut row = vec![format!("{}", q * 100.0)];
            for coder in Coder::all() {
                let secs = if compressing {
                    timed(|| coder.encode(&cloud, q)).1.as_secs_f64()
                } else {
                    let bytes = coder.encode(&cloud, q);
                    let (n, t) = timed(|| coder.decode(&bytes));
                    assert_eq!(n, cloud.len(), "{} must be lossless in count", coder.name());
                    t.as_secs_f64()
                };
                row.push(format!("{secs:.3}"));
            }
            rows.push(row);
        }
        print_table(&header, &rows);
        println!();
    }
    println!(
        "Expected shape (paper): DBGC slower than Octree/Octree_i/Draco but faster \
         than G-PCC on compression (~0.4 s vs our numbers above); decompression \
         several times faster than compression; times shrink mildly as q grows."
    );
}
