//! Fleet ingestion benchmark: sustained frames/s and p99 frame latency for
//! 100 and 1000 simulated 10 Hz sensors streaming into one fleet server.
//!
//! ```text
//! cargo run --release -p dbgc-bench --bin fleet_bench            # full run -> BENCH_fleet.json
//! cargo run --release -p dbgc-bench --bin fleet_bench -- --gate  # CI gate: 100 sensors >= 10 Hz each
//! ```
//!
//! Every sensor is a real `ResilientClient` session (hello, acked window,
//! reconnect machinery) over the in-process fleet transport, paced at the
//! paper's 10 Hz frame rate with ~12 KiB synthetic compressed payloads (the
//! measured DBGC output scale for a reduced frame). Latency is measured per
//! frame on the client: time from "frame due" to `send_payload` returning,
//! i.e. the backpressure the fleet pushes onto a sensor. A background
//! drainer archives frames on a cadence like a real ingest node, so the run
//! also exercises the `drain_frames` hand-off under load.
//!
//! The gate (`--gate`) requires the 100-sensor run to sustain at least
//! `GATE_HZ_PER_SENSOR` per sensor on hosts with >= 4 cores; on smaller
//! hosts it prints a loud SKIPPED line and exits 0 (a starved runner cannot
//! measure fleet throughput, and gating on fiction helps nobody).

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dbgc::metrics::Collector;
use dbgc_net::fleet::{FleetConfig, FleetServer};
use dbgc_net::fleet_chaos::chaos_payload;
use dbgc_net::session::{ResilientClient, SessionConfig};

/// The paper's sensor frame rate.
const SENSOR_HZ: f64 = 10.0;
/// Synthetic compressed-frame size (measured DBGC scale for a small frame).
const PAYLOAD_BYTES: usize = 12 * 1024;
/// Per-sensor rate the CI gate requires at 100 sensors.
const GATE_HZ_PER_SENSOR: f64 = 10.0;
/// Cores below which the gate loudly skips.
const GATE_MIN_CORES: usize = 4;

struct RunResult {
    sensors: usize,
    frames_total: usize,
    elapsed: Duration,
    /// Per-frame client-side latencies (µs), all sensors pooled.
    latencies_us: Vec<u64>,
    /// Worst single tenant's p99 (µs).
    worst_tenant_p99_us: u64,
    drained_frames: usize,
}

impl RunResult {
    fn frames_per_s(&self) -> f64 {
        self.frames_total as f64 / self.elapsed.as_secs_f64()
    }

    fn hz_per_sensor(&self) -> f64 {
        self.frames_per_s() / self.sensors as f64
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drive `sensors` paced 10 Hz clients for `frames_per_sensor` frames each.
fn run_fleet(sensors: usize, frames_per_sensor: usize, shards: usize) -> RunResult {
    let mut config = FleetConfig::new(sensors);
    config.shards = shards;
    let fleet = FleetServer::spawn(config);
    let handle = fleet.handle();

    // Background archival: drain on a cadence so resident memory stays
    // bounded and the hand-off path is part of what is measured.
    let stop = Arc::new(AtomicBool::new(false));
    let drainer = {
        let handle = handle.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut drained = 0usize;
            while !stop.load(Ordering::Relaxed) {
                drained += handle.drain().iter().map(|(_, f)| f.len()).sum::<usize>();
                std::thread::sleep(Duration::from_millis(100));
            }
            drained + handle.drain().iter().map(|(_, f)| f.len()).sum::<usize>()
        })
    };

    let period = Duration::from_secs_f64(1.0 / SENSOR_HZ);
    let t0 = Instant::now();
    let clients: Vec<_> = (0..sensors as u64)
        .map(|sensor| {
            let handle = handle.clone();
            std::thread::spawn(move || {
                let h = handle.clone();
                let mut client =
                    ResilientClient::new(move || h.connect(sensor), SessionConfig::new(sensor));
                let start = Instant::now();
                let mut lats = Vec::with_capacity(frames_per_sensor);
                for index in 0..frames_per_sensor {
                    // Pace to the sensor clock; latency = how far past the
                    // frame's due time the fleet let us get it accepted.
                    let due = period * index as u32;
                    if let Some(wait) = due.checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let payload = chaos_payload(sensor, index, PAYLOAD_BYTES);
                    client.send_payload(payload).expect("fleet accepts in-budget sensors");
                    lats.push(start.elapsed().saturating_sub(due).as_micros() as u64);
                }
                client.finish().expect("session completes");
                lats
            })
        })
        .collect();

    let mut latencies_us = Vec::with_capacity(sensors * frames_per_sensor);
    let mut worst_tenant_p99_us = 0u64;
    for client in clients {
        let mut lats = client.join().expect("sensor thread");
        lats.sort_unstable();
        worst_tenant_p99_us = worst_tenant_p99_us.max(percentile(&lats, 0.99));
        latencies_us.append(&mut lats);
    }
    let elapsed = t0.elapsed();
    stop.store(true, Ordering::Relaxed);
    let drained_frames = drainer.join().expect("drainer thread");
    let report = fleet.shutdown();
    let durable: usize = report.tenants.iter().map(|t| t.durable.len()).sum();
    assert_eq!(durable, sensors * frames_per_sensor, "every paced frame lands durably");
    report.verify_partition().expect("fleet partition holds under load");

    latencies_us.sort_unstable();
    RunResult {
        sensors,
        frames_total: durable,
        elapsed,
        latencies_us,
        worst_tenant_p99_us,
        drained_frames,
    }
}

fn record(collector: &Collector, result: &RunResult) {
    let s = result.sensors;
    collector.set_gauge(&format!("fleet.s{s}.frames_per_s"), result.frames_per_s());
    collector.set_gauge(&format!("fleet.s{s}.hz_per_sensor"), result.hz_per_sensor());
    collector.set_gauge(
        &format!("fleet.s{s}.p50_send_us"),
        percentile(&result.latencies_us, 0.50) as f64,
    );
    collector.set_gauge(
        &format!("fleet.s{s}.p99_send_us"),
        percentile(&result.latencies_us, 0.99) as f64,
    );
    collector.set_gauge(
        &format!("fleet.s{s}.p99_send_us_worst_tenant"),
        result.worst_tenant_p99_us as f64,
    );
    collector.set_gauge(&format!("fleet.s{s}.drained_frames"), result.drained_frames as f64);
}

fn print_run(result: &RunResult) {
    println!(
        "{} sensors: {:.0} frames/s ({:.2} Hz/sensor), send latency p50 {} µs / p99 {} µs \
         (worst tenant p99 {} µs), {} of {} frames drained mid-run, {:.2}s wall",
        result.sensors,
        result.frames_per_s(),
        result.hz_per_sensor(),
        percentile(&result.latencies_us, 0.50),
        percentile(&result.latencies_us, 0.99),
        result.worst_tenant_p99_us,
        result.drained_frames,
        result.frames_total,
        result.elapsed.as_secs_f64(),
    );
}

fn main() -> ExitCode {
    let gate_only = std::env::args().any(|a| a == "--gate");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let shards = cores.clamp(1, 8);
    println!("fleet bench: {cores} core(s), {shards} shard(s), {PAYLOAD_BYTES} B payloads");

    if gate_only {
        if cores < GATE_MIN_CORES {
            println!(
                "fleet gate: SKIPPED — {cores} core(s) < {GATE_MIN_CORES} \
                 (cannot measure fleet throughput on this host)"
            );
            return ExitCode::SUCCESS;
        }
        let result = run_fleet(100, 30, shards);
        print_run(&result);
        let hz = result.hz_per_sensor();
        if hz < GATE_HZ_PER_SENSOR * 0.95 {
            eprintln!(
                "fleet gate: FAIL — {hz:.2} Hz/sensor at 100 sensors is below the \
                 {GATE_HZ_PER_SENSOR} Hz floor"
            );
            return ExitCode::FAILURE;
        }
        println!("fleet gate: OK ({hz:.2} Hz/sensor at 100 sensors >= {GATE_HZ_PER_SENSOR} Hz)");
        return ExitCode::SUCCESS;
    }

    let collector = Collector::new();
    collector.set_gauge("cores", cores as f64);
    collector.set_gauge("shards", shards as f64);
    collector.set_gauge("sensor_hz", SENSOR_HZ);
    collector.set_gauge("payload_bytes", PAYLOAD_BYTES as f64);

    let small = run_fleet(100, 30, shards);
    print_run(&small);
    record(&collector, &small);

    let large = run_fleet(1000, 10, shards);
    print_run(&large);
    record(&collector, &large);

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    match std::fs::write(root.join("BENCH_fleet.json"), collector.snapshot().to_json()) {
        Ok(()) => println!("wrote BENCH_fleet.json"),
        Err(e) => eprintln!("warning: could not write BENCH_fleet.json: {e}"),
    }
    ExitCode::SUCCESS
}
