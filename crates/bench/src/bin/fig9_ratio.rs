//! Fig. 9: compression ratio vs. error bound for DBGC and the four baselines
//! (Octree, Octree_i, Draco, G-PCC), per scene.
//!
//! ```text
//! cargo run --release -p dbgc-bench --bin fig9_ratio [-- kitti|apollo|ford|all]
//! ```
//!
//! Also reports the bandwidth requirement at 10 fps for the 2 cm bound (the
//! paper's Mbps metric).

use dbgc_bench::{
    f2, mean_ratio, print_table, scene_frames, write_metrics_snapshot, Coder, ERROR_BOUNDS,
};
use dbgc_lidar_sim::ScenePreset;
use dbgc_net::LinkModel;

/// Frames averaged per scene; raise for smoother numbers.
const FRAMES: u32 = 2;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let presets: Vec<ScenePreset> = match which.as_str() {
        "kitti" => ScenePreset::kitti().to_vec(),
        "apollo" => vec![ScenePreset::ApolloUrban],
        "ford" => vec![ScenePreset::FordCampus],
        "all" => ScenePreset::all().to_vec(),
        other => {
            eprintln!("unknown selector {other}; use kitti|apollo|ford|all");
            std::process::exit(2);
        }
    };

    // One dbgc-metrics snapshot covers the whole sweep: a
    // `<preset>.<coder>.q_<cm>cm` ratio gauge per cell of the figure.
    let collector = dbgc::metrics::Collector::new();
    collector.set_label("bench", "fig9_ratio");
    collector.set_label("selector", &which);
    for preset in presets {
        let frames = scene_frames(preset, FRAMES);
        let n_points = frames[0].len();
        println!(
            "\nFig. 9 — {} ({} frames of ~{} points), ratio vs error bound\n",
            preset.name(),
            frames.len(),
            n_points
        );
        let mut header = vec!["q (cm)".to_string()];
        header.extend(Coder::all().iter().map(|c| c.name().to_string()));
        let mut rows = Vec::new();
        let mut dbgc_2cm_bytes = 0usize;
        for &q in ERROR_BOUNDS.iter().rev() {
            let mut row = vec![format!("{}", q * 100.0)];
            for coder in Coder::all() {
                let r = mean_ratio(coder, &frames, q);
                if coder == Coder::Dbgc && q == 0.02 {
                    dbgc_2cm_bytes = (frames[0].raw_size_bytes() as f64 / r) as usize;
                }
                collector
                    .set_gauge(&format!("{}.{}.q_{}cm", preset.name(), coder.name(), q * 100.0), r);
                row.push(f2(r));
            }
            rows.push(row);
        }
        print_table(&header, &rows);
        println!(
            "bandwidth at 10 fps, q = 2 cm: DBGC needs {:.1} Mbps (4G uplink: 8.2 Mbps; \
             raw stream: {:.0} Mbps)",
            LinkModel::required_mbps(dbgc_2cm_bytes, 10.0),
            LinkModel::required_mbps(n_points * 12, 10.0)
        );
    }
    println!(
        "\nExpected shape (paper): DBGC highest everywhere; G-PCC the best baseline \
         at coarse bounds; Draco lowest; ratios grow with the error bound."
    );
    if let Some(path) = write_metrics_snapshot("fig9_ratio", &collector) {
        println!("metrics snapshot -> {}", path.display());
    }
}
