//! Fig. 10: compression ratio as the fraction of nearest points sent to the
//! octree is swept from 0 % (everything polyline-coded) to 100 % (pure
//! octree), with the density-based clustering split marked for comparison.
//!
//! ```text
//! cargo run --release -p dbgc-bench --bin fig10_split
//! ```

use dbgc::{Dbgc, DbgcConfig, SplitStrategy};
use dbgc_bench::{
    bench_collector, f2, print_table, scene_frame, write_metrics_snapshot, Q_TYPICAL,
};
use dbgc_lidar_sim::ScenePreset;

fn main() {
    let cloud = scene_frame(ScenePreset::KittiCity);
    let collector = bench_collector("fig10_split", ScenePreset::KittiCity);
    println!(
        "Fig. 10 — {} ({} points), q = {} m: octree share swept manually\n",
        ScenePreset::KittiCity.name(),
        cloud.len(),
        Q_TYPICAL
    );
    let header: Vec<String> =
        ["octree share".into(), "ratio".into(), "dense pts".into(), "outliers %".into()].to_vec();
    let mut rows = Vec::new();
    let mut best_manual = 0.0f64;
    for pct in (0..=100).step_by(10) {
        let mut cfg = DbgcConfig::with_error_bound(Q_TYPICAL);
        cfg.split = SplitStrategy::NearestFraction(pct as f64 / 100.0);
        let frame = Dbgc::new(cfg).compress(&cloud).expect("compress");
        best_manual = best_manual.max(frame.compression_ratio());
        collector.set_gauge(&format!("ratio.manual_{pct}pct"), frame.compression_ratio());
        rows.push(vec![
            format!("{pct}%"),
            f2(frame.compression_ratio()),
            frame.stats.dense_points.to_string(),
            f2(100.0 * frame.stats.outlier_fraction()),
        ]);
    }
    // The density-based split the paper proposes.
    let frame = Dbgc::with_error_bound(Q_TYPICAL).compress(&cloud).expect("compress");
    rows.push(vec![
        "density-based".into(),
        f2(frame.compression_ratio()),
        frame.stats.dense_points.to_string(),
        f2(100.0 * frame.stats.outlier_fraction()),
    ]);
    print_table(&header, &rows);
    println!(
        "\ndensity-based clustering: ratio {} vs best manual sweep {} \
         (paper: clustering sits at/above the top of the manual spectrum; \
         both pure modes are clearly worse)",
        f2(frame.compression_ratio()),
        f2(best_manual)
    );
    println!(
        "running-example split: {:.1}% dense / {:.1}% sparse, {:.2}% outliers \
         (paper: 39.4% / 60.6%, 1.2% outliers)",
        100.0 * frame.stats.dense_fraction(),
        100.0 * (1.0 - frame.stats.dense_fraction()),
        100.0 * frame.stats.outlier_fraction()
    );
    collector.set_gauge("ratio.density_based", frame.compression_ratio());
    collector.set_gauge("ratio.best_manual", best_manual);
    collector.set_gauge("dense_fraction", frame.stats.dense_fraction());
    collector.set_gauge("outlier_fraction", frame.stats.outlier_fraction());
    if let Some(path) = write_metrics_snapshot("fig10_split", &collector) {
        println!("metrics snapshot -> {}", path.display());
    }
}
