//! Parameter sweeps for the design choices DESIGN.md calls out: the
//! clustering scale `k`, the radial threshold `TH_r`, the number of radial
//! groups, and the minimum polyline length.
//!
//! The paper fixes k = 10, TH_r = 2 m, groups = 3 with brief justifications
//! (§3.2, §3.5); this harness regenerates the trade-off curves behind them.
//!
//! ```text
//! cargo run --release -p dbgc-bench --bin param_sweeps
//! ```

use dbgc::{Dbgc, DbgcConfig};
use dbgc_bench::{f2, print_table, scene_frame, timed, Q_TYPICAL};
use dbgc_lidar_sim::ScenePreset;

fn run(cfg: DbgcConfig, cloud: &dbgc_geom::PointCloud) -> (f64, f64, f64) {
    let (frame, t) = timed(|| Dbgc::new(cfg).compress(cloud).expect("compress"));
    (frame.compression_ratio(), 100.0 * frame.stats.dense_fraction(), t.as_secs_f64())
}

fn main() {
    let cloud = scene_frame(ScenePreset::KittiCity);
    println!(
        "Parameter sweeps — {} ({} points), q = {} m\n",
        ScenePreset::KittiCity.name(),
        cloud.len(),
        Q_TYPICAL
    );

    // --- k: neighbourhood scale (ε = k·q, minPts = ⌈πk²/12⌉) -----------
    println!("k (clustering scale; paper default 10):");
    let header: Vec<String> =
        ["k", "ratio", "dense %", "time (s)"].iter().map(|s| s.to_string()).collect();
    let mut rows = Vec::new();
    for k in [4u32, 6, 8, 10, 14, 20] {
        let mut cfg = DbgcConfig::with_error_bound(Q_TYPICAL);
        cfg.k = k;
        let (ratio, dense, secs) = run(cfg, &cloud);
        rows.push(vec![k.to_string(), f2(ratio), f2(dense), format!("{secs:.3}")]);
    }
    print_table(&header, &rows);

    // --- TH_r: radial threshold (paper default 2 m) ---------------------
    println!("\nTH_r (radial threshold, metres; paper default 2.0):");
    let header: Vec<String> = ["TH_r", "ratio"].iter().map(|s| s.to_string()).collect();
    let mut rows = Vec::new();
    for th_r in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let mut cfg = DbgcConfig::with_error_bound(Q_TYPICAL);
        cfg.th_r = th_r;
        let (ratio, _, _) = run(cfg, &cloud);
        rows.push(vec![format!("{th_r}"), f2(ratio)]);
    }
    print_table(&header, &rows);

    // --- groups (paper default 3) ---------------------------------------
    println!("\nradial groups (paper default 3):");
    let header: Vec<String> = ["groups", "ratio"].iter().map(|s| s.to_string()).collect();
    let mut rows = Vec::new();
    for groups in [1usize, 2, 3, 4, 6, 10] {
        let mut cfg = DbgcConfig::with_error_bound(Q_TYPICAL);
        cfg.groups = groups;
        let (ratio, _, _) = run(cfg, &cloud);
        rows.push(vec![groups.to_string(), f2(ratio)]);
    }
    print_table(&header, &rows);

    // --- minimum polyline length ----------------------------------------
    println!("\nminimum polyline length (points below become outliers):");
    let header: Vec<String> =
        ["min len", "ratio", "outliers %"].iter().map(|s| s.to_string()).collect();
    let mut rows = Vec::new();
    for min_len in [1usize, 2, 3, 5, 10, 20] {
        let mut cfg = DbgcConfig::with_error_bound(Q_TYPICAL);
        cfg.min_polyline_len = min_len;
        let frame = Dbgc::new(cfg).compress(&cloud).expect("compress");
        rows.push(vec![
            min_len.to_string(),
            f2(frame.compression_ratio()),
            f2(100.0 * frame.stats.outlier_fraction()),
        ]);
    }
    print_table(&header, &rows);
}
