//! Fig. 11: ablations of the three sparse-path optimizations on the campus
//! scene — −Radial (plain per-line delta on r), −Group (one radial group),
//! −Conversion (Cartesian channels instead of spherical).
//!
//! ```text
//! cargo run --release -p dbgc-bench --bin fig11_ablation
//! ```

use dbgc::{Dbgc, DbgcConfig};
use dbgc_bench::{
    bench_collector, f2, print_table, scene_frame, write_metrics_snapshot, ERROR_BOUNDS,
};
use dbgc_lidar_sim::ScenePreset;

fn main() {
    let cloud = scene_frame(ScenePreset::KittiCampus);
    let collector = bench_collector("fig11_ablation", ScenePreset::KittiCampus);
    println!(
        "Fig. 11 — {} ({} points): ablations vs full DBGC\n",
        ScenePreset::KittiCampus.name(),
        cloud.len()
    );
    type Variant = fn(DbgcConfig) -> DbgcConfig;
    let variants: [(&str, Variant); 4] = [
        ("DBGC", |c| c),
        ("-Radial", DbgcConfig::without_radial),
        ("-Group", DbgcConfig::without_grouping),
        ("-Conversion", DbgcConfig::without_conversion),
    ];
    let mut header = vec!["q (cm)".to_string()];
    for (name, _) in &variants {
        header.push(name.to_string());
        if *name != "DBGC" {
            header.push(format!("{name} %ofDBGC"));
        }
    }
    let mut rows = Vec::new();
    let mut pct_sums = [0.0f64; 3];
    for &q in ERROR_BOUNDS.iter().rev() {
        let mut row = vec![format!("{}", q * 100.0)];
        let mut full_ratio = 0.0;
        for (i, (name, make)) in variants.iter().enumerate() {
            let cfg = make(DbgcConfig::with_error_bound(q));
            let frame = Dbgc::new(cfg).compress(&cloud).expect("compress");
            let r = frame.compression_ratio();
            collector.set_gauge(&format!("{}.q_{}cm", name, q * 100.0), r);
            row.push(f2(r));
            if *name == "DBGC" {
                full_ratio = r;
            } else {
                let pct = 100.0 * r / full_ratio;
                pct_sums[i - 1] += pct;
                row.push(format!("{pct:.0}%"));
            }
        }
        rows.push(row);
    }
    print_table(&header, &rows);
    let n = ERROR_BOUNDS.len() as f64;
    println!(
        "\naverage share of full DBGC: -Radial {:.0}%, -Group {:.0}%, -Conversion {:.0}% \
         (paper: 88%, 85%, 29%)",
        pct_sums[0] / n,
        pct_sums[1] / n,
        pct_sums[2] / n
    );
    for (i, name) in ["-Radial", "-Group", "-Conversion"].iter().enumerate() {
        collector.set_gauge(&format!("avg_pct_of_dbgc.{name}"), pct_sums[i] / n);
    }
    if let Some(path) = write_metrics_snapshot("fig11_ablation", &collector) {
        println!("metrics snapshot -> {}", path.display());
    }
}
