//! Fig. 3: octree compression ratio (3a) and point density (3b) against the
//! radius of concentric-sphere subsets of a city frame.
//!
//! The paper's motivating observation: octree effectiveness collapses as the
//! subset grows sparser — beyond ~20 m radius the density drops to a few
//! points per cubic metre and the ratio falls off a cliff.
//!
//! ```text
//! cargo run --release -p dbgc-bench --bin fig3_radius
//! ```

use dbgc_bench::{f2, print_table, ratio, scene_frame, Coder, Q_TYPICAL};
use dbgc_lidar_sim::ScenePreset;

fn main() {
    let cloud = scene_frame(ScenePreset::KittiCity);
    println!(
        "Fig. 3 — octree on concentric subsets of {} ({} points), q = {} m\n",
        ScenePreset::KittiCity.name(),
        cloud.len(),
        Q_TYPICAL
    );
    let header: Vec<String> = ["radius (m)", "points", "density (pts/m^3)", "octree ratio"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for radius in [5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 60.0, 80.0] {
        let subset = cloud.within_radius(radius);
        if subset.is_empty() {
            continue;
        }
        let volume = 4.0 / 3.0 * std::f64::consts::PI * radius * radius * radius;
        let density = subset.len() as f64 / volume;
        let bytes = Coder::Octree.encode(&subset, Q_TYPICAL).len();
        rows.push(vec![
            format!("{radius}"),
            subset.len().to_string(),
            f2(density),
            f2(ratio(&subset, bytes)),
        ]);
    }
    print_table(&header, &rows);
    println!(
        "\nExpected shape (paper): both density and ratio fall steeply with radius; \
         beyond ~20 m density is O(1) pt/m^3 and the octree loses its advantage."
    );
}
