//! CI perf gate: scaling-curve and kernel-regression checks over the
//! dbgc-metrics snapshots the benches emit.
//!
//! ```text
//! cargo run --release -p dbgc-bench --bin perf_gate -- \
//!     [--e2e BENCH_e2e.json] \
//!     [--kernels BENCH_kernels.json] \
//!     [--baseline-kernels <snapshot to diff against>]
//! ```
//!
//! Three gates, each failing the process (exit 1) with a named reason:
//!
//! 1. **Scaling** — from the e2e snapshot's `scaling.threads_N.speedup`
//!    gauges: on a host with ≥ 4 cores, the 4-thread intra-frame speedup
//!    must be at least 1.5×. On smaller hosts the gate reports the curve and
//!    skips (a 1-core runner cannot measure scaling, and pretending
//!    otherwise would gate on fiction); a `cores: 1` snapshot is refused
//!    outright as a scaling baseline.
//! 2. **fps/core** — serial compression (`serial_wide.frames_per_s`, falling
//!    back to `serial.frames_per_s`) must reach 30 frames/s per core on an
//!    unconstrained (≥ 4-core) runner; constrained runners record the number
//!    honestly and skip loudly.
//! 3. **Kernel regression** — every throughput gauge present in both the
//!    current and baseline kernel snapshots must be within 10% of the
//!    baseline. Gauges only present on one side are reported but never fail
//!    (new kernels appear, retired ones disappear).
//!
//! The snapshots are read with `Snapshot::gauges_from_json`, the focused
//! reader for the one schema every workspace producer emits.

use std::collections::BTreeMap;
use std::process::ExitCode;

use dbgc::metrics::Snapshot;

/// Minimum 4-thread intra-frame speedup on hosts with at least 4 cores.
const MIN_SPEEDUP_4: f64 = 1.5;
/// Cores required before the scaling gate is binding.
const SCALING_GATE_CORES: f64 = 4.0;
/// Allowed fractional throughput drop per kernel gauge.
const MAX_KERNEL_REGRESSION: f64 = 0.10;
/// Minimum serial (single-thread, so per-core) compress throughput on an
/// unconstrained runner, in frames/s. Reads the wide-profile gauge when the
/// snapshot has one, else the default profile's serial number.
const MIN_SERIAL_FPS_PER_CORE: f64 = 30.0;

fn load_gauges(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Snapshot::gauges_from_json(&text).map_err(|e| format!("{path}: {e}"))
}

/// Gate 1: the scaling curve from the e2e snapshot.
fn check_scaling(e2e: &BTreeMap<String, f64>) -> Result<(), String> {
    let cores = *e2e.get("cores").ok_or("e2e snapshot has no `cores` gauge")?;
    let mut curve: Vec<(&str, f64)> = e2e
        .iter()
        .filter_map(|(k, &v)| {
            k.strip_prefix("scaling.")
                .and_then(|k| k.strip_suffix(".speedup"))
                .map(|threads| (threads, v))
        })
        .collect();
    if curve.is_empty() {
        return Err("e2e snapshot has no scaling.threads_N.speedup gauges".into());
    }
    curve.sort_by_key(|(t, _)| t.trim_start_matches("threads_").parse::<usize>().unwrap_or(0));
    println!("scaling curve ({cores} core(s) at measurement time):");
    for (threads, speedup) in &curve {
        println!("  {threads}: {speedup:.2}x");
    }
    if cores <= 1.0 {
        println!(
            "scaling gate: SKIPPED — snapshot was recorded on a single core; its \
             speedup and stage-efficiency gauges are degenerate and REFUSED as a \
             scaling baseline. Regenerate BENCH_e2e.json on a multi-core runner."
        );
        return Ok(());
    }
    if cores < SCALING_GATE_CORES {
        println!(
            "scaling gate: SKIPPED — {cores} core(s) < {SCALING_GATE_CORES} \
             (cannot measure multi-core scaling on this host)"
        );
        return Ok(());
    }
    let speedup4 = *e2e
        .get("scaling.threads_4.speedup")
        .ok_or("host has >= 4 cores but no scaling.threads_4.speedup gauge")?;
    if speedup4 < MIN_SPEEDUP_4 {
        return Err(format!("4-thread speedup {speedup4:.2}x is below the {MIN_SPEEDUP_4}x floor"));
    }
    println!("scaling gate: OK (threads_4 speedup {speedup4:.2}x >= {MIN_SPEEDUP_4}x)");
    Ok(())
}

/// Gate: serial frames/s per core. Serial compression runs one thread, so
/// `serial*.frames_per_s` *is* the per-core number; the floor binds only on
/// unconstrained runners (shared or single-core CI boxes are throttled in
/// ways that have nothing to do with the code under test).
fn check_fps_per_core(e2e: &BTreeMap<String, f64>) -> Result<(), String> {
    let cores = *e2e.get("cores").ok_or("e2e snapshot has no `cores` gauge")?;
    let (gauge, fps) = match e2e.get("serial_wide.frames_per_s") {
        Some(&fps) => ("serial_wide.frames_per_s", fps),
        None => (
            "serial.frames_per_s",
            *e2e.get("serial.frames_per_s").ok_or("e2e snapshot has no serial fps gauge")?,
        ),
    };
    println!(
        "serial compress ({gauge}): {fps:.1} frames/s per core \
         (floor {MIN_SERIAL_FPS_PER_CORE})"
    );
    if cores < SCALING_GATE_CORES {
        println!(
            "fps/core gate: SKIPPED — constrained runner ({cores} core(s) < \
             {SCALING_GATE_CORES}); the measured {fps:.1} fps is recorded honestly \
             but not gated. Regenerate BENCH_e2e.json on an unconstrained host to \
             make this gate binding."
        );
        return Ok(());
    }
    if fps < MIN_SERIAL_FPS_PER_CORE {
        return Err(format!(
            "serial compress {fps:.1} fps/core is below the {MIN_SERIAL_FPS_PER_CORE} floor"
        ));
    }
    println!("fps/core gate: OK ({fps:.1} >= {MIN_SERIAL_FPS_PER_CORE})");
    Ok(())
}

/// Gate 2: per-kernel throughput vs the baseline snapshot.
fn check_kernels(
    current: &BTreeMap<String, f64>,
    baseline: &BTreeMap<String, f64>,
) -> Result<(), String> {
    let mut failures = Vec::new();
    for (name, &base) in baseline {
        let Some(&now) = current.get(name) else {
            println!("kernel {name}: retired (in baseline only)");
            continue;
        };
        if base <= 0.0 {
            continue;
        }
        let ratio = now / base;
        let verdict = if ratio < 1.0 - MAX_KERNEL_REGRESSION { "REGRESSED" } else { "ok" };
        println!("kernel {name}: {base:.2} -> {now:.2} ({:+.1}%) {verdict}", (ratio - 1.0) * 100.0);
        if ratio < 1.0 - MAX_KERNEL_REGRESSION {
            failures.push(format!("{name} dropped {:.1}%", (1.0 - ratio) * 100.0));
        }
    }
    for name in current.keys().filter(|k| !baseline.contains_key(*k)) {
        println!("kernel {name}: new (no baseline)");
    }
    if failures.is_empty() {
        println!(
            "kernel gate: OK ({} gauge(s) within {:.0}%)",
            baseline.len(),
            MAX_KERNEL_REGRESSION * 100.0
        );
        Ok(())
    } else {
        Err(format!("kernel throughput regressed >10%: {}", failures.join("; ")))
    }
}

fn main() -> ExitCode {
    let mut e2e_path = "BENCH_e2e.json".to_string();
    let mut kernels_path = "BENCH_kernels.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a path"));
        match arg.as_str() {
            "--e2e" => e2e_path = value("--e2e"),
            "--kernels" => kernels_path = value("--kernels"),
            "--baseline-kernels" => baseline_path = Some(value("--baseline-kernels")),
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut failed = false;
    match load_gauges(&e2e_path) {
        Ok(g) => {
            if let Err(e) = check_scaling(&g) {
                eprintln!("FAIL scaling gate: {e}");
                failed = true;
            }
            if let Err(e) = check_fps_per_core(&g) {
                eprintln!("FAIL fps/core gate: {e}");
                failed = true;
            }
        }
        Err(e) => {
            eprintln!("FAIL scaling gate: {e}");
            failed = true;
        }
    }
    match baseline_path {
        None => println!("kernel gate: SKIPPED (no --baseline-kernels given)"),
        Some(base) => {
            let diff = load_gauges(&kernels_path)
                .and_then(|cur| load_gauges(&base).map(|b| (cur, b)))
                .and_then(|(cur, b)| check_kernels(&cur, &b));
            if let Err(e) = diff {
                eprintln!("FAIL kernel gate: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("perf gate: all checks passed");
        ExitCode::SUCCESS
    }
}
