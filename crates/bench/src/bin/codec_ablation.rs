//! Codec ablation: which entropy coder should carry each DBGC stream?
//!
//! The paper picks Deflate for the azimuthal streams (repeated patterns) and
//! arithmetic coding for the rest (§3.5 steps 6-7). This experiment extracts
//! the actual polyline delta streams from a simulated frame and compares
//! four back-ends on each: adaptive range coding, the deflate-like codec,
//! fixed-width bit-packing, and frame-of-reference packing.
//!
//! ```text
//! cargo run --release -p dbgc-bench --bin codec_ablation
//! ```

use dbgc::sparse::organize::organize_sparse_points;
use dbgc_bench::{print_table, scene_frame, Q_TYPICAL};
use dbgc_clustering::approx_cluster;
use dbgc_codec::{bitpack_encode, for_encode, intseq, shannon_entropy};
use dbgc_geom::quant::SphericalQuant;
use dbgc_geom::Spherical;
use dbgc_lidar_sim::ScenePreset;

fn sizes(vals: &[i64]) -> [usize; 4] {
    let mut rc = Vec::new();
    intseq::compress_ints_rc(&mut rc, vals);
    let mut df = Vec::new();
    intseq::compress_ints_deflate(&mut df, vals);
    [rc.len(), df.len(), bitpack_encode(vals).len(), for_encode(vals).len()]
}

fn main() {
    let cloud = scene_frame(ScenePreset::KittiCity);
    let cfg = dbgc::DbgcConfig::with_error_bound(Q_TYPICAL);
    let split = approx_cluster(cloud.points(), cfg.cluster_params());
    let (_, sparse_idx) = split.partition_indices();
    let sph: Vec<Spherical> =
        sparse_idx.iter().map(|&i| cloud.points()[i].to_spherical()).collect();
    let cart: Vec<_> = sparse_idx.iter().map(|&i| cloud.points()[i]).collect();
    let r_max = sph.iter().map(|s| s.r).fold(0.0f64, f64::max);
    let organized = organize_sparse_points(
        &sph,
        &cart,
        cfg.sensor.u_theta(),
        cfg.sensor.u_phi(),
        cfg.min_polyline_len,
    );
    let sq = SphericalQuant::from_error_bound(Q_TYPICAL, r_max);
    let lines: Vec<Vec<[i64; 3]>> = organized
        .polylines
        .iter()
        .map(|l| l.iter().map(|&i| sq.quantize(sph[i as usize])).collect())
        .collect();

    // The streams DBGC actually produces (step 2 deltas).
    let tail_deltas = |c: usize| -> Vec<i64> {
        let mut v = Vec::new();
        for l in &lines {
            for k in 1..l.len() {
                v.push(l[k][c] - l[k - 1][c]);
            }
        }
        v
    };
    let heads = |c: usize| -> Vec<i64> {
        dbgc_codec::delta_encode(&lines.iter().map(|l| l[0][c]).collect::<Vec<_>>())
    };
    let streams: [(&str, Vec<i64>); 5] = [
        ("Δθ tails", tail_deltas(0)),
        ("Δφ tails", tail_deltas(1)),
        ("Δr tails", tail_deltas(2)),
        ("Δθ heads", heads(0)),
        ("lengths", organized.polylines.iter().map(|l| l.len() as i64).collect()),
    ];

    println!(
        "Codec ablation — real polyline streams from {} (q = {} m, {} lines)\n",
        ScenePreset::KittiCity.name(),
        Q_TYPICAL,
        lines.len()
    );
    let header: Vec<String> =
        ["stream", "values", "H (bits)", "range", "deflate", "bitpack", "FOR"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let mut rows = Vec::new();
    for (name, vals) in &streams {
        let h = shannon_entropy(vals.iter().copied());
        let s = sizes(vals);
        rows.push(vec![
            name.to_string(),
            vals.len().to_string(),
            format!("{h:.2}"),
            s[0].to_string(),
            s[1].to_string(),
            s[2].to_string(),
            s[3].to_string(),
        ]);
    }
    print_table(&header, &rows);
    println!(
        "\nTakeaway: the entropy coders (range/deflate) track H(L); bit-packing \
         pays for every outlier bit in the block, which is why DBGC's pipeline \
         entropy-codes its delta streams rather than packing them."
    );
}
