//! §4.3 "Approximate Density-based Clustering": exact cell-based vs the
//! O(n) approximation — dense-set agreement, clustering-time speedup, and
//! end-to-end compression speedup.
//!
//! ```text
//! cargo run --release -p dbgc-bench --bin approx_clustering
//! ```

use dbgc::{ClusteringAlgorithm, Dbgc, DbgcConfig, SplitStrategy};
use dbgc_bench::{scene_frame, timed, Q_TYPICAL};
use dbgc_clustering::{approx_cluster, cell_based_cluster};
use dbgc_lidar_sim::ScenePreset;

fn main() {
    let cloud = scene_frame(ScenePreset::KittiCity);
    let params = DbgcConfig::with_error_bound(Q_TYPICAL).cluster_params();
    println!(
        "§4.3 — {} ({} points), eps = {} m, minPts = {}\n",
        ScenePreset::KittiCity.name(),
        cloud.len(),
        params.eps,
        params.min_pts
    );

    const REPS: usize = 3;
    let mut exact_t = 0.0;
    let mut approx_t = 0.0;
    let mut exact = None;
    let mut approx = None;
    for _ in 0..REPS {
        let (e, te) = timed(|| cell_based_cluster(cloud.points(), params));
        let (a, ta) = timed(|| approx_cluster(cloud.points(), params));
        exact_t += te.as_secs_f64() / REPS as f64;
        approx_t += ta.as_secs_f64() / REPS as f64;
        exact = Some(e);
        approx = Some(a);
    }
    let (exact, approx) = (exact.expect("reps > 0"), approx.expect("reps > 0"));

    let agree = exact.dense.iter().zip(&approx.dense).filter(|(a, b)| a == b).count();
    println!(
        "dense sets: exact {:.1}% dense, approx {:.1}% dense, agreement {:.1}%",
        100.0 * exact.dense_fraction(),
        100.0 * approx.dense_fraction(),
        100.0 * agree as f64 / cloud.len() as f64
    );
    println!(
        "clustering time: exact {:.1} ms, approx {:.1} ms -> {:.1}x speedup \
         (paper: ~2x)",
        exact_t * 1e3,
        approx_t * 1e3,
        exact_t / approx_t
    );

    // End-to-end effect.
    let e2e = |alg: ClusteringAlgorithm| {
        let mut cfg = DbgcConfig::with_error_bound(Q_TYPICAL);
        cfg.split = SplitStrategy::Density(alg);
        let dbgc = Dbgc::new(cfg);
        let mut total = 0.0;
        let mut ratio = 0.0;
        for _ in 0..REPS {
            let (f, t) = timed(|| dbgc.compress(&cloud).expect("compress"));
            total += t.as_secs_f64() / REPS as f64;
            ratio = f.compression_ratio();
        }
        (total, ratio)
    };
    let (t_exact, r_exact) = e2e(ClusteringAlgorithm::CellBased);
    let (t_approx, r_approx) = e2e(ClusteringAlgorithm::Approximate);
    println!(
        "end-to-end compression: exact {:.0} ms (ratio {:.2}), approx {:.0} ms \
         (ratio {:.2}) -> {:.2}x speedup (paper: ~1.2x)",
        t_exact * 1e3,
        r_exact,
        t_approx * 1e3,
        r_approx,
        t_exact / t_approx
    );
}
