//! §4.4 end-to-end evaluation: throughput and latency of the full DBGC
//! system — sensor → client (100BASE-TX) → compress → 4G uplink → server →
//! decompress → store (HDD) — on the KITTI city stream (10 fps, ~100 K
//! points/frame).
//!
//! Measures single-frame compression twice — fully serial (`threads = 1`)
//! and intra-frame parallel (`threads = 0`, process-wide pool at hardware
//! size) — and verifies the two bitstreams are byte-identical. Besides the
//! console report it writes:
//!
//! - `BENCH_e2e.json` (repo root): machine-readable frames/s serial vs
//!   parallel plus per-stage timing, for CI trend tracking;
//! - `results/e2e_throughput.txt`: the human-readable report.
//!
//! ```text
//! cargo run --release -p dbgc-bench --bin e2e_throughput
//! ```

use std::fmt::Write as _;
use std::time::Duration;

use dbgc::{decompress, Dbgc, DbgcConfig, TimingBreakdown};
use dbgc_bench::{scene_frames, timed, Q_TYPICAL};
use dbgc_lidar_sim::ScenePreset;
use dbgc_net::LinkModel;

const FPS: f64 = 10.0;

/// Stage sums accumulated over the measured frames, reported as mean ms.
#[derive(Default)]
struct StageSums {
    den: Duration,
    oct: Duration,
    cor: Duration,
    org: Duration,
    spa: Duration,
    out: Duration,
}

impl StageSums {
    fn add(&mut self, t: &TimingBreakdown) {
        self.den += t.den;
        self.oct += t.oct;
        self.cor += t.cor;
        self.org += t.org;
        self.spa += t.spa;
        self.out += t.out;
    }

    /// `(label, mean ms per frame)` in pipeline order.
    fn mean_ms(&self, frames: usize) -> [(&'static str, f64); 6] {
        let ms = |d: Duration| d.as_secs_f64() * 1e3 / frames as f64;
        [
            ("den", ms(self.den)),
            ("oct", ms(self.oct)),
            ("cor", ms(self.cor)),
            ("org", ms(self.org)),
            ("spa", ms(self.spa)),
            ("out", ms(self.out)),
        ]
    }
}

fn stage_json(stages: &StageSums, frames: usize) -> String {
    let fields: Vec<String> =
        stages.mean_ms(frames).iter().map(|(label, ms)| format!("\"{label}\": {ms:.3}")).collect();
    format!("{{ {} }}", fields.join(", "))
}

fn stage_line(stages: &StageSums, frames: usize) -> String {
    stages
        .mean_ms(frames)
        .iter()
        .map(|(label, ms)| format!("{} {ms:.1}", label.to_uppercase()))
        .collect::<Vec<_>>()
        .join(" | ")
}

fn main() {
    let frames = scene_frames(ScenePreset::KittiCity, 3);
    let serial = Dbgc::new(DbgcConfig::with_error_bound(Q_TYPICAL).with_threads(1));
    let parallel = Dbgc::new(DbgcConfig::with_error_bound(Q_TYPICAL).with_threads(0));
    let ethernet = LinkModel::ethernet_100base_tx();
    let uplink = LinkModel::mobile_4g();
    let hdd = LinkModel::hdd_write();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // The report goes to stdout AND results/e2e_throughput.txt.
    let mut report = String::new();
    macro_rules! say {
        ($($arg:tt)*) => {{ let _ = writeln!(report, $($arg)*); }};
    }

    say!(
        "§4.4 — {} stream at {FPS} fps, q = {Q_TYPICAL} m, {} frames measured\n",
        ScenePreset::KittiCity.name(),
        frames.len()
    );

    let mut sum_comp = 0.0;
    let mut sum_par = 0.0;
    let mut sum_dec = 0.0;
    let mut sum_bytes = 0usize;
    let mut sum_raw = 0usize;
    let mut sum_points = 0usize;
    let mut serial_stages = StageSums::default();
    let mut parallel_stages = StageSums::default();
    for cloud in &frames {
        let raw = cloud.raw_size_bytes();
        let (frame, t_comp) = timed(|| serial.compress(cloud).expect("compress"));
        let (par_frame, t_par) = timed(|| parallel.compress(cloud).expect("compress"));
        assert_eq!(frame.bytes, par_frame.bytes, "parallel path must be byte-identical");
        let (out, t_dec) = timed(|| decompress(&frame.bytes).expect("own stream"));
        assert_eq!(out.0.len(), cloud.len());
        serial_stages.add(&frame.stats.timing);
        parallel_stages.add(&par_frame.stats.timing);

        let t_sensor = ethernet.transfer_time(raw);
        let t_uplink = uplink.transfer_time(frame.bytes.len());
        let t_store = hdd.transfer_time(raw);
        let total = t_sensor.as_secs_f64()
            + t_comp.as_secs_f64()
            + t_uplink.as_secs_f64()
            + t_dec.as_secs_f64()
            + t_store.as_secs_f64();
        say!(
            "frame: {} pts | sensor->client {:.0} ms | compress {:.0} ms | \
             4G transfer {:.0} ms | decompress {:.0} ms | store {:.0} ms | \
             total {:.2} s",
            cloud.len(),
            t_sensor.as_secs_f64() * 1e3,
            t_comp.as_secs_f64() * 1e3,
            t_uplink.as_secs_f64() * 1e3,
            t_dec.as_secs_f64() * 1e3,
            t_store.as_secs_f64() * 1e3,
            total
        );
        sum_comp += t_comp.as_secs_f64();
        sum_par += t_par.as_secs_f64();
        sum_dec += t_dec.as_secs_f64();
        sum_bytes += frame.bytes.len();
        sum_raw += raw;
        sum_points += cloud.len();
    }
    let n = frames.len() as f64;
    let avg_bytes = sum_bytes / frames.len();
    let serial_fps = n / sum_comp;
    let parallel_fps = n / sum_par;
    say!("\nthroughput ({cores} CPU core(s) exposed to this process):");
    say!(
        "  compression, serial (threads=1):   {serial_fps:.1} frames/s \
         (sensor produces {FPS}) -> {}",
        if serial_fps >= FPS { "keeps up ONLINE" } else { "needs parallelism" }
    );
    say!(
        "  compression, parallel (threads=0): {parallel_fps:.1} frames/s, \
         {:.2}x serial{} (bitstreams byte-identical)",
        parallel_fps / serial_fps,
        if cores == 1 { " -> single core, no speedup possible" } else { "" }
    );
    say!("    serial stage ms/frame:   {}", stage_line(&serial_stages, frames.len()));
    say!(
        "    parallel stage ms/frame: {}  (ORG/SPA = summed worker CPU time)",
        stage_line(&parallel_stages, frames.len())
    );
    // Pipelined compression (frame-ordered worker pool). Scaling requires
    // actual cores; report the parallelism available so single-CPU runs are
    // interpretable.
    let mut pipelined = Vec::new();
    for workers in [2usize, 4] {
        let mut pipe = dbgc_net::PipelinedCompressor::new(serial.clone(), workers);
        let reps = 4;
        let (_, t) = timed(|| {
            for _ in 0..reps {
                for cloud in &frames {
                    pipe.submit(cloud.clone());
                }
            }
            while pipe.next_ordered().is_some() {}
        });
        let fps = (reps * frames.len()) as f64 / t.as_secs_f64();
        pipelined.push((workers, fps));
        say!(
            "  compression ({workers} frame workers): {fps:.1} frames/s -> {}",
            if fps >= FPS {
                "keeps up ONLINE"
            } else if cores <= workers {
                "limited by available cores"
            } else {
                "falls behind"
            }
        );
    }
    say!("  decompression: {:.1} frames/s", n / sum_dec);
    say!(
        "  uplink need: {:.1} Mbps compressed vs {:.0} Mbps raw (4G gives 8.2) \
         (paper: ~6.0 Mbps at 2 cm)",
        LinkModel::required_mbps(avg_bytes, FPS),
        LinkModel::required_mbps(sum_raw / frames.len(), FPS)
    );
    say!(
        "\n(paper: ~0.4 s compression + ~0.1 s decompression + ~0.2 s transfers \
         ≈ 0.7 s sensor-to-storage latency)"
    );

    print!("{report}");

    // Machine-readable summary for CI trend tracking; hand-rolled JSON since
    // the workspace carries no serde.
    let pipelined_json: Vec<String> = pipelined
        .iter()
        .map(|(workers, fps)| format!("{{ \"workers\": {workers}, \"frames_per_s\": {fps:.3} }}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"e2e_throughput\",\n  \"preset\": \"{preset}\",\n  \
         \"error_bound_m\": {q},\n  \"frames\": {nf},\n  \
         \"avg_points_per_frame\": {pts},\n  \"cores\": {cores},\n  \
         \"sensor_fps\": {FPS},\n  \"byte_identical\": true,\n  \
         \"serial\": {{ \"threads\": 1, \"frames_per_s\": {sfps:.3}, \"stage_ms\": {sstage} }},\n  \
         \"parallel\": {{ \"threads\": 0, \"frames_per_s\": {pfps:.3}, \"stage_ms\": {pstage}, \
         \"note\": \"threads=0 uses the shared pool at hardware size; \
         org/spa are summed worker CPU time\" }},\n  \
         \"speedup\": {speedup:.3},\n  \
         \"pipelined\": [{pipe}],\n  \
         \"decompress_frames_per_s\": {dfps:.3},\n  \
         \"avg_compressed_bytes\": {bytes},\n  \
         \"uplink_mbps\": {mbps:.3}\n}}\n",
        preset = ScenePreset::KittiCity.name(),
        q = Q_TYPICAL,
        nf = frames.len(),
        pts = sum_points / frames.len(),
        sfps = serial_fps,
        sstage = stage_json(&serial_stages, frames.len()),
        pfps = parallel_fps,
        pstage = stage_json(&parallel_stages, frames.len()),
        speedup = parallel_fps / serial_fps,
        pipe = pipelined_json.join(", "),
        dfps = n / sum_dec,
        bytes = avg_bytes,
        mbps = LinkModel::required_mbps(avg_bytes, FPS),
    );

    // The binary lives at crates/bench; the artifacts go to the repo root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if let Err(e) = std::fs::write(root.join("BENCH_e2e.json"), &json) {
        eprintln!("warning: could not write BENCH_e2e.json: {e}");
    }
    let results = root.join("results");
    let _ = std::fs::create_dir_all(&results);
    if let Err(e) = std::fs::write(results.join("e2e_throughput.txt"), &report) {
        eprintln!("warning: could not write results/e2e_throughput.txt: {e}");
    }
}
