//! §4.4 end-to-end evaluation: throughput and latency of the full DBGC
//! system — sensor → client (100BASE-TX) → compress → 4G uplink → server →
//! decompress → store (HDD) — on the KITTI city stream (10 fps, ~100 K
//! points/frame).
//!
//! Measures single-frame compression twice — fully serial (`threads = 1`)
//! and intra-frame parallel (`threads = 0`, process-wide pool at hardware
//! size) — and verifies the two bitstreams are byte-identical. Stage times
//! are wall-clock in both modes (under parallelism the fan-out's wall
//! interval is split pro rata between ORG and SPA), so per-stage numbers sum
//! to the frame latency. Besides the console report it writes:
//!
//! - `BENCH_e2e.json` (repo root): a `dbgc-metrics` v1 snapshot — frames/s
//!   serial vs parallel, per-stage timing and parallel-efficiency gauges,
//!   the speedup-vs-threads scaling curve, span trees and per-section byte
//!   accounting from the instrumented runs — for CI trend tracking;
//! - `results/e2e_throughput.txt`: the human-readable report;
//! - `results/scaling_curve.txt`: the speedup-vs-cores curve on its own, the
//!   artifact the CI perf-smoke job uploads.
//!
//! Worker and thread counts are derived from `available_parallelism()` —
//! never hardcoded — so a single-core runner reports a truthful 1-point
//! curve instead of a fabricated multi-core one.
//!
//! ```text
//! cargo run --release -p dbgc-bench --bin e2e_throughput [-- --self-check]
//! ```
//!
//! `--self-check` instead runs two release gates and exits nonzero on
//! failure: (1) metrics recording overhead — best-of-N compression with a
//! collector attached must be within 2% of the uninstrumented path and
//! byte-identical; (2) on multi-core hosts, pipelined compression with the
//! derived worker count must not be slower than serial (a regression in the
//! handoff path would make added workers a net loss).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use dbgc::metrics::StageEfficiency;
use dbgc::{Dbgc, DbgcConfig, TimingBreakdown};
use dbgc_bench::{bench_collector, scene_frame, scene_frames, timed, Q_TYPICAL};
use dbgc_geom::PointCloud;
use dbgc_lidar_sim::ScenePreset;
use dbgc_net::LinkModel;

const FPS: f64 = 10.0;

/// Worker counts for the frame-pipelined runs, derived from the cores this
/// process actually has: {2, 4, cores} clipped to the machine, deduplicated,
/// ascending. A single-core host measures [1] — truthfully.
fn derived_worker_counts(cores: usize) -> Vec<usize> {
    let mut counts: Vec<usize> = [2, 4, cores].iter().map(|&w| w.min(cores)).collect();
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Thread counts for the intra-frame scaling curve: 1 plus the derived
/// worker counts (so the serial anchor is always measured).
fn curve_thread_counts(cores: usize) -> Vec<usize> {
    let mut counts = derived_worker_counts(cores);
    if counts.first() != Some(&1) {
        counts.insert(0, 1);
    }
    counts
}

/// Stage sums accumulated over the measured frames, reported as mean ms.
#[derive(Default)]
struct StageSums {
    den: Duration,
    oct: Duration,
    cor: Duration,
    org: Duration,
    spa: Duration,
    out: Duration,
}

impl StageSums {
    fn add(&mut self, t: &TimingBreakdown) {
        self.den += t.den;
        self.oct += t.oct;
        self.cor += t.cor;
        self.org += t.org;
        self.spa += t.spa;
        self.out += t.out;
    }

    /// `(label, mean ms per frame)` in pipeline order.
    fn mean_ms(&self, frames: usize) -> [(&'static str, f64); 6] {
        let ms = |d: Duration| d.as_secs_f64() * 1e3 / frames as f64;
        [
            ("den", ms(self.den)),
            ("oct", ms(self.oct)),
            ("cor", ms(self.cor)),
            ("org", ms(self.org)),
            ("spa", ms(self.spa)),
            ("out", ms(self.out)),
        ]
    }
}

fn stage_line(stages: &StageSums, frames: usize) -> String {
    stages
        .mean_ms(frames)
        .iter()
        .map(|(label, ms)| format!("{} {ms:.1}", label.to_uppercase()))
        .collect::<Vec<_>>()
        .join(" | ")
}

/// Record one mode's mean stage times as `<mode>.stage_ms.<stage>` gauges.
fn stage_gauges(
    collector: &dbgc::metrics::Collector,
    mode: &str,
    stages: &StageSums,
    frames: usize,
) {
    for (label, ms) in stages.mean_ms(frames) {
        collector.set_gauge(&format!("{mode}.stage_ms.{label}"), ms);
    }
}

/// `--self-check`: recording must be near-free. Best-of-N wall time with a
/// collector attached vs the plain path, interleaved to decorrelate machine
/// drift; asserts the overhead is within 2% and the bitstream is identical.
fn self_check() {
    const REPS: usize = 7;
    const MAX_OVERHEAD: f64 = 0.02;
    let cloud = scene_frame(ScenePreset::KittiCity);
    let dbgc = Dbgc::new(DbgcConfig::with_error_bound(Q_TYPICAL).with_threads(0));
    let baseline = dbgc.compress(&cloud).expect("compress"); // warm-up
    let mut plain_best = f64::INFINITY;
    let mut instrumented_best = f64::INFINITY;
    for _ in 0..REPS {
        let (frame, t) = timed(|| dbgc.compress(&cloud).expect("compress"));
        assert_eq!(frame.bytes, baseline.bytes);
        plain_best = plain_best.min(t.as_secs_f64());

        let collector = dbgc::metrics::Collector::new();
        let (frame, t) =
            timed(|| dbgc.compress_with_metrics(&cloud, &collector).expect("compress"));
        assert_eq!(frame.bytes, baseline.bytes, "recording must not change the bitstream");
        assert_eq!(
            collector.snapshot().bytes_total() as usize,
            frame.bytes.len(),
            "byte channels must sum to the stream size"
        );
        instrumented_best = instrumented_best.min(t.as_secs_f64());
    }
    let overhead = instrumented_best / plain_best - 1.0;
    println!(
        "metrics overhead self-check ({} points, best of {REPS}): \
         plain {:.1} ms, instrumented {:.1} ms, overhead {:+.2}%",
        cloud.len(),
        plain_best * 1e3,
        instrumented_best * 1e3,
        overhead * 100.0
    );
    assert!(
        overhead <= MAX_OVERHEAD,
        "metrics recording overhead {:.2}% exceeds the {:.0}% budget",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
    println!("OK (budget {:.0}%)", MAX_OVERHEAD * 100.0);

    // Gate 2: adding frame workers must never make compression *slower* than
    // the serial loop — that is the regression mode of a broken handoff
    // (deep-copy submission, lock convoy, serial merge). Only meaningful
    // with real cores to add.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 2 {
        println!("pipelined-vs-serial self-check: skipped ({cores} core exposed)");
        return;
    }
    let workers = *derived_worker_counts(cores).last().expect("non-empty");
    let frames: Vec<Arc<PointCloud>> =
        scene_frames(ScenePreset::KittiCity, 3).into_iter().map(Arc::new).collect();
    let serial = Dbgc::new(DbgcConfig::with_error_bound(Q_TYPICAL).with_threads(1));
    const PIPE_REPS: usize = 3;
    let (_, t_serial) = timed(|| {
        for _ in 0..PIPE_REPS {
            for cloud in &frames {
                serial.compress(cloud).expect("compress");
            }
        }
    });
    let mut pipe = dbgc_net::PipelinedCompressor::new(serial.clone(), workers);
    let (_, t_pipe) = timed(|| {
        for _ in 0..PIPE_REPS {
            for cloud in &frames {
                pipe.submit_shared(Arc::clone(cloud));
            }
        }
        while pipe.next_ordered().is_some() {}
    });
    let serial_fps = (PIPE_REPS * frames.len()) as f64 / t_serial.as_secs_f64();
    let pipe_fps = (PIPE_REPS * frames.len()) as f64 / t_pipe.as_secs_f64();
    println!(
        "pipelined-vs-serial self-check ({cores} cores, {workers} workers): \
         serial {serial_fps:.1} fps, pipelined {pipe_fps:.1} fps"
    );
    if pipe_fps < serial_fps {
        eprintln!(
            "FAIL: pipelined compression ({pipe_fps:.1} fps) is slower than \
             serial ({serial_fps:.1} fps) with {workers} workers on {cores} cores"
        );
        std::process::exit(1);
    }
    println!("OK (pipelined {:.2}x serial)", pipe_fps / serial_fps);
}

fn main() {
    if std::env::args().any(|a| a == "--self-check") {
        self_check();
        return;
    }
    let frames: Vec<Arc<PointCloud>> =
        scene_frames(ScenePreset::KittiCity, 3).into_iter().map(Arc::new).collect();
    let serial = Dbgc::new(DbgcConfig::with_error_bound(Q_TYPICAL).with_threads(1));
    let parallel = Dbgc::new(DbgcConfig::with_error_bound(Q_TYPICAL).with_threads(0));
    let ethernet = LinkModel::ethernet_100base_tx();
    let uplink = LinkModel::mobile_4g();
    let hdd = LinkModel::hdd_write();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Spans, counters and byte accounting from the instrumented (parallel
    // compress + decompress) runs land here; summary gauges are added at the
    // end and the whole snapshot becomes BENCH_e2e.json.
    let collector = bench_collector("e2e_throughput", ScenePreset::KittiCity);

    // The report goes to stdout AND results/e2e_throughput.txt.
    let mut report = String::new();
    macro_rules! say {
        ($($arg:tt)*) => {{ let _ = writeln!(report, $($arg)*); }};
    }

    say!(
        "§4.4 — {} stream at {FPS} fps, q = {Q_TYPICAL} m, {} frames measured\n",
        ScenePreset::KittiCity.name(),
        frames.len()
    );
    if cores == 1 {
        let warning = "WARNING: single CPU core exposed to this process — the speedup, \
                       scaling.* and stage.* efficiency gauges below are degenerate (~1.0x) \
                       and MUST NOT be used as a scaling baseline; regenerate BENCH_e2e.json \
                       on a multi-core runner.";
        eprintln!("{warning}");
        say!("{warning}\n");
    }

    let mut sum_comp = 0.0;
    let mut sum_par = 0.0;
    let mut sum_dec = 0.0;
    let mut sum_bytes = 0usize;
    let mut sum_raw = 0usize;
    let mut sum_points = 0usize;
    let mut serial_stages = StageSums::default();
    let mut parallel_stages = StageSums::default();
    for cloud in &frames {
        let raw = cloud.raw_size_bytes();
        let (frame, t_comp) = timed(|| serial.compress(cloud).expect("compress"));
        let (par_frame, t_par) =
            timed(|| parallel.compress_with_metrics(cloud, &collector).expect("compress"));
        assert_eq!(frame.bytes, par_frame.bytes, "parallel path must be byte-identical");
        let (out, t_dec) =
            timed(|| dbgc::decompress_with_metrics(&frame.bytes, &collector).expect("own stream"));
        assert_eq!(out.0.len(), cloud.len());
        serial_stages.add(&frame.stats.timing);
        parallel_stages.add(&par_frame.stats.timing);

        let t_sensor = ethernet.transfer_time(raw);
        let t_uplink = uplink.transfer_time(frame.bytes.len());
        let t_store = hdd.transfer_time(raw);
        let total = t_sensor.as_secs_f64()
            + t_comp.as_secs_f64()
            + t_uplink.as_secs_f64()
            + t_dec.as_secs_f64()
            + t_store.as_secs_f64();
        say!(
            "frame: {} pts | sensor->client {:.0} ms | compress {:.0} ms | \
             4G transfer {:.0} ms | decompress {:.0} ms | store {:.0} ms | \
             total {:.2} s",
            cloud.len(),
            t_sensor.as_secs_f64() * 1e3,
            t_comp.as_secs_f64() * 1e3,
            t_uplink.as_secs_f64() * 1e3,
            t_dec.as_secs_f64() * 1e3,
            t_store.as_secs_f64() * 1e3,
            total
        );
        sum_comp += t_comp.as_secs_f64();
        sum_par += t_par.as_secs_f64();
        sum_dec += t_dec.as_secs_f64();
        sum_bytes += frame.bytes.len();
        sum_raw += raw;
        sum_points += cloud.len();
    }
    let n = frames.len() as f64;
    let avg_bytes = sum_bytes / frames.len();
    let serial_fps = n / sum_comp;
    let parallel_fps = n / sum_par;
    say!("\nthroughput ({cores} CPU core(s) exposed to this process):");
    say!(
        "  compression, serial (threads=1):   {serial_fps:.1} frames/s \
         (sensor produces {FPS}) -> {}",
        if serial_fps >= FPS { "keeps up ONLINE" } else { "needs parallelism" }
    );
    say!(
        "  compression, parallel (threads=0): {parallel_fps:.1} frames/s, \
         {:.2}x serial{} (bitstreams byte-identical)",
        parallel_fps / serial_fps,
        if cores == 1 { " -> single core, no speedup possible" } else { "" }
    );
    say!("    serial stage ms/frame:   {}", stage_line(&serial_stages, frames.len()));
    say!("    parallel stage ms/frame: {}", stage_line(&parallel_stages, frames.len()));

    // Wide entropy profile (stream version 3): serial throughput with the
    // four-lane coder — the number the perf_gate fps/core floor reads.
    let wide = Dbgc::new(
        DbgcConfig::with_error_bound(Q_TYPICAL)
            .with_threads(1)
            .with_entropy_profile(dbgc::EntropyProfile::Wide),
    );
    let wide_reps = 2;
    let (_, wide_wall) = timed(|| {
        for _ in 0..wide_reps {
            for cloud in &frames {
                wide.compress(cloud).expect("compress");
            }
        }
    });
    let wide_fps = (wide_reps * frames.len()) as f64 / wide_wall.as_secs_f64();
    say!(
        "  compression, serial wide profile:  {wide_fps:.1} frames/s \
         ({:+.1}% vs narrow serial)",
        (wide_fps / serial_fps - 1.0) * 100.0
    );

    // Per-stage parallel efficiency: serial vs parallel wall time over the
    // pool the `threads = 0` runs actually used. On a single core every
    // stage reports speedup ~1.0 and the gauges are still meaningful.
    let pool_threads = dbgc_parallel::ThreadPool::global().threads();
    let serial_ms = serial_stages.mean_ms(frames.len());
    let parallel_ms = parallel_stages.mean_ms(frames.len());
    say!("    per-stage speedup ({pool_threads} pool threads):");
    for ((label, s_ms), (_, p_ms)) in serial_ms.iter().zip(parallel_ms.iter()) {
        let eff = StageEfficiency::new(*s_ms, *p_ms, pool_threads);
        eff.record(&collector, &format!("stage.{label}"));
        say!(
            "      {}: {:.2}x ({:.0}% efficient, {:.0}% idle)",
            label.to_uppercase(),
            eff.speedup(),
            eff.efficiency() * 100.0,
            eff.idle_fraction() * 100.0
        );
    }

    // Intra-frame scaling curve: frames/s at each thread count the machine
    // can actually provide, anchored at threads = 1. This is the curve the
    // CI perf-smoke job gates on and uploads.
    let mut curve: Vec<(usize, f64)> = Vec::new();
    for &t in &curve_thread_counts(cores) {
        let dbgc = Dbgc::new(DbgcConfig::with_error_bound(Q_TYPICAL).with_threads(t));
        let reps = 2;
        let (_, wall) = timed(|| {
            for _ in 0..reps {
                for cloud in &frames {
                    dbgc.compress(cloud).expect("compress");
                }
            }
        });
        curve.push((t, (reps * frames.len()) as f64 / wall.as_secs_f64()));
    }
    let curve_base = curve[0].1;
    say!("\nscaling curve (intra-frame threads, {cores} core(s)):");
    let mut curve_txt = format!(
        "speedup-vs-threads, {} @ q={Q_TYPICAL} m, {cores} core(s) exposed\n\
         threads\tframes_per_s\tspeedup\n",
        ScenePreset::KittiCity.name()
    );
    for &(t, fps) in &curve {
        let speedup = fps / curve_base;
        say!("  threads={t}: {fps:.1} frames/s, {speedup:.2}x");
        let _ = writeln!(curve_txt, "{t}\t{fps:.2}\t{speedup:.3}");
        collector.set_gauge(&format!("scaling.threads_{t}.frames_per_s"), fps);
        collector.set_gauge(&format!("scaling.threads_{t}.speedup"), speedup);
    }

    // Pipelined compression (frame-ordered worker pool), worker counts
    // derived from the cores this process has. Frames are submitted shared,
    // so the handoff is a refcount bump, not a cloud copy.
    let mut pipelined = Vec::new();
    for workers in derived_worker_counts(cores) {
        let mut pipe = dbgc_net::PipelinedCompressor::new(serial.clone(), workers);
        let reps = 4;
        let (_, t) = timed(|| {
            for _ in 0..reps {
                for cloud in &frames {
                    pipe.submit_shared(Arc::clone(cloud));
                }
            }
            while pipe.next_ordered().is_some() {}
        });
        let fps = (reps * frames.len()) as f64 / t.as_secs_f64();
        pipelined.push((workers, fps));
        say!(
            "  compression ({workers} frame workers): {fps:.1} frames/s -> {}",
            if fps >= FPS {
                "keeps up ONLINE"
            } else if cores <= workers {
                "limited by available cores"
            } else {
                "falls behind"
            }
        );
    }
    say!("  decompression: {:.1} frames/s", n / sum_dec);
    say!(
        "  uplink need: {:.1} Mbps compressed vs {:.0} Mbps raw (4G gives 8.2) \
         (paper: ~6.0 Mbps at 2 cm)",
        LinkModel::required_mbps(avg_bytes, FPS),
        LinkModel::required_mbps(sum_raw / frames.len(), FPS)
    );
    say!(
        "\n(paper: ~0.4 s compression + ~0.1 s decompression + ~0.2 s transfers \
         ≈ 0.7 s sensor-to-storage latency)"
    );

    print!("{report}");

    // Machine-readable summary for CI trend tracking, in the one snapshot
    // schema (dbgc-metrics v1) every harness emits.
    collector.set_label("byte_identical", "true");
    collector.set_gauge("error_bound_m", Q_TYPICAL);
    collector.set_gauge("sensor_fps", FPS);
    collector.set_gauge("cores", cores as f64);
    collector.set_gauge("frames", frames.len() as f64);
    collector.set_gauge("avg_points_per_frame", (sum_points / frames.len()) as f64);
    collector.set_gauge("avg_compressed_bytes", avg_bytes as f64);
    collector.set_gauge("serial.frames_per_s", serial_fps);
    collector.set_gauge("serial_wide.frames_per_s", wide_fps);
    collector.set_gauge("parallel.frames_per_s", parallel_fps);
    collector.set_gauge("speedup", parallel_fps / serial_fps);
    collector.set_gauge("decompress.frames_per_s", n / sum_dec);
    collector.set_gauge("uplink_mbps", LinkModel::required_mbps(avg_bytes, FPS));
    for (workers, fps) in &pipelined {
        collector.set_gauge(&format!("pipelined.{workers}_workers.frames_per_s"), *fps);
    }
    stage_gauges(&collector, "serial", &serial_stages, frames.len());
    stage_gauges(&collector, "parallel", &parallel_stages, frames.len());

    // The binary lives at crates/bench; the artifacts go to the repo root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if let Err(e) = std::fs::write(root.join("BENCH_e2e.json"), collector.snapshot().to_json()) {
        eprintln!("warning: could not write BENCH_e2e.json: {e}");
    }
    let results = root.join("results");
    let _ = std::fs::create_dir_all(&results);
    if let Err(e) = std::fs::write(results.join("e2e_throughput.txt"), &report) {
        eprintln!("warning: could not write results/e2e_throughput.txt: {e}");
    }
    if let Err(e) = std::fs::write(results.join("scaling_curve.txt"), &curve_txt) {
        eprintln!("warning: could not write results/scaling_curve.txt: {e}");
    }
}
