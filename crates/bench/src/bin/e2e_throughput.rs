//! §4.4 end-to-end evaluation: throughput and latency of the full DBGC
//! system — sensor → client (100BASE-TX) → compress → 4G uplink → server →
//! decompress → store (HDD) — on the KITTI city stream (10 fps, ~100 K
//! points/frame).
//!
//! ```text
//! cargo run --release -p dbgc-bench --bin e2e_throughput
//! ```

use dbgc::{decompress, Dbgc};
use dbgc_bench::{scene_frames, timed, Q_TYPICAL};
use dbgc_lidar_sim::ScenePreset;
use dbgc_net::LinkModel;

const FPS: f64 = 10.0;

fn main() {
    let frames = scene_frames(ScenePreset::KittiCity, 3);
    let dbgc = Dbgc::with_error_bound(Q_TYPICAL);
    let ethernet = LinkModel::ethernet_100base_tx();
    let uplink = LinkModel::mobile_4g();
    let hdd = LinkModel::hdd_write();

    println!(
        "§4.4 — {} stream at {FPS} fps, q = {Q_TYPICAL} m, {} frames measured\n",
        ScenePreset::KittiCity.name(),
        frames.len()
    );

    let mut sum_comp = 0.0;
    let mut sum_dec = 0.0;
    let mut sum_bytes = 0usize;
    let mut sum_raw = 0usize;
    for cloud in &frames {
        let raw = cloud.raw_size_bytes();
        let (frame, t_comp) = timed(|| dbgc.compress(cloud).expect("compress"));
        let (out, t_dec) = timed(|| decompress(&frame.bytes).expect("own stream"));
        assert_eq!(out.0.len(), cloud.len());

        let t_sensor = ethernet.transfer_time(raw);
        let t_uplink = uplink.transfer_time(frame.bytes.len());
        let t_store = hdd.transfer_time(raw);
        let total = t_sensor.as_secs_f64()
            + t_comp.as_secs_f64()
            + t_uplink.as_secs_f64()
            + t_dec.as_secs_f64()
            + t_store.as_secs_f64();
        println!(
            "frame: {} pts | sensor->client {:.0} ms | compress {:.0} ms | \
             4G transfer {:.0} ms | decompress {:.0} ms | store {:.0} ms | \
             total {:.2} s",
            cloud.len(),
            t_sensor.as_secs_f64() * 1e3,
            t_comp.as_secs_f64() * 1e3,
            t_uplink.as_secs_f64() * 1e3,
            t_dec.as_secs_f64() * 1e3,
            t_store.as_secs_f64() * 1e3,
            total
        );
        sum_comp += t_comp.as_secs_f64();
        sum_dec += t_dec.as_secs_f64();
        sum_bytes += frame.bytes.len();
        sum_raw += raw;
    }
    let n = frames.len() as f64;
    let avg_bytes = sum_bytes / frames.len();
    println!("\nthroughput:");
    println!(
        "  compression (1 thread): {:.1} frames/s (sensor produces {FPS}) -> {}",
        n / sum_comp,
        if n / sum_comp >= FPS { "keeps up ONLINE" } else { "needs pipelining" }
    );
    // Pipelined compression (frame-ordered worker pool). Scaling requires
    // actual cores; report the parallelism available so single-CPU runs are
    // interpretable.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("  (host exposes {cores} CPU core(s) to this process)");
    for workers in [2usize, 4] {
        let mut pipe = dbgc_net::PipelinedCompressor::new(dbgc.clone(), workers);
        let reps = 4;
        let (_, t) = timed(|| {
            for _ in 0..reps {
                for cloud in &frames {
                    pipe.submit(cloud.clone());
                }
            }
            while pipe.next_ordered().is_some() {}
        });
        let fps = (reps * frames.len()) as f64 / t.as_secs_f64();
        println!(
            "  compression ({workers} workers): {fps:.1} frames/s -> {}",
            if fps >= FPS {
                "keeps up ONLINE"
            } else if cores <= workers {
                "limited by available cores"
            } else {
                "falls behind"
            }
        );
    }
    println!("  decompression: {:.1} frames/s", n / sum_dec);
    println!(
        "  uplink need: {:.1} Mbps compressed vs {:.0} Mbps raw (4G gives 8.2) \
         (paper: ~6.0 Mbps at 2 cm)",
        LinkModel::required_mbps(avg_bytes, FPS),
        LinkModel::required_mbps(sum_raw / frames.len(), FPS)
    );
    println!(
        "\n(paper: ~0.4 s compression + ~0.1 s decompression + ~0.2 s transfers \
         ≈ 0.7 s sensor-to-storage latency)"
    );
}
