//! Shared infrastructure for the DBGC experiment harness.
//!
//! Every table and figure of the paper's evaluation (§4) has a dedicated
//! binary under `src/bin/`; this library provides the pieces they share:
//! workload generation, a uniform interface over the five competing coders,
//! simple table printing, and process-memory introspection.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

use dbgc::Dbgc;
use dbgc_geom::PointCloud;
use dbgc_lidar_sim::{frame, ScenePreset};

/// Error bounds swept in Fig. 9/11/12, in metres (0.06 cm – 2 cm).
pub const ERROR_BOUNDS: [f64; 6] = [0.0006, 0.001, 0.0025, 0.005, 0.01, 0.02];

/// The paper's typical LiDAR accuracy bound: 2 cm.
pub const Q_TYPICAL: f64 = 0.02;

/// Default workload seed; experiments average over a few frames of a drive.
pub const SEED: u64 = 1;

/// Generate the evaluation frames for a scene (a short drive).
pub fn scene_frames(preset: ScenePreset, n: u32) -> Vec<PointCloud> {
    (0..n).map(|k| frame(preset, SEED, k)).collect()
}

/// One frame of a scene (most sweeps use a single representative frame).
pub fn scene_frame(preset: ScenePreset) -> PointCloud {
    frame(preset, SEED, 0)
}

/// The five coders of Fig. 9/12, behind one interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coder {
    /// The paper's system (this repo's `dbgc` crate).
    Dbgc,
    /// Baseline occupancy-code octree coder \[7\].
    Octree,
    /// Parent-occupancy-context octree variant \[21\].
    OctreeI,
    /// Draco-style kd-tree coder \[23\].
    Draco,
    /// Simplified G-PCC (TMC13-like) coder \[33\].
    Gpcc,
}

impl Coder {
    /// All five coders, in the paper's column order.
    pub fn all() -> [Coder; 5] {
        [Coder::Dbgc, Coder::Octree, Coder::OctreeI, Coder::Draco, Coder::Gpcc]
    }

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Coder::Dbgc => "DBGC",
            Coder::Octree => "Octree",
            Coder::OctreeI => "Octree_i",
            Coder::Draco => "Draco",
            Coder::Gpcc => "G-PCC",
        }
    }

    /// Compress `cloud` at error bound `q`; returns the bitstream.
    pub fn encode(self, cloud: &PointCloud, q: f64) -> Vec<u8> {
        match self {
            Coder::Dbgc => {
                Dbgc::with_error_bound(q).compress(cloud).expect("finite cloud, valid config").bytes
            }
            Coder::Octree => dbgc_octree::OctreeCodec::baseline().encode(cloud.points(), q).bytes,
            Coder::OctreeI => {
                dbgc_octree::OctreeCodec::parent_context().encode(cloud.points(), q).bytes
            }
            Coder::Draco => dbgc_kdtree::KdTreeCodec.encode(cloud.points(), q).bytes,
            Coder::Gpcc => dbgc_gpcc::GpccCodec.encode(cloud.points(), q).bytes,
        }
    }

    /// Decompress a stream this coder produced; returns the point count.
    pub fn decode(self, bytes: &[u8]) -> usize {
        match self {
            Coder::Dbgc => dbgc::decompress(bytes).expect("own stream").0.len(),
            Coder::Octree => {
                dbgc_octree::OctreeCodec::baseline().decode(bytes).expect("own stream").points.len()
            }
            Coder::OctreeI => dbgc_octree::OctreeCodec::parent_context()
                .decode(bytes)
                .expect("own stream")
                .points
                .len(),
            Coder::Draco => {
                dbgc_kdtree::KdTreeCodec.decode(bytes).expect("own stream").points.len()
            }
            Coder::Gpcc => dbgc_gpcc::GpccCodec.decode(bytes).expect("own stream").points.len(),
        }
    }
}

/// Compression ratio of a stream against a cloud's raw size.
pub fn ratio(cloud: &PointCloud, compressed_len: usize) -> f64 {
    cloud.raw_size_bytes() as f64 / compressed_len as f64
}

/// Time a closure, returning `(result, elapsed)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// Average ratio of one coder over several frames.
pub fn mean_ratio(coder: Coder, frames: &[PointCloud], q: f64) -> f64 {
    let mut sum = 0.0;
    for cloud in frames {
        sum += ratio(cloud, coder.encode(cloud, q).len());
    }
    sum / frames.len() as f64
}

/// Build a metrics collector labelled for a bench harness, so every
/// harness's snapshot carries the same identifying labels.
pub fn bench_collector(bench: &str, preset: ScenePreset) -> dbgc::metrics::Collector {
    let collector = dbgc::metrics::Collector::new();
    collector.set_label("bench", bench);
    collector.set_label("preset", preset.name());
    collector
}

/// Write `collector`'s snapshot to `<repo root>/results/<name>.metrics.json`
/// — the one machine-readable schema (`dbgc-metrics` v1) every harness
/// emits. Returns the path it wrote, or logs a warning on failure.
pub fn write_metrics_snapshot(
    name: &str,
    collector: &dbgc::metrics::Collector,
) -> Option<std::path::PathBuf> {
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if let Err(e) = std::fs::create_dir_all(&results) {
        eprintln!("warning: could not create results/: {e}");
        return None;
    }
    let path = results.join(format!("{name}.metrics.json"));
    match std::fs::write(&path, collector.snapshot().to_json()) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: could not write {}: {e}", path.display());
            None
        }
    }
}

/// Peak resident set size (`VmHWM`) of this process in bytes, from
/// `/proc/self/status` — the paper's §4.4 memory metric.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Render a table: header row + data rows, columns padded to fit.
pub fn print_table(header: &[String], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut width = vec![0usize; cols];
    for (c, h) in header.iter().enumerate() {
        width[c] = h.len();
    }
    for row in rows {
        for (c, cell) in row.iter().enumerate() {
            width[c] = width[c].max(cell.len());
        }
    }
    let print_row = |row: &[String]| {
        let line: Vec<String> =
            row.iter().enumerate().map(|(c, cell)| format!("{:>w$}", cell, w = width[c])).collect();
        println!("{}", line.join("  "));
    };
    print_row(header);
    println!("{}", "-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
    for row in rows {
        print_row(row);
    }
}

/// Convenience: format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coders_roundtrip_point_counts() {
        // A small cloud keeps this fast; full-size runs live in the binaries.
        let cloud: PointCloud = (0..2000)
            .map(|i| {
                let th = i as f64 / 2000.0 * std::f64::consts::TAU;
                dbgc_geom::Point3::new(15.0 * th.cos(), 15.0 * th.sin(), -1.7)
            })
            .collect();
        for coder in Coder::all() {
            let bytes = coder.encode(&cloud, 0.02);
            assert_eq!(coder.decode(&bytes), cloud.len(), "{}", coder.name());
        }
    }

    #[test]
    fn peak_rss_is_readable_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap() > 1 << 20);
        }
    }

    #[test]
    fn ratio_math() {
        let cloud: PointCloud =
            (0..100).map(|i| dbgc_geom::Point3::new(i as f64, 0.0, 0.0)).collect();
        assert!((ratio(&cloud, 120) - 10.0).abs() < 1e-12);
    }
}
