//! Octree and quadtree geometry coders for point clouds.
//!
//! Implements the baseline octree coder of Botsch et al. \[7\] (paper §2.1):
//! the cloud's bounding cube is recursively halved; every non-leaf node is an
//! 8-bit occupancy code; the codes are serialized breadth-first and
//! compressed with an adaptive arithmetic (range) coder. Decoded points are
//! the centres of occupied leaf cells, so with leaf side `2·q` the per-axis
//! error is at most `q`.
//!
//! Because the paper's problem statement requires a one-to-one mapping
//! between input and output points (duplicates preserved, like G-PCC with
//! `mergeDuplicatedPoints` disabled), each occupied leaf also carries its
//! point multiplicity.
//!
//! Variants:
//! * [`OctreeCodec`] — the baseline coder; occupancy bytes share one adaptive
//!   model.
//! * [`codec::OccupancyContext::ParentCode`] — the Octree_i improvement of
//!   Garcia et al. \[21\]: nodes are grouped by their parent's occupancy code
//!   and each group uses its own adaptive model.
//! * [`quadtree::QuadtreeCodec`] — the 2D analogue used for DBGC's outlier
//!   compression (paper §3.6).

#![warn(missing_docs)]

pub mod builder;
pub mod codec;
pub mod quadtree;

pub use builder::Octree;
pub use codec::{
    OccupancyContext, OctreeCodec, OctreeDecodeResult, OctreeEncodeResult, DEFAULT_MAX_POINTS,
};
pub use dbgc_codec::EntropyProfile;
pub use quadtree::{QuadtreeCodec, QuadtreeDecodeResult, QuadtreeEncodeResult};
