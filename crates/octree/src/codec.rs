//! Serialization of an [`Octree`] into a compressed bitstream and back.
//!
//! Stream layout:
//!
//! ```text
//! f64 origin.x | f64 origin.y | f64 origin.z | f64 side | varint depth |
//! varint leaf_count | varint rc_len | range-coded occupancy bytes |
//! int-frame of (multiplicity - 1) per leaf
//! ```
//!
//! The occupancy bytes are coded with an adaptive model; with
//! [`OccupancyContext::ParentCode`] every parent occupancy code selects its
//! own model — the Octree_i improvement of Garcia et al. \[21\].

use dbgc_codec::intseq;
use dbgc_codec::varint::{write_f64, write_uvarint, ByteReader};
use dbgc_codec::{
    AdaptiveModel, CodecError, ContextModel, DualRangeDecoder, DualRangeEncoder, EntropyProfile,
    RangeDecoder, RangeEncoder, RangeSink, RangeSource, WideRangeDecoder, WideRangeEncoder,
};
use dbgc_geom::{BoundingCube, Point3};

use crate::builder::{demorton3, Octree, MAX_DEPTH};

/// How occupancy bytes are modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OccupancyContext {
    /// One shared adaptive model (baseline Octree coder \[7\]).
    #[default]
    None,
    /// One adaptive model per parent occupancy code (Octree_i \[21\]).
    ParentCode,
}

/// Result of encoding: the bitstream plus the input→output index mapping.
#[derive(Debug, Clone)]
pub struct OctreeEncodeResult {
    /// The compressed bitstream.
    pub bytes: Vec<u8>,
    /// `mapping[i]` is the index of input point `i` in the decoded output.
    pub mapping: Vec<usize>,
    /// Number of occupied leaves (for stats).
    pub leaves: usize,
    /// Tree depth written into the stream header (0 for an empty cloud).
    /// Spatial directories record it as the section's LOD depth.
    pub depth: u32,
}

/// Result of decoding.
#[derive(Debug, Clone)]
pub struct OctreeDecodeResult {
    /// Decoded points (leaf centres, duplicates preserved).
    pub points: Vec<Point3>,
    /// Root volume read from the header.
    pub cube: BoundingCube,
    /// Tree depth read from the header.
    pub depth: u32,
}

/// The octree geometry codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct OctreeCodec {
    /// Occupancy-byte modelling strategy.
    pub context: OccupancyContext,
    /// How many interleaved interval states code the occupancy bytes (see
    /// [`dbgc_codec::dual`] and [`dbgc_codec::wide`]): symbol probabilities
    /// are unchanged, but the decoder's interval-state dependency chain is
    /// split across the lanes. Changes the occupancy framing — both ends
    /// must agree.
    pub profile: EntropyProfile,
}

impl OctreeCodec {
    /// The baseline coder of Botsch et al. \[7\].
    pub fn baseline() -> Self {
        OctreeCodec { context: OccupancyContext::None, profile: EntropyProfile::Narrow }
    }

    /// The Octree_i variant \[21\].
    pub fn parent_context() -> Self {
        OctreeCodec { context: OccupancyContext::ParentCode, profile: EntropyProfile::Narrow }
    }

    /// The same codec with the two-lane occupancy path switched on or off.
    /// Shorthand for [`OctreeCodec::with_profile`] with `Dual`/`Narrow`.
    pub fn with_dual_lane(self, dual_lane: bool) -> Self {
        self.with_profile(if dual_lane { EntropyProfile::Dual } else { EntropyProfile::Narrow })
    }

    /// The same codec with the given occupancy entropy profile.
    pub fn with_profile(mut self, profile: EntropyProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Compress `points` with leaf side `2·q_xyz` (per-axis error `<= q_xyz`).
    pub fn encode(&self, points: &[Point3], q_xyz: f64) -> OctreeEncodeResult {
        match Octree::build(points, q_xyz) {
            Some(tree) => self.encode_tree(&tree),
            None => OctreeEncodeResult {
                bytes: encode_empty(),
                mapping: Vec::new(),
                leaves: 0,
                depth: 0,
            },
        }
    }

    /// Compress an already-built tree.
    pub fn encode_tree(&self, tree: &Octree) -> OctreeEncodeResult {
        let mut out = Vec::new();
        write_f64(&mut out, tree.cube.origin.x);
        write_f64(&mut out, tree.cube.origin.y);
        write_f64(&mut out, tree.cube.origin.z);
        write_f64(&mut out, tree.cube.side);
        write_uvarint(&mut out, tree.depth as u64);
        write_uvarint(&mut out, tree.leaf_count() as u64);

        // Occupancy bytes, range-coded.
        let occ = match self.profile {
            EntropyProfile::Narrow => {
                let mut enc = RangeEncoder::new();
                self.encode_occupancy(tree, &mut enc);
                enc.finish()
            }
            EntropyProfile::Dual => {
                let mut enc = DualRangeEncoder::new();
                self.encode_occupancy(tree, &mut enc);
                enc.finish()
            }
            EntropyProfile::Wide => {
                let mut enc = WideRangeEncoder::new();
                self.encode_occupancy(tree, &mut enc);
                enc.finish()
            }
        };
        write_uvarint(&mut out, occ.len() as u64);
        out.extend_from_slice(&occ);

        // Multiplicities (usually 1) as (count - 1).
        let extras: Vec<i64> = tree.leaf_counts.iter().map(|&c| c as i64 - 1).collect();
        intseq::compress_ints_rc(&mut out, &extras);

        OctreeEncodeResult {
            bytes: out,
            mapping: tree.decode_mapping(),
            leaves: tree.leaf_count(),
            depth: tree.depth,
        }
    }

    fn encode_occupancy<S: RangeSink>(&self, tree: &Octree, enc: &mut S) {
        match self.context {
            OccupancyContext::None => {
                // Alphabet 255: code 0 (no children) never occurs; shift by 1.
                let mut model = AdaptiveModel::new(255);
                for (_, code) in tree.occupancy_codes() {
                    debug_assert!(code != 0);
                    model.encode(enc, code as usize - 1);
                }
            }
            OccupancyContext::ParentCode => {
                let mut model = ContextModel::new(256, 255);
                for (parent, code) in tree.occupancy_codes() {
                    model.encode(enc, parent as usize, code as usize - 1);
                }
            }
        }
    }

    fn decode_occupancy<S: RangeSource>(
        &self,
        depth: u32,
        leaf_count: usize,
        dec: &mut S,
    ) -> Result<Option<Vec<u64>>, CodecError> {
        match self.context {
            OccupancyContext::None => {
                let mut model = AdaptiveModel::new(255);
                Octree::leaves_from_codes(depth, leaf_count, |_parent| {
                    model.decode(dec).map(|s| s as u8 + 1)
                })
            }
            OccupancyContext::ParentCode => {
                let mut model = ContextModel::new(256, 255);
                Octree::leaves_from_codes(depth, leaf_count, |parent| {
                    model.decode(dec, parent as usize).map(|s| s as u8 + 1)
                })
            }
        }
    }

    /// Decompress a stream produced by [`OctreeCodec::encode`]. The `context`
    /// must match the encoder's.
    ///
    /// Output is capped at [`DEFAULT_MAX_POINTS`] points; use
    /// [`OctreeCodec::decode_with_limit`] to pick a different budget.
    pub fn decode(&self, bytes: &[u8]) -> Result<OctreeDecodeResult, CodecError> {
        self.decode_with_limit(bytes, DEFAULT_MAX_POINTS)
    }

    /// Decompress with an explicit point budget: streams whose declared or
    /// reconstructed size exceeds `max_points` fail with a typed error
    /// before large allocations happen, so hostile headers cannot OOM the
    /// decoder.
    pub fn decode_with_limit(
        &self,
        bytes: &[u8],
        max_points: usize,
    ) -> Result<OctreeDecodeResult, CodecError> {
        let mut r = ByteReader::new(bytes);
        let ox = r.read_f64()?;
        let oy = r.read_f64()?;
        let oz = r.read_f64()?;
        let side = r.read_f64()?;
        // Coordinates are meters; anything near f64 extremes is a corrupt
        // header and would push leaf centres into inf/NaN.
        if ![ox, oy, oz, side].iter().all(|v| v.is_finite() && v.abs() <= 1e15) {
            return Err(CodecError::CorruptStream("octree header out of range"));
        }
        let depth = r.read_uvarint()? as u32;
        if depth > MAX_DEPTH {
            return Err(CodecError::CorruptStream("octree depth out of range"));
        }
        let leaf_count = r.read_uvarint()? as usize;
        if leaf_count > max_points {
            return Err(CodecError::CorruptStream("octree leaf count exceeds limit"));
        }
        let cube = BoundingCube::new(Point3::new(ox, oy, oz), side);
        if leaf_count == 0 {
            return Ok(OctreeDecodeResult { points: Vec::new(), cube, depth });
        }
        let occ_len = r.read_uvarint()? as usize;
        let occ = r.read_slice(occ_len)?;

        let leaves = match self.profile {
            EntropyProfile::Narrow => {
                let mut dec = RangeDecoder::new(occ);
                self.decode_occupancy(depth, leaf_count, &mut dec)?
            }
            EntropyProfile::Dual => {
                let mut dec = DualRangeDecoder::new(occ)?;
                self.decode_occupancy(depth, leaf_count, &mut dec)?
            }
            EntropyProfile::Wide => {
                let mut dec = WideRangeDecoder::new(occ)?;
                self.decode_occupancy(depth, leaf_count, &mut dec)?
            }
        };
        let leaves = leaves.ok_or(CodecError::CorruptStream("octree leaf budget exceeded"))?;
        if leaves.len() != leaf_count {
            return Err(CodecError::CorruptStream("leaf count mismatch"));
        }

        let extras = intseq::decompress_ints_rc(&mut r)?;
        if extras.len() != leaf_count {
            return Err(CodecError::CorruptStream("multiplicity count mismatch"));
        }
        let mut points = Vec::new();
        let mut total = 0usize;
        for (&key, &extra) in leaves.iter().zip(&extras) {
            if extra < 0 || extra > u32::MAX as i64 {
                return Err(CodecError::CorruptStream("invalid multiplicity"));
            }
            total = total.saturating_add(extra as usize + 1);
            if total > max_points {
                return Err(CodecError::CorruptStream("octree point count exceeds limit"));
            }
            let center = cube.cell_center(demorton3(key), depth);
            points.extend(std::iter::repeat(center).take(extra as usize + 1));
        }
        Ok(OctreeDecodeResult { points, cube, depth })
    }
}

/// Default decode budget: far above any real LiDAR frame (a full HDL-64E
/// sweep is ~131k points) while keeping hostile streams from demanding
/// gigabytes.
pub const DEFAULT_MAX_POINTS: usize = 1 << 24;

fn encode_empty() -> Vec<u8> {
    let mut out = Vec::new();
    write_f64(&mut out, 0.0);
    write_f64(&mut out, 0.0);
    write_f64(&mut out, 0.0);
    write_f64(&mut out, 0.0);
    write_uvarint(&mut out, 0); // depth
    write_uvarint(&mut out, 0); // leaves
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64, span: f64) -> Vec<Point3> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.gen_range(-span..span),
                    rng.gen_range(-span..span),
                    rng.gen_range(-2.0..6.0),
                )
            })
            .collect()
    }

    fn check_roundtrip(codec: OctreeCodec, points: &[Point3], q: f64) -> usize {
        let enc = codec.encode(points, q);
        let dec = codec.decode(&enc.bytes).unwrap();
        assert_eq!(dec.points.len(), points.len(), "one-to-one mapping");
        for (i, &p) in points.iter().enumerate() {
            let d = dec.points[enc.mapping[i]];
            assert!(p.linf_dist(d) <= q + 1e-9, "point {i} error {}", p.linf_dist(d));
        }
        enc.bytes.len()
    }

    #[test]
    fn baseline_roundtrip() {
        let pts = random_cloud(5000, 10, 40.0);
        check_roundtrip(OctreeCodec::baseline(), &pts, 0.02);
    }

    #[test]
    fn parent_context_roundtrip() {
        let pts = random_cloud(5000, 11, 40.0);
        check_roundtrip(OctreeCodec::parent_context(), &pts, 0.02);
    }

    #[test]
    fn dense_cloud_compresses_better_than_sparse() {
        // The paper's Fig. 3 premise: octree ratio degrades with sparsity.
        let n = 20_000;
        let dense = random_cloud(n, 12, 4.0); // ~39 pts/m³
        let sparse = random_cloud(n, 13, 60.0); // ~0.01 pts/m³
        let q = 0.02;
        let dense_size = check_roundtrip(OctreeCodec::baseline(), &dense, q);
        let sparse_size = check_roundtrip(OctreeCodec::baseline(), &sparse, q);
        assert!(dense_size < sparse_size, "dense {dense_size} should beat sparse {sparse_size}");
    }

    #[test]
    fn dual_lane_roundtrip_both_contexts() {
        let pts = random_cloud(8000, 16, 30.0);
        check_roundtrip(OctreeCodec::baseline().with_dual_lane(true), &pts, 0.02);
        check_roundtrip(OctreeCodec::parent_context().with_dual_lane(true), &pts, 0.02);
    }

    #[test]
    fn dual_lane_size_overhead_is_bounded() {
        // Same models, same symbols: only the frame header and one extra
        // flush tail separate the two streams.
        let pts = random_cloud(8000, 17, 30.0);
        let single = OctreeCodec::baseline().encode(&pts, 0.02).bytes.len();
        let dual = OctreeCodec::baseline().with_dual_lane(true).encode(&pts, 0.02).bytes.len();
        assert!(dual <= single + 32, "dual {dual} vs single {single}");
    }

    #[test]
    fn dual_lane_stream_is_not_single_lane_compatible() {
        let pts = random_cloud(2000, 18, 20.0);
        let enc = OctreeCodec::baseline().with_dual_lane(true).encode(&pts, 0.02);
        // The plain decoder must reject or mis-frame it, never panic.
        let _ = OctreeCodec::baseline().decode(&enc.bytes);
    }

    #[test]
    fn wide_profile_roundtrip_both_contexts() {
        let pts = random_cloud(8000, 19, 30.0);
        check_roundtrip(OctreeCodec::baseline().with_profile(EntropyProfile::Wide), &pts, 0.02);
        check_roundtrip(
            OctreeCodec::parent_context().with_profile(EntropyProfile::Wide),
            &pts,
            0.02,
        );
    }

    #[test]
    fn wide_profile_size_overhead_is_bounded() {
        // Same models, same symbols: only the lane-length header and three
        // extra flush tails separate the wide stream from the narrow one.
        let pts = random_cloud(8000, 20, 30.0);
        let single = OctreeCodec::baseline().encode(&pts, 0.02).bytes.len();
        let wide = OctreeCodec::baseline()
            .with_profile(EntropyProfile::Wide)
            .encode(&pts, 0.02)
            .bytes
            .len();
        assert!(wide <= single + 64, "wide {wide} vs single {single}");
    }

    #[test]
    fn wide_profile_truncation_and_cross_profile_decode_never_panic() {
        let pts = random_cloud(2000, 21, 20.0);
        let wide = OctreeCodec::baseline().with_profile(EntropyProfile::Wide);
        let enc = wide.encode(&pts, 0.02);
        for cut in [0, 10, 40, enc.bytes.len() / 2, enc.bytes.len() - 1] {
            assert!(wide.decode(&enc.bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
        // Mis-profiled decoders must reject or mis-frame, never panic.
        let _ = OctreeCodec::baseline().decode(&enc.bytes);
        let _ = OctreeCodec::baseline().with_dual_lane(true).decode(&enc.bytes);
    }

    #[test]
    fn empty_cloud() {
        let codec = OctreeCodec::baseline();
        let enc = codec.encode(&[], 0.02);
        let dec = codec.decode(&enc.bytes).unwrap();
        assert!(dec.points.is_empty());
    }

    #[test]
    fn single_point() {
        let codec = OctreeCodec::baseline();
        let pts = vec![Point3::new(1.5, -2.5, 3.5)];
        check_roundtrip(codec, &pts, 0.02);
    }

    #[test]
    fn duplicates_preserved() {
        let codec = OctreeCodec::baseline();
        let mut pts = vec![Point3::new(1.0, 1.0, 1.0); 9];
        pts.push(Point3::new(2.0, 2.0, 2.0));
        let enc = codec.encode(&pts, 0.02);
        let dec = codec.decode(&enc.bytes).unwrap();
        assert_eq!(dec.points.len(), 10);
    }

    #[test]
    fn truncated_stream_is_error() {
        let pts = random_cloud(500, 14, 10.0);
        let enc = OctreeCodec::baseline().encode(&pts, 0.02);
        for cut in [0, 10, 40, enc.bytes.len() - 1] {
            assert!(
                OctreeCodec::baseline().decode(&enc.bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn coarser_bound_gives_smaller_stream() {
        let pts = random_cloud(10_000, 15, 30.0);
        let fine = OctreeCodec::baseline().encode(&pts, 0.005).bytes.len();
        let coarse = OctreeCodec::baseline().encode(&pts, 0.08).bytes.len();
        assert!(coarse < fine, "coarse {coarse} vs fine {fine}");
    }
}
