//! Octree construction over quantized leaf cells.
//!
//! The tree is never materialized as linked nodes: points are mapped to leaf
//! cells at the target depth, cells are deduplicated and sorted by Morton
//! code, and every level of the tree is then a prefix-grouping of that sorted
//! key array. This keeps construction `O(n log n)` and cache-friendly.

use dbgc_geom::{Aabb, BoundingCube, Point3};

/// Maximum tree depth: 21 bits per axis fit a 63-bit Morton code.
pub const MAX_DEPTH: u32 = 21;

/// Spread the low 21 bits of `v` so there are two zero bits between each bit.
#[inline]
fn spread3(v: u64) -> u64 {
    let mut x = v & 0x1F_FFFF;
    x = (x | x << 32) & 0x1F00000000FFFF;
    x = (x | x << 16) & 0x1F0000FF0000FF;
    x = (x | x << 8) & 0x100F00F00F00F00F;
    x = (x | x << 4) & 0x10C30C30C30C30C3;
    x = (x | x << 2) & 0x1249249249249249;
    x
}

/// Inverse of [`spread3`].
#[inline]
fn compact3(v: u64) -> u64 {
    let mut x = v & 0x1249249249249249;
    x = (x | x >> 2) & 0x10C30C30C30C30C3;
    x = (x | x >> 4) & 0x100F00F00F00F00F;
    x = (x | x >> 8) & 0x1F0000FF0000FF;
    x = (x | x >> 16) & 0x1F00000000FFFF;
    x = (x | x >> 32) & 0x1F_FFFF;
    x
}

/// Interleave three 21-bit cell coordinates into a Morton code. The child
/// index at each level is the 3-bit group `(x << 2) | (y << 1) | z`.
#[inline]
pub fn morton3(cell: (u64, u64, u64)) -> u64 {
    spread3(cell.0) << 2 | spread3(cell.1) << 1 | spread3(cell.2)
}

/// Inverse of [`morton3`].
#[inline]
pub fn demorton3(code: u64) -> (u64, u64, u64) {
    (compact3(code >> 2), compact3(code >> 1), compact3(code))
}

/// An octree over quantized leaf cells, stored as sorted Morton keys with
/// point multiplicities.
#[derive(Debug, Clone)]
pub struct Octree {
    /// The root volume.
    pub cube: BoundingCube,
    /// Number of subdivision levels (0 = the cube itself is a leaf).
    pub depth: u32,
    /// Sorted leaf Morton keys.
    pub leaf_keys: Vec<u64>,
    /// Point multiplicity per leaf (parallel to `leaf_keys`), each >= 1.
    pub leaf_counts: Vec<u32>,
    /// For each input point, the index of its leaf in `leaf_keys`.
    pub point_leaf: Vec<usize>,
}

impl Octree {
    /// Build an octree whose leaf cells have side `<= 2·q_xyz`, so decoding a
    /// point as its leaf centre incurs per-axis error `<= q_xyz`.
    ///
    /// Returns `None` for an empty input.
    pub fn build(points: &[Point3], q_xyz: f64) -> Option<Octree> {
        let bb = Aabb::from_points(points)?;
        let cube = BoundingCube::enclosing(bb);
        let depth = cube.depth_for_leaf_side(2.0 * q_xyz).min(MAX_DEPTH);
        Some(Self::build_in_cube(points, cube, depth))
    }

    /// Build with an explicit cube and depth (used when several subsets must
    /// share one spatial frame).
    pub fn build_in_cube(points: &[Point3], cube: BoundingCube, depth: u32) -> Octree {
        assert!(depth <= MAX_DEPTH, "depth {depth} exceeds Morton capacity");
        // (morton, original index), sorted by morton, stable on index.
        let mut keyed: Vec<(u64, u32)> = points
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let cell =
                    cube.cell_at_depth(p, depth).expect("point must lie inside the bounding cube");
                (morton3(cell), i as u32)
            })
            .collect();
        keyed.sort_unstable();

        let mut leaf_keys = Vec::new();
        let mut leaf_counts: Vec<u32> = Vec::new();
        let mut point_leaf = vec![0usize; points.len()];
        for &(key, idx) in &keyed {
            if leaf_keys.last() != Some(&key) {
                leaf_keys.push(key);
                leaf_counts.push(0);
            }
            *leaf_counts.last_mut().expect("just pushed") += 1;
            point_leaf[idx as usize] = leaf_keys.len() - 1;
        }
        Octree { cube, depth, leaf_keys, leaf_counts, point_leaf }
    }

    /// Number of occupied leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaf_keys.len()
    }

    /// Total number of points represented (sum of multiplicities).
    pub fn point_count(&self) -> usize {
        self.leaf_counts.iter().map(|&c| c as usize).sum()
    }

    /// Breadth-first occupancy codes (one byte per internal node), the
    /// serialization of Botsch et al. \[7\]. At `depth == 0` the tree is a
    /// single leaf and the sequence is empty.
    ///
    /// Each yielded item is `(parent_code, code)` where `parent_code` is the
    /// occupancy byte of the node's parent (0 for the root), enabling the
    /// Octree_i context grouping without a second pass.
    pub fn occupancy_codes(&self) -> Vec<(u8, u8)> {
        let mut out = Vec::new();
        if self.depth == 0 || self.leaf_keys.is_empty() {
            return out;
        }
        // Level-order traversal over ranges of the sorted key array. A node
        // at `level` (0 = root) covers keys sharing the top `3*level` bits.
        let mut current: Vec<(usize, usize, u8)> = vec![(0, self.leaf_keys.len(), 0)];
        for level in 0..self.depth {
            let shift = 3 * (self.depth - level - 1);
            let mut next = Vec::new();
            for &(start, end, parent_code) in &current {
                let mut code = 0u8;
                let mut children = [(0usize, 0usize); 8];
                let mut i = start;
                while i < end {
                    let child = ((self.leaf_keys[i] >> shift) & 0b111) as u8;
                    let mut j = i + 1;
                    while j < end && ((self.leaf_keys[j] >> shift) & 0b111) as u8 == child {
                        j += 1;
                    }
                    code |= 1 << child;
                    children[child as usize] = (i, j);
                    i = j;
                }
                out.push((parent_code, code));
                if level + 1 < self.depth {
                    for (child, &(s, e)) in children.iter().enumerate() {
                        if code & (1 << child) != 0 {
                            next.push((s, e, code));
                        }
                    }
                }
            }
            current = next;
        }
        out
    }

    /// Reconstruct sorted leaf keys from a BFS occupancy-code stream, pulling
    /// one code per internal node via `next_code`, which receives the parent's
    /// occupancy byte as its context argument.
    ///
    /// Every occupied node has at least one child, so level sizes never
    /// shrink toward the leaves; once any level exceeds `max_leaves` the
    /// final leaf count must too, and `Ok(None)` is returned without
    /// expanding further. This bounds both memory and time against hostile
    /// code streams that would otherwise grow 8× per level.
    pub fn leaves_from_codes<E>(
        depth: u32,
        max_leaves: usize,
        mut next_code: impl FnMut(u8) -> Result<u8, E>,
    ) -> Result<Option<Vec<u64>>, E> {
        if depth == 0 {
            // Single implicit leaf at the root.
            return Ok(Some(vec![0]));
        }
        // Each entry: (key prefix, parent code).
        let mut current: Vec<(u64, u8)> = vec![(0, 0)];
        for _level in 0..depth {
            if current.len() > max_leaves {
                return Ok(None);
            }
            let mut next = Vec::with_capacity(current.len() * 2);
            for &(prefix, parent_code) in &current {
                let code = next_code(parent_code)?;
                for child in 0..8u64 {
                    if code & (1 << child) != 0 {
                        next.push(((prefix << 3) | child, code));
                    }
                }
            }
            current = next;
        }
        if current.len() > max_leaves {
            return Ok(None);
        }
        Ok(Some(current.into_iter().map(|(k, _)| k).collect()))
    }

    /// Decoded points: leaf centres repeated by multiplicity, in sorted
    /// Morton (leaf) order.
    pub fn decode_points(&self) -> Vec<Point3> {
        let mut out = Vec::with_capacity(self.point_count());
        for (&key, &count) in self.leaf_keys.iter().zip(&self.leaf_counts) {
            let center = self.cube.cell_center(demorton3(key), self.depth);
            out.extend(std::iter::repeat(center).take(count as usize));
        }
        out
    }

    /// For each input point (by original index), the index of its decoded
    /// counterpart in [`Octree::decode_points`] output. Points sharing a leaf
    /// are matched in input order.
    pub fn decode_mapping(&self) -> Vec<usize> {
        let mut offsets = vec![0usize; self.leaf_keys.len()];
        let mut acc = 0usize;
        for (i, &c) in self.leaf_counts.iter().enumerate() {
            offsets[i] = acc;
            acc += c as usize;
        }
        let mut cursor = offsets.clone();
        self.point_leaf
            .iter()
            .map(|&leaf| {
                let at = cursor[leaf];
                cursor[leaf] += 1;
                at
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn morton_roundtrip() {
        for cell in [(0u64, 0, 0), (1, 2, 3), (0x1F_FFFF, 0, 0x1F_FFFF), (12345, 54321, 99999)] {
            assert_eq!(demorton3(morton3(cell)), cell);
        }
    }

    #[test]
    fn morton_orders_children_together() {
        // Sibling cells (same parent) must be contiguous under Morton order.
        let parent = (5u64, 9, 2);
        let mut keys: Vec<u64> = (0..8)
            .map(|c| {
                morton3((
                    parent.0 * 2 + ((c >> 2) & 1),
                    parent.1 * 2 + ((c >> 1) & 1),
                    parent.2 * 2 + (c & 1),
                ))
            })
            .collect();
        let other = morton3((parent.0 * 2 + 2, parent.1 * 2, parent.2 * 2));
        keys.push(other);
        keys.sort_unstable();
        // The foreign key sorts outside the sibling block.
        assert!(keys[8] == other || keys[0] == other);
    }

    fn random_cloud(n: usize, seed: u64) -> Vec<Point3> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.gen_range(-40.0..40.0),
                    rng.gen_range(-40.0..40.0),
                    rng.gen_range(-2.0..6.0),
                )
            })
            .collect()
    }

    #[test]
    fn build_counts_points() {
        let pts = random_cloud(5000, 1);
        let tree = Octree::build(&pts, 0.02).unwrap();
        assert_eq!(tree.point_count(), 5000);
        assert!(tree.leaf_count() <= 5000);
        assert!(tree.leaf_keys.windows(2).all(|w| w[0] < w[1]), "keys sorted and unique");
    }

    #[test]
    fn decode_points_meet_error_bound() {
        let q = 0.02;
        let pts = random_cloud(2000, 2);
        let tree = Octree::build(&pts, q).unwrap();
        let decoded = tree.decode_points();
        let mapping = tree.decode_mapping();
        assert_eq!(decoded.len(), pts.len());
        for (i, &p) in pts.iter().enumerate() {
            let d = decoded[mapping[i]];
            assert!(
                p.linf_dist(d) <= q + 1e-9,
                "point {i}: {:?} vs {:?}, err {}",
                p,
                d,
                p.linf_dist(d)
            );
        }
    }

    #[test]
    fn occupancy_roundtrip() {
        let pts = random_cloud(3000, 3);
        let tree = Octree::build(&pts, 0.05).unwrap();
        let codes = tree.occupancy_codes();
        let mut it = codes.iter();
        let leaves = Octree::leaves_from_codes::<()>(tree.depth, tree.leaf_count(), |parent| {
            let &(expected_parent, code) = it.next().expect("stream long enough");
            assert_eq!(parent, expected_parent, "context mismatch");
            Ok(code)
        })
        .unwrap()
        .expect("within leaf budget");
        assert!(it.next().is_none(), "stream fully consumed");
        assert_eq!(leaves, tree.leaf_keys);
    }

    #[test]
    fn duplicate_points_share_leaf() {
        let p = Point3::new(1.0, 2.0, 3.0);
        let pts = vec![p; 7];
        let tree = Octree::build(&pts, 0.02).unwrap();
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.leaf_counts[0], 7);
        assert_eq!(tree.decode_points().len(), 7);
    }

    #[test]
    fn single_point_depth_zero() {
        let pts = vec![Point3::new(5.0, 5.0, 5.0)];
        let tree = Octree::build(&pts, 0.02).unwrap();
        assert_eq!(tree.depth, 0);
        assert!(tree.occupancy_codes().is_empty());
        let leaves = Octree::leaves_from_codes::<()>(0, 1, |_| unreachable!()).unwrap();
        assert_eq!(leaves, Some(vec![0]));
    }

    #[test]
    fn empty_cloud_returns_none() {
        assert!(Octree::build(&[], 0.02).is_none());
    }

    #[test]
    fn decode_mapping_is_permutation() {
        let pts = random_cloud(1000, 4);
        let tree = Octree::build(&pts, 0.5).unwrap(); // coarse: many shared leaves
        let mapping = tree.decode_mapping();
        let mut seen = vec![false; mapping.len()];
        for &m in &mapping {
            assert!(!seen[m], "duplicate target {m}");
            seen[m] = true;
        }
    }
}
