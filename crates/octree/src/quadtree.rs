//! 2D quadtree geometry coder: the outlier compressor substrate (paper §3.6).
//!
//! Outliers are typically far points on the `xoy` plane while the z range of
//! a LiDAR scan is comparatively small, so DBGC encodes `(x, y)` with a
//! quadtree (leaf side `2·q`, per-axis error `<= q`) and carries `z` as a
//! separate delta-coded attribute channel. This module provides the quadtree;
//! the z channel is composed by the `dbgc` core crate, which uses the
//! returned input→output mapping to order the z values.

use dbgc_codec::intseq;
use dbgc_codec::varint::{write_f64, write_uvarint, ByteReader};
use dbgc_codec::{AdaptiveModel, CodecError, RangeDecoder, RangeEncoder};
use dbgc_geom::Rect2;

/// Maximum depth: 31 bits per axis fit a 62-bit Morton code.
pub const MAX_DEPTH_2D: u32 = 31;

#[inline]
fn spread2(v: u64) -> u64 {
    let mut x = v & 0x7FFF_FFFF;
    x = (x | x << 16) & 0x0000FFFF0000FFFF;
    x = (x | x << 8) & 0x00FF00FF00FF00FF;
    x = (x | x << 4) & 0x0F0F0F0F0F0F0F0F;
    x = (x | x << 2) & 0x3333333333333333;
    x = (x | x << 1) & 0x5555555555555555;
    x
}

#[inline]
fn compact2(v: u64) -> u64 {
    let mut x = v & 0x5555555555555555;
    x = (x | x >> 1) & 0x3333333333333333;
    x = (x | x >> 2) & 0x0F0F0F0F0F0F0F0F;
    x = (x | x >> 4) & 0x00FF00FF00FF00FF;
    x = (x | x >> 8) & 0x0000FFFF0000FFFF;
    x = (x | x >> 16) & 0x7FFF_FFFF;
    x
}

#[inline]
/// Interleave two 31-bit cell coordinates into a Morton code.
pub fn morton2(cell: (u64, u64)) -> u64 {
    spread2(cell.0) << 1 | spread2(cell.1)
}

#[inline]
/// Inverse of [`morton2`].
pub fn demorton2(code: u64) -> (u64, u64) {
    (compact2(code >> 1), compact2(code))
}

/// Result of encoding a set of 2D points.
#[derive(Debug, Clone)]
pub struct QuadtreeEncodeResult {
    /// The compressed bitstream.
    pub bytes: Vec<u8>,
    /// `mapping[i]` is the index of input point `i` in the decoded output.
    pub mapping: Vec<usize>,
    /// Number of occupied leaves (for stats).
    pub leaves: usize,
}

/// Result of decoding.
#[derive(Debug, Clone)]
pub struct QuadtreeDecodeResult {
    /// Decoded `(x, y)` positions (leaf centres, multiplicity preserved).
    pub points: Vec<(f64, f64)>,
}

/// The quadtree codec over `(x, y)` coordinates.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuadtreeCodec;

impl QuadtreeCodec {
    /// Compress 2D points with leaf side `2·q` (per-axis error `<= q`).
    pub fn encode(&self, points: &[(f64, f64)], q: f64) -> QuadtreeEncodeResult {
        let pts3: Vec<dbgc_geom::Point3> =
            points.iter().map(|&(x, y)| dbgc_geom::Point3::new(x, y, 0.0)).collect();
        let Some(rect) = Rect2::enclosing_xy(&pts3) else {
            let mut out = Vec::new();
            write_f64(&mut out, 0.0);
            write_f64(&mut out, 0.0);
            write_f64(&mut out, 0.0);
            write_uvarint(&mut out, 0);
            write_uvarint(&mut out, 0);
            return QuadtreeEncodeResult { bytes: out, mapping: Vec::new(), leaves: 0 };
        };
        let depth = rect.depth_for_leaf_side(2.0 * q).min(MAX_DEPTH_2D);

        let mut keyed: Vec<(u64, u32)> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| {
                let cell = rect.cell_at_depth(x, y, depth).expect("inside enclosing rect");
                (morton2(cell), i as u32)
            })
            .collect();
        keyed.sort_unstable();

        let mut leaf_keys: Vec<u64> = Vec::new();
        let mut leaf_counts: Vec<u32> = Vec::new();
        let mut point_leaf = vec![0usize; points.len()];
        for &(key, idx) in &keyed {
            if leaf_keys.last() != Some(&key) {
                leaf_keys.push(key);
                leaf_counts.push(0);
            }
            *leaf_counts.last_mut().expect("just pushed") += 1;
            point_leaf[idx as usize] = leaf_keys.len() - 1;
        }

        let mut out = Vec::new();
        write_f64(&mut out, rect.min_x);
        write_f64(&mut out, rect.min_y);
        write_f64(&mut out, rect.side);
        write_uvarint(&mut out, depth as u64);
        write_uvarint(&mut out, leaf_keys.len() as u64);

        // BFS occupancy nibbles (stored one per range-coded symbol).
        let mut enc = RangeEncoder::new();
        let mut model = AdaptiveModel::new(15); // codes 1..=15, shifted by 1
        if depth > 0 {
            let mut current: Vec<(usize, usize)> = vec![(0, leaf_keys.len())];
            for level in 0..depth {
                let shift = 2 * (depth - level - 1);
                let mut next = Vec::new();
                for &(start, end) in &current {
                    let mut code = 0u8;
                    let mut i = start;
                    while i < end {
                        let child = ((leaf_keys[i] >> shift) & 0b11) as u8;
                        let mut j = i + 1;
                        while j < end && ((leaf_keys[j] >> shift) & 0b11) as u8 == child {
                            j += 1;
                        }
                        code |= 1 << child;
                        if level + 1 < depth {
                            next.push((i, j));
                        }
                        i = j;
                    }
                    model.encode(&mut enc, code as usize - 1);
                }
                current = next;
            }
        }
        let occ = enc.finish();
        write_uvarint(&mut out, occ.len() as u64);
        out.extend_from_slice(&occ);

        let extras: Vec<i64> = leaf_counts.iter().map(|&c| c as i64 - 1).collect();
        intseq::compress_ints_rc(&mut out, &extras);

        // Input → output mapping (stable within a leaf).
        let mut offsets = vec![0usize; leaf_keys.len()];
        let mut acc = 0usize;
        for (i, &c) in leaf_counts.iter().enumerate() {
            offsets[i] = acc;
            acc += c as usize;
        }
        let mut cursor = offsets;
        let mapping = point_leaf
            .iter()
            .map(|&leaf| {
                let at = cursor[leaf];
                cursor[leaf] += 1;
                at
            })
            .collect();

        QuadtreeEncodeResult { bytes: out, mapping, leaves: leaf_keys.len() }
    }

    /// Decompress a stream produced by [`QuadtreeCodec::encode`].
    ///
    /// Output is capped at [`crate::codec::DEFAULT_MAX_POINTS`] points; use
    /// [`QuadtreeCodec::decode_with_limit`] to pick a different budget.
    pub fn decode(&self, bytes: &[u8]) -> Result<QuadtreeDecodeResult, CodecError> {
        self.decode_with_limit(bytes, crate::codec::DEFAULT_MAX_POINTS)
    }

    /// Decompress with an explicit point budget: hostile streams whose
    /// declared or reconstructed size exceeds `max_points` fail with a typed
    /// error before any large allocation.
    pub fn decode_with_limit(
        &self,
        bytes: &[u8],
        max_points: usize,
    ) -> Result<QuadtreeDecodeResult, CodecError> {
        let mut r = ByteReader::new(bytes);
        let min_x = r.read_f64()?;
        let min_y = r.read_f64()?;
        let side = r.read_f64()?;
        if ![min_x, min_y, side].iter().all(|v| v.is_finite() && v.abs() <= 1e15) {
            return Err(CodecError::CorruptStream("quadtree header out of range"));
        }
        let depth = r.read_uvarint()? as u32;
        if depth > MAX_DEPTH_2D {
            return Err(CodecError::CorruptStream("quadtree depth out of range"));
        }
        let leaf_count = r.read_uvarint()? as usize;
        if leaf_count > max_points {
            return Err(CodecError::CorruptStream("quadtree leaf count exceeds limit"));
        }
        if leaf_count == 0 {
            return Ok(QuadtreeDecodeResult { points: Vec::new() });
        }
        let rect = Rect2 { min_x, min_y, side };
        let occ_len = r.read_uvarint()? as usize;
        let occ = r.read_slice(occ_len)?;
        let mut dec = RangeDecoder::new(occ);
        let mut model = AdaptiveModel::new(15);

        let mut leaves: Vec<u64> = vec![0];
        for _ in 0..depth {
            // Level sizes never shrink toward the leaves, so a level already
            // past the declared leaf count proves the stream corrupt; bail
            // before the 4×-per-level expansion can balloon.
            if leaves.len() > leaf_count {
                return Err(CodecError::CorruptStream("quadtree leaf budget exceeded"));
            }
            // Expanding sorted prefixes with ascending child indices keeps
            // the key list sorted — matching the encoder's sorted traversal.
            let mut next = Vec::with_capacity(leaves.len() * 2);
            for &prefix in &leaves {
                let code = model.decode(&mut dec)? as u8 + 1;
                for child in 0..4u64 {
                    if code & (1 << child) != 0 {
                        next.push((prefix << 2) | child);
                    }
                }
            }
            debug_assert!(next.windows(2).all(|w| w[0] < w[1]));
            leaves = next;
        }
        if leaves.len() != leaf_count {
            return Err(CodecError::CorruptStream("quadtree leaf count mismatch"));
        }

        let extras = intseq::decompress_ints_rc(&mut r)?;
        if extras.len() != leaf_count {
            return Err(CodecError::CorruptStream("quadtree multiplicity mismatch"));
        }
        let mut points = Vec::new();
        let mut total = 0usize;
        for (&key, &extra) in leaves.iter().zip(&extras) {
            if extra < 0 || extra > u32::MAX as i64 {
                return Err(CodecError::CorruptStream("invalid multiplicity"));
            }
            total = total.saturating_add(extra as usize + 1);
            if total > max_points {
                return Err(CodecError::CorruptStream("quadtree point count exceeds limit"));
            }
            let center = rect.cell_center(demorton2(key), depth);
            points.extend(std::iter::repeat(center).take(extra as usize + 1));
        }
        Ok(QuadtreeDecodeResult { points })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64, span: f64) -> Vec<(f64, f64)> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| (rng.gen_range(-span..span), rng.gen_range(-span..span))).collect()
    }

    #[test]
    fn morton2_roundtrip() {
        for cell in [(0u64, 0), (1, 2), (0x7FFF_FFFF, 0), (123456, 654321)] {
            assert_eq!(demorton2(morton2(cell)), cell);
        }
    }

    #[test]
    fn roundtrip_meets_bound() {
        let q = 0.02;
        let pts = random_points(3000, 20, 60.0);
        let codec = QuadtreeCodec;
        let enc = codec.encode(&pts, q);
        let dec = codec.decode(&enc.bytes).unwrap();
        assert_eq!(dec.points.len(), pts.len());
        for (i, &(x, y)) in pts.iter().enumerate() {
            let (dx, dy) = dec.points[enc.mapping[i]];
            assert!((x - dx).abs() <= q + 1e-9, "x error at {i}");
            assert!((y - dy).abs() <= q + 1e-9, "y error at {i}");
        }
    }

    #[test]
    fn empty_input() {
        let codec = QuadtreeCodec;
        let enc = codec.encode(&[], 0.02);
        assert!(codec.decode(&enc.bytes).unwrap().points.is_empty());
    }

    #[test]
    fn single_and_duplicate_points() {
        let codec = QuadtreeCodec;
        let pts = vec![(3.0, 4.0); 5];
        let enc = codec.encode(&pts, 0.02);
        let dec = codec.decode(&enc.bytes).unwrap();
        assert_eq!(dec.points.len(), 5);
        assert_eq!(enc.leaves, 1);
    }

    #[test]
    fn mapping_is_permutation() {
        let pts = random_points(500, 21, 2.0);
        let enc = QuadtreeCodec.encode(&pts, 0.1);
        let mut seen = vec![false; enc.mapping.len()];
        for &m in &enc.mapping {
            assert!(!seen[m]);
            seen[m] = true;
        }
    }

    #[test]
    fn truncation_detected() {
        let pts = random_points(300, 22, 10.0);
        let enc = QuadtreeCodec.encode(&pts, 0.02);
        assert!(QuadtreeCodec.decode(&enc.bytes[..enc.bytes.len() / 2]).is_err());
    }
}
