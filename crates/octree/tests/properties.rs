//! Property-based tests for the tree coders' core invariants.

use dbgc_geom::Point3;
use dbgc_octree::builder::{demorton3, morton3, Octree};
use dbgc_octree::{OctreeCodec, QuadtreeCodec};
use proptest::prelude::*;

fn arb_cloud() -> impl Strategy<Value = Vec<Point3>> {
    proptest::collection::vec(
        (-100.0..100.0f64, -100.0..100.0f64, -20.0..20.0f64)
            .prop_map(|(x, y, z)| Point3::new(x, y, z)),
        1..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn morton_roundtrip(x in 0u64..(1 << 21), y in 0u64..(1 << 21), z in 0u64..(1 << 21)) {
        prop_assert_eq!(demorton3(morton3((x, y, z))), (x, y, z));
    }

    #[test]
    fn morton_preserves_prefix_order(
        a in 0u64..(1 << 20), b in 0u64..(1 << 20), shift in 0u32..20
    ) {
        // Cells sharing a parent at `shift` levels up share a Morton prefix.
        let pa = morton3((a, a ^ 1, a / 2)) >> (3 * shift);
        let pb = morton3((a, a ^ 1, a / 2)) >> (3 * shift);
        prop_assert_eq!(pa, pb);
        let _ = b;
    }

    #[test]
    fn octree_counts_are_conserved(pts in arb_cloud(), q in 0.005..0.5f64) {
        let tree = Octree::build(&pts, q).unwrap();
        prop_assert_eq!(tree.point_count(), pts.len());
        prop_assert_eq!(tree.decode_points().len(), pts.len());
        // Leaf keys strictly increasing.
        prop_assert!(tree.leaf_keys.windows(2).all(|w| w[0] < w[1]));
        // Multiplicities sum and are positive.
        prop_assert!(tree.leaf_counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn octree_codec_roundtrip_bound(pts in arb_cloud(), q in 0.005..0.5f64) {
        let codec = OctreeCodec::baseline();
        let enc = codec.encode(&pts, q);
        let dec = codec.decode(&enc.bytes).unwrap();
        prop_assert_eq!(dec.points.len(), pts.len());
        for (i, p) in pts.iter().enumerate() {
            prop_assert!(p.linf_dist(dec.points[enc.mapping[i]]) <= q * (1.0 + 1e-9));
        }
    }

    #[test]
    fn quadtree_codec_roundtrip_bound(pts in arb_cloud(), q in 0.005..0.5f64) {
        let xy: Vec<(f64, f64)> = pts.iter().map(|p| (p.x, p.y)).collect();
        let enc = QuadtreeCodec.encode(&xy, q);
        let dec = QuadtreeCodec.decode(&enc.bytes).unwrap();
        prop_assert_eq!(dec.points.len(), xy.len());
        for (i, &(x, y)) in xy.iter().enumerate() {
            let (dx, dy) = dec.points[enc.mapping[i]];
            prop_assert!((x - dx).abs() <= q * (1.0 + 1e-9));
            prop_assert!((y - dy).abs() <= q * (1.0 + 1e-9));
        }
    }

    #[test]
    fn octree_streams_reject_random_corruption(
        pts in arb_cloud(),
        flips in proptest::collection::vec((any::<u16>(), 0u8..8), 1..6)
    ) {
        let codec = OctreeCodec::baseline();
        let enc = codec.encode(&pts, 0.05);
        let mut bytes = enc.bytes.clone();
        for (pos, bit) in flips {
            let at = pos as usize % bytes.len();
            bytes[at] ^= 1 << bit;
        }
        // Error or garbage, never a panic.
        let _ = codec.decode(&bytes);
    }
}
