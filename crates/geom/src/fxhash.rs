//! A fast, non-cryptographic hasher for the compressor's hot-path hash maps.
//!
//! The std `HashMap` default (SipHash-1-3) is DoS-resistant but costs tens of
//! nanoseconds per integer key, which dominates grid construction over
//! ~100 K-point clouds. Keys here are small integer tuples derived from point
//! coordinates — never attacker-controlled — so a multiply-rotate mix in the
//! spirit of rustc's FxHash is both safe and several times faster.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier with well-mixed bits (2^64 / φ, forced odd).
const SEED: u64 = 0x9e37_79b9_7f4a_7c55;

/// A multiply-rotate hasher for small integer keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(26) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so low-entropy states still spread over the
        // HashMap's bucket-index bits.
        let mut h = self.state;
        h ^= h >> 32;
        h = h.wrapping_mul(SEED);
        h ^ (h >> 29)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_distinguishing() {
        assert_eq!(hash_of((1i64, 2i64, 3i64)), hash_of((1i64, 2i64, 3i64)));
        assert_ne!(hash_of((1i64, 2i64, 3i64)), hash_of((3i64, 2i64, 1i64)));
        assert_ne!(hash_of(0u64), hash_of(1u64));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<(i64, i64, i64), usize> = FxHashMap::default();
        for i in 0..1000i64 {
            m.insert((i, -i, i * 7), i as usize);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(13, -13, 91)], 13);

        let s: FxHashSet<i64> = (0..100).collect();
        assert!(s.contains(&42) && !s.contains(&100));
    }

    #[test]
    fn nearby_grid_cells_spread_over_buckets() {
        // Grid keys are tiny consecutive integers; make sure the low bits of
        // the final hash (the bucket index) differ across neighbours.
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for x in -8i64..8 {
            for y in -8i64..8 {
                for z in -2i64..2 {
                    low_bits.insert(hash_of((x, y, z)) & 0xff);
                }
            }
        }
        // 1024 keys into 256 buckets: expect most buckets hit.
        assert!(low_bits.len() > 200, "only {} distinct low bytes", low_bits.len());
    }
}
