//! Cartesian points and point clouds.

use std::ops::{Add, Div, Index, Mul, Neg, Sub};

use crate::spherical::Spherical;

/// A 3D point (or vector) in Cartesian coordinates, in metres.
///
/// LiDAR datasets (KITTI, Apollo, Ford) store single-precision coordinates;
/// we widen to `f64` internally so quantization arithmetic never loses
/// precision relative to the user-supplied error bound.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point3 {
    /// Offset from the origin along x (metres).
    pub x: f64,
    /// Offset from the origin along y (metres).
    pub y: f64,
    /// Offset from the origin along z (metres).
    pub z: f64,
}

impl Point3 {
    /// The origin.
    pub const ZERO: Point3 = Point3 { x: 0.0, y: 0.0, z: 0.0 };

    #[inline]
    /// A point from its components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm2(self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Euclidean norm (the radial distance `r` when measured from the origin).
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist2(self, other: Point3) -> f64 {
        (self - other).norm2()
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point3) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Point3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Point3) -> Point3 {
        Point3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Point3) -> Point3 {
        Point3::new(self.x.min(other.x), self.y.min(other.y), self.z.min(other.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Point3) -> Point3 {
        Point3::new(self.x.max(other.x), self.y.max(other.y), self.z.max(other.z))
    }

    /// Largest absolute per-axis difference to `other` (L∞ distance).
    #[inline]
    pub fn linf_dist(self, other: Point3) -> f64 {
        let d = self - other;
        d.x.abs().max(d.y.abs()).max(d.z.abs())
    }

    /// Convert to spherical coordinates relative to the origin (the sensor).
    ///
    /// See [`Spherical::from_cartesian`].
    #[inline]
    pub fn to_spherical(self) -> Spherical {
        Spherical::from_cartesian(self)
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Index<usize> for Point3 {
    type Output = f64;

    /// Access components by axis index (0 = x, 1 = y, 2 = z).
    fn index(&self, axis: usize) -> &f64 {
        match axis {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("axis index out of range: {axis}"),
        }
    }
}

impl Add for Point3 {
    type Output = Point3;
    #[inline]
    fn add(self, o: Point3) -> Point3 {
        Point3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Point3 {
    type Output = Point3;
    #[inline]
    fn sub(self, o: Point3) -> Point3 {
        Point3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Neg for Point3 {
    type Output = Point3;
    #[inline]
    fn neg(self) -> Point3 {
        Point3::new(-self.x, -self.y, -self.z)
    }
}

impl Mul<f64> for Point3 {
    type Output = Point3;
    #[inline]
    fn mul(self, s: f64) -> Point3 {
        Point3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Point3 {
    type Output = Point3;
    #[inline]
    fn div(self, s: f64) -> Point3 {
        Point3::new(self.x / s, self.y / s, self.z / s)
    }
}

/// A point cloud: an unordered multiset of points (paper Definition 2.1).
///
/// The geometry channel only — attributes such as intensity are out of scope
/// for geometry compression and are dropped on ingest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointCloud {
    points: Vec<Point3>,
}

impl PointCloud {
    /// An empty cloud.
    pub fn new() -> Self {
        PointCloud { points: Vec::new() }
    }

    /// An empty cloud with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        PointCloud { points: Vec::with_capacity(n) }
    }

    /// A cloud taking ownership of `points`.
    pub fn from_points(points: Vec<Point3>) -> Self {
        PointCloud { points }
    }

    /// Number of points, `|PC|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    #[inline]
    /// True when the cloud has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    #[inline]
    /// Append a point.
    pub fn push(&mut self, p: Point3) {
        self.points.push(p);
    }

    #[inline]
    /// The points as a slice.
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    #[inline]
    /// Mutable access to the points.
    pub fn points_mut(&mut self) -> &mut [Point3] {
        &mut self.points
    }

    /// Consume the cloud, returning its points.
    pub fn into_points(self) -> Vec<Point3> {
        self.points
    }

    #[inline]
    /// Iterate over the points.
    pub fn iter(&self) -> std::slice::Iter<'_, Point3> {
        self.points.iter()
    }

    /// The size of the uncompressed cloud in bytes, as defined by the paper's
    /// compression-ratio metric: three single-precision floats per point.
    #[inline]
    pub fn raw_size_bytes(&self) -> usize {
        self.points.len() * 3 * std::mem::size_of::<f32>()
    }

    /// Axis-aligned bounding box, or `None` for an empty cloud.
    pub fn aabb(&self) -> Option<crate::Aabb> {
        crate::Aabb::from_points(&self.points)
    }

    /// Point density in points per cubic metre over the bounding box.
    pub fn density(&self) -> f64 {
        match self.aabb() {
            Some(bb) if bb.volume() > 0.0 => self.points.len() as f64 / bb.volume(),
            _ => 0.0,
        }
    }

    /// Restrict the cloud to points within `radius` of the origin (used for
    /// the concentric-sphere subsets of paper Fig. 3).
    pub fn within_radius(&self, radius: f64) -> PointCloud {
        PointCloud::from_points(
            self.points.iter().copied().filter(|p| p.norm() <= radius).collect(),
        )
    }
}

impl FromIterator<Point3> for PointCloud {
    fn from_iter<I: IntoIterator<Item = Point3>>(iter: I) -> Self {
        PointCloud { points: iter.into_iter().collect() }
    }
}

impl Index<usize> for PointCloud {
    type Output = Point3;
    fn index(&self, i: usize) -> &Point3 {
        &self.points[i]
    }
}

impl<'a> IntoIterator for &'a PointCloud {
    type Item = &'a Point3;
    type IntoIter = std::slice::Iter<'a, Point3>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

impl IntoIterator for PointCloud {
    type Item = Point3;
    type IntoIter = std::vec::IntoIter<Point3>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_ops() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(4.0, -2.0, 0.5);
        assert_eq!(a + b, Point3::new(5.0, 0.0, 3.5));
        assert_eq!(a - b, Point3::new(-3.0, 4.0, 2.5));
        assert_eq!(a * 2.0, Point3::new(2.0, 4.0, 6.0));
        assert_eq!(b / 2.0, Point3::new(2.0, -1.0, 0.25));
        assert_eq!(-a, Point3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn norms_and_distances() {
        let p = Point3::new(3.0, 4.0, 0.0);
        assert_eq!(p.norm(), 5.0);
        assert_eq!(p.norm2(), 25.0);
        assert_eq!(p.dist(Point3::ZERO), 5.0);
        assert_eq!(p.linf_dist(Point3::new(1.0, 1.0, 1.0)), 3.0);
    }

    #[test]
    fn dot_and_cross() {
        let x = Point3::new(1.0, 0.0, 0.0);
        let y = Point3::new(0.0, 1.0, 0.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), Point3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn axis_indexing() {
        let p = Point3::new(7.0, 8.0, 9.0);
        assert_eq!(p[0], 7.0);
        assert_eq!(p[1], 8.0);
        assert_eq!(p[2], 9.0);
    }

    #[test]
    #[should_panic]
    fn axis_indexing_out_of_range() {
        let p = Point3::ZERO;
        let _ = p[3];
    }

    #[test]
    fn cloud_basics() {
        let mut pc = PointCloud::new();
        assert!(pc.is_empty());
        pc.push(Point3::new(1.0, 0.0, 0.0));
        pc.push(Point3::new(0.0, 2.0, 0.0));
        assert_eq!(pc.len(), 2);
        assert_eq!(pc.raw_size_bytes(), 24);
        assert_eq!(pc[1].y, 2.0);
    }

    #[test]
    fn within_radius_filters() {
        let pc = PointCloud::from_points(vec![
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(10.0, 0.0, 0.0),
            Point3::new(0.0, 0.0, 3.0),
        ]);
        let near = pc.within_radius(5.0);
        assert_eq!(near.len(), 2);
    }

    #[test]
    fn density_of_unit_cube() {
        let pc = PointCloud::from_points(vec![
            Point3::ZERO,
            Point3::new(1.0, 1.0, 1.0),
            Point3::new(0.5, 0.5, 0.5),
        ]);
        assert!((pc.density() - 3.0).abs() < 1e-12);
    }
}
