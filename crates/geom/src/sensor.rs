//! LiDAR sensor metadata (paper §3.3).
//!
//! The sensor's angular ranges and sample counts define the average angular
//! spacing between adjacent samples, `u_θ` and `u_φ`, which parameterize the
//! polyline organization (Algorithm 1) and the reference-polyline threshold.

use std::f64::consts::PI;

/// Static metadata of a spinning multi-beam LiDAR sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorMeta {
    /// Minimum azimuthal angle (radians).
    pub theta_min: f64,
    /// Maximum azimuthal angle (radians).
    pub theta_max: f64,
    /// Minimum polar angle (radians, measured from +z).
    pub phi_min: f64,
    /// Maximum polar angle (radians).
    pub phi_max: f64,
    /// Minimum measurable radial distance (metres).
    pub r_min: f64,
    /// Maximum measurable radial distance (metres).
    pub r_max: f64,
    /// Number of azimuthal samples per revolution (`H` in the paper).
    pub h_samples: u32,
    /// Number of vertical beams (`W` in the paper).
    pub w_samples: u32,
}

impl SensorMeta {
    /// Average azimuthal spacing between two adjacent samples, `u_θ`.
    #[inline]
    pub fn u_theta(&self) -> f64 {
        (self.theta_max - self.theta_min) / self.h_samples as f64
    }

    /// Average polar spacing between two adjacent beams, `u_φ`.
    #[inline]
    pub fn u_phi(&self) -> f64 {
        (self.phi_max - self.phi_min) / self.w_samples as f64
    }

    /// Metadata of the Velodyne HDL-64E used by the KITTI and Ford datasets:
    /// 64 beams spanning +2°…−24.8° elevation, ~0.1728° azimuthal resolution
    /// (2083 columns at 10 Hz), 120 m range.
    pub fn velodyne_hdl64e() -> SensorMeta {
        // Elevation +2° → polar angle 88°; elevation −24.8° → polar 114.8°.
        let deg = PI / 180.0;
        SensorMeta {
            theta_min: -PI,
            theta_max: PI,
            phi_min: 88.0 * deg,
            phi_max: 114.8 * deg,
            r_min: 0.9,
            r_max: 120.0,
            h_samples: 2083,
            w_samples: 64,
        }
    }

    /// A generic 32-beam sensor (Apollo-like urban captures).
    pub fn generic_32_beam() -> SensorMeta {
        let deg = PI / 180.0;
        SensorMeta {
            theta_min: -PI,
            theta_max: PI,
            phi_min: 75.0 * deg,
            phi_max: 115.0 * deg,
            r_min: 0.5,
            r_max: 100.0,
            h_samples: 1800,
            w_samples: 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdl64e_resolutions() {
        let m = SensorMeta::velodyne_hdl64e();
        // 360° over 2083 columns ≈ 0.1728°.
        let deg = m.u_theta() * 180.0 / PI;
        assert!((deg - 0.1728).abs() < 0.001, "u_theta = {deg}°");
        // 26.8° over 64 beams ≈ 0.419°.
        let deg = m.u_phi() * 180.0 / PI;
        assert!((deg - 0.4188).abs() < 0.001, "u_phi = {deg}°");
    }

    #[test]
    fn polar_range_is_valid() {
        for m in [SensorMeta::velodyne_hdl64e(), SensorMeta::generic_32_beam()] {
            assert!(m.phi_min < m.phi_max);
            assert!(m.phi_min >= 0.0 && m.phi_max <= PI);
            assert!(m.r_min < m.r_max);
        }
    }
}
