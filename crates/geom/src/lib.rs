//! Geometry primitives for the DBGC LiDAR point-cloud compressor.
//!
//! This crate provides the shared geometric vocabulary of the workspace:
//!
//! * [`Point3`] and [`PointCloud`] — Cartesian points and clouds (paper §2.1);
//! * [`Spherical`] — spherical coordinates `(θ, φ, r)` with exact round-trip
//!   conversion helpers (paper §3.3);
//! * [`Aabb`] and [`BoundingCube`] — axis-aligned bounds used by the tree coders;
//! * [`quant`] — coordinate scaling and rounding under an error bound
//!   (paper §3.5 step 1 and Lemma 3.2);
//! * [`error`] — per-axis and Euclidean error metrics between an original cloud
//!   and its decompressed counterpart;
//! * [`SensorMeta`] — LiDAR sensor metadata (angular ranges and resolutions)
//!   used to derive the polyline-extension tolerances `u_θ` and `u_φ`.

#![warn(missing_docs)]

pub mod aabb;
pub mod error;
pub mod fxhash;
pub mod point;
pub mod quant;
pub mod sensor;
pub mod spherical;

pub use aabb::{Aabb, BoundingCube, Rect2};
pub use error::{CloudError, ErrorReport};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use point::{Point3, PointCloud};
pub use quant::{dequantize, quantize, QuantParams, SphericalQuant};
pub use sensor::SensorMeta;
pub use spherical::Spherical;
