//! Error metrics between an original cloud and its decompressed counterpart.
//!
//! The DBGC decompressor emits points in a deterministic order with a known
//! one-to-one mapping back to input indices, so errors are measured pairwise
//! (paper Definition 2.2), not by nearest-neighbour matching.

use std::fmt;

use crate::point::{Point3, PointCloud};

/// Why a decompressed cloud failed verification against the original.
#[derive(Debug, Clone, PartialEq)]
pub enum CloudError {
    /// The two clouds have different cardinalities, so no one-to-one mapping
    /// exists.
    /// The two clouds have different cardinalities.
    LengthMismatch {
        /// Point count of the original cloud.
        original: usize,
        /// Point count of the decompressed cloud.
        decompressed: usize,
    },
    /// A point pair exceeded the allowed error.
    /// A point pair exceeded the allowed error.
    BoundExceeded {
        /// Offending pair index (`usize::MAX` when aggregated).
        index: usize,
        /// The measured error.
        error: f64,
        /// The allowed bound.
        bound: f64,
    },
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::LengthMismatch { original, decompressed } => write!(
                f,
                "point count mismatch: original has {original} points, decompressed has {decompressed}"
            ),
            CloudError::BoundExceeded { index, error, bound } => write!(
                f,
                "point {index} exceeds error bound: error {error:.6} > bound {bound:.6}"
            ),
        }
    }
}

impl std::error::Error for CloudError {}

/// Pairwise error statistics between two clouds under a one-to-one mapping
/// given by `mapping[i] = j`, pairing `original[i]` with `decompressed[j]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorReport {
    /// Maximum per-axis (L∞) error over all pairs.
    pub max_axis_error: f64,
    /// Maximum Euclidean (L2) error over all pairs.
    pub max_euclidean_error: f64,
    /// Mean Euclidean error over all pairs.
    pub mean_euclidean_error: f64,
    /// Number of point pairs compared.
    pub pairs: usize,
}

impl ErrorReport {
    /// Compare `original[i]` against `decompressed[mapping[i]]` for all `i`.
    pub fn paired(
        original: &PointCloud,
        decompressed: &PointCloud,
        mapping: &[usize],
    ) -> Result<ErrorReport, CloudError> {
        if original.len() != decompressed.len() || mapping.len() != original.len() {
            return Err(CloudError::LengthMismatch {
                original: original.len(),
                decompressed: decompressed.len(),
            });
        }
        let mut rep = ErrorReport { pairs: original.len(), ..Default::default() };
        let mut sum = 0.0;
        for (i, &j) in mapping.iter().enumerate() {
            let a = original[i];
            let b = decompressed[j];
            rep.max_axis_error = rep.max_axis_error.max(a.linf_dist(b));
            let e = a.dist(b);
            rep.max_euclidean_error = rep.max_euclidean_error.max(e);
            sum += e;
        }
        if rep.pairs > 0 {
            rep.mean_euclidean_error = sum / rep.pairs as f64;
        }
        Ok(rep)
    }

    /// Compare clouds pairwise in index order (identity mapping).
    pub fn identity(
        original: &PointCloud,
        decompressed: &PointCloud,
    ) -> Result<ErrorReport, CloudError> {
        let mapping: Vec<usize> = (0..original.len()).collect();
        ErrorReport::paired(original, decompressed, &mapping)
    }

    /// Check the Euclidean bound, returning the first offending pair.
    pub fn check_euclidean(&self, bound: f64) -> Result<(), CloudError> {
        if self.max_euclidean_error > bound {
            return Err(CloudError::BoundExceeded {
                index: usize::MAX,
                error: self.max_euclidean_error,
                bound,
            });
        }
        Ok(())
    }
}

/// Locate the first pair whose Euclidean error exceeds `bound`; useful in
/// debugging failed round trips.
pub fn first_violation(
    original: &[Point3],
    decompressed: &[Point3],
    bound: f64,
) -> Option<(usize, f64)> {
    original.iter().zip(decompressed).enumerate().find_map(|(i, (a, b))| {
        let e = a.dist(*b);
        (e > bound).then_some((i, e))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(pts: &[(f64, f64, f64)]) -> PointCloud {
        pts.iter().map(|&(x, y, z)| Point3::new(x, y, z)).collect()
    }

    #[test]
    fn identity_report() {
        let a = cloud(&[(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]);
        let b = cloud(&[(0.01, 0.0, 0.0), (1.0, 1.02, 1.0)]);
        let rep = ErrorReport::identity(&a, &b).unwrap();
        assert!((rep.max_axis_error - 0.02).abs() < 1e-12);
        assert!((rep.max_euclidean_error - 0.02).abs() < 1e-12);
        assert!((rep.mean_euclidean_error - 0.015).abs() < 1e-12);
        assert_eq!(rep.pairs, 2);
    }

    #[test]
    fn paired_with_permutation() {
        let a = cloud(&[(0.0, 0.0, 0.0), (5.0, 5.0, 5.0)]);
        let b = cloud(&[(5.0, 5.0, 5.0), (0.0, 0.0, 0.0)]);
        let rep = ErrorReport::paired(&a, &b, &[1, 0]).unwrap();
        assert_eq!(rep.max_euclidean_error, 0.0);
    }

    #[test]
    fn length_mismatch_detected() {
        let a = cloud(&[(0.0, 0.0, 0.0)]);
        let b = cloud(&[]);
        assert!(matches!(ErrorReport::identity(&a, &b), Err(CloudError::LengthMismatch { .. })));
    }

    #[test]
    fn bound_check() {
        let a = cloud(&[(0.0, 0.0, 0.0)]);
        let b = cloud(&[(0.05, 0.0, 0.0)]);
        let rep = ErrorReport::identity(&a, &b).unwrap();
        assert!(rep.check_euclidean(0.02).is_err());
        assert!(rep.check_euclidean(0.06).is_ok());
    }

    #[test]
    fn first_violation_locates_index() {
        let a = [Point3::ZERO, Point3::new(1.0, 0.0, 0.0)];
        let b = [Point3::ZERO, Point3::new(1.5, 0.0, 0.0)];
        let (idx, err) = first_violation(&a, &b, 0.1).unwrap();
        assert_eq!(idx, 1);
        assert!((err - 0.5).abs() < 1e-12);
        assert!(first_violation(&a, &b, 1.0).is_none());
    }

    #[test]
    fn empty_clouds_are_trivially_equal() {
        let rep = ErrorReport::identity(&PointCloud::new(), &PointCloud::new()).unwrap();
        assert_eq!(rep.pairs, 0);
        assert!(rep.check_euclidean(0.0).is_ok());
    }
}
