//! Coordinate scaling and rounding under an error bound (paper §3.5 step 1).
//!
//! Dividing a coordinate by `2·q_c` and rounding to the nearest integer
//! introduces at most `0.5` quantization error, so after multiplying back the
//! reconstruction error is at most `0.5 · 2·q_c = q_c`: exactly the per-axis
//! error bound of the problem statement.

use crate::spherical::Spherical;

/// Quantize `v` with quantization step `step` (`= 2·q_c`).
///
/// The reconstruction [`dequantize`]`(quantize(v, step), step)` differs from
/// `v` by at most `step / 2 = q_c`.
#[inline]
pub fn quantize(v: f64, step: f64) -> i64 {
    debug_assert!(step > 0.0);
    (v / step).round() as i64
}

/// Inverse of [`quantize`].
#[inline]
pub fn dequantize(q: i64, step: f64) -> f64 {
    q as f64 * step
}

/// Per-axis quantization parameters for one coordinate system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Quantization step (`2·q_c`) per axis.
    pub step: [f64; 3],
}

impl QuantParams {
    /// Uniform Cartesian parameters from the error bound `q_xyz`.
    pub fn cartesian(q_xyz: f64) -> QuantParams {
        assert!(q_xyz > 0.0, "error bound must be positive");
        QuantParams { step: [2.0 * q_xyz; 3] }
    }

    /// Quantize all three components.
    pub fn quantize3(&self, v: [f64; 3]) -> [i64; 3] {
        [quantize(v[0], self.step[0]), quantize(v[1], self.step[1]), quantize(v[2], self.step[2])]
    }

    /// Reconstruct all three components.
    pub fn dequantize3(&self, q: [i64; 3]) -> [f64; 3] {
        [
            dequantize(q[0], self.step[0]),
            dequantize(q[1], self.step[1]),
            dequantize(q[2], self.step[2]),
        ]
    }
}

/// Spherical quantization derived from the Cartesian error bound (Lemma 3.2).
///
/// With `q_θ = q_φ = q_xyz / r_max` and `q_r = q_xyz`, the maximum Euclidean
/// reconstruction error of any point with `r <= r_max` is `√(2 + sin²φ)·q_xyz
/// ≤ √3·q_xyz` — no worse than per-axis-`q_xyz` Cartesian quantization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SphericalQuant {
    /// Angular error bound `q_θ = q_φ` in radians.
    pub q_angle: f64,
    /// Radial error bound `q_r` in metres.
    pub q_r: f64,
    /// The `r_max` this quantizer was derived for.
    pub r_max: f64,
}

impl SphericalQuant {
    /// Derive the spherical bounds from `q_xyz` and the maximum radial
    /// distance of the points to be quantized.
    pub fn from_error_bound(q_xyz: f64, r_max: f64) -> SphericalQuant {
        assert!(q_xyz > 0.0, "error bound must be positive");
        let r_max = r_max.max(q_xyz); // avoid a degenerate (infinite) angular step
        SphericalQuant { q_angle: q_xyz / r_max, q_r: q_xyz, r_max }
    }

    /// Quantization step on the angular dimensions (`2·q_θ`).
    #[inline]
    pub fn angle_step(&self) -> f64 {
        2.0 * self.q_angle
    }

    /// Quantization step on the radial dimension (`2·q_r`).
    #[inline]
    pub fn r_step(&self) -> f64 {
        2.0 * self.q_r
    }

    /// Quantize a spherical point to integer grid coordinates.
    pub fn quantize(&self, s: Spherical) -> [i64; 3] {
        [
            quantize(s.theta, self.angle_step()),
            quantize(s.phi, self.angle_step()),
            quantize(s.r, self.r_step()),
        ]
    }

    /// Reconstruct a spherical point from integer grid coordinates.
    pub fn dequantize(&self, q: [i64; 3]) -> Spherical {
        Spherical::new(
            dequantize(q[0], self.angle_step()),
            dequantize(q[1], self.angle_step()),
            dequantize(q[2], self.r_step()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point3;

    #[test]
    fn scalar_quantization_error_bound() {
        let q = 0.02;
        let step = 2.0 * q;
        for v in [-10.0, -0.019, 0.0, 0.5, std::f64::consts::PI, 99.99] {
            let rec = dequantize(quantize(v, step), step);
            assert!((rec - v).abs() <= q + 1e-12, "v={v}");
        }
    }

    #[test]
    fn cartesian_params_bound_each_axis() {
        let qp = QuantParams::cartesian(0.01);
        let v = [1.2345, -9.8765, 0.00049];
        let rec = qp.dequantize3(qp.quantize3(v));
        for i in 0..3 {
            assert!((rec[i] - v[i]).abs() <= 0.01 + 1e-12);
        }
    }

    #[test]
    fn spherical_quant_respects_lemma_bound() {
        use rand::{Rng, SeedableRng};
        let q_xyz = 0.02;
        let r_max = 80.0;
        let sq = SphericalQuant::from_error_bound(q_xyz, r_max);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let lemma_bound = (3.0f64).sqrt() * q_xyz;
        for _ in 0..2000 {
            let p = Point3::new(
                rng.gen_range(-50.0..50.0),
                rng.gen_range(-50.0..50.0),
                rng.gen_range(-5.0..15.0),
            );
            if p.norm() > r_max || p.norm() < 1e-6 {
                continue;
            }
            let s = Spherical::from_cartesian(p);
            let rec = sq.dequantize(sq.quantize(s)).to_cartesian();
            assert!(
                p.dist(rec) <= lemma_bound + 1e-9,
                "point {p:?} error {} exceeds lemma bound {}",
                p.dist(rec),
                lemma_bound
            );
        }
    }

    #[test]
    fn degenerate_r_max_is_clamped() {
        let sq = SphericalQuant::from_error_bound(0.02, 0.0);
        assert!(sq.q_angle.is_finite() && sq.q_angle > 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_error_bound_rejected() {
        let _ = QuantParams::cartesian(0.0);
    }
}
