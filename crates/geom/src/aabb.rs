//! Axis-aligned bounding volumes used by the tree coders.

use crate::point::Point3;

/// An axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Componentwise minimum corner.
    pub min: Point3,
    /// Componentwise maximum corner.
    pub max: Point3,
}

impl Aabb {
    /// Smallest box containing all `points`; `None` when `points` is empty.
    pub fn from_points(points: &[Point3]) -> Option<Aabb> {
        let mut it = points.iter();
        let first = *it.next()?;
        let mut bb = Aabb { min: first, max: first };
        for &p in it {
            bb.min = bb.min.min(p);
            bb.max = bb.max.max(p);
        }
        Some(bb)
    }

    /// Box spanning both input boxes.
    pub fn union(self, other: Aabb) -> Aabb {
        Aabb { min: self.min.min(other.min), max: self.max.max(other.max) }
    }

    #[inline]
    /// Side lengths per axis.
    pub fn extent(&self) -> Point3 {
        self.max - self.min
    }

    /// Length of the longest side.
    #[inline]
    pub fn longest_side(&self) -> f64 {
        let e = self.extent();
        e.x.max(e.y).max(e.z)
    }

    #[inline]
    /// Box volume.
    pub fn volume(&self) -> f64 {
        let e = self.extent();
        e.x * e.y * e.z
    }

    #[inline]
    /// Box centre.
    pub fn center(&self) -> Point3 {
        (self.min + self.max) * 0.5
    }

    /// Inclusive containment test.
    #[inline]
    pub fn contains(&self, p: Point3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }
}

/// A cube: the root volume of an octree (paper §2.1, "Octree Representation").
///
/// The cube's side is the longest side of the cloud's bounding box, anchored at
/// the box minimum, so recursive halving yields cubic cells at every level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingCube {
    /// Minimum corner of the cube.
    pub origin: Point3,
    /// Side length (equal on all axes).
    pub side: f64,
}

impl BoundingCube {
    /// Cube enclosing `bb`, with a tiny inflation so points exactly on the max
    /// face still fall strictly inside cell index computations.
    pub fn enclosing(bb: Aabb) -> BoundingCube {
        let side = bb.longest_side().max(f64::MIN_POSITIVE);
        BoundingCube { origin: bb.min, side: side * (1.0 + 1e-12) }
    }

    /// Cube from explicit origin and side.
    pub fn new(origin: Point3, side: f64) -> BoundingCube {
        BoundingCube { origin, side }
    }

    /// Depth needed so leaf cells have side `<= max_leaf_side`.
    ///
    /// The octree halves the side at each level, so the depth is
    /// `ceil(log2(side / max_leaf_side))`, clamped at 0.
    pub fn depth_for_leaf_side(&self, max_leaf_side: f64) -> u32 {
        assert!(max_leaf_side > 0.0, "leaf side must be positive");
        if self.side <= max_leaf_side {
            return 0;
        }
        let d = (self.side / max_leaf_side).log2().ceil() as u32;
        // Guard against floating-point slop: pow2 check.
        let leaf = self.side / (1u64 << d.min(62)) as f64;
        if leaf > max_leaf_side {
            d + 1
        } else {
            d
        }
    }

    /// Integer cell coordinates of `p` at the given tree `depth`.
    ///
    /// Returns `None` when `p` lies outside the cube.
    pub fn cell_at_depth(&self, p: Point3, depth: u32) -> Option<(u64, u64, u64)> {
        let cells = 1u64 << depth;
        let rel = (p - self.origin) / self.side;
        let to_idx = |v: f64| -> Option<u64> {
            if !(0.0..=1.0).contains(&v) {
                return None;
            }
            Some(((v * cells as f64) as u64).min(cells - 1))
        };
        Some((to_idx(rel.x)?, to_idx(rel.y)?, to_idx(rel.z)?))
    }

    /// Centre of the leaf cell with integer coordinates `(ix, iy, iz)` at `depth`.
    pub fn cell_center(&self, cell: (u64, u64, u64), depth: u32) -> Point3 {
        let side = self.side / (1u64 << depth) as f64;
        Point3::new(
            self.origin.x + (cell.0 as f64 + 0.5) * side,
            self.origin.y + (cell.1 as f64 + 0.5) * side,
            self.origin.z + (cell.2 as f64 + 0.5) * side,
        )
    }

    /// Side length of a cell at `depth`.
    #[inline]
    pub fn cell_side(&self, depth: u32) -> f64 {
        self.side / (1u64 << depth) as f64
    }
}

/// A 2D axis-aligned rectangle; root volume of the outlier quadtree (paper §3.6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect2 {
    /// Minimum x of the square.
    pub min_x: f64,
    /// Minimum y of the square.
    pub min_y: f64,
    /// Side length of the square.
    pub side: f64,
}

impl Rect2 {
    /// Smallest square anchored at the (x, y) minimum covering all points.
    pub fn enclosing_xy(points: &[Point3]) -> Option<Rect2> {
        let mut it = points.iter();
        let first = it.next()?;
        let (mut min_x, mut max_x) = (first.x, first.x);
        let (mut min_y, mut max_y) = (first.y, first.y);
        for p in it {
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        let side = (max_x - min_x).max(max_y - min_y).max(f64::MIN_POSITIVE);
        Some(Rect2 { min_x, min_y, side: side * (1.0 + 1e-12) })
    }

    /// Depth needed so leaf cells have side `<= max_leaf_side`.
    pub fn depth_for_leaf_side(&self, max_leaf_side: f64) -> u32 {
        assert!(max_leaf_side > 0.0, "leaf side must be positive");
        if self.side <= max_leaf_side {
            return 0;
        }
        let d = (self.side / max_leaf_side).log2().ceil() as u32;
        let leaf = self.side / (1u64 << d.min(62)) as f64;
        if leaf > max_leaf_side {
            d + 1
        } else {
            d
        }
    }

    /// Integer cell coordinates of `(x, y)` at `depth`, or `None` if outside.
    pub fn cell_at_depth(&self, x: f64, y: f64, depth: u32) -> Option<(u64, u64)> {
        let cells = 1u64 << depth;
        let rx = (x - self.min_x) / self.side;
        let ry = (y - self.min_y) / self.side;
        if !(0.0..=1.0).contains(&rx) || !(0.0..=1.0).contains(&ry) {
            return None;
        }
        Some((
            ((rx * cells as f64) as u64).min(cells - 1),
            ((ry * cells as f64) as u64).min(cells - 1),
        ))
    }

    /// Centre of cell `(ix, iy)` at `depth`.
    pub fn cell_center(&self, cell: (u64, u64), depth: u32) -> (f64, f64) {
        let side = self.side / (1u64 << depth) as f64;
        (self.min_x + (cell.0 as f64 + 0.5) * side, self.min_y + (cell.1 as f64 + 0.5) * side)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aabb_from_points() {
        let pts =
            [Point3::new(1.0, -2.0, 3.0), Point3::new(-1.0, 4.0, 0.0), Point3::new(0.0, 0.0, 5.0)];
        let bb = Aabb::from_points(&pts).unwrap();
        assert_eq!(bb.min, Point3::new(-1.0, -2.0, 0.0));
        assert_eq!(bb.max, Point3::new(1.0, 4.0, 5.0));
        assert_eq!(bb.longest_side(), 6.0);
        assert!(bb.contains(Point3::ZERO));
        assert!(!bb.contains(Point3::new(2.0, 0.0, 0.0)));
    }

    #[test]
    fn aabb_empty() {
        assert!(Aabb::from_points(&[]).is_none());
    }

    #[test]
    fn cube_depth_for_leaf() {
        let cube = BoundingCube::new(Point3::ZERO, 64.0);
        // 64 / 2^5 = 2.0, so depth 5 gives exactly the requested leaf side.
        let d = cube.depth_for_leaf_side(2.0);
        assert!(cube.cell_side(d) <= 2.0 + 1e-9);
        assert!(cube.cell_side(d) > 0.5, "should not over-subdivide");
    }

    #[test]
    fn cube_cell_roundtrip() {
        let cube = BoundingCube::new(Point3::new(-10.0, -10.0, -10.0), 20.0);
        let depth = 6;
        let p = Point3::new(3.21, -7.5, 0.0);
        let cell = cube.cell_at_depth(p, depth).unwrap();
        let c = cube.cell_center(cell, depth);
        // Centre is within half a cell side of the point on each axis.
        let half = cube.cell_side(depth) / 2.0;
        assert!((c.x - p.x).abs() <= half + 1e-12);
        assert!((c.y - p.y).abs() <= half + 1e-12);
        assert!((c.z - p.z).abs() <= half + 1e-12);
    }

    #[test]
    fn cube_rejects_outside_points() {
        let cube = BoundingCube::new(Point3::ZERO, 1.0);
        assert!(cube.cell_at_depth(Point3::new(2.0, 0.0, 0.0), 3).is_none());
        assert!(cube.cell_at_depth(Point3::new(-0.1, 0.0, 0.0), 3).is_none());
    }

    #[test]
    fn enclosing_cube_contains_all() {
        let pts =
            [Point3::new(0.0, 0.0, 0.0), Point3::new(5.0, 1.0, 1.0), Point3::new(2.0, 3.0, 4.0)];
        let cube = BoundingCube::enclosing(Aabb::from_points(&pts).unwrap());
        for p in pts {
            assert!(cube.cell_at_depth(p, 8).is_some());
        }
    }

    #[test]
    fn rect2_roundtrip() {
        let pts =
            [Point3::new(0.0, 0.0, -1.0), Point3::new(9.0, 3.0, 2.0), Point3::new(4.0, 8.0, 0.0)];
        let rect = Rect2::enclosing_xy(&pts).unwrap();
        let depth = rect.depth_for_leaf_side(0.04);
        assert!(rect.side / (1u64 << depth) as f64 <= 0.04 + 1e-12);
        for p in pts {
            let cell = rect.cell_at_depth(p.x, p.y, depth).unwrap();
            let (cx, cy) = rect.cell_center(cell, depth);
            assert!((cx - p.x).abs() <= 0.02 + 1e-9);
            assert!((cy - p.y).abs() <= 0.02 + 1e-9);
        }
    }

    #[test]
    fn cube_cell_count_at_depth() {
        let cube = BoundingCube::new(Point3::ZERO, 1.0);
        assert_eq!(cube.cell_at_depth(Point3::new(0.999, 0.999, 0.999), 2).unwrap(), (3, 3, 3));
        assert_eq!(cube.cell_at_depth(Point3::ZERO, 2).unwrap(), (0, 0, 0));
    }
}
