//! Spherical coordinates `(θ, φ, r)` with the sensor at the origin (paper §3.3).
//!
//! * `θ` — azimuthal angle, `atan2(y, x)`, in `(-π, π]`;
//! * `φ` — polar angle from the +z axis, `acos(z / r)`, in `[0, π]`;
//! * `r` — radial distance from the sensor.

use crate::point::Point3;

/// A point in spherical coordinates relative to the sensor origin.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Spherical {
    /// Azimuthal angle in radians, in `(-π, π]`.
    pub theta: f64,
    /// Polar angle in radians, in `[0, π]`.
    pub phi: f64,
    /// Radial distance in metres, `>= 0`.
    pub r: f64,
}

impl Spherical {
    /// A spherical point from its components.
    pub const fn new(theta: f64, phi: f64, r: f64) -> Self {
        Spherical { theta, phi, r }
    }

    /// Convert a Cartesian point to spherical coordinates.
    ///
    /// The origin maps to `(0, 0, 0)` by convention.
    pub fn from_cartesian(p: Point3) -> Spherical {
        let r = p.norm();
        if r == 0.0 {
            return Spherical::default();
        }
        let theta = p.y.atan2(p.x);
        let phi = (p.z / r).clamp(-1.0, 1.0).acos();
        Spherical { theta, phi, r }
    }

    /// Convert back to Cartesian coordinates.
    pub fn to_cartesian(self) -> Point3 {
        let (sin_phi, cos_phi) = self.phi.sin_cos();
        let (sin_theta, cos_theta) = self.theta.sin_cos();
        Point3::new(self.r * sin_phi * cos_theta, self.r * sin_phi * sin_theta, self.r * cos_phi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn assert_close(a: Point3, b: Point3, tol: f64) {
        assert!(a.dist(b) < tol, "{a:?} vs {b:?}");
    }

    #[test]
    fn axes_map_to_expected_angles() {
        let s = Spherical::from_cartesian(Point3::new(1.0, 0.0, 0.0));
        assert!((s.theta - 0.0).abs() < 1e-12);
        assert!((s.phi - FRAC_PI_2).abs() < 1e-12);
        assert!((s.r - 1.0).abs() < 1e-12);

        let s = Spherical::from_cartesian(Point3::new(0.0, 2.0, 0.0));
        assert!((s.theta - FRAC_PI_2).abs() < 1e-12);
        assert!((s.r - 2.0).abs() < 1e-12);

        let s = Spherical::from_cartesian(Point3::new(0.0, 0.0, 3.0));
        assert!((s.phi - 0.0).abs() < 1e-12);

        let s = Spherical::from_cartesian(Point3::new(0.0, 0.0, -3.0));
        assert!((s.phi - PI).abs() < 1e-12);
    }

    #[test]
    fn origin_is_stable() {
        let s = Spherical::from_cartesian(Point3::ZERO);
        assert_eq!(s, Spherical::default());
        assert_eq!(s.to_cartesian(), Point3::ZERO);
    }

    #[test]
    fn roundtrip_random_points() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let p = Point3::new(
                rng.gen_range(-100.0..100.0),
                rng.gen_range(-100.0..100.0),
                rng.gen_range(-20.0..20.0),
            );
            let back = Spherical::from_cartesian(p).to_cartesian();
            assert_close(p, back, 1e-9);
        }
    }

    #[test]
    fn theta_range_is_atan2_range() {
        let s = Spherical::from_cartesian(Point3::new(-1.0, -1e-9, 0.0));
        assert!(s.theta < 0.0 && s.theta > -PI - 1e-9);
        let s = Spherical::from_cartesian(Point3::new(-1.0, 1e-9, 0.0));
        assert!(s.theta > 0.0 && s.theta <= PI);
    }
}
