//! Property-based tests for the geometry invariants everything else rests on.

use dbgc_geom::quant::{dequantize, quantize, SphericalQuant};
use dbgc_geom::{Aabb, BoundingCube, Point3, Rect2, Spherical};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point3> {
    (-200.0..200.0f64, -200.0..200.0f64, -50.0..50.0f64).prop_map(|(x, y, z)| Point3::new(x, y, z))
}

proptest! {
    #[test]
    fn spherical_roundtrip_is_tight(p in arb_point()) {
        let back = Spherical::from_cartesian(p).to_cartesian();
        prop_assert!(p.dist(back) < 1e-8 * (1.0 + p.norm()));
    }

    #[test]
    fn spherical_ranges(p in arb_point()) {
        let s = Spherical::from_cartesian(p);
        prop_assert!((-std::f64::consts::PI..=std::f64::consts::PI).contains(&s.theta));
        prop_assert!((0.0..=std::f64::consts::PI).contains(&s.phi));
        prop_assert!(s.r >= 0.0);
        prop_assert!((s.r - p.norm()).abs() < 1e-9 * (1.0 + p.norm()));
    }

    #[test]
    fn scalar_quantization_bound(v in -1e6..1e6f64, q in 1e-4..1.0f64) {
        let step = 2.0 * q;
        let rec = dequantize(quantize(v, step), step);
        prop_assert!((rec - v).abs() <= q * (1.0 + 1e-9));
    }

    #[test]
    fn spherical_quant_respects_lemma(p in arb_point(), q in 0.001..0.1f64) {
        prop_assume!(p.norm() > 0.5);
        let sq = SphericalQuant::from_error_bound(q, 300.0);
        let s = Spherical::from_cartesian(p);
        let rec = sq.dequantize(sq.quantize(s)).to_cartesian();
        // Lemma 3.2: Euclidean error <= sqrt(3)·q for r <= r_max.
        prop_assert!(p.dist(rec) <= 3f64.sqrt() * q * (1.0 + 1e-6),
            "err {} vs bound {}", p.dist(rec), 3f64.sqrt() * q);
    }

    #[test]
    fn cube_cells_contain_their_points(
        pts in proptest::collection::vec(arb_point(), 1..100),
        depth in 0u32..12
    ) {
        let bb = Aabb::from_points(&pts).unwrap();
        let cube = BoundingCube::enclosing(bb);
        let half = cube.cell_side(depth) / 2.0;
        for &p in &pts {
            let cell = cube.cell_at_depth(p, depth).expect("inside enclosing cube");
            let c = cube.cell_center(cell, depth);
            prop_assert!(p.linf_dist(c) <= half * (1.0 + 1e-9));
        }
    }

    #[test]
    fn rect_cells_contain_their_points(
        pts in proptest::collection::vec(arb_point(), 1..100),
        depth in 0u32..12
    ) {
        let rect = Rect2::enclosing_xy(&pts).unwrap();
        let half = rect.side / (1u64 << depth) as f64 / 2.0;
        for &p in &pts {
            let cell = rect.cell_at_depth(p.x, p.y, depth).expect("inside rect");
            let (cx, cy) = rect.cell_center(cell, depth);
            prop_assert!((p.x - cx).abs() <= half * (1.0 + 1e-9));
            prop_assert!((p.y - cy).abs() <= half * (1.0 + 1e-9));
        }
    }

    #[test]
    fn aabb_contains_all_inputs(pts in proptest::collection::vec(arb_point(), 1..200)) {
        let bb = Aabb::from_points(&pts).unwrap();
        for &p in &pts {
            prop_assert!(bb.contains(p));
        }
        // Union with itself is idempotent.
        prop_assert_eq!(bb.union(bb), bb);
    }

    #[test]
    fn depth_for_leaf_side_is_sufficient_and_minimal(
        side in 0.1..1000.0f64,
        leaf in 0.001..10.0f64
    ) {
        let cube = BoundingCube::new(Point3::ZERO, side);
        let d = cube.depth_for_leaf_side(leaf);
        prop_assert!(cube.cell_side(d) <= leaf * (1.0 + 1e-9));
        if d > 0 {
            prop_assert!(cube.cell_side(d - 1) > leaf * (1.0 - 1e-9),
                "depth {d} over-subdivides: {} <= {leaf}", cube.cell_side(d - 1));
        }
    }
}
