//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the slice of the criterion API its benches use: [`Criterion`],
//! [`criterion_group!`]/[`criterion_main!`] (both the positional and the
//! `name/config/targets` forms), benchmark groups with
//! [`Throughput`] annotations, [`BenchmarkId`], and `b.iter(..)`.
//!
//! Measurement is deliberately simple: a warmup pass, then `sample_size`
//! timed samples of an adaptively chosen iteration batch; mean, min and
//! throughput are printed per benchmark. No statistical regression analysis,
//! plots, or `target/criterion` reports.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Work-per-iteration annotation for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// The timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, running it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + batch sizing: aim for samples of at least ~25 ms so
        // cheap routines are not dominated by timer overhead.
        let t = Instant::now();
        std_black_box(routine());
        let once = t.elapsed().max(Duration::from_nanos(20));
        let batch = (Duration::from_millis(25).as_nanos() / once.as_nanos()).clamp(1, 1 << 20);
        self.iters_per_sample = batch as u64;
        self.samples.clear();
        for _ in 0..self.sample_size.max(2) {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                std_black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotate the amount of work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, self.throughput, &mut f);
        self
    }

    /// Benchmark `f` under `id` with an input passed by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// End the group.
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher { sample_size, ..Bencher::default() };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {label:<48} (no samples)");
        return;
    }
    let per_iter = |d: &Duration| d.as_secs_f64() / b.iters_per_sample as f64;
    let mean = b.samples.iter().map(per_iter).sum::<f64>() / b.samples.len() as f64;
    let min = b.samples.iter().map(per_iter).fold(f64::INFINITY, f64::min);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!(" | {:>10.3} Melem/s", n as f64 / mean / 1e6),
        Some(Throughput::Bytes(n)) => {
            format!(" | {:>10.3} MiB/s", n as f64 / mean / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!(
        "bench {label:<48} mean {:>12} | min {:>12}{rate}",
        fmt_duration(mean),
        fmt_duration(min)
    );
}

fn fmt_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size }
    }

    /// Benchmark `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.id, self.sample_size, None, &mut f);
        self
    }
}

/// Bundle benchmark functions into a runner (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("sum", 100usize), &100usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>());
        });
        g.finish();
        c.bench_function("plain", |b| b.iter(|| 2 + 2));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_targets() {
        benches();
    }

    #[test]
    fn config_form_compiles() {
        criterion_group! {
            name = configured;
            config = Criterion::default().sample_size(2);
            targets = sample_bench
        }
        configured();
    }
}
