//! A simplified G-PCC (MPEG TMC13-like) octree geometry coder.
//!
//! The paper compares DBGC against G-PCC \[33\] and attributes G-PCC's edge
//! over plain octrees to two optimizations (§4.2): *neighbour-dependent
//! entropy coding* and *direct point coding* (IDCM). This crate implements an
//! octree coder with exactly those two mechanisms:
//!
//! * **Neighbour contexts** — a node's occupancy byte is coded under a model
//!   selected by how many of its six face-neighbour cells (same tree level)
//!   are occupied. Surfaces make neighbour occupancy highly predictive.
//! * **Direct point coding** — a node whose subtree contains a single leaf
//!   can skip subdivision: a flag is coded (context: neighbour count), then
//!   the leaf's remaining Morton path is written raw. This is what rescues
//!   octrees on sparse LiDAR regions, where deep chains of single-child
//!   nodes otherwise cost a full occupancy byte per level.
//!
//! Duplicate points are preserved (`mergeDuplicatedPoints` disabled), as the
//! paper requires for its one-to-one-mapping problem statement.

#![warn(missing_docs)]

use dbgc_geom::FxHashSet;

use dbgc_codec::intseq;
use dbgc_codec::varint::{write_f64, write_uvarint, ByteReader};
use dbgc_codec::{CodecError, ContextModel, RangeDecoder, RangeEncoder};
use dbgc_geom::{BoundingCube, Point3};
use dbgc_octree::builder::{demorton3, morton3, Octree, MAX_DEPTH};

/// Minimum remaining depth for a node to be IDCM-eligible; below this the
/// raw path is no cheaper than subdividing.
const IDCM_MIN_REMAINING: u32 = 2;

/// Default decode budget: far above any real LiDAR frame while keeping
/// hostile declared counts from demanding gigabytes.
pub const DEFAULT_MAX_POINTS: usize = 1 << 24;

/// Result of encoding.
#[derive(Debug, Clone)]
pub struct GpccEncodeResult {
    /// The compressed bitstream.
    pub bytes: Vec<u8>,
    /// `mapping[i]` is the index of input point `i` in the decoded output.
    pub mapping: Vec<usize>,
    /// Number of nodes coded via the direct (IDCM) path, for stats.
    pub direct_coded: usize,
}

/// Result of decoding.
#[derive(Debug, Clone)]
pub struct GpccDecodeResult {
    /// Decoded points (leaf centres, duplicates preserved).
    pub points: Vec<Point3>,
}

/// The simplified G-PCC codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct GpccCodec;

/// Occupancy contexts: parent occupancy code (256) × whether any face
/// neighbour is occupied (2).
const OCC_CONTEXTS: usize = 256 * 2;

/// Count occupied face neighbours of `prefix` among `level_cells` (cells at
/// the same level), clamped to the level's grid bounds.
fn neighbor_context(prefix: u64, level: u32, level_cells: &FxHashSet<u64>) -> usize {
    if level == 0 {
        return 0;
    }
    let (x, y, z) = demorton3(prefix);
    let max = (1u64 << level) - 1;
    let mut count = 0usize;
    let mut check = |cx: u64, cy: u64, cz: u64| {
        if level_cells.contains(&morton3((cx, cy, cz))) {
            count += 1;
        }
    };
    if x > 0 {
        check(x - 1, y, z);
    }
    if x < max {
        check(x + 1, y, z);
    }
    if y > 0 {
        check(x, y - 1, z);
    }
    if y < max {
        check(x, y + 1, z);
    }
    if z > 0 {
        check(x, y, z - 1);
    }
    if z < max {
        check(x, y, z + 1);
    }
    count
}

impl GpccCodec {
    /// Compress `points` with leaf side `2·q_xyz` (per-axis error `<= q_xyz`).
    pub fn encode(&self, points: &[Point3], q_xyz: f64) -> GpccEncodeResult {
        let Some(tree) = Octree::build(points, q_xyz) else {
            let mut out = Vec::new();
            write_f64(&mut out, 0.0);
            write_f64(&mut out, 0.0);
            write_f64(&mut out, 0.0);
            write_f64(&mut out, 0.0);
            write_uvarint(&mut out, 0);
            write_uvarint(&mut out, 0);
            return GpccEncodeResult { bytes: out, mapping: Vec::new(), direct_coded: 0 };
        };
        let mut out = Vec::new();
        write_f64(&mut out, tree.cube.origin.x);
        write_f64(&mut out, tree.cube.origin.y);
        write_f64(&mut out, tree.cube.origin.z);
        write_f64(&mut out, tree.cube.side);
        write_uvarint(&mut out, tree.depth as u64);
        write_uvarint(&mut out, tree.leaf_count() as u64);

        let mut enc = RangeEncoder::new();
        // Byte-wise occupancy under (parent code, neighbour-presence)
        // contexts: the "neighbour-dependent entropy coding" of TMC13,
        // grafted onto the parent-code grouping of Octree_i.
        let mut occ_model = ContextModel::new(OCC_CONTEXTS, 255);
        // IDCM flag model: only isolated nodes are eligible, one context per
        // parent pop-count bucket.
        let mut idcm_model = ContextModel::new(9, 2);
        // Order-1 adaptive model for IDCM suffix child indices (context =
        // previous child index): straight-line chains repeat child indices.
        let mut idcm_path = ContextModel::new(8, 8);
        let mut direct_coded = 0usize;

        if tree.depth > 0 {
            // BFS level by level; each entry covers leaf_keys[start..end]
            // and carries the node's Morton prefix at the current level.
            let mut current: Vec<(usize, usize, u64, u8)> = vec![(0, tree.leaf_keys.len(), 0, 0)];
            let mut next: Vec<(usize, usize, u64, u8)> = Vec::new();
            let mut level_cells = FxHashSet::default();
            for level in 0..tree.depth {
                let remaining = tree.depth - level;
                let shift = 3 * (remaining - 1);
                level_cells.clear();
                level_cells.extend(current.iter().map(|&(_, _, p, _)| p));
                next.clear();
                for &(start, end, prefix, parent_code) in &current {
                    let neighbors = neighbor_context(prefix, level, &level_cells);
                    let ctx = parent_code as usize * 2 + usize::from(neighbors > 0);
                    let pbucket = (parent_code.count_ones() as usize).min(8);
                    let eligible = remaining >= IDCM_MIN_REMAINING
                        && neighbors == 0
                        && parent_code.count_ones() == 1;
                    if eligible {
                        let use_idcm = end - start == 1;
                        idcm_model.encode(&mut enc, pbucket, use_idcm as usize);
                        if use_idcm {
                            // Remaining Morton path of the single leaf, one
                            // adaptively-coded child index per level.
                            let mut prev = 0usize;
                            for lvl in (0..remaining).rev() {
                                let child = ((tree.leaf_keys[start] >> (3 * lvl)) & 0b111) as usize;
                                idcm_path.encode(&mut enc, prev, child);
                                prev = child;
                            }
                            direct_coded += 1;
                            continue;
                        }
                    }
                    // Normal subdivision: occupancy byte + child expansion.
                    let mut code = 0u8;
                    let mut children = [(0usize, 0usize); 8];
                    let mut i = start;
                    while i < end {
                        let child = ((tree.leaf_keys[i] >> shift) & 0b111) as u8;
                        let mut j = i + 1;
                        while j < end && ((tree.leaf_keys[j] >> shift) & 0b111) as u8 == child {
                            j += 1;
                        }
                        code |= 1 << child;
                        children[child as usize] = (i, j);
                        i = j;
                    }
                    occ_model.encode(&mut enc, ctx, code as usize - 1);
                    if remaining > 1 {
                        for child in 0..8u64 {
                            if code & (1 << child as u8) != 0 {
                                let (s, e) = children[child as usize];
                                next.push((s, e, (prefix << 3) | child, code));
                            }
                        }
                    }
                }
                std::mem::swap(&mut current, &mut next);
            }
        }
        let occ = enc.finish();
        write_uvarint(&mut out, occ.len() as u64);
        out.extend_from_slice(&occ);

        let extras: Vec<i64> = tree.leaf_counts.iter().map(|&c| c as i64 - 1).collect();
        intseq::compress_ints_rc(&mut out, &extras);

        GpccEncodeResult { bytes: out, mapping: tree.decode_mapping(), direct_coded }
    }

    /// Decompress a stream produced by [`GpccCodec::encode`].
    ///
    /// Output is capped at [`DEFAULT_MAX_POINTS`] points; use
    /// [`GpccCodec::decode_with_limit`] to pick a different budget.
    pub fn decode(&self, bytes: &[u8]) -> Result<GpccDecodeResult, CodecError> {
        self.decode_with_limit(bytes, DEFAULT_MAX_POINTS)
    }

    /// Decompress with an explicit point budget: hostile streams whose
    /// declared or reconstructed size exceeds `max_points` fail with a typed
    /// error before any large allocation.
    pub fn decode_with_limit(
        &self,
        bytes: &[u8],
        max_points: usize,
    ) -> Result<GpccDecodeResult, CodecError> {
        let mut r = ByteReader::new(bytes);
        let ox = r.read_f64()?;
        let oy = r.read_f64()?;
        let oz = r.read_f64()?;
        let side = r.read_f64()?;
        if ![ox, oy, oz, side].iter().all(|v| v.is_finite() && v.abs() <= 1e15) {
            return Err(CodecError::CorruptStream("gpcc header out of range"));
        }
        let depth = r.read_uvarint()? as u32;
        if depth > MAX_DEPTH {
            return Err(CodecError::CorruptStream("gpcc depth out of range"));
        }
        let leaf_count = r.read_uvarint()? as usize;
        if leaf_count > max_points {
            return Err(CodecError::CorruptStream("gpcc leaf count exceeds limit"));
        }
        let cube = BoundingCube::new(Point3::new(ox, oy, oz), side);
        if leaf_count == 0 {
            return Ok(GpccDecodeResult { points: Vec::new() });
        }
        let occ_len = r.read_uvarint()? as usize;
        let occ = r.read_slice(occ_len)?;
        let mut dec = RangeDecoder::new(occ);
        let mut occ_model = ContextModel::new(OCC_CONTEXTS, 255);
        let mut idcm_model = ContextModel::new(9, 2);
        let mut idcm_path = ContextModel::new(8, 8);

        let mut leaves: Vec<u64> = Vec::with_capacity(leaf_count);
        if depth == 0 {
            leaves.push(0);
        } else {
            let mut current: Vec<(u64, u8)> = vec![(0, 0)];
            let mut next: Vec<(u64, u8)> = Vec::new();
            let mut level_cells = FxHashSet::default();
            for level in 0..depth {
                // Leaves emitted so far plus nodes still expanding can only
                // grow; past the declared count the stream is provably
                // corrupt, and bailing here bounds the 8×-per-level BFS.
                if leaves.len().saturating_add(current.len()) > leaf_count {
                    return Err(CodecError::CorruptStream("gpcc leaf budget exceeded"));
                }
                let remaining = depth - level;
                level_cells.clear();
                level_cells.extend(current.iter().map(|&(p, _)| p));
                next.clear();
                for &(prefix, parent_code) in &current {
                    let neighbors = neighbor_context(prefix, level, &level_cells);
                    let ctx = parent_code as usize * 2 + usize::from(neighbors > 0);
                    let pbucket = (parent_code.count_ones() as usize).min(8);
                    let eligible = remaining >= IDCM_MIN_REMAINING
                        && neighbors == 0
                        && parent_code.count_ones() == 1;
                    if eligible {
                        let use_idcm = idcm_model.decode(&mut dec, pbucket)? == 1;
                        if use_idcm {
                            let mut key = prefix;
                            let mut prev = 0usize;
                            for _ in 0..remaining {
                                let child = idcm_path.decode(&mut dec, prev)?;
                                key = (key << 3) | child as u64;
                                prev = child;
                            }
                            leaves.push(key);
                            continue;
                        }
                    }
                    let code = occ_model.decode(&mut dec, ctx)? as u8 + 1;
                    if remaining > 1 {
                        for child in 0..8u64 {
                            if code & (1 << child as u8) != 0 {
                                next.push(((prefix << 3) | child, code));
                            }
                        }
                    } else {
                        for child in 0..8u64 {
                            if code & (1 << child as u8) != 0 {
                                leaves.push((prefix << 3) | child);
                            }
                        }
                    }
                }
                std::mem::swap(&mut current, &mut next);
            }
        }
        leaves.sort_unstable();
        if leaves.len() != leaf_count {
            return Err(CodecError::CorruptStream("gpcc leaf count mismatch"));
        }

        let extras = intseq::decompress_ints_rc(&mut r)?;
        if extras.len() != leaf_count {
            return Err(CodecError::CorruptStream("gpcc multiplicity mismatch"));
        }
        let mut points = Vec::new();
        let mut total = 0usize;
        for (&key, &extra) in leaves.iter().zip(&extras) {
            if extra < 0 || extra > u32::MAX as i64 {
                return Err(CodecError::CorruptStream("invalid multiplicity"));
            }
            total = total.saturating_add(extra as usize + 1);
            if total > max_points {
                return Err(CodecError::CorruptStream("gpcc point count exceeds limit"));
            }
            let center = cube.cell_center(demorton3(key), depth);
            points.extend(std::iter::repeat(center).take(extra as usize + 1));
        }
        Ok(GpccDecodeResult { points })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64, span: f64) -> Vec<Point3> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.gen_range(-span..span),
                    rng.gen_range(-span..span),
                    rng.gen_range(-2.0..6.0),
                )
            })
            .collect()
    }

    fn check_roundtrip(points: &[Point3], q: f64) -> GpccEncodeResult {
        let codec = GpccCodec;
        let enc = codec.encode(points, q);
        let dec = codec.decode(&enc.bytes).unwrap();
        assert_eq!(dec.points.len(), points.len());
        for (i, &p) in points.iter().enumerate() {
            let d = dec.points[enc.mapping[i]];
            assert!(p.linf_dist(d) <= q + 1e-9, "point {i} err {}", p.linf_dist(d));
        }
        enc
    }

    #[test]
    fn roundtrip_random() {
        let pts = random_cloud(4000, 40, 40.0);
        let enc = check_roundtrip(&pts, 0.02);
        assert!(enc.direct_coded > 0, "sparse cloud should trigger IDCM");
    }

    #[test]
    fn roundtrip_dense_surface() {
        // Points on a plane: neighbour contexts should help.
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let pts: Vec<Point3> = (0..8000)
            .map(|_| Point3::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0), 0.0))
            .collect();
        check_roundtrip(&pts, 0.02);
    }

    #[test]
    fn empty_single_duplicates() {
        check_roundtrip(&[], 0.02);
        check_roundtrip(&[Point3::new(1.0, 1.0, 1.0)], 0.02);
        check_roundtrip(&vec![Point3::new(2.0, 2.0, 2.0); 10], 0.02);
    }

    #[test]
    fn beats_plain_octree_on_lidar_like_rings() {
        // The premise of the paper's §4.2 baseline ranking (G-PCC > Octree on
        // LiDAR data): IDCM + neighbour contexts pay off on the ring/chain
        // structure of scans, not on uniform noise.
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut pts = Vec::new();
        for beam in 0..64 {
            let elev = -(2.0 + beam as f64 * 0.4) * std::f64::consts::PI / 180.0;
            let r: f64 = (1.73 / (-elev).tan()).min(80.0);
            if r < 2.0 {
                continue;
            }
            for k in 0..400 {
                if rng.gen_bool(0.3) {
                    continue;
                }
                let th = k as f64 / 400.0 * std::f64::consts::TAU;
                pts.push(Point3::new(r * th.cos(), r * th.sin(), -1.73));
            }
        }
        let q = 0.02;
        let gpcc = GpccCodec.encode(&pts, q).bytes.len();
        let octree = dbgc_octree::OctreeCodec::baseline().encode(&pts, q).bytes.len();
        assert!(gpcc < octree, "gpcc {gpcc} should beat plain octree {octree} on LiDAR-like data");
    }

    #[test]
    fn truncated_header_is_error() {
        let pts = random_cloud(100, 43, 10.0);
        let enc = GpccCodec.encode(&pts, 0.02);
        assert!(GpccCodec.decode(&enc.bytes[..16]).is_err());
    }
}
