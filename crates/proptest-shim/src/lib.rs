//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the slice of the proptest API its tests use: the [`proptest!`] macro with
//! `pat in strategy` bindings and an optional `#![proptest_config(..)]`
//! attribute, [`Strategy`](strategy::Strategy) with `prop_map`, range and
//! tuple strategies, [`any`], [`collection::vec`], and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream: cases are generated from a fixed per-test seed
//! sequence (fully deterministic, no `proptest-regressions` replay), there is
//! no shrinking, and a failing case reports its case seed instead of a
//! minimized input.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Value generation strategies.
pub mod strategy {
    use super::*;

    /// A generator of test-case values (subset of `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<T: SampleUniform + Clone> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: SampleUniform + Clone> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$i:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A / 0);
    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
}

/// Types with a canonical whole-domain strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of this type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Length bounds for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Case execution (subset of `proptest::test_runner`).
pub mod test_runner {
    use super::*;

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject,
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError::Fail(msg)
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in s.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Run `case` until `config.cases` cases pass; panics on the first
    /// failure, reporting the case seed for reproduction.
    pub fn run(
        config: &ProptestConfig,
        name: &str,
        mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    ) {
        let base = fnv1a(name);
        let mut passed = 0u32;
        let mut rejected = 0u64;
        let mut draw = 0u64;
        while passed < config.cases {
            let seed = base.wrapping_add(draw.wrapping_mul(0x9e3779b97f4a7c15));
            let mut rng = StdRng::seed_from_u64(seed);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= 256 + 10 * config.cases as u64,
                        "proptest '{name}': too many prop_assume! rejections ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed (case seed {seed:#x}): {msg}")
                }
            }
            draw += 1;
        }
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::{any, Arbitrary, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declare property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    { $body }
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
}

/// Reject the current case's inputs (it is re-drawn, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0usize..10, pair in (1i64..5, -2.0..2.0f64)) {
            prop_assert!(x < 10);
            prop_assert!((1..5).contains(&pair.0));
            prop_assert!((-2.0..2.0).contains(&pair.1));
        }

        #[test]
        fn vec_and_map(v in collection::vec((0u32..100).prop_map(|x| x * 2), 0..20)) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&x| x % 2 == 0 && x < 200));
        }

        #[test]
        fn assume_rejects(v in 0u8..8) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }
    }

    #[test]
    #[should_panic(expected = "case seed")]
    fn failure_reports_seed() {
        crate::test_runner::run(&ProptestConfig::with_cases(4), "x", |_| {
            Err(crate::test_runner::TestCaseError::fail("boom".into()))
        });
    }
}
