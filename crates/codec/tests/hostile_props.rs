//! Property tests for every codec primitive: encoded data round-trips
//! exactly, and *arbitrary* bytes decode to `Err` or a value — never a
//! panic, never an allocation unmoored from the input size.
//!
//! These are the per-primitive counterparts of the structure-aware fuzzing
//! in `dbgc-fuzz`: the fuzzer mutates real streams end-to-end; these drive
//! each primitive's decoder directly with unconstrained input.

use dbgc_codec::varint::{write_ivarint, write_uvarint, ByteReader};
use dbgc_codec::{
    bitpack_decode, bitpack_encode, deflate_compress, deflate_decompress, delta_decode,
    delta_encode, for_decode, for_encode, rle_decode, rle_decode_limited, rle_encode,
    HuffmanDecoder, HuffmanEncoder,
};
use dbgc_codec::{intseq, lz77, range};
use dbgc_codec::{AdaptiveModel, DualRangeDecoder, DualRangeEncoder};
use dbgc_codec::{WideRangeDecoder, WideRangeEncoder};
use proptest::prelude::*;

fn arb_ints() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(
        (any::<u64>(), 0u32..4).prop_map(|(raw, scale)| {
            // Mix magnitudes: deltas, coordinates, and extreme values.
            let v = raw as i64;
            v >> [0u32, 16, 40, 56][scale as usize]
        }),
        0..300,
    )
}

fn arb_bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ---- varint ----------------------------------------------------------
    #[test]
    fn varint_roundtrip(vals in proptest::collection::vec(any::<u64>(), 0..200)) {
        let mut buf = Vec::new();
        for &v in &vals {
            write_uvarint(&mut buf, v);
            write_ivarint(&mut buf, v as i64);
        }
        let mut r = ByteReader::new(&buf);
        for &v in &vals {
            prop_assert_eq!(r.read_uvarint().unwrap(), v);
            prop_assert_eq!(r.read_ivarint().unwrap(), v as i64);
        }
        prop_assert!(r.is_empty());
    }

    #[test]
    fn varint_arbitrary_bytes_never_panic(bytes in arb_bytes(64)) {
        let mut r = ByteReader::new(&bytes);
        while r.read_uvarint().is_ok() && !r.is_empty() {}
        let mut r = ByteReader::new(&bytes);
        while r.read_ivarint().is_ok() && !r.is_empty() {}
    }

    // ---- delta -----------------------------------------------------------
    #[test]
    fn delta_roundtrip(vals in arb_ints()) {
        // Wrapping on i64 extremes is part of the contract: decode inverts
        // encode exactly for every input.
        prop_assert_eq!(delta_decode(&delta_encode(&vals)), vals);
    }

    // ---- rle -------------------------------------------------------------
    #[test]
    fn rle_roundtrip(data in arb_bytes(400)) {
        prop_assert_eq!(rle_decode(&rle_encode(&data)).unwrap(), data);
    }

    #[test]
    fn rle_arbitrary_bytes_never_panic(bytes in arb_bytes(200)) {
        if let Ok(out) = rle_decode_limited(&bytes, 1 << 12) {
            prop_assert!(out.len() <= 1 << 12, "limit not honored: {}", out.len());
        }
        let _ = rle_decode(&bytes);
    }

    // ---- lz77 ------------------------------------------------------------
    #[test]
    fn lz77_roundtrip(data in arb_bytes(600)) {
        let tokens = lz77::lz77_tokenize(&data);
        prop_assert_eq!(lz77::lz77_reconstruct(&tokens).unwrap(), data);
    }

    #[test]
    fn lz77_arbitrary_tokens_never_panic(
        tokens in proptest::collection::vec(
            (any::<u8>(), any::<u64>()).prop_map(|(b, raw)| {
                if raw & 1 == 0 {
                    lz77::Token::Literal(b)
                } else {
                    lz77::Token::Match { len: (raw >> 1) as u16, dist: (raw >> 17) as u16 }
                }
            }),
            0..100,
        )
    ) {
        // Err (invalid back-reference) or Ok; output is bounded by
        // tokens * MAX u16 len, so no unbounded allocation either.
        let _ = lz77::lz77_reconstruct(&tokens);
    }

    // ---- huffman ---------------------------------------------------------
    #[test]
    fn huffman_roundtrip(syms in proptest::collection::vec(0usize..24, 1..400)) {
        let mut freqs = vec![0u64; 24];
        for &s in &syms {
            freqs[s] += 1;
        }
        let enc = HuffmanEncoder::from_frequencies(&freqs);
        let mut table = Vec::new();
        enc.write_table(&mut table);
        let mut w = dbgc_codec::BitWriter::new();
        for &s in &syms {
            enc.encode(&mut w, s);
        }
        let bits = w.finish();
        let dec = HuffmanDecoder::read_table(&mut ByteReader::new(&table)).unwrap();
        let mut r = dbgc_codec::BitReader::new(&bits);
        for &s in &syms {
            prop_assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn huffman_table_from_arbitrary_bytes_never_panics(bytes in arb_bytes(300)) {
        let _ = HuffmanDecoder::read_table(&mut ByteReader::new(&bytes));
    }

    // ---- range coder -----------------------------------------------------
    #[test]
    fn range_roundtrip_and_truncation(data in arb_bytes(500), cut_frac in 0u32..100) {
        let comp = range::rc_compress_bytes(&data);
        prop_assert_eq!(range::rc_decompress_bytes(&comp, data.len()).unwrap(), data.clone());
        // Any proper prefix: hard error, or — only for cuts inside the
        // 8-byte flush tail — still the exact original bytes.
        let cut = (comp.len().saturating_sub(1)) * cut_frac as usize / 100;
        match range::rc_decompress_bytes(&comp[..cut], data.len()) {
            Err(_) => {}
            Ok(out) => {
                prop_assert!(cut + 8 >= comp.len(), "early cut at {cut} decoded Ok");
                prop_assert_eq!(out, data, "flush-tail cut returned wrong bytes");
            }
        }
    }

    #[test]
    fn range_arbitrary_bytes_never_panic(bytes in arb_bytes(200), n in 0usize..4096) {
        let _ = range::rc_decompress_bytes(&bytes, n);
    }

    // ---- dual-lane range coder -------------------------------------------
    #[test]
    fn dual_roundtrip_and_truncation(data in arb_bytes(500), cut_frac in 0u32..100) {
        let mut model = AdaptiveModel::new(256);
        let mut enc = DualRangeEncoder::new();
        for &b in &data {
            model.encode(&mut enc, b as usize);
        }
        let comp = enc.finish();
        let mut model = AdaptiveModel::new(256);
        let mut dec = DualRangeDecoder::new(&comp).unwrap();
        for &b in &data {
            prop_assert_eq!(model.decode(&mut dec).unwrap(), b as usize);
        }
        // Any proper prefix: frame rejection, or a decode error on the
        // starved lane. Symbols decoded before the error only ever consumed
        // genuine bytes, so they must still be the originals; a full decode
        // is possible only for cuts inside the two 8-byte flush tails.
        let cut = (comp.len().saturating_sub(1)) * cut_frac as usize / 100;
        if let Ok(mut dec) = DualRangeDecoder::new(&comp[..cut]) {
            let mut model = AdaptiveModel::new(256);
            let mut completed = true;
            for &b in &data {
                match model.decode(&mut dec) {
                    Err(_) => {
                        completed = false;
                        break;
                    }
                    Ok(sym) => {
                        prop_assert_eq!(sym, b as usize, "truncated stream decoded wrong symbol");
                    }
                }
            }
            prop_assert!(
                !completed || cut + 16 >= comp.len(),
                "early cut at {cut}/{} decoded fully",
                comp.len(),
            );
        }
    }

    #[test]
    fn dual_arbitrary_bytes_never_panic(bytes in arb_bytes(300), n in 0usize..512) {
        if let Ok(mut dec) = DualRangeDecoder::new(&bytes) {
            let mut model = AdaptiveModel::new(64);
            for _ in 0..n {
                if model.decode(&mut dec).is_err() {
                    break;
                }
            }
        }
    }

    // ---- wide (four-lane) range coder ------------------------------------
    #[test]
    fn wide_roundtrip_and_truncation(data in arb_bytes(500), cut_frac in 0u32..100) {
        let mut model = AdaptiveModel::new(256);
        let mut enc = WideRangeEncoder::new();
        for &b in &data {
            model.encode(&mut enc, b as usize);
        }
        let comp = enc.finish();
        let mut model = AdaptiveModel::new(256);
        let mut dec = WideRangeDecoder::new(&comp).unwrap();
        for &b in &data {
            prop_assert_eq!(model.decode(&mut dec).unwrap(), b as usize);
        }
        // Same contract as the dual coder, with four 8-byte flush tails:
        // a proper prefix is rejected at the frame, errors on a starved
        // lane, or — only for cuts inside the 32 tail bytes — still decodes
        // every symbol exactly.
        let cut = (comp.len().saturating_sub(1)) * cut_frac as usize / 100;
        if let Ok(mut dec) = WideRangeDecoder::new(&comp[..cut]) {
            let mut model = AdaptiveModel::new(256);
            let mut completed = true;
            for &b in &data {
                match model.decode(&mut dec) {
                    Err(_) => {
                        completed = false;
                        break;
                    }
                    Ok(sym) => {
                        prop_assert_eq!(sym, b as usize, "truncated stream decoded wrong symbol");
                    }
                }
            }
            prop_assert!(
                !completed || cut + 32 >= comp.len(),
                "early cut at {cut}/{} decoded fully",
                comp.len(),
            );
        }
    }

    #[test]
    fn wide_arbitrary_bytes_never_panic(bytes in arb_bytes(300), n in 0usize..512) {
        if let Ok(mut dec) = WideRangeDecoder::new(&bytes) {
            let mut model = AdaptiveModel::new(64);
            for _ in 0..n {
                if model.decode(&mut dec).is_err() {
                    break;
                }
            }
        }
    }

    #[test]
    fn wide_bit_flips_never_panic(data in arb_bytes(200), flip in any::<u64>()) {
        let mut model = AdaptiveModel::new(256);
        let mut enc = WideRangeEncoder::new();
        for &b in &data {
            model.encode(&mut enc, b as usize);
        }
        let mut comp = enc.finish();
        if !comp.is_empty() {
            let idx = (flip as usize) % comp.len();
            comp[idx] ^= 1 << ((flip >> 32) % 8) as u8;
        }
        if let Ok(mut dec) = WideRangeDecoder::new(&comp) {
            let mut model = AdaptiveModel::new(256);
            for _ in &data {
                if model.decode(&mut dec).is_err() {
                    break;
                }
            }
        }
    }

    // ---- intseq ----------------------------------------------------------
    #[test]
    fn intseq_roundtrip_all_variants(vals in arb_ints()) {
        let mut buf = Vec::new();
        intseq::compress_ints_rc(&mut buf, &vals);
        intseq::compress_ints_deflate(&mut buf, &vals);
        intseq::compress_ints_delta_rc(&mut buf, &vals);
        intseq::compress_ints_rc_wide(&mut buf, &vals);
        intseq::compress_ints_delta_rc_wide(&mut buf, &vals);
        let mut r = ByteReader::new(&buf);
        prop_assert_eq!(intseq::decompress_ints_rc(&mut r).unwrap(), vals.clone());
        prop_assert_eq!(intseq::decompress_ints_deflate(&mut r).unwrap(), vals.clone());
        prop_assert_eq!(intseq::decompress_ints_delta_rc(&mut r).unwrap(), vals.clone());
        prop_assert_eq!(intseq::decompress_ints_rc_wide(&mut r).unwrap(), vals.clone());
        prop_assert_eq!(intseq::decompress_ints_delta_rc_wide(&mut r).unwrap(), vals.clone());
        prop_assert!(r.is_empty());
    }

    #[test]
    fn intseq_symbols_roundtrip(syms in proptest::collection::vec(any::<u8>(), 0..300)) {
        let syms: Vec<u8> = syms.into_iter().map(|s| s % 16).collect();
        let mut buf = Vec::new();
        intseq::compress_symbols_rc(&mut buf, &syms, 16);
        intseq::compress_symbols_rc_wide(&mut buf, &syms, 16);
        let mut r = ByteReader::new(&buf);
        prop_assert_eq!(intseq::decompress_symbols_rc(&mut r).unwrap(), syms.clone());
        prop_assert_eq!(intseq::decompress_symbols_rc_wide(&mut r).unwrap(), syms);
    }

    #[test]
    fn intseq_arbitrary_bytes_never_panic(bytes in arb_bytes(300)) {
        let _ = intseq::decompress_ints_rc(&mut ByteReader::new(&bytes));
        let _ = intseq::decompress_ints_deflate(&mut ByteReader::new(&bytes));
        let _ = intseq::decompress_ints_delta_rc(&mut ByteReader::new(&bytes));
        let _ = intseq::decompress_symbols_rc(&mut ByteReader::new(&bytes));
        let _ = intseq::decompress_ints_rc_wide(&mut ByteReader::new(&bytes));
        let _ = intseq::decompress_ints_delta_rc_wide(&mut ByteReader::new(&bytes));
        let _ = intseq::decompress_symbols_rc_wide(&mut ByteReader::new(&bytes));
    }

    // ---- bitpack / FOR ---------------------------------------------------
    #[test]
    fn bitpack_and_for_roundtrip(vals in arb_ints()) {
        prop_assert_eq!(bitpack_decode(&bitpack_encode(&vals)).unwrap(), vals.clone());
        prop_assert_eq!(for_decode(&for_encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn bitpack_arbitrary_bytes_never_panic(bytes in arb_bytes(300)) {
        let _ = bitpack_decode(&bytes);
        let _ = for_decode(&bytes);
    }

    // ---- deflate composite ----------------------------------------------
    #[test]
    fn deflate_roundtrip(data in arb_bytes(800)) {
        let comp = deflate_compress(&data);
        prop_assert_eq!(deflate_decompress(&comp).unwrap(), data);
    }

    #[test]
    fn deflate_arbitrary_bytes_never_panic(bytes in arb_bytes(400)) {
        let _ = deflate_decompress(&bytes);
    }
}
