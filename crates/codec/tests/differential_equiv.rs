//! Differential equivalence: the fused-Fenwick hot-path kernels must be
//! bit-for-bit interchangeable with the straightforward implementations they
//! replaced.
//!
//! The `reference` module below is a deliberately naive transliteration of
//! the pre-optimization coder: three separate Fenwick traversals per symbol
//! (`cum`, `freq`, `find`), an allocate-and-rebuild `rescale`, a plain
//! division per `encode`/`decode` call, and a `ContextModel` that banks whole
//! `AdaptiveModel`s. Property tests drive both implementations with the same
//! random symbol streams and assert identical bytes out of the encoders and
//! identical symbols out of the decoders — including streams long enough to
//! cross the `MAX_TOTAL` rescale boundary several times.

use dbgc_codec::{AdaptiveModel, BitReader, BitWriter, ContextModel, RangeDecoder, RangeEncoder};
use dbgc_codec::{WideRangeDecoder, WideRangeEncoder};
use proptest::prelude::*;

/// Naive reference implementations (see module docs). Kept self-contained so
/// future kernel changes cannot silently "optimize" the oracle too.
mod reference {
    const INCREMENT: u64 = 32;
    const MAX_TOTAL: u64 = 1 << 16;
    const TOP: u64 = 1 << 56;
    const BOT: u64 = 1 << 48;

    pub struct RefEncoder {
        low: u64,
        range: u64,
        out: Vec<u8>,
    }

    impl RefEncoder {
        pub fn new() -> Self {
            RefEncoder { low: 0, range: u64::MAX, out: Vec::new() }
        }

        pub fn encode(&mut self, cum: u64, freq: u64, total: u64) {
            let r = self.range / total;
            self.low += r * cum;
            self.range = if cum + freq == total { self.range - r * cum } else { r * freq };
            loop {
                if (self.low ^ (self.low.wrapping_add(self.range))) < TOP {
                } else if self.range < BOT {
                    self.range = self.low.wrapping_neg() & (BOT - 1);
                } else {
                    break;
                }
                self.out.push((self.low >> 56) as u8);
                self.low <<= 8;
                self.range <<= 8;
            }
        }

        pub fn finish(mut self) -> Vec<u8> {
            for _ in 0..8 {
                self.out.push((self.low >> 56) as u8);
                self.low <<= 8;
            }
            self.out
        }
    }

    pub struct RefDecoder<'a> {
        low: u64,
        range: u64,
        code: u64,
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> RefDecoder<'a> {
        pub fn new(buf: &'a [u8]) -> Self {
            let mut d = RefDecoder { low: 0, range: u64::MAX, code: 0, buf, pos: 0 };
            for _ in 0..8 {
                d.code = (d.code << 8) | d.next_byte();
            }
            d
        }

        fn next_byte(&mut self) -> u64 {
            let b = self.buf.get(self.pos).copied().unwrap_or(0);
            self.pos += 1;
            b as u64
        }

        pub fn decode_freq(&mut self, total: u64) -> u64 {
            let r = self.range / total;
            (self.code.wrapping_sub(self.low) / r).min(total - 1)
        }

        pub fn decode(&mut self, cum: u64, freq: u64, total: u64) {
            let r = self.range / total;
            self.low += r * cum;
            self.range = if cum + freq == total { self.range - r * cum } else { r * freq };
            loop {
                if (self.low ^ (self.low.wrapping_add(self.range))) < TOP {
                } else if self.range < BOT {
                    self.range = self.low.wrapping_neg() & (BOT - 1);
                } else {
                    break;
                }
                self.code = (self.code << 8) | self.next_byte();
                self.low <<= 8;
                self.range <<= 8;
            }
        }
    }

    /// Order-0 adaptive model with one Fenwick traversal per query.
    pub struct RefModel {
        tree: Vec<u64>,
        n: usize,
        total: u64,
    }

    impl RefModel {
        pub fn new(alphabet: usize) -> Self {
            let mut m = RefModel { tree: vec![0; alphabet + 1], n: alphabet, total: 0 };
            for s in 0..alphabet {
                m.add(s, 1);
            }
            m
        }

        fn add(&mut self, sym: usize, delta: u64) {
            let mut i = sym + 1;
            while i <= self.n {
                self.tree[i] += delta;
                i += i & i.wrapping_neg();
            }
            self.total += delta;
        }

        fn cum(&self, sym: usize) -> u64 {
            let mut i = sym;
            let mut s = 0;
            while i > 0 {
                s += self.tree[i];
                i -= i & i.wrapping_neg();
            }
            s
        }

        fn freq(&self, sym: usize) -> u64 {
            self.cum(sym + 1) - self.cum(sym)
        }

        fn find(&self, slot: u64) -> usize {
            let mut idx = 0usize;
            let mut rem = slot;
            let mut mask = self.n.next_power_of_two();
            while mask > 0 {
                let next = idx + mask;
                if next <= self.n && self.tree[next] <= rem {
                    rem -= self.tree[next];
                    idx = next;
                }
                mask >>= 1;
            }
            idx
        }

        fn update(&mut self, sym: usize) {
            self.add(sym, INCREMENT);
            if self.total >= MAX_TOTAL {
                let freqs: Vec<u64> =
                    (0..self.n).map(|s| self.freq(s).div_ceil(2).max(1)).collect();
                self.tree.iter_mut().for_each(|v| *v = 0);
                self.total = 0;
                for (s, f) in freqs.into_iter().enumerate() {
                    self.add(s, f);
                }
            }
        }

        pub fn encode(&mut self, enc: &mut RefEncoder, sym: usize) {
            enc.encode(self.cum(sym), self.freq(sym), self.total);
            self.update(sym);
        }

        pub fn decode(&mut self, dec: &mut RefDecoder<'_>) -> usize {
            let slot = dec.decode_freq(self.total);
            let sym = self.find(slot);
            assert!(sym < self.n, "reference decode went out of range");
            dec.decode(self.cum(sym), self.freq(sym), self.total);
            self.update(sym);
            sym
        }
    }

    /// Bit-at-a-time writer: the pre-optimization `write_bits` loop.
    #[derive(Default)]
    pub struct NaiveBitWriter {
        buf: Vec<u8>,
        cur: u8,
        nbits: u32,
    }

    impl NaiveBitWriter {
        pub fn write_bit(&mut self, bit: bool) {
            self.cur = (self.cur << 1) | bit as u8;
            self.nbits += 1;
            if self.nbits == 8 {
                self.buf.push(self.cur);
                self.cur = 0;
                self.nbits = 0;
            }
        }

        pub fn write_bits(&mut self, value: u64, n: u32) {
            for i in (0..n).rev() {
                self.write_bit((value >> i) & 1 != 0);
            }
        }

        pub fn finish(mut self) -> Vec<u8> {
            if self.nbits > 0 {
                self.buf.push(self.cur << (8 - self.nbits));
            }
            self.buf
        }
    }

    /// Bit-at-a-time reader: the pre-optimization `read_bits` loop.
    pub struct NaiveBitReader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> NaiveBitReader<'a> {
        pub fn new(buf: &'a [u8]) -> Self {
            NaiveBitReader { buf, pos: 0 }
        }

        pub fn read_bit(&mut self) -> Option<bool> {
            let byte = self.pos / 8;
            if byte >= self.buf.len() {
                return None;
            }
            let bit = (self.buf[byte] >> (7 - (self.pos % 8))) & 1;
            self.pos += 1;
            Some(bit != 0)
        }

        pub fn read_bits(&mut self, n: u32) -> Option<u64> {
            let mut v = 0u64;
            for _ in 0..n {
                v = (v << 1) | self.read_bit()? as u64;
            }
            Some(v)
        }
    }

    /// Context family as a bank of whole models (the pre-arena layout).
    pub struct RefContextModel {
        models: Vec<Option<RefModel>>,
        alphabet: usize,
    }

    impl RefContextModel {
        pub fn new(contexts: usize, alphabet: usize) -> Self {
            let mut models = Vec::new();
            models.resize_with(contexts, || None);
            RefContextModel { models, alphabet }
        }

        fn model(&mut self, ctx: usize) -> &mut RefModel {
            self.models[ctx].get_or_insert_with(|| RefModel::new(self.alphabet))
        }

        pub fn encode(&mut self, enc: &mut RefEncoder, ctx: usize, sym: usize) {
            self.model(ctx).encode(enc, sym);
        }

        pub fn decode(&mut self, dec: &mut RefDecoder<'_>, ctx: usize) -> usize {
            self.model(ctx).decode(dec)
        }
    }
}

/// Symbol streams biased toward skew (realistic for residual coding) with
/// enough length available to cross rescale boundaries.
fn arb_symbols(alphabet: usize, max_len: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(
        (any::<u32>(), any::<bool>()).prop_map(move |(raw, skew)| {
            let span = if skew { alphabet.div_ceil(4) } else { alphabet };
            raw as usize % span.max(1)
        }),
        0..max_len,
    )
}

fn encode_both(alphabet: usize, syms: &[usize]) -> (Vec<u8>, Vec<u8>) {
    let mut opt_model = AdaptiveModel::new(alphabet);
    let mut opt_enc = RangeEncoder::new();
    let mut ref_model = reference::RefModel::new(alphabet);
    let mut ref_enc = reference::RefEncoder::new();
    for &s in syms {
        opt_model.encode(&mut opt_enc, s);
        ref_model.encode(&mut ref_enc, s);
    }
    (opt_enc.finish(), ref_enc.finish())
}

fn decode_both(alphabet: usize, bytes: &[u8], n: usize) -> (Vec<usize>, Vec<usize>) {
    let mut opt_model = AdaptiveModel::new(alphabet);
    let mut opt_dec = RangeDecoder::new(bytes);
    let mut ref_model = reference::RefModel::new(alphabet);
    let mut ref_dec = reference::RefDecoder::new(bytes);
    let opt: Vec<usize> =
        (0..n).map(|_| opt_model.decode(&mut opt_dec).expect("valid stream")).collect();
    let re: Vec<usize> = (0..n).map(|_| ref_model.decode(&mut ref_dec)).collect();
    (opt, re)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Adaptive model + range coder: same bytes, same symbols.
    #[test]
    fn adaptive_model_is_byte_equivalent(
        alphabet in 1usize..48,
        syms in arb_symbols(48, 800),
    ) {
        let syms: Vec<usize> = syms.into_iter().map(|s| s % alphabet).collect();
        let (opt_bytes, ref_bytes) = encode_both(alphabet, &syms);
        prop_assert_eq!(&opt_bytes, &ref_bytes, "encoder bytes diverge");
        let (opt_syms, ref_syms) = decode_both(alphabet, &opt_bytes, syms.len());
        prop_assert_eq!(&opt_syms, &syms, "optimized decode mismatch");
        prop_assert_eq!(&ref_syms, &syms, "reference decode mismatch");
    }

    /// Long, narrow-alphabet streams cross the `MAX_TOTAL` rescale several
    /// times (total grows by 32 per symbol, rescaling near 2048 symbols);
    /// equivalence must hold through every in-place ceil-halve.
    #[test]
    fn rescale_boundaries_preserve_equivalence(
        alphabet in 1usize..9,
        syms in arb_symbols(8, 5000),
        pad in 4200usize..5000,
    ) {
        // Guarantee length past two rescales regardless of the drawn vector.
        let mut syms: Vec<usize> = syms.into_iter().map(|s| s % alphabet).collect();
        let n = syms.len();
        syms.extend((0..pad.saturating_sub(n)).map(|i| i % alphabet));
        let (opt_bytes, ref_bytes) = encode_both(alphabet, &syms);
        prop_assert_eq!(&opt_bytes, &ref_bytes, "bytes diverge across rescale");
        let (opt_syms, ref_syms) = decode_both(alphabet, &opt_bytes, syms.len());
        prop_assert_eq!(&opt_syms, &syms);
        prop_assert_eq!(&ref_syms, &syms);
    }

    /// Arena-backed `ContextModel` vs a bank of whole models, interleaving
    /// contexts within one stream.
    #[test]
    fn context_model_is_byte_equivalent(
        contexts in 1usize..6,
        alphabet in 1usize..17,
        stream in proptest::collection::vec((any::<u16>(), any::<u16>()), 0..1200),
    ) {
        let stream: Vec<(usize, usize)> = stream
            .into_iter()
            .map(|(c, s)| (c as usize % contexts, s as usize % alphabet))
            .collect();
        let mut opt_model = ContextModel::new(contexts, alphabet);
        let mut opt_enc = RangeEncoder::new();
        let mut ref_model = reference::RefContextModel::new(contexts, alphabet);
        let mut ref_enc = reference::RefEncoder::new();
        for &(c, s) in &stream {
            opt_model.encode(&mut opt_enc, c, s);
            ref_model.encode(&mut ref_enc, c, s);
        }
        let opt_bytes = opt_enc.finish();
        prop_assert_eq!(&opt_bytes, &ref_enc.finish(), "context encoder bytes diverge");

        let mut opt_model = ContextModel::new(contexts, alphabet);
        let mut opt_dec = RangeDecoder::new(&opt_bytes);
        let mut ref_model = reference::RefContextModel::new(contexts, alphabet);
        let mut ref_dec = reference::RefDecoder::new(&opt_bytes);
        for &(c, s) in &stream {
            prop_assert_eq!(opt_model.decode(&mut opt_dec, c).expect("valid stream"), s);
            prop_assert_eq!(ref_model.decode(&mut ref_dec, c), s);
        }
    }

    /// Multi-bit `BitWriter`/`BitReader` fast paths vs the bit-at-a-time
    /// loops they replaced: identical bytes out, identical values back, for
    /// arbitrary interleavings of single-bit and 0–64-bit fields (including
    /// the `nbits + n > 63` split path and reads straddling byte seams).
    #[test]
    fn bitio_is_byte_equivalent(
        ops in proptest::collection::vec((any::<u64>(), 0u32..=64, any::<bool>()), 0..300),
    ) {
        let mut fast = BitWriter::new();
        let mut naive = reference::NaiveBitWriter::default();
        for &(value, width, single) in &ops {
            if single {
                fast.write_bit(value & 1 != 0);
                naive.write_bit(value & 1 != 0);
            } else {
                fast.write_bits(value, width);
                naive.write_bits(value, width);
            }
        }
        let fast_bytes = fast.finish();
        prop_assert_eq!(&fast_bytes, &naive.finish(), "writer bytes diverge");

        let mut fast_r = BitReader::new(&fast_bytes);
        let mut naive_r = reference::NaiveBitReader::new(&fast_bytes);
        for &(value, width, single) in &ops {
            if single {
                prop_assert_eq!(fast_r.read_bit().unwrap() as u64, value & 1);
                let _ = naive_r.read_bit();
            } else {
                let got = fast_r.read_bits(width).unwrap();
                prop_assert_eq!(Some(got), naive_r.read_bits(width), "reader values diverge");
                let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
                prop_assert_eq!(got, value & mask, "read_bits lost payload bits");
            }
        }
    }

    /// The wide (four-lane) profile is a transport change only: driven by
    /// the same adaptive model, it must decode to exactly the symbols the
    /// narrow coder decodes, and cost no more than the extra flush tails
    /// plus the lane-length header.
    #[test]
    fn wide_profile_is_symbol_equivalent_to_narrow(
        alphabet in 1usize..48,
        syms in arb_symbols(48, 2000),
    ) {
        let syms: Vec<usize> = syms.into_iter().map(|s| s % alphabet).collect();

        let mut model = AdaptiveModel::new(alphabet);
        let mut enc = RangeEncoder::new();
        for &s in &syms {
            model.encode(&mut enc, s);
        }
        let narrow = enc.finish();

        let mut model = AdaptiveModel::new(alphabet);
        let mut enc = WideRangeEncoder::new();
        for &s in &syms {
            model.encode(&mut enc, s);
        }
        let wide = enc.finish();

        // 3 extra 8-byte flush tails + 3 uvarint lane lengths (≤5 bytes each
        // at these sizes); the model sees the identical update sequence, so
        // the coded payload itself matches the narrow coder's to within
        // per-lane renormalization slack.
        prop_assert!(
            wide.len() <= narrow.len() + 48,
            "wide overhead unbounded: {} vs {}",
            wide.len(),
            narrow.len(),
        );

        let mut model = AdaptiveModel::new(alphabet);
        let mut dec = RangeDecoder::new(&narrow);
        let narrow_syms: Vec<usize> =
            (0..syms.len()).map(|_| model.decode(&mut dec).expect("valid stream")).collect();

        let mut model = AdaptiveModel::new(alphabet);
        let mut dec = WideRangeDecoder::new(&wide).expect("valid frame");
        let wide_syms: Vec<usize> =
            (0..syms.len()).map(|_| model.decode(&mut dec).expect("valid stream")).collect();

        prop_assert_eq!(&narrow_syms, &syms, "narrow decode mismatch");
        prop_assert_eq!(&wide_syms, &syms, "wide decode diverges from narrow");
    }

    /// Batch bit I/O vs the bit-at-a-time loops: `write_bits_batch` must
    /// produce the bytes the naive per-value loop produces, and
    /// `read_bits_batch` must return the same values the naive reader does.
    #[test]
    fn bitio_batch_is_byte_equivalent(
        vals in proptest::collection::vec(any::<u64>(), 0..300),
        width in 0u32..=64,
    ) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width).wrapping_sub(1) };
        let vals: Vec<u64> = vals.into_iter().map(|v| v & mask).collect();

        let mut fast = BitWriter::new();
        fast.write_bits_batch(&vals, width);
        let fast_bytes = fast.finish();

        let mut naive = reference::NaiveBitWriter::default();
        for &v in &vals {
            naive.write_bits(v, width);
        }
        prop_assert_eq!(&fast_bytes, &naive.finish(), "batch writer bytes diverge");

        let mut out = vec![0u64; vals.len()];
        BitReader::new(&fast_bytes).read_bits_batch(width, &mut out).unwrap();
        prop_assert_eq!(&out, &vals, "batch reader values diverge");

        let mut naive_r = reference::NaiveBitReader::new(&fast_bytes);
        for &v in &vals {
            prop_assert_eq!(naive_r.read_bits(width), Some(v));
        }
    }

    /// A reader driven past end-of-buffer fails identically on both paths:
    /// `UnexpectedEof` from the fast reader exactly when the naive loop runs
    /// out of bits, with the cursor parked at end-of-buffer afterwards.
    #[test]
    fn bitio_eof_behavior_matches(
        payload in proptest::collection::vec(any::<u8>(), 0..20),
        widths in proptest::collection::vec(1u32..=64, 1..40),
    ) {
        let mut fast_r = BitReader::new(&payload);
        let mut naive_r = reference::NaiveBitReader::new(&payload);
        for &w in &widths {
            let fast = fast_r.read_bits(w);
            let naive = naive_r.read_bits(w);
            match (fast, naive) {
                (Ok(a), Some(b)) => prop_assert_eq!(a, b),
                (Err(_), None) => {
                    prop_assert_eq!(fast_r.remaining_bits(), 0, "cursor not at EOF after error");
                    break;
                }
                (f, n) => prop_assert!(false, "EOF divergence: fast {f:?} vs naive {n:?}"),
            }
        }
    }
}
