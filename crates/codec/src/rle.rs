//! Byte-oriented run-length encoding.
//!
//! Format: a sequence of `(varint run_length, byte)` pairs. Effective on the
//! long zero runs produced by delta-coded polar angles and on sparse symbol
//! streams; used as an optional pre-pass in [`crate::intseq`].

use crate::error::CodecError;
use crate::varint::{write_uvarint, ByteReader};

/// Run-length encode `data`.
pub fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < data.len() {
        let byte = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == byte {
            run += 1;
        }
        write_uvarint(&mut out, run as u64);
        out.push(byte);
        i += run;
    }
    out
}

/// Invert [`rle_encode`].
pub fn rle_decode(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut r = ByteReader::new(data);
    let mut out = Vec::new();
    while !r.is_empty() {
        let run = r.read_uvarint()?;
        if run > (1 << 40) {
            return Err(CodecError::CorruptStream("RLE run length unreasonably large"));
        }
        let byte = r.read_u8()?;
        out.resize(out.len() + run as usize, byte);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encodes_runs() {
        let data = [0u8, 0, 0, 0, 7, 7, 3];
        let enc = rle_encode(&data);
        assert_eq!(enc, vec![4, 0, 2, 7, 1, 3]);
        assert_eq!(rle_decode(&enc).unwrap(), data);
    }

    #[test]
    fn empty_input() {
        assert!(rle_encode(&[]).is_empty());
        assert_eq!(rle_decode(&[]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn long_run_compresses_well() {
        let data = vec![9u8; 100_000];
        let enc = rle_encode(&data);
        assert!(enc.len() <= 4);
        assert_eq!(rle_decode(&enc).unwrap(), data);
    }

    #[test]
    fn truncated_stream_is_eof() {
        let enc = rle_encode(&[1, 1, 2]);
        assert!(rle_decode(&enc[..enc.len() - 1]).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
            prop_assert_eq!(rle_decode(&rle_encode(&data)).unwrap(), data);
        }
    }
}
