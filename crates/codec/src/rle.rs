//! Byte-oriented run-length encoding.
//!
//! Format: a sequence of `(varint run_length, byte)` pairs. Effective on the
//! long zero runs produced by delta-coded polar angles and on sparse symbol
//! streams; used as an optional pre-pass in [`crate::intseq`].

use crate::error::CodecError;
use crate::varint::{write_uvarint, ByteReader};

/// Run-length encode `data`.
pub fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < data.len() {
        let byte = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == byte {
            run += 1;
        }
        write_uvarint(&mut out, run as u64);
        out.push(byte);
        i += run;
    }
    out
}

/// Default output cap for [`rle_decode`] (64 MiB). RLE has no structural
/// bound tying output size to input size — that is its whole point — so a
/// hostile two-byte pair could otherwise demand a terabyte-sized resize.
/// Callers that know their exact expected size should use
/// [`rle_decode_limited`] instead.
pub const RLE_MAX_OUTPUT: usize = 1 << 26;

/// Invert [`rle_encode`], refusing to produce more than [`RLE_MAX_OUTPUT`]
/// bytes.
pub fn rle_decode(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    rle_decode_limited(data, RLE_MAX_OUTPUT)
}

/// Invert [`rle_encode`], erroring before any allocation would push the
/// output past `max_len` bytes.
pub fn rle_decode_limited(data: &[u8], max_len: usize) -> Result<Vec<u8>, CodecError> {
    let mut r = ByteReader::new(data);
    let mut out = Vec::new();
    while !r.is_empty() {
        let run = r.read_uvarint()?;
        if run > (max_len - out.len()) as u64 {
            return Err(CodecError::CorruptStream("RLE output exceeds limit"));
        }
        let byte = r.read_u8()?;
        out.resize(out.len() + run as usize, byte);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encodes_runs() {
        let data = [0u8, 0, 0, 0, 7, 7, 3];
        let enc = rle_encode(&data);
        assert_eq!(enc, vec![4, 0, 2, 7, 1, 3]);
        assert_eq!(rle_decode(&enc).unwrap(), data);
    }

    #[test]
    fn empty_input() {
        assert!(rle_encode(&[]).is_empty());
        assert_eq!(rle_decode(&[]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn long_run_compresses_well() {
        let data = vec![9u8; 100_000];
        let enc = rle_encode(&data);
        assert!(enc.len() <= 4);
        assert_eq!(rle_decode(&enc).unwrap(), data);
    }

    #[test]
    fn truncated_stream_is_eof() {
        let enc = rle_encode(&[1, 1, 2]);
        assert!(rle_decode(&enc[..enc.len() - 1]).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
            prop_assert_eq!(rle_decode(&rle_encode(&data)).unwrap(), data);
        }
    }
}
