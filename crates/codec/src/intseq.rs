//! Self-delimiting integer-sequence codecs: the building blocks the DBGC
//! coordinate compressor composes (paper §3.5 steps 5–8).
//!
//! Every codec here frames its own output (`varint count | varint raw_len |
//! varint coded_len | payload`), so streams can be concatenated and split
//! without external bookkeeping.

use crate::deflate::{deflate_compress, deflate_decompress};
use crate::delta::{delta_decode_in_place, delta_encode};
use crate::dual::{RangeSink, RangeSource};
use crate::error::CodecError;
use crate::model::AdaptiveModel;
use crate::range::{RangeDecoder, RangeEncoder};
use crate::varint::{write_uvarint, ByteReader};
use crate::wide::{WideRangeDecoder, WideRangeEncoder};

/// Serialize signed integers as zigzag LEB128 bytes.
pub fn ints_to_bytes(vals: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 2);
    ints_to_bytes_into(&mut out, vals);
    out
}

/// [`ints_to_bytes`] into a caller-owned buffer (cleared first).
pub fn ints_to_bytes_into(out: &mut Vec<u8>, vals: &[i64]) {
    out.clear();
    for &v in vals {
        crate::varint::write_ivarint(out, v);
    }
}

/// Reusable scratch for the integer-sequence compressors, so per-frame hot
/// loops (one sparse group emits half a dozen frames) recycle the varint
/// staging buffer, the range coder's output buffer, and the two positional
/// byte models instead of reallocating them per call.
///
/// Purely an allocation cache: every codec resets the state it uses, so
/// output bytes are identical whether a scratch is fresh, reused, or the
/// internal default used by the plain entry points.
#[derive(Debug, Default)]
pub struct IntseqScratch {
    /// Varint-encoded staging bytes.
    varint: Vec<u8>,
    /// Range-coder output buffer, taken and returned around each frame.
    payload: Vec<u8>,
    /// Positional byte models (lead/continuation), reset per frame.
    lead: Option<AdaptiveModel>,
    cont: Option<AdaptiveModel>,
}

impl IntseqScratch {
    /// The lead/continuation byte models, created on first use and reset to
    /// their fresh state.
    fn byte_models(&mut self) -> (&mut AdaptiveModel, &mut AdaptiveModel) {
        let lead = self.lead.get_or_insert_with(|| AdaptiveModel::new(256));
        lead.reset();
        let cont = self.cont.get_or_insert_with(|| AdaptiveModel::new(256));
        cont.reset();
        (self.lead.as_mut().unwrap(), self.cont.as_mut().unwrap())
    }
}

/// Parse exactly `n` zigzag LEB128 integers from `r`.
pub fn bytes_to_ints(r: &mut ByteReader<'_>, n: usize) -> Result<Vec<i64>, CodecError> {
    // A varint needs at least one byte, so more values than remaining bytes
    // is an immediate error (and bounds the reservation below).
    if n > r.remaining() {
        return Err(CodecError::UnexpectedEof);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.read_ivarint()?);
    }
    Ok(out)
}

fn write_frame(out: &mut Vec<u8>, count: usize, raw_len: usize, payload: &[u8]) {
    write_uvarint(out, count as u64);
    write_uvarint(out, raw_len as u64);
    write_uvarint(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

/// Most symbols one range-coded payload byte can carry. The adaptive models
/// cap any symbol's probability at `(MAX_TOTAL - 255) / MAX_TOTAL`, so each
/// symbol costs at least ~0.0056 bits; 2048 symbols/byte is a safe ceiling.
/// Declared counts above `payload_len * RC_MAX_SYMBOLS_PER_BYTE` are
/// structurally impossible and rejected before any allocation.
const RC_MAX_SYMBOLS_PER_BYTE: usize = 2048;

fn rc_symbol_cap(payload_len: usize) -> usize {
    payload_len.saturating_mul(RC_MAX_SYMBOLS_PER_BYTE)
}

fn read_frame<'a>(r: &mut ByteReader<'a>) -> Result<(usize, usize, &'a [u8]), CodecError> {
    let count = r.read_uvarint()? as usize;
    let raw_len = r.read_uvarint()? as usize;
    let coded_len = r.read_uvarint()? as usize;
    let payload = r.read_slice(coded_len)?;
    Ok((count, raw_len, payload))
}

/// Compress integers with an adaptive range coder over their varint bytes —
/// the "arithmetic coding" path of the paper (steps 5, 7, 8).
///
/// Varint bytes are modelled positionally: the lead byte of each value and
/// its continuation bytes have very different distributions (small deltas
/// dominate the lead-byte model; continuation bytes only appear on the heavy
/// tail), so two adaptive models beat a single order-0 model.
pub fn compress_ints_rc(out: &mut Vec<u8>, vals: &[i64]) {
    compress_ints_rc_with(out, vals, &mut IntseqScratch::default());
}

/// [`compress_ints_rc`] with caller-owned [`IntseqScratch`]; byte-identical
/// output, no per-call allocations once the scratch is warm.
pub fn compress_ints_rc_with(out: &mut Vec<u8>, vals: &[i64], scratch: &mut IntseqScratch) {
    let mut bytes = std::mem::take(&mut scratch.varint);
    ints_to_bytes_into(&mut bytes, vals);
    let mut enc = RangeEncoder::with_buf(std::mem::take(&mut scratch.payload));
    let (lead, cont) = scratch.byte_models();
    code_varint_bytes(&mut enc, &bytes, lead, cont);
    let payload = enc.finish();
    write_frame(out, vals.len(), bytes.len(), &payload);
    scratch.varint = bytes;
    scratch.payload = payload;
}

/// Feed positionally-modelled varint bytes into any range-coder sink; shared
/// by the narrow and wide int-sequence encoders so the modelling (and hence
/// ratio) is identical across profiles.
fn code_varint_bytes<S: RangeSink>(
    enc: &mut S,
    bytes: &[u8],
    lead: &mut AdaptiveModel,
    cont: &mut AdaptiveModel,
) {
    let mut at_lead = true;
    for &b in bytes {
        if at_lead {
            lead.encode(enc, b as usize);
        } else {
            cont.encode(enc, b as usize);
        }
        // High bit set = the varint continues.
        at_lead = b & 0x80 == 0;
    }
}

/// Drain positionally-modelled varint bytes from any range-coder source
/// (mirror of [`code_varint_bytes`]).
fn decode_varint_bytes<S: RangeSource>(
    dec: &mut S,
    raw_len: usize,
    lead: &mut AdaptiveModel,
    cont: &mut AdaptiveModel,
) -> Result<Vec<u8>, CodecError> {
    // Growth past the initial reservation is paced by symbols actually
    // decoded (the range decoder errors at payload EOF), never by raw_len.
    let mut bytes = Vec::with_capacity(raw_len.min(1 << 16));
    let mut at_lead = true;
    for _ in 0..raw_len {
        let b = if at_lead { lead.decode(dec)? } else { cont.decode(dec)? } as u8;
        at_lead = b & 0x80 == 0;
        bytes.push(b);
    }
    Ok(bytes)
}

/// Invert [`compress_ints_rc`].
pub fn decompress_ints_rc(r: &mut ByteReader<'_>) -> Result<Vec<i64>, CodecError> {
    let (count, raw_len, payload) = read_frame(r)?;
    if count > raw_len {
        // Each varint value occupies at least one raw byte.
        return Err(CodecError::CorruptStream("rc int frame count exceeds raw length"));
    }
    if raw_len > rc_symbol_cap(payload.len()) {
        return Err(CodecError::CorruptStream("rc int frame raw length exceeds payload capacity"));
    }
    let mut lead = AdaptiveModel::new(256);
    let mut cont = AdaptiveModel::new(256);
    let mut dec = RangeDecoder::new(payload);
    let bytes = decode_varint_bytes(&mut dec, raw_len, &mut lead, &mut cont)?;
    let mut br = ByteReader::new(&bytes);
    let vals = bytes_to_ints(&mut br, count)?;
    if !br.is_empty() {
        return Err(CodecError::CorruptStream("trailing bytes in rc int frame"));
    }
    Ok(vals)
}

/// [`compress_ints_rc`] through the four-lane wide coder: identical frame
/// layout and modelling, but the payload is a [`WideRangeEncoder`] lane
/// frame. Only wide-profile (stream version 3) sections use this.
pub fn compress_ints_rc_wide(out: &mut Vec<u8>, vals: &[i64]) {
    compress_ints_rc_wide_with(out, vals, &mut IntseqScratch::default());
}

/// [`compress_ints_rc_wide`] with caller-owned [`IntseqScratch`] for the
/// varint staging buffer and byte models; byte-identical output.
pub fn compress_ints_rc_wide_with(out: &mut Vec<u8>, vals: &[i64], scratch: &mut IntseqScratch) {
    let mut bytes = std::mem::take(&mut scratch.varint);
    ints_to_bytes_into(&mut bytes, vals);
    let mut enc = WideRangeEncoder::new();
    let (lead, cont) = scratch.byte_models();
    code_varint_bytes(&mut enc, &bytes, lead, cont);
    let payload = enc.finish();
    write_frame(out, vals.len(), bytes.len(), &payload);
    scratch.varint = bytes;
}

/// Invert [`compress_ints_rc_wide`].
pub fn decompress_ints_rc_wide(r: &mut ByteReader<'_>) -> Result<Vec<i64>, CodecError> {
    let (count, raw_len, payload) = read_frame(r)?;
    if count > raw_len {
        return Err(CodecError::CorruptStream("rc int frame count exceeds raw length"));
    }
    if raw_len > rc_symbol_cap(payload.len()) {
        return Err(CodecError::CorruptStream("rc int frame raw length exceeds payload capacity"));
    }
    let mut lead = AdaptiveModel::new(256);
    let mut cont = AdaptiveModel::new(256);
    let mut dec = WideRangeDecoder::new(payload)?;
    let bytes = decode_varint_bytes(&mut dec, raw_len, &mut lead, &mut cont)?;
    let mut br = ByteReader::new(&bytes);
    let vals = bytes_to_ints(&mut br, count)?;
    if !br.is_empty() {
        return Err(CodecError::CorruptStream("trailing bytes in rc int frame"));
    }
    Ok(vals)
}

/// Compress integers with the deflate-like codec over their varint bytes —
/// the repeated-pattern path of the paper (step 6).
pub fn compress_ints_deflate(out: &mut Vec<u8>, vals: &[i64]) {
    compress_ints_deflate_with(out, vals, &mut IntseqScratch::default());
}

/// [`compress_ints_deflate`] with caller-owned [`IntseqScratch`] for the
/// varint staging buffer; byte-identical output.
pub fn compress_ints_deflate_with(out: &mut Vec<u8>, vals: &[i64], scratch: &mut IntseqScratch) {
    ints_to_bytes_into(&mut scratch.varint, vals);
    let payload = deflate_compress(&scratch.varint);
    write_frame(out, vals.len(), scratch.varint.len(), &payload);
}

/// Invert [`compress_ints_deflate`].
pub fn decompress_ints_deflate(r: &mut ByteReader<'_>) -> Result<Vec<i64>, CodecError> {
    let (count, raw_len, payload) = read_frame(r)?;
    if count > raw_len {
        return Err(CodecError::CorruptStream("deflate int frame count exceeds raw length"));
    }
    let bytes = deflate_decompress(payload)?;
    if bytes.len() != raw_len {
        return Err(CodecError::CorruptStream("deflate int frame length mismatch"));
    }
    let mut br = ByteReader::new(&bytes);
    let vals = bytes_to_ints(&mut br, count)?;
    if !br.is_empty() {
        return Err(CodecError::CorruptStream("trailing bytes in deflate int frame"));
    }
    Ok(vals)
}

/// Delta-encode then range-code: the classic "delta + entropy coding" combo.
pub fn compress_ints_delta_rc(out: &mut Vec<u8>, vals: &[i64]) {
    compress_ints_rc(out, &delta_encode(vals));
}

/// Invert [`compress_ints_delta_rc`].
pub fn decompress_ints_delta_rc(r: &mut ByteReader<'_>) -> Result<Vec<i64>, CodecError> {
    let mut vals = decompress_ints_rc(r)?;
    delta_decode_in_place(&mut vals);
    Ok(vals)
}

/// Delta-encode then wide-range-code (wide-profile counterpart of
/// [`compress_ints_delta_rc`]).
pub fn compress_ints_delta_rc_wide(out: &mut Vec<u8>, vals: &[i64]) {
    compress_ints_rc_wide(out, &delta_encode(vals));
}

/// Invert [`compress_ints_delta_rc_wide`].
pub fn decompress_ints_delta_rc_wide(r: &mut ByteReader<'_>) -> Result<Vec<i64>, CodecError> {
    let mut vals = decompress_ints_rc_wide(r)?;
    delta_decode_in_place(&mut vals);
    Ok(vals)
}

/// Compress a small-alphabet symbol stream (e.g. the reference-point choices
/// `L_ref`, alphabet 4) with a dedicated adaptive model.
pub fn compress_symbols_rc(out: &mut Vec<u8>, symbols: &[u8], alphabet: usize) {
    compress_symbols_rc_with(out, symbols, alphabet, &mut IntseqScratch::default());
}

/// [`compress_symbols_rc`] with caller-owned [`IntseqScratch`] for the range
/// coder's output buffer (the small-alphabet model itself is a few hundred
/// bytes and stays per-call); byte-identical output.
pub fn compress_symbols_rc_with(
    out: &mut Vec<u8>,
    symbols: &[u8],
    alphabet: usize,
    scratch: &mut IntseqScratch,
) {
    debug_assert!(symbols.iter().all(|&s| (s as usize) < alphabet));
    let mut model = AdaptiveModel::new(alphabet.max(1));
    let mut enc = RangeEncoder::with_buf(std::mem::take(&mut scratch.payload));
    for &s in symbols {
        model.encode(&mut enc, s as usize);
    }
    let payload = enc.finish();
    write_frame(out, symbols.len(), alphabet, &payload);
    scratch.payload = payload;
}

/// Invert [`compress_symbols_rc`].
pub fn decompress_symbols_rc(r: &mut ByteReader<'_>) -> Result<Vec<u8>, CodecError> {
    let (count, alphabet, payload) = read_frame(r)?;
    if alphabet == 0 || alphabet > 256 {
        return Err(CodecError::CorruptStream("bad symbol alphabet"));
    }
    if count > rc_symbol_cap(payload.len()) {
        return Err(CodecError::CorruptStream("symbol frame count exceeds payload capacity"));
    }
    let mut model = AdaptiveModel::new(alphabet);
    let mut dec = RangeDecoder::new(payload);
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        out.push(model.decode(&mut dec)? as u8);
    }
    Ok(out)
}

/// [`compress_symbols_rc`] through the four-lane wide coder (wide-profile
/// sections only; identical frame layout).
pub fn compress_symbols_rc_wide(out: &mut Vec<u8>, symbols: &[u8], alphabet: usize) {
    debug_assert!(symbols.iter().all(|&s| (s as usize) < alphabet));
    let mut model = AdaptiveModel::new(alphabet.max(1));
    let mut enc = WideRangeEncoder::new();
    for &s in symbols {
        model.encode(&mut enc, s as usize);
    }
    let payload = enc.finish();
    write_frame(out, symbols.len(), alphabet, &payload);
}

/// Invert [`compress_symbols_rc_wide`].
pub fn decompress_symbols_rc_wide(r: &mut ByteReader<'_>) -> Result<Vec<u8>, CodecError> {
    let (count, alphabet, payload) = read_frame(r)?;
    if alphabet == 0 || alphabet > 256 {
        return Err(CodecError::CorruptStream("bad symbol alphabet"));
    }
    if count > rc_symbol_cap(payload.len()) {
        return Err(CodecError::CorruptStream("symbol frame count exceeds payload capacity"));
    }
    let mut model = AdaptiveModel::new(alphabet);
    let mut dec = WideRangeDecoder::new(payload)?;
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        out.push(model.decode(&mut dec)? as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rc_roundtrip() {
        let vals: Vec<i64> = (0..5000).map(|i| (i % 17) - 8).collect();
        let mut buf = Vec::new();
        compress_ints_rc(&mut buf, &vals);
        let mut r = ByteReader::new(&buf);
        assert_eq!(decompress_ints_rc(&mut r).unwrap(), vals);
        assert!(r.is_empty());
    }

    #[test]
    fn deflate_roundtrip() {
        let vals: Vec<i64> = (0..5000).map(|i| [5i64, 5, 6, 5, 4, 5][i % 6]).collect();
        let mut buf = Vec::new();
        compress_ints_deflate(&mut buf, &vals);
        let mut r = ByteReader::new(&buf);
        assert_eq!(decompress_ints_deflate(&mut r).unwrap(), vals);
    }

    #[test]
    fn delta_rc_compresses_ramp() {
        let vals: Vec<i64> = (0..10_000).map(|i| 1_000_000 + 3 * i).collect();
        let mut plain = Vec::new();
        compress_ints_rc(&mut plain, &vals);
        let mut delta = Vec::new();
        compress_ints_delta_rc(&mut delta, &vals);
        assert!(delta.len() < plain.len() / 2, "delta {} vs plain {}", delta.len(), plain.len());
        let mut r = ByteReader::new(&delta);
        assert_eq!(decompress_ints_delta_rc(&mut r).unwrap(), vals);
    }

    #[test]
    fn frames_concatenate() {
        let a = vec![1i64, 2, 3];
        let b = vec![-5i64; 100];
        let mut buf = Vec::new();
        compress_ints_rc(&mut buf, &a);
        compress_ints_deflate(&mut buf, &b);
        compress_ints_delta_rc(&mut buf, &a);
        let mut r = ByteReader::new(&buf);
        assert_eq!(decompress_ints_rc(&mut r).unwrap(), a);
        assert_eq!(decompress_ints_deflate(&mut r).unwrap(), b);
        assert_eq!(decompress_ints_delta_rc(&mut r).unwrap(), a);
        assert!(r.is_empty());
    }

    #[test]
    fn symbols_roundtrip() {
        let syms: Vec<u8> = (0..3000).map(|i| (i % 4) as u8).collect();
        let mut buf = Vec::new();
        compress_symbols_rc(&mut buf, &syms, 4);
        let mut r = ByteReader::new(&buf);
        assert_eq!(decompress_symbols_rc(&mut r).unwrap(), syms);
    }

    #[test]
    fn empty_sequences() {
        let mut buf = Vec::new();
        compress_ints_rc(&mut buf, &[]);
        compress_ints_deflate(&mut buf, &[]);
        compress_symbols_rc(&mut buf, &[], 4);
        let mut r = ByteReader::new(&buf);
        assert!(decompress_ints_rc(&mut r).unwrap().is_empty());
        assert!(decompress_ints_deflate(&mut r).unwrap().is_empty());
        assert!(decompress_symbols_rc(&mut r).unwrap().is_empty());
    }

    #[test]
    fn reused_scratch_is_byte_identical() {
        let seqs: Vec<Vec<i64>> =
            (0..4).map(|k| (0..2000i64).map(|i| (i * (k + 3)) % 97 - 48).collect()).collect();
        let syms: Vec<u8> = (0..500).map(|i| (i % 4) as u8).collect();
        let mut fresh = Vec::new();
        for vals in &seqs {
            compress_ints_rc(&mut fresh, vals);
            compress_ints_deflate(&mut fresh, vals);
        }
        compress_symbols_rc(&mut fresh, &syms, 4);
        let mut scratch = IntseqScratch::default();
        let mut reused = Vec::new();
        for vals in &seqs {
            compress_ints_rc_with(&mut reused, vals, &mut scratch);
            compress_ints_deflate_with(&mut reused, vals, &mut scratch);
        }
        compress_symbols_rc_with(&mut reused, &syms, 4, &mut scratch);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn wide_variants_roundtrip() {
        let vals: Vec<i64> = (0..5000).map(|i| (i % 17) - 8).collect();
        let syms: Vec<u8> = (0..3000).map(|i| (i % 4) as u8).collect();
        let mut buf = Vec::new();
        compress_ints_rc_wide(&mut buf, &vals);
        compress_ints_delta_rc_wide(&mut buf, &vals);
        compress_symbols_rc_wide(&mut buf, &syms, 4);
        let mut r = ByteReader::new(&buf);
        assert_eq!(decompress_ints_rc_wide(&mut r).unwrap(), vals);
        assert_eq!(decompress_ints_delta_rc_wide(&mut r).unwrap(), vals);
        assert_eq!(decompress_symbols_rc_wide(&mut r).unwrap(), syms);
        assert!(r.is_empty());
    }

    #[test]
    fn wide_ratio_tracks_narrow() {
        // Same models, same symbol order: the wide frame can only cost the
        // three extra flush tails plus lane-length varints.
        let vals: Vec<i64> = (0..20_000).map(|i| (i % 5) - 2).collect();
        let mut narrow = Vec::new();
        compress_ints_rc(&mut narrow, &vals);
        let mut wide = Vec::new();
        compress_ints_rc_wide(&mut wide, &vals);
        assert!(wide.len() <= narrow.len() + 64, "wide {} narrow {}", wide.len(), narrow.len());
    }

    #[test]
    fn wide_arbitrary_bytes_never_panic() {
        for n in 0..64usize {
            let bytes: Vec<u8> = (0..n as u32).map(|i| (i.wrapping_mul(193)) as u8).collect();
            let _ = decompress_ints_rc_wide(&mut ByteReader::new(&bytes));
            let _ = decompress_ints_delta_rc_wide(&mut ByteReader::new(&bytes));
            let _ = decompress_symbols_rc_wide(&mut ByteReader::new(&bytes));
        }
    }

    proptest! {
        #[test]
        fn rc_roundtrip_random(vals in proptest::collection::vec(any::<i64>(), 0..500)) {
            let mut buf = Vec::new();
            compress_ints_rc(&mut buf, &vals);
            let mut r = ByteReader::new(&buf);
            prop_assert_eq!(decompress_ints_rc(&mut r).unwrap(), vals);
        }

        #[test]
        fn deflate_roundtrip_random(vals in proptest::collection::vec(-1000i64..1000, 0..500)) {
            let mut buf = Vec::new();
            compress_ints_deflate(&mut buf, &vals);
            let mut r = ByteReader::new(&buf);
            prop_assert_eq!(decompress_ints_deflate(&mut r).unwrap(), vals);
        }
    }
}
