//! Interleaved four-lane range coding — the "wide" entropy profile.
//!
//! [`crate::dual`] breaks the decoder's serial interval-state chain in two;
//! this module widens the split to [`LANES`] (= 4) independent coder lanes.
//! Symbols are dealt round-robin — symbol `i` lands on lane `i % LANES` — so
//! while lane 0 is renormalizing, lanes 1–3 can issue their divides, which is
//! enough independent work to keep a modern out-of-order core's divider and
//! load ports busy (the layout interleaved rANS coders use, cf. RIDDLE /
//! ryg_rans).
//!
//! As with the dual coder, the *model* is updated in stream order by the
//! caller, so symbol probabilities — and compression ratio — are identical to
//! the single-lane coder; only the interval state is replicated. The cost is
//! three extra 8-byte flush tails plus the lane-length frame header.
//!
//! Framing: `uvarint len(lane 0) | uvarint len(lane 1) | uvarint len(lane 2)
//! | lane 0 bytes | lane 1 bytes | lane 2 bytes | lane 3 bytes` — the last
//! lane's length is implied by the frame end, exactly like the dual frame.
//!
//! Truncation behaviour mirrors the single-lane coder per lane: a starved
//! lane reads phantom zero bytes, trips its interval check, and surfaces
//! `CorruptStream`; no path panics or allocates beyond the input size.

use crate::error::CodecError;
use crate::range::{RangeDecoder, RangeEncoder};
use crate::varint::{write_uvarint, ByteReader};
use crate::{RangeSink, RangeSource};

/// Number of interleaved lanes in the wide profile.
pub const LANES: usize = 4;

/// How many interleaved interval states an entropy-coded substream uses.
///
/// The profile never changes symbol probabilities — models are updated in
/// stream order by the caller for every profile — so compression ratio is
/// identical up to a constant per-stream overhead (flush tails + lane
/// header). It does change the framing: both ends must agree, which is why
/// the stream header records the profile as a format version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EntropyProfile {
    /// One interval state ([`crate::range`]); the version-1 stream format.
    #[default]
    Narrow,
    /// Two interleaved lanes ([`crate::dual`]); stream version 2.
    Dual,
    /// Four interleaved lanes (this module); stream version 3.
    Wide,
}

/// Four-lane range encoder: symbols round-robin the lanes from lane 0.
#[derive(Debug, Default)]
pub struct WideRangeEncoder {
    lanes: [RangeEncoder; LANES],
    turn: usize,
}

impl WideRangeEncoder {
    /// A fresh encoder; the first symbol goes to lane 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode a symbol on the current lane and advance the turn.
    #[inline]
    pub fn encode(&mut self, cum: u64, freq: u64, total: u64) {
        self.lanes[self.turn].encode(cum, freq, total);
        self.turn = (self.turn + 1) % LANES;
    }

    /// Flush every lane and return the framed stream.
    pub fn finish(self) -> Vec<u8> {
        let bufs = self.lanes.map(RangeEncoder::finish);
        let total: usize = bufs.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total + 3 * 5);
        for lane in &bufs[..LANES - 1] {
            write_uvarint(&mut out, lane.len() as u64);
        }
        for lane in &bufs {
            out.extend_from_slice(lane);
        }
        out
    }
}

impl RangeSink for WideRangeEncoder {
    #[inline]
    fn put(&mut self, cum: u64, freq: u64, total: u64) {
        self.encode(cum, freq, total);
    }
}

/// Four-lane range decoder over a [`WideRangeEncoder`] frame.
#[derive(Debug)]
pub struct WideRangeDecoder<'a> {
    lanes: [RangeDecoder<'a>; LANES],
    turn: usize,
}

impl<'a> WideRangeDecoder<'a> {
    /// Parse the lane frame and start all four decoders.
    pub fn new(buf: &'a [u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(buf);
        let mut lens = [0usize; LANES - 1];
        for len in &mut lens {
            *len = r.read_uvarint()? as usize;
        }
        if !lens
            .iter()
            .try_fold(0usize, |acc, &l| acc.checked_add(l))
            .is_some_and(|sum| sum <= r.remaining())
        {
            return Err(CodecError::CorruptStream("wide-lane frame shorter than lane lengths"));
        }
        let mut slices = [[].as_slice(); LANES];
        for (slot, &len) in slices.iter_mut().zip(lens.iter()) {
            *slot = r.read_slice(len)?;
        }
        slices[LANES - 1] = r.read_slice(r.remaining())?;
        Ok(WideRangeDecoder { lanes: slices.map(RangeDecoder::new), turn: 0 })
    }

    /// Slot of the next symbol on the current lane.
    #[inline]
    pub fn decode_freq(&mut self, total: u64) -> Result<u64, CodecError> {
        self.lanes[self.turn].decode_freq(total)
    }

    /// Consume the symbol on the current lane and advance the turn.
    #[inline]
    pub fn decode(&mut self, cum: u64, freq: u64, total: u64) {
        self.lanes[self.turn].decode(cum, freq, total);
        self.turn = (self.turn + 1) % LANES;
    }
}

impl RangeSource for WideRangeDecoder<'_> {
    #[inline]
    fn peek_freq(&mut self, total: u64) -> Result<u64, CodecError> {
        self.decode_freq(total)
    }

    #[inline]
    fn consume(&mut self, cum: u64, freq: u64, total: u64) {
        self.decode(cum, freq, total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AdaptiveModel;

    #[test]
    fn wide_roundtrip_adaptive_bytes() {
        let data: Vec<u8> = (0..30_000u32).map(|i| (i.wrapping_mul(0x9E37) >> 9) as u8).collect();
        let mut model = AdaptiveModel::new(256);
        let mut enc = WideRangeEncoder::new();
        for &b in &data {
            model.encode(&mut enc, b as usize);
        }
        let buf = enc.finish();
        let mut model = AdaptiveModel::new(256);
        let mut dec = WideRangeDecoder::new(&buf).unwrap();
        for &b in &data {
            assert_eq!(model.decode(&mut dec).unwrap(), b as usize);
        }
    }

    #[test]
    fn wide_roundtrip_lengths_not_multiple_of_lanes() {
        // Uneven symbol counts leave the lanes at different depths; every
        // residue class mod LANES must still round-trip.
        for n in 0..9usize {
            let data: Vec<u8> = (0..n as u32).map(|i| (i * 37 % 11) as u8).collect();
            let mut model = AdaptiveModel::new(16);
            let mut enc = WideRangeEncoder::new();
            for &b in &data {
                model.encode(&mut enc, b as usize);
            }
            let buf = enc.finish();
            let mut model = AdaptiveModel::new(16);
            let mut dec = WideRangeDecoder::new(&buf).unwrap();
            for &b in &data {
                assert_eq!(model.decode(&mut dec).unwrap(), b as usize, "n = {n}");
            }
        }
    }

    #[test]
    fn wide_empty_stream() {
        let buf = WideRangeEncoder::new().finish();
        // All four lanes flush their 8-byte tails even with no symbols.
        assert_eq!(buf.len(), 3 + 32);
        assert!(WideRangeDecoder::new(&buf).is_ok());
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let mut model = AdaptiveModel::new(16);
        let mut enc = WideRangeEncoder::new();
        for i in 0..400 {
            model.encode(&mut enc, i % 16);
        }
        let buf = enc.finish();
        // A frame whose declared lanes exceed the payload is corrupt.
        assert!(WideRangeDecoder::new(&buf[..2]).is_err());
        // Cutting the tail starves the last lane: decode must error, not loop.
        let mut model = AdaptiveModel::new(16);
        let mut dec = WideRangeDecoder::new(&buf[..buf.len() - 20]).unwrap();
        let mut failed = false;
        for _ in 0..400 {
            if model.decode(&mut dec).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "truncated lane must surface an error");
    }

    #[test]
    fn declared_lane_lengths_cannot_overflow() {
        // Three huge uvarint lane lengths whose sum wraps usize must be
        // rejected by the checked sum, not wrap into a "valid" frame.
        let mut buf = Vec::new();
        for _ in 0..3 {
            write_uvarint(&mut buf, u64::MAX / 2);
        }
        buf.extend_from_slice(&[0u8; 64]);
        assert!(WideRangeDecoder::new(&buf).is_err());
    }

    #[test]
    fn compression_matches_single_lane_closely() {
        // Replicating the interval state costs three extra flush tails + the
        // frame header, not ratio: the shared model sees the same sequence.
        let data: Vec<u8> = (0..40_000).map(|i| u8::from(i % 19 == 0)).collect();
        let single = crate::range::rc_compress_bytes(&data);
        let mut model = AdaptiveModel::new(256);
        let mut enc = WideRangeEncoder::new();
        for &b in &data {
            model.encode(&mut enc, b as usize);
        }
        let wide = enc.finish();
        assert!(wide.len() <= single.len() + 64, "wide {} vs single {}", wide.len(), single.len());
    }
}
