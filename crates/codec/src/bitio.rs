//! MSB-first bit-level I/O over byte buffers.

use crate::error::CodecError;

/// Writes bits MSB-first into a growable byte buffer.
///
/// Bits accumulate in a u64 so a multi-bit write is one shift/or plus at
/// most eight byte pushes, instead of a per-bit loop.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Pending bits: the low `nbits` bits of `acc`, MSB-first. Bits above
    /// `nbits` are stale and masked out on flush. `nbits < 8` between calls.
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Write a single bit (any nonzero `bit` writes 1).
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | bit as u64;
        self.nbits += 1;
        if self.nbits == 8 {
            self.buf.push(self.acc as u8);
            self.nbits = 0;
        }
    }

    /// Write the low `n` bits of `value`, MSB first. `n <= 64`.
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        if self.nbits + n > 63 {
            // Rare: the field cannot join the pending bits in one u64.
            // Split MSB-half first; each half is <= 32 bits and fits.
            let lo = n / 2;
            self.write_bits(value >> lo, n - lo);
            self.write_bits(value, lo);
            return;
        }
        self.acc = (self.acc << n) | (value & ((1u64 << n) - 1));
        self.nbits += n;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.buf.push((self.acc >> self.nbits) as u8);
        }
    }

    /// Write a run of same-width fields (`write_bits(v, n)` for each `v`),
    /// keeping the accumulator in registers across the whole run.
    ///
    /// Byte-identical to the per-value calls — between values the pending
    /// count stays below 8 bits, so for `n <= 56` the split path of
    /// [`BitWriter::write_bits`] can never trigger and one fused shift/flush
    /// loop covers the batch. Wider fields fall back to the per-value path.
    pub fn write_bits_batch(&mut self, vals: &[u64], n: u32) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        if n > 56 {
            for &v in vals {
                self.write_bits(v, n);
            }
            return;
        }
        let mask = (1u64 << n) - 1;
        let mut acc = self.acc;
        let mut nbits = self.nbits;
        self.buf.reserve(vals.len() * (n as usize / 8 + 1));
        for &v in vals {
            acc = (acc << n) | (v & mask);
            nbits += n;
            while nbits >= 8 {
                nbits -= 8;
                self.buf.push((acc >> nbits) as u8);
            }
        }
        self.acc = acc;
        self.nbits = nbits;
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }

    /// Pad with zero bits to a byte boundary and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.buf.push((self.acc << (8 - self.nbits)) as u8);
        }
        self.buf
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit position.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Read bits from the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Read a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        let byte = self.pos / 8;
        if byte >= self.buf.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let bit = (self.buf[byte] >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Ok(bit != 0)
    }

    /// Read `n` bits MSB-first into the low bits of the result. `n <= 64`.
    pub fn read_bits(&mut self, n: u32) -> Result<u64, CodecError> {
        debug_assert!(n <= 64);
        if n == 0 {
            return Ok(0);
        }
        let n = n as usize;
        let total = self.buf.len() * 8;
        if self.pos + n > total {
            // Match the bit-at-a-time loop: every available bit is consumed
            // before the failing read, leaving the cursor at end-of-buffer.
            self.pos = total;
            return Err(CodecError::UnexpectedEof);
        }
        let mut byte = self.pos / 8;
        let bit_off = self.pos % 8;
        self.pos += n;
        let mut need = n;
        let mut v = 0u64;
        if bit_off != 0 {
            let avail = 8 - bit_off;
            let chunk = (self.buf[byte] & (0xFF >> bit_off)) as u64;
            if need <= avail {
                return Ok(chunk >> (avail - need));
            }
            v = chunk;
            need -= avail;
            byte += 1;
        }
        while need >= 8 {
            v = (v << 8) | self.buf[byte] as u64;
            byte += 1;
            need -= 8;
        }
        if need > 0 {
            v = (v << need) | (self.buf[byte] >> (8 - need)) as u64;
        }
        Ok(v)
    }

    /// Read `dst.len()` same-width fields (`read_bits(n)` into each slot),
    /// with one bounds check for the whole batch and a register-resident
    /// byte-refill accumulator instead of per-call cursor arithmetic.
    ///
    /// Value-identical to the per-value calls. If the batch does not fit the
    /// remaining buffer, no value is produced and the cursor parks at
    /// end-of-buffer, matching the single-call EOF contract.
    pub fn read_bits_batch(&mut self, n: u32, dst: &mut [u64]) -> Result<(), CodecError> {
        debug_assert!(n <= 64);
        if n == 0 {
            dst.fill(0);
            return Ok(());
        }
        let need = n as usize * dst.len();
        let total = self.buf.len() * 8;
        if self.pos + need > total {
            self.pos = total;
            return Err(CodecError::UnexpectedEof);
        }
        if n > 56 {
            for d in dst {
                *d = self.read_bits(n)?;
            }
            return Ok(());
        }
        let mask = (1u64 << n) - 1;
        let mut byte = self.pos / 8;
        let mut acc = 0u64;
        let mut have = 0u32;
        let bit_off = (self.pos % 8) as u32;
        if bit_off != 0 {
            acc = (self.buf[byte] & (0xFF >> bit_off)) as u64;
            have = 8 - bit_off;
            byte += 1;
        }
        for d in dst.iter_mut() {
            // Stale consumed bits above `have` are masked off on extraction,
            // so the accumulator never needs clearing.
            while have < n {
                acc = (acc << 8) | self.buf[byte] as u64;
                byte += 1;
                have += 8;
            }
            have -= n;
            *d = (acc >> have) & mask;
        }
        self.pos += need;
        Ok(())
    }

    /// Bits remaining (including any padding in the final byte).
    pub fn remaining_bits(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }

    /// Current absolute bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_bits() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        let buf = w.finish();
        assert_eq!(buf.len(), 2);
        let mut r = BitReader::new(&buf);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn roundtrip_multibit_values() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(1, 1);
        w.write_bits(u64::MAX, 64);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
    }

    #[test]
    fn eof_is_an_error() {
        let buf = BitWriter::new().finish();
        assert!(buf.is_empty());
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bit(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn bit_len_tracks_writes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 13);
        assert_eq!(w.bit_len(), 13);
    }

    #[test]
    fn batch_writes_and_reads_match_per_value_calls() {
        for width in [0u32, 1, 3, 7, 8, 9, 13, 31, 32, 33, 56, 57, 63, 64] {
            let mask = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
            let vals: Vec<u64> =
                (0..200u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask).collect();
            let mut per_value = BitWriter::new();
            per_value.write_bits(0b101, 3); // unaligned start
            for &v in &vals {
                per_value.write_bits(v, width);
            }
            let mut batched = BitWriter::new();
            batched.write_bits(0b101, 3);
            batched.write_bits_batch(&vals, width);
            let expect = per_value.finish();
            assert_eq!(batched.finish(), expect, "width {width}");

            let mut r = BitReader::new(&expect);
            assert_eq!(r.read_bits(3).unwrap(), 0b101);
            let mut got = vec![0u64; vals.len()];
            r.read_bits_batch(width, &mut got).unwrap();
            assert_eq!(got, vals, "width {width}");
        }
    }

    #[test]
    fn batch_read_past_eof_errors_and_parks_cursor() {
        let mut w = BitWriter::new();
        w.write_bits(0xABCD, 16);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        let mut dst = [0u64; 3];
        assert_eq!(r.read_bits_batch(7, &mut dst), Err(CodecError::UnexpectedEof));
        assert_eq!(r.remaining_bits(), 0, "cursor must park at EOF");
    }

    #[test]
    fn zero_width_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0xFF, 0);
        w.write_bit(true);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert!(r.read_bit().unwrap());
    }
}
