//! MSB-first bit-level I/O over byte buffers.

use crate::error::CodecError;

/// Writes bits MSB-first into a growable byte buffer.
///
/// Bits accumulate in a u64 so a multi-bit write is one shift/or plus at
/// most eight byte pushes, instead of a per-bit loop.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Pending bits: the low `nbits` bits of `acc`, MSB-first. Bits above
    /// `nbits` are stale and masked out on flush. `nbits < 8` between calls.
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Write a single bit (any nonzero `bit` writes 1).
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | bit as u64;
        self.nbits += 1;
        if self.nbits == 8 {
            self.buf.push(self.acc as u8);
            self.nbits = 0;
        }
    }

    /// Write the low `n` bits of `value`, MSB first. `n <= 64`.
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        if self.nbits + n > 63 {
            // Rare: the field cannot join the pending bits in one u64.
            // Split MSB-half first; each half is <= 32 bits and fits.
            let lo = n / 2;
            self.write_bits(value >> lo, n - lo);
            self.write_bits(value, lo);
            return;
        }
        self.acc = (self.acc << n) | (value & ((1u64 << n) - 1));
        self.nbits += n;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.buf.push((self.acc >> self.nbits) as u8);
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }

    /// Pad with zero bits to a byte boundary and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.buf.push((self.acc << (8 - self.nbits)) as u8);
        }
        self.buf
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit position.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Read bits from the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Read a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        let byte = self.pos / 8;
        if byte >= self.buf.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let bit = (self.buf[byte] >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Ok(bit != 0)
    }

    /// Read `n` bits MSB-first into the low bits of the result. `n <= 64`.
    pub fn read_bits(&mut self, n: u32) -> Result<u64, CodecError> {
        debug_assert!(n <= 64);
        if n == 0 {
            return Ok(0);
        }
        let n = n as usize;
        let total = self.buf.len() * 8;
        if self.pos + n > total {
            // Match the bit-at-a-time loop: every available bit is consumed
            // before the failing read, leaving the cursor at end-of-buffer.
            self.pos = total;
            return Err(CodecError::UnexpectedEof);
        }
        let mut byte = self.pos / 8;
        let bit_off = self.pos % 8;
        self.pos += n;
        let mut need = n;
        let mut v = 0u64;
        if bit_off != 0 {
            let avail = 8 - bit_off;
            let chunk = (self.buf[byte] & (0xFF >> bit_off)) as u64;
            if need <= avail {
                return Ok(chunk >> (avail - need));
            }
            v = chunk;
            need -= avail;
            byte += 1;
        }
        while need >= 8 {
            v = (v << 8) | self.buf[byte] as u64;
            byte += 1;
            need -= 8;
        }
        if need > 0 {
            v = (v << need) | (self.buf[byte] >> (8 - need)) as u64;
        }
        Ok(v)
    }

    /// Bits remaining (including any padding in the final byte).
    pub fn remaining_bits(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }

    /// Current absolute bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_bits() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        let buf = w.finish();
        assert_eq!(buf.len(), 2);
        let mut r = BitReader::new(&buf);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn roundtrip_multibit_values() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(1, 1);
        w.write_bits(u64::MAX, 64);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
    }

    #[test]
    fn eof_is_an_error() {
        let buf = BitWriter::new().finish();
        assert!(buf.is_empty());
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bit(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn bit_len_tracks_writes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 13);
        assert_eq!(w.bit_len(), 13);
    }

    #[test]
    fn zero_width_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0xFF, 0);
        w.write_bit(true);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert!(r.read_bit().unwrap());
    }
}
