//! LEB128 varints and the zigzag mapping for signed integers.

use crate::error::CodecError;

/// Map a signed integer to an unsigned one so small magnitudes get small
/// codes: `0, -1, 1, -2, 2, … → 0, 1, 2, 3, 4, …`.
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append `v` as an LEB128 varint (7 bits per byte, high bit = continuation).
pub fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a signed integer as zigzag + LEB128.
pub fn write_ivarint(out: &mut Vec<u8>, v: i64) {
    write_uvarint(out, zigzag_encode(v));
}

/// A cursor over a byte slice with varint and fixed-width read helpers.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Read one byte.
    pub fn read_u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.pos).ok_or(CodecError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read an LEB128 varint.
    pub fn read_uvarint(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            if shift == 63 && byte > 1 {
                return Err(CodecError::VarintOverflow);
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(CodecError::VarintOverflow);
            }
        }
    }

    /// Read a zigzag LEB128 signed integer.
    pub fn read_ivarint(&mut self) -> Result<i64, CodecError> {
        Ok(zigzag_decode(self.read_uvarint()?))
    }

    /// Borrow the next `n` bytes and advance.
    pub fn read_slice(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.buf.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a little-endian `f64`.
    pub fn read_f64(&mut self) -> Result<f64, CodecError> {
        let s = self.read_slice(8)?;
        Ok(f64::from_le_bytes(s.try_into().expect("slice is 8 bytes")))
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the cursor has consumed the whole buffer.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }
}

/// Read one LEB128 varint from the front of `buf`, returning the value and
/// the number of bytes consumed.
pub fn read_uvarint(buf: &[u8]) -> Result<(u64, usize), CodecError> {
    let mut r = ByteReader::new(buf);
    let v = r.read_uvarint()?;
    Ok((v, r.position()))
}

/// Append `v` as little-endian f64 bytes.
pub fn write_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_small_values() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_encode(2), 4);
    }

    #[test]
    fn zigzag_roundtrip_extremes() {
        for v in [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn uvarint_roundtrip() {
        let values = [0u64, 1, 127, 128, 300, 16383, 16384, u32::MAX as u64, u64::MAX];
        let mut buf = Vec::new();
        for &v in &values {
            write_uvarint(&mut buf, v);
        }
        let mut r = ByteReader::new(&buf);
        for &v in &values {
            assert_eq!(r.read_uvarint().unwrap(), v);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn ivarint_roundtrip() {
        let values = [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX];
        let mut buf = Vec::new();
        for &v in &values {
            write_ivarint(&mut buf, v);
        }
        let mut r = ByteReader::new(&buf);
        for &v in &values {
            assert_eq!(r.read_ivarint().unwrap(), v);
        }
    }

    #[test]
    fn varint_sizes() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_uvarint(&mut buf, 128);
        assert_eq!(buf.len(), 2);
        buf.clear();
        write_uvarint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn truncated_varint_is_eof() {
        let buf = [0x80u8, 0x80];
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.read_uvarint(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn overflowing_varint_rejected() {
        // 11 continuation bytes can't fit in 64 bits.
        let buf = [0xFFu8; 11];
        let mut r = ByteReader::new(&buf);
        assert!(matches!(
            r.read_uvarint(),
            Err(CodecError::VarintOverflow) | Err(CodecError::UnexpectedEof)
        ));
    }

    #[test]
    fn f64_roundtrip() {
        let mut buf = Vec::new();
        write_f64(&mut buf, -123.456e7);
        write_f64(&mut buf, f64::INFINITY);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.read_f64().unwrap(), -123.456e7);
        assert_eq!(r.read_f64().unwrap(), f64::INFINITY);
    }

    #[test]
    fn slice_reader() {
        let buf = [1u8, 2, 3, 4, 5];
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.read_slice(2).unwrap(), &[1, 2]);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.read_u8().unwrap(), 3);
        assert!(r.read_slice(3).is_err());
    }
}
