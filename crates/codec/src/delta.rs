//! Delta encoding (paper Definition 2.3).
//!
//! Given `L = (v₁, …, vₙ)`, delta coding produces `ΔL = (v₁, Δv₂, …, Δvₙ)`
//! with `Δvₘ = vₘ − vₘ₋₁`. The first element is carried unchanged so the
//! transform is invertible without side information.
//!
//! Both directions route through the lane kernels in [`crate::simd`]: the
//! backward differences are fully data-parallel (four lanes per AVX2 step
//! when available), the prefix-sum inverse keeps its carry in a register on
//! the scalar path and uses the in-lane shift-add scan on the SIMD path.
//! Output is bit-identical across paths.

/// Delta-encode `values` into a new vector (first element unchanged).
pub fn delta_encode(values: &[i64]) -> Vec<i64> {
    let mut out = values.to_vec();
    delta_encode_in_place(&mut out);
    out
}

/// Delta-encode in place. Uses wrapping arithmetic so any `i64` input is
/// representable; the decoder wraps symmetrically.
pub fn delta_encode_in_place(values: &mut [i64]) {
    crate::simd::diff_in_place(values);
}

/// Invert [`delta_encode`].
pub fn delta_decode(deltas: &[i64]) -> Vec<i64> {
    let mut out = deltas.to_vec();
    delta_decode_in_place(&mut out);
    out
}

/// Invert [`delta_encode_in_place`].
pub fn delta_decode_in_place(deltas: &mut [i64]) {
    crate::simd::prefix_sum_in_place(deltas);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_sequence() {
        let v = [10i64, 12, 12, 9, 20];
        assert_eq!(delta_encode(&v), vec![10, 2, 0, -3, 11]);
        assert_eq!(delta_decode(&delta_encode(&v)), v);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(delta_encode(&[]), Vec::<i64>::new());
        assert_eq!(delta_encode(&[42]), vec![42]);
        assert_eq!(delta_decode(&[42]), vec![42]);
    }

    #[test]
    fn extremes_wrap_correctly() {
        let v = [i64::MIN, i64::MAX, 0, i64::MIN];
        assert_eq!(delta_decode(&delta_encode(&v)), v);
    }

    proptest! {
        #[test]
        fn roundtrip(v in proptest::collection::vec(any::<i64>(), 0..200)) {
            prop_assert_eq!(delta_decode(&delta_encode(&v)), v);
        }

        #[test]
        fn monotone_input_gives_nonnegative_deltas(
            mut v in proptest::collection::vec(0i64..1_000_000, 1..100)
        ) {
            v.sort_unstable();
            let d = delta_encode(&v);
            prop_assert!(d[1..].iter().all(|&x| x >= 0));
        }
    }
}
