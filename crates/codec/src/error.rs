//! Error type shared by all decoders in this crate.

use std::fmt;

/// A decoding failure. Encoders are infallible; decoders validate the input
/// stream and report structured errors instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the decoder finished.
    UnexpectedEof,
    /// A varint ran past its maximum width.
    VarintOverflow,
    /// A Huffman table in the stream is malformed (Kraft inequality violated,
    /// zero symbols, or over-long codes).
    InvalidHuffmanTable,
    /// An LZ77 back-reference points before the start of the output.
    /// An LZ77 back-reference points before the start of the output.
    InvalidBackReference {
        /// The back-reference distance.
        distance: usize,
        /// Output bytes produced so far.
        produced: usize,
    },
    /// A symbol outside the declared alphabet was decoded.
    /// A decoded symbol lies outside the declared alphabet.
    SymbolOutOfRange {
        /// The decoded symbol.
        symbol: usize,
        /// The declared alphabet size.
        alphabet: usize,
    },
    /// A declared length field is inconsistent with the payload.
    CorruptStream(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            CodecError::InvalidHuffmanTable => write!(f, "malformed Huffman table"),
            CodecError::InvalidBackReference { distance, produced } => write!(
                f,
                "LZ77 back-reference distance {distance} exceeds produced output {produced}"
            ),
            CodecError::SymbolOutOfRange { symbol, alphabet } => {
                write!(f, "symbol {symbol} out of range for alphabet of {alphabet}")
            }
            CodecError::CorruptStream(what) => write!(f, "corrupt stream: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}
