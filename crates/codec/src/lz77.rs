//! LZ77 \[61\] with hash-chain match search (zlib-style).
//!
//! Produces a token stream of literals and `(length, distance)`
//! back-references over a 32 KiB window; [`crate::deflate`] entropy-codes the
//! tokens.

/// Back-reference window (32 KiB, as in Deflate).
pub const WINDOW_SIZE: usize = 32 * 1024;
/// Shortest match worth a back-reference.
pub const MIN_MATCH: usize = 3;
/// Longest representable match (Deflate's limit).
pub const MAX_MATCH: usize = 258;
/// Bound on hash-chain traversal; trades a little ratio for a lot of speed.
const MAX_CHAIN: usize = 64;
const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A byte copied verbatim.
    Literal(u8),
    /// A copy of `len` bytes starting `dist` bytes back.
    /// A copy of `len` bytes starting `dist` bytes back.
    Match {
        /// Copy length in bytes (3-258).
        len: u16,
        /// Distance back into the output (1-32768).
        dist: u16,
    },
}

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from(data[i]) | u32::from(data[i + 1]) << 8 | u32::from(data[i + 2]) << 16;
    (v.wrapping_mul(0x9E3779B1) >> (32 - HASH_BITS)) as usize
}

/// Greedy LZ77 tokenization of `data`.
pub fn lz77_tokenize(data: &[u8]) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::new();
    if n < MIN_MATCH {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    // head[h] = most recent position with hash h; prev[i % WINDOW] = previous
    // position in the chain.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW_SIZE];
    let mut i = 0usize;

    let insert = |head: &mut [usize], prev: &mut [usize], data: &[u8], pos: usize| {
        if pos + MIN_MATCH <= data.len() {
            let h = hash3(data, pos);
            prev[pos % WINDOW_SIZE] = head[h];
            head[h] = pos;
        }
    };

    while i < n {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash3(data, i);
            let mut cand = head[h];
            let mut chain = 0;
            let max_len = (n - i).min(MAX_MATCH);
            while cand != usize::MAX && chain < MAX_CHAIN {
                let dist = i - cand;
                if dist > WINDOW_SIZE {
                    break;
                }
                // Quick reject on the byte past the current best.
                if best_len == 0 || data[cand + best_len] == data[i + best_len] {
                    let mut l = 0usize;
                    while l < max_len && data[cand + l] == data[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = dist;
                        if l == max_len {
                            break;
                        }
                    }
                }
                let next = prev[cand % WINDOW_SIZE];
                // Chains can alias across windows; ensure monotone decrease.
                if next >= cand {
                    break;
                }
                cand = next;
                chain += 1;
            }
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match { len: best_len as u16, dist: best_dist as u16 });
            // Insert all covered positions to keep chains dense.
            for p in i..i + best_len {
                insert(&mut head, &mut prev, data, p);
            }
            i += best_len;
        } else {
            tokens.push(Token::Literal(data[i]));
            insert(&mut head, &mut prev, data, i);
            i += 1;
        }
    }
    tokens
}

/// Expand tokens back into bytes.
pub fn lz77_reconstruct(tokens: &[Token]) -> Result<Vec<u8>, crate::CodecError> {
    let mut out = Vec::new();
    for &t in tokens {
        match t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                let len = len as usize;
                if dist == 0 || dist > out.len() {
                    return Err(crate::CodecError::InvalidBackReference {
                        distance: dist,
                        produced: out.len(),
                    });
                }
                let start = out.len() - dist;
                // Overlapping copies are defined byte-by-byte (run extension).
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(data: &[u8]) -> Vec<Token> {
        let tokens = lz77_tokenize(data);
        assert_eq!(lz77_reconstruct(&tokens).unwrap(), data);
        tokens
    }

    #[test]
    fn tiny_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn repeated_text_matches() {
        let data = b"abcabcabcabcabcabc";
        let tokens = roundtrip(data);
        assert!(tokens.len() < data.len(), "expected back-references: {tokens:?}");
    }

    #[test]
    fn run_extension_overlap() {
        // 'aaaa...' forces dist=1, len>1 overlapping copies.
        let data = vec![b'a'; 1000];
        let tokens = roundtrip(&data);
        assert!(tokens.len() <= 6, "run should collapse: {} tokens", tokens.len());
    }

    #[test]
    fn long_incompressible_input() {
        let data: Vec<u8> =
            (0..100_000u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn long_compressible_input() {
        let pattern = b"LiDAR point cloud geometry compression ";
        let data: Vec<u8> = pattern.iter().cycle().take(200_000).copied().collect();
        let tokens = roundtrip(&data);
        assert!(tokens.len() < data.len() / 20);
    }

    #[test]
    fn bad_backreference_rejected() {
        let tokens = [Token::Match { len: 5, dist: 10 }];
        assert!(lz77_reconstruct(&tokens).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_random(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
            roundtrip(&data);
        }

        #[test]
        fn roundtrip_low_entropy(data in proptest::collection::vec(0u8..4, 0..4000)) {
            roundtrip(&data);
        }
    }
}
