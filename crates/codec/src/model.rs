//! Adaptive frequency models driving the range coder.
//!
//! [`AdaptiveModel`] is an order-0 model over a fixed alphabet, backed by a
//! Fenwick (binary indexed) tree so both cumulative-frequency queries and
//! updates are `O(log n)`. [`ContextModel`] keys a family of independent
//! models by an integer context — this is how the Octree_i variant groups
//! nodes "by the occupancy code of their parent" and how the G-PCC-like coder
//! conditions on neighbour occupancy.
//!
//! The models sit on the per-symbol hot path of every range-coded stream, so
//! the Fenwick operations are fused: one descending traversal yields both
//! `cum(sym)` and `freq(sym)` (instead of three prefix-sum walks), the
//! decoder's lower-bound search carries `cum` out of the descent for free,
//! and `rescale` rebuilds the tree in place without allocating. The coded
//! bytes are identical to the naive formulation — only the traversal count
//! changes (see `DESIGN.md` §10).

use crate::dual::{RangeSink, RangeSource};
use crate::error::CodecError;

/// Frequency increment per observed symbol.
const INCREMENT: u64 = 32;
/// Rescale threshold; keeps totals far below `range::MAX_TOTAL` while letting
/// the model adapt to local statistics.
const MAX_TOTAL: u64 = 1 << 16;

// ---- Fenwick kernel ------------------------------------------------------
//
// Free functions over a raw tree slice (1-indexed, slot 0 unused, alphabet
// size `tree.len() - 1`) so the owned [`AdaptiveModel`] and the arena-backed
// [`ContextModel`] share one implementation.
//
// Nodes are stored as `u32`: every node holds at most the model total, which
// `MAX_TOTAL` keeps below `2^16 + INCREMENT`, so `u32` is exact while halving
// the tree's cache footprint (a 256-symbol table is 1 KiB instead of 2 KiB,
// and a 256-context family drops from ~526 KiB to ~263 KiB). Rescale packs
// two nodes per `u64` lane (see `fw_rescale`).

/// Reset `tree` to the all-ones frequency state in place: the node at `i`
/// covers `lowbit(i)` symbols of frequency 1, so it holds exactly `lowbit(i)`.
#[inline]
fn fw_init_uniform(tree: &mut [u32]) {
    for (i, node) in tree.iter_mut().enumerate() {
        *node = (i & i.wrapping_neg()) as u32;
    }
}

/// Add `delta` to `sym`'s frequency (ascending update chain).
#[inline]
fn fw_add(tree: &mut [u32], sym: usize, delta: u32) {
    let n = tree.len() - 1;
    let mut i = sym + 1;
    while i <= n {
        tree[i] += delta;
        i += i & i.wrapping_neg();
    }
}

/// Fused `(cum, freq)` of `sym` in a single descending traversal.
///
/// Uses `freq(sym) = tree[pos] - (cum(pos - 1) - cum(pos - lowbit(pos)))`
/// with `pos = sym + 1`: the chain of `pos - 1` passes through
/// `pos - lowbit(pos)`, so one walk serves both the frequency correction and
/// the cumulative sum.
#[inline]
fn fw_cum_freq(tree: &[u32], sym: usize) -> (u64, u64) {
    let pos = sym + 1;
    let mut freq = tree[pos];
    let stop = pos - (pos & pos.wrapping_neg());
    let mut cum = 0u32;
    let mut i = sym; // == pos - 1
    while i > stop {
        freq -= tree[i];
        cum += tree[i];
        i &= i - 1; // i -= lowbit(i)
    }
    while i > 0 {
        cum += tree[i];
        i &= i - 1;
    }
    (cum as u64, freq as u64)
}

/// Frequency of `sym` alone (short descending chain from `sym + 1`).
#[inline]
fn fw_freq(tree: &[u32], sym: usize) -> u64 {
    let pos = sym + 1;
    let mut freq = tree[pos];
    let stop = pos - (pos & pos.wrapping_neg());
    let mut i = pos - 1;
    while i > stop {
        freq -= tree[i];
        i &= i - 1;
    }
    freq as u64
}

/// Fenwick lower-bound search: the largest `sym` with `cum(sym) <= slot`,
/// returned together with that `cum` (carried out of the descent for free).
///
/// With every frequency `>= 1` and `slot < total` the result is always a
/// valid symbol; `sym == alphabet` signals a broken invariant (an
/// out-of-range slot) and must be surfaced by the caller, never clamped.
#[inline]
fn fw_find(tree: &[u32], slot: u64) -> (usize, u64) {
    let n = tree.len() - 1;
    let mut idx = 0usize;
    let mut rem = slot;
    let mut mask = n.next_power_of_two();
    while mask > 0 {
        let next = idx + mask;
        if next <= n && tree[next] as u64 <= rem {
            rem -= tree[next] as u64;
            idx = next;
        }
        mask >>= 1;
    }
    (idx, slot - rem)
}

/// Halve all frequencies in place (keeping them `>= 1`) and return the new
/// total. Allocation-free: the tree is unfolded to plain frequencies
/// (descending, so lower nodes are still in Fenwick form when read), halved,
/// and refolded (ascending).
fn fw_rescale(tree: &mut [u32]) -> u64 {
    let n = tree.len() - 1;
    for i in (1..=n).rev() {
        let lb = i & i.wrapping_neg();
        if lb > 1 {
            let stop = i - lb;
            let mut j = i - 1;
            while j > stop {
                tree[i] -= tree[j];
                j &= j - 1;
            }
        }
    }
    // Batch ceil-halve (`(x >> 1) + (x & 1)` per 32-bit lane) through the
    // vectorized kernel — u64 paired lanes on the scalar path, eight lanes
    // per AVX2 step when the `simd` feature detects support. Every frequency
    // is >= 1 on entry so the result stays >= 1 (the invariant the old
    // `.max(1)` guarded; a lane can only reach 0 from 0, which the all-ones
    // init and additive updates rule out).
    let total = crate::simd::halve_freqs(&mut tree[1..]);
    for i in 1..=n {
        let j = i + (i & i.wrapping_neg());
        if j <= n {
            tree[j] += tree[i];
        }
    }
    total
}

/// Encode one symbol against `(tree, total)` and adapt; returns the new total.
#[inline]
fn fw_encode_step<S: RangeSink>(tree: &mut [u32], total: u64, enc: &mut S, sym: usize) -> u64 {
    let (cum, freq) = fw_cum_freq(tree, sym);
    enc.put(cum, freq, total);
    fw_add(tree, sym, INCREMENT as u32);
    let total = total + INCREMENT;
    if total >= MAX_TOTAL {
        fw_rescale(tree)
    } else {
        total
    }
}

/// Decode one symbol against `(tree, total)` and adapt; returns
/// `(sym, new_total)`.
#[inline]
fn fw_decode_step<S: RangeSource>(
    tree: &mut [u32],
    total: u64,
    dec: &mut S,
) -> Result<(usize, u64), CodecError> {
    let n = tree.len() - 1;
    let slot = dec.peek_freq(total)?;
    let (sym, cum) = fw_find(tree, slot);
    if sym >= n {
        // The Fenwick search ran off the end of the alphabet: an
        // out-of-range slot that must surface, not decode the last symbol.
        return Err(CodecError::SymbolOutOfRange { symbol: sym, alphabet: n });
    }
    let freq = fw_freq(tree, sym);
    dec.consume(cum, freq, total);
    fw_add(tree, sym, INCREMENT as u32);
    let total = total + INCREMENT;
    let total = if total >= MAX_TOTAL { fw_rescale(tree) } else { total };
    Ok((sym, total))
}

/// An adaptive order-0 symbol model.
#[derive(Debug, Clone)]
pub struct AdaptiveModel {
    /// Fenwick tree over symbol frequencies, 1-indexed.
    tree: Vec<u32>,
    n: usize,
    total: u64,
}

impl AdaptiveModel {
    /// Model over `alphabet` symbols, all starting with frequency 1.
    pub fn new(alphabet: usize) -> Self {
        assert!(alphabet > 0, "alphabet must be non-empty");
        let mut tree = vec![0; alphabet + 1];
        fw_init_uniform(&mut tree);
        AdaptiveModel { tree, n: alphabet, total: alphabet as u64 }
    }

    /// Alphabet size this model was built for.
    pub fn alphabet(&self) -> usize {
        self.n
    }

    /// Reset to the fresh all-ones state without reallocating, so hot loops
    /// can recycle one model across independent streams.
    pub fn reset(&mut self) {
        fw_init_uniform(&mut self.tree);
        self.total = self.n as u64;
    }

    #[cfg(test)]
    fn add(&mut self, sym: usize, delta: u32) {
        fw_add(&mut self.tree, sym, delta);
        self.total += delta as u64;
    }

    /// Cumulative frequency of symbols `< sym`.
    #[cfg(test)]
    fn cum(&self, sym: usize) -> u64 {
        let mut i = sym;
        let mut s = 0u64;
        while i > 0 {
            s += self.tree[i] as u64;
            i &= i - 1;
        }
        s
    }

    #[cfg(test)]
    fn freq(&self, sym: usize) -> u64 {
        fw_freq(&self.tree, sym)
    }

    /// Encode `sym` and adapt. Generic over the sink so the same model
    /// drives single- and dual-lane coders.
    pub fn encode<S: RangeSink>(&mut self, enc: &mut S, sym: usize) {
        assert!(sym < self.n, "symbol {sym} outside alphabet of {}", self.n);
        self.total = fw_encode_step(&mut self.tree, self.total, enc, sym);
    }

    /// Decode one symbol and adapt (mirror of [`AdaptiveModel::encode`]).
    pub fn decode<S: RangeSource>(&mut self, dec: &mut S) -> Result<usize, CodecError> {
        let (sym, total) = fw_decode_step(&mut self.tree, self.total, dec)?;
        self.total = total;
        Ok(sym)
    }
}

/// A family of independent adaptive models selected by an integer context.
///
/// Backed by one flat arena of pre-sized frequency tables (`contexts ×
/// (alphabet + 1)` slots) instead of per-context heap boxes: selecting a
/// context is pointer arithmetic, tables of neighbouring contexts share cache
/// lines, and the whole family is freed in one deallocation. A context's
/// table is initialized on first use (`totals[ctx] == 0` marks untouched), so
/// sparse context spaces (e.g. 256 parent occupancy codes of which a scene
/// uses a few dozen) pay only one zeroed allocation up front.
#[derive(Debug, Clone)]
pub struct ContextModel {
    /// Flat arena: context `c` owns `arena[c * stride .. (c + 1) * stride]`.
    arena: Vec<u32>,
    /// Per-context totals; 0 marks a context whose table is untouched.
    totals: Vec<u64>,
    alphabet: usize,
    stride: usize,
}

impl ContextModel {
    /// A family of `contexts` lazily-initialized models over `alphabet`
    /// symbols.
    pub fn new(contexts: usize, alphabet: usize) -> Self {
        assert!(alphabet > 0, "alphabet must be non-empty");
        let stride = alphabet + 1;
        ContextModel {
            arena: vec![0; contexts * stride],
            totals: vec![0; contexts],
            alphabet,
            stride,
        }
    }

    /// Number of context slots.
    pub fn contexts(&self) -> usize {
        self.totals.len()
    }

    /// The context's tree slice and total, initializing the table on first
    /// use.
    #[inline]
    fn slot(&mut self, ctx: usize) -> (&mut [u32], &mut u64) {
        let tree = &mut self.arena[ctx * self.stride..][..self.stride];
        let total = &mut self.totals[ctx];
        if *total == 0 {
            fw_init_uniform(tree);
            *total = self.alphabet as u64;
        }
        (tree, total)
    }

    /// Encode `sym` under context `ctx` and adapt that context's model.
    pub fn encode<S: RangeSink>(&mut self, enc: &mut S, ctx: usize, sym: usize) {
        assert!(sym < self.alphabet, "symbol {sym} outside alphabet of {}", self.alphabet);
        let (tree, total) = self.slot(ctx);
        *total = fw_encode_step(tree, *total, enc, sym);
    }

    /// Decode one symbol under context `ctx` (mirror of `encode`).
    pub fn decode<S: RangeSource>(&mut self, dec: &mut S, ctx: usize) -> Result<usize, CodecError> {
        let (tree, total) = self.slot(ctx);
        let (sym, new_total) = fw_decode_step(tree, *total, dec)?;
        *total = new_total;
        Ok(sym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::{RangeDecoder, RangeEncoder};

    #[test]
    fn fenwick_cum_and_find_agree() {
        let mut m = AdaptiveModel::new(10);
        // Push asymmetric counts.
        for _ in 0..100 {
            m.add(3, 5);
            m.add(7, 2);
        }
        for s in 0..10 {
            let c = m.cum(s);
            let f = m.freq(s);
            assert_eq!(fw_cum_freq(&m.tree, s), (c, f), "fused query disagrees at {s}");
            assert_eq!(fw_find(&m.tree, c), (s, c));
            assert_eq!(fw_find(&m.tree, c + f - 1), (s, c));
        }
    }

    #[test]
    fn find_past_total_is_out_of_range_not_clamped() {
        let m = AdaptiveModel::new(4);
        // A slot at or past the total lands on the one-past-the-end index;
        // decode surfaces this as SymbolOutOfRange instead of clamping.
        let (sym, cum) = fw_find(&m.tree, m.total);
        assert_eq!((sym, cum), (4, 4));
        let (sym, _) = fw_find(&m.tree, m.total + 100);
        assert_eq!(sym, 4);
    }

    #[test]
    fn rescale_in_place_matches_reference() {
        // Drive several models across many rescales and check the invariants
        // the old allocation-based rescale guaranteed: freq' = ceil(freq/2)
        // clamped to >= 1, and total = sum of frequencies.
        let mut m = AdaptiveModel::new(9);
        for i in 0..10_000u64 {
            let before: Vec<u64> = (0..9).map(|s| m.freq(s)).collect();
            let will_rescale = m.total + INCREMENT >= MAX_TOTAL;
            let mut enc = RangeEncoder::new();
            m.encode(&mut enc, (i % 9) as usize);
            if will_rescale {
                for (s, &f) in before.iter().enumerate() {
                    let f = if s == (i % 9) as usize { f + INCREMENT } else { f };
                    assert_eq!(m.freq(s), f.div_ceil(2).max(1), "sym {s} after rescale");
                }
            }
            assert_eq!(m.total, (0..9).map(|s| m.freq(s)).sum::<u64>());
        }
    }

    #[test]
    fn model_roundtrip_small_alphabet() {
        let syms: Vec<usize> = (0..5000).map(|i| [0, 0, 1, 0, 2, 0, 0, 3][i % 8]).collect();
        let mut enc_model = AdaptiveModel::new(4);
        let mut enc = RangeEncoder::new();
        for &s in &syms {
            enc_model.encode(&mut enc, s);
        }
        let buf = enc.finish();
        let mut dec_model = AdaptiveModel::new(4);
        let mut dec = RangeDecoder::new(&buf);
        for &s in &syms {
            assert_eq!(dec_model.decode(&mut dec).unwrap(), s);
        }
    }

    #[test]
    fn model_roundtrip_full_byte_alphabet_with_rescales() {
        let syms: Vec<usize> =
            (0..60_000u32).map(|i| ((i.wrapping_mul(0x9E3779B9)) >> 25) as usize % 256).collect();
        let mut em = AdaptiveModel::new(256);
        let mut enc = RangeEncoder::new();
        for &s in &syms {
            em.encode(&mut enc, s);
        }
        let buf = enc.finish();
        let mut dm = AdaptiveModel::new(256);
        let mut dec = RangeDecoder::new(&buf);
        for &s in &syms {
            assert_eq!(dm.decode(&mut dec).unwrap(), s);
        }
    }

    #[test]
    fn reset_matches_fresh_model() {
        let syms: Vec<usize> = (0..5000).map(|i| i % 7).collect();
        let mut reused = AdaptiveModel::new(7);
        // Dirty the model (including across a rescale), then reset.
        let mut warmup = RangeEncoder::new();
        for &s in &syms {
            reused.encode(&mut warmup, s);
        }
        reused.reset();
        let mut enc_fresh = RangeEncoder::new();
        let mut enc_reused = RangeEncoder::new();
        let mut fresh = AdaptiveModel::new(7);
        for &s in &syms {
            fresh.encode(&mut enc_fresh, s);
            reused.encode(&mut enc_reused, s);
        }
        assert_eq!(enc_fresh.finish(), enc_reused.finish(), "reset model must be byte-identical");
    }

    #[test]
    fn skewed_distribution_compresses() {
        let syms: Vec<usize> = (0..20_000).map(|i| usize::from(i % 64 == 0)).collect();
        let mut m = AdaptiveModel::new(2);
        let mut enc = RangeEncoder::new();
        for &s in &syms {
            m.encode(&mut enc, s);
        }
        let buf = enc.finish();
        // H ≈ 0.116 bits/symbol → ~290 bytes; allow generous slack.
        assert!(buf.len() < 800, "got {} bytes", buf.len());
    }

    #[test]
    fn alphabet_of_one() {
        let mut m = AdaptiveModel::new(1);
        let mut enc = RangeEncoder::new();
        for _ in 0..100 {
            m.encode(&mut enc, 0);
        }
        let buf = enc.finish();
        let mut dm = AdaptiveModel::new(1);
        let mut dec = RangeDecoder::new(&buf);
        for _ in 0..100 {
            assert_eq!(dm.decode(&mut dec).unwrap(), 0);
        }
    }

    #[test]
    fn context_model_keeps_streams_separate() {
        // Context 0 always sees symbol 1; context 1 always sees symbol 2.
        let mut cm = ContextModel::new(2, 3);
        let mut enc = RangeEncoder::new();
        let stream: Vec<(usize, usize)> =
            (0..2000).map(|i| if i % 2 == 0 { (0, 1) } else { (1, 2) }).collect();
        for &(ctx, sym) in &stream {
            cm.encode(&mut enc, ctx, sym);
        }
        let buf = enc.finish();
        let mut dm = ContextModel::new(2, 3);
        let mut dec = RangeDecoder::new(&buf);
        for &(ctx, sym) in &stream {
            assert_eq!(dm.decode(&mut dec, ctx).unwrap(), sym);
        }
        // Perfectly predictable per context → tiny output.
        assert!(buf.len() < 120, "got {} bytes", buf.len());
    }

    #[test]
    fn context_model_matches_independent_adaptive_models() {
        // The arena-backed family must code exactly like a bank of
        // independent AdaptiveModels.
        let stream: Vec<(usize, usize)> =
            (0..9000).map(|i| ((i * 7) % 5, (i * i + 3 * i) % 11)).collect();
        let mut cm = ContextModel::new(5, 11);
        let mut enc_cm = RangeEncoder::new();
        let mut bank: Vec<AdaptiveModel> = (0..5).map(|_| AdaptiveModel::new(11)).collect();
        let mut enc_bank = RangeEncoder::new();
        for &(ctx, sym) in &stream {
            cm.encode(&mut enc_cm, ctx, sym);
            bank[ctx].encode(&mut enc_bank, sym);
        }
        assert_eq!(enc_cm.finish(), enc_bank.finish());
    }

    #[test]
    #[should_panic]
    fn encode_out_of_alphabet_panics() {
        let mut m = AdaptiveModel::new(4);
        let mut enc = RangeEncoder::new();
        m.encode(&mut enc, 4);
    }

    #[test]
    #[should_panic]
    fn context_encode_out_of_alphabet_panics() {
        let mut m = ContextModel::new(2, 4);
        let mut enc = RangeEncoder::new();
        m.encode(&mut enc, 0, 4);
    }
}
