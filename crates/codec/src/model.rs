//! Adaptive frequency models driving the range coder.
//!
//! [`AdaptiveModel`] is an order-0 model over a fixed alphabet, backed by a
//! Fenwick (binary indexed) tree so both cumulative-frequency queries and
//! updates are `O(log n)`. [`ContextModel`] keys a family of independent
//! models by an integer context — this is how the Octree_i variant groups
//! nodes "by the occupancy code of their parent" and how the G-PCC-like coder
//! conditions on neighbour occupancy.

use crate::error::CodecError;
use crate::range::{RangeDecoder, RangeEncoder};

/// Frequency increment per observed symbol.
const INCREMENT: u64 = 32;
/// Rescale threshold; keeps totals far below `range::MAX_TOTAL` while letting
/// the model adapt to local statistics.
const MAX_TOTAL: u64 = 1 << 16;

/// An adaptive order-0 symbol model.
#[derive(Debug, Clone)]
pub struct AdaptiveModel {
    /// Fenwick tree over symbol frequencies, 1-indexed.
    tree: Vec<u64>,
    n: usize,
    total: u64,
}

impl AdaptiveModel {
    /// Model over `alphabet` symbols, all starting with frequency 1.
    pub fn new(alphabet: usize) -> Self {
        assert!(alphabet > 0, "alphabet must be non-empty");
        let mut m = AdaptiveModel { tree: vec![0; alphabet + 1], n: alphabet, total: 0 };
        for s in 0..alphabet {
            m.add(s, 1);
        }
        m
    }

    /// Alphabet size this model was built for.
    pub fn alphabet(&self) -> usize {
        self.n
    }

    fn add(&mut self, sym: usize, delta: u64) {
        let mut i = sym + 1;
        while i <= self.n {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
        self.total += delta;
    }

    /// Cumulative frequency of symbols `< sym`.
    fn cum(&self, sym: usize) -> u64 {
        let mut i = sym;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    fn freq(&self, sym: usize) -> u64 {
        self.cum(sym + 1) - self.cum(sym)
    }

    /// Find the symbol whose `[cum, cum + freq)` interval contains `slot`.
    fn find(&self, slot: u64) -> usize {
        let mut idx = 0usize;
        let mut rem = slot;
        let mut mask = self.n.next_power_of_two();
        while mask > 0 {
            let next = idx + mask;
            if next <= self.n && self.tree[next] <= rem {
                rem -= self.tree[next];
                idx = next;
            }
            mask >>= 1;
        }
        idx.min(self.n - 1)
    }

    fn update(&mut self, sym: usize) {
        self.add(sym, INCREMENT);
        if self.total >= MAX_TOTAL {
            self.rescale();
        }
    }

    /// Halve all frequencies (keeping them >= 1) and rebuild the tree.
    fn rescale(&mut self) {
        let freqs: Vec<u64> = (0..self.n).map(|s| self.freq(s).div_ceil(2)).collect();
        self.tree.iter_mut().for_each(|v| *v = 0);
        self.total = 0;
        for (s, f) in freqs.into_iter().enumerate() {
            self.add(s, f.max(1));
        }
    }

    /// Encode `sym` and adapt.
    pub fn encode(&mut self, enc: &mut RangeEncoder, sym: usize) {
        assert!(sym < self.n, "symbol {sym} outside alphabet of {}", self.n);
        enc.encode(self.cum(sym), self.freq(sym), self.total);
        self.update(sym);
    }

    /// Decode one symbol and adapt (mirror of [`AdaptiveModel::encode`]).
    pub fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> Result<usize, CodecError> {
        let slot = dec.decode_freq(self.total)?;
        let sym = self.find(slot);
        if sym >= self.n {
            return Err(CodecError::SymbolOutOfRange { symbol: sym, alphabet: self.n });
        }
        dec.decode(self.cum(sym), self.freq(sym), self.total);
        self.update(sym);
        Ok(sym)
    }
}

/// A family of independent adaptive models selected by an integer context.
///
/// Models are created lazily, so sparse context spaces (e.g. 256 parent
/// occupancy codes of which a scene uses a few dozen) cost only what they use.
#[derive(Debug, Clone)]
pub struct ContextModel {
    models: Vec<Option<AdaptiveModel>>,
    alphabet: usize,
}

impl ContextModel {
    /// A family of `contexts` lazily-created models over `alphabet` symbols.
    pub fn new(contexts: usize, alphabet: usize) -> Self {
        ContextModel { models: vec![None; contexts], alphabet }
    }

    /// Number of context slots.
    pub fn contexts(&self) -> usize {
        self.models.len()
    }

    fn model(&mut self, ctx: usize) -> &mut AdaptiveModel {
        self.models[ctx].get_or_insert_with(|| AdaptiveModel::new(self.alphabet))
    }

    /// Encode `sym` under context `ctx` and adapt that context's model.
    pub fn encode(&mut self, enc: &mut RangeEncoder, ctx: usize, sym: usize) {
        self.model(ctx).encode(enc, sym);
    }

    /// Decode one symbol under context `ctx` (mirror of `encode`).
    pub fn decode(&mut self, dec: &mut RangeDecoder<'_>, ctx: usize) -> Result<usize, CodecError> {
        self.model(ctx).decode(dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::{RangeDecoder, RangeEncoder};

    #[test]
    fn fenwick_cum_and_find_agree() {
        let mut m = AdaptiveModel::new(10);
        // Push asymmetric counts.
        for _ in 0..100 {
            m.add(3, 5);
            m.add(7, 2);
        }
        for s in 0..10 {
            let c = m.cum(s);
            let f = m.freq(s);
            assert_eq!(m.find(c), s);
            assert_eq!(m.find(c + f - 1), s);
        }
    }

    #[test]
    fn model_roundtrip_small_alphabet() {
        let syms: Vec<usize> = (0..5000).map(|i| [0, 0, 1, 0, 2, 0, 0, 3][i % 8]).collect();
        let mut enc_model = AdaptiveModel::new(4);
        let mut enc = RangeEncoder::new();
        for &s in &syms {
            enc_model.encode(&mut enc, s);
        }
        let buf = enc.finish();
        let mut dec_model = AdaptiveModel::new(4);
        let mut dec = RangeDecoder::new(&buf);
        for &s in &syms {
            assert_eq!(dec_model.decode(&mut dec).unwrap(), s);
        }
    }

    #[test]
    fn model_roundtrip_full_byte_alphabet_with_rescales() {
        let syms: Vec<usize> =
            (0..60_000u32).map(|i| ((i.wrapping_mul(0x9E3779B9)) >> 25) as usize % 256).collect();
        let mut em = AdaptiveModel::new(256);
        let mut enc = RangeEncoder::new();
        for &s in &syms {
            em.encode(&mut enc, s);
        }
        let buf = enc.finish();
        let mut dm = AdaptiveModel::new(256);
        let mut dec = RangeDecoder::new(&buf);
        for &s in &syms {
            assert_eq!(dm.decode(&mut dec).unwrap(), s);
        }
    }

    #[test]
    fn skewed_distribution_compresses() {
        let syms: Vec<usize> = (0..20_000).map(|i| usize::from(i % 64 == 0)).collect();
        let mut m = AdaptiveModel::new(2);
        let mut enc = RangeEncoder::new();
        for &s in &syms {
            m.encode(&mut enc, s);
        }
        let buf = enc.finish();
        // H ≈ 0.116 bits/symbol → ~290 bytes; allow generous slack.
        assert!(buf.len() < 800, "got {} bytes", buf.len());
    }

    #[test]
    fn alphabet_of_one() {
        let mut m = AdaptiveModel::new(1);
        let mut enc = RangeEncoder::new();
        for _ in 0..100 {
            m.encode(&mut enc, 0);
        }
        let buf = enc.finish();
        let mut dm = AdaptiveModel::new(1);
        let mut dec = RangeDecoder::new(&buf);
        for _ in 0..100 {
            assert_eq!(dm.decode(&mut dec).unwrap(), 0);
        }
    }

    #[test]
    fn context_model_keeps_streams_separate() {
        // Context 0 always sees symbol 1; context 1 always sees symbol 2.
        let mut cm = ContextModel::new(2, 3);
        let mut enc = RangeEncoder::new();
        let stream: Vec<(usize, usize)> =
            (0..2000).map(|i| if i % 2 == 0 { (0, 1) } else { (1, 2) }).collect();
        for &(ctx, sym) in &stream {
            cm.encode(&mut enc, ctx, sym);
        }
        let buf = enc.finish();
        let mut dm = ContextModel::new(2, 3);
        let mut dec = RangeDecoder::new(&buf);
        for &(ctx, sym) in &stream {
            assert_eq!(dm.decode(&mut dec, ctx).unwrap(), sym);
        }
        // Perfectly predictable per context → tiny output.
        assert!(buf.len() < 120, "got {} bytes", buf.len());
    }

    #[test]
    #[should_panic]
    fn encode_out_of_alphabet_panics() {
        let mut m = AdaptiveModel::new(4);
        let mut enc = RangeEncoder::new();
        m.encode(&mut enc, 4);
    }
}
