//! A carryless range coder (Subbotin style, widened to 64 bits).
//!
//! This is the "arithmetic coder \[58\]" building block of the paper. A range
//! coder is byte-oriented arithmetic coding: it maintains an interval
//! `[low, low + range)` and narrows it proportionally to each symbol's
//! probability, emitting the interval's settled top bytes as it goes.
//!
//! The encoder and decoder take explicit `(cum_freq, freq, total)` triples so
//! arbitrary (adaptive or static) models from [`crate::model`] can drive them.
//!
//! Invariants: `total <= MAX_TOTAL` (2³², far above any model here), and the
//! sum `low + range` never overflows because each step shrinks the interval.

use crate::error::CodecError;

/// Top-byte mask: once the top byte of `low` and `low + range` agree, it can
/// be emitted.
const TOP: u64 = 1 << 56;
/// Renormalization threshold: below this the interval is forcibly truncated
/// to a byte-aligned boundary to avoid carries (the "carryless" trick).
const BOT: u64 = 1 << 48;
/// Maximum allowed model total.
pub const MAX_TOTAL: u64 = 1 << 32;

/// `range / total`, as a shift when `total` is a power of two.
///
/// Exact unsigned division either way, so the coded bytes cannot differ from
/// the plain `/` formulation — this only removes the hardware divide on the
/// raw-bits path (`encode_bits`/`decode_bits`, where `total` is always a
/// power of two) and on fresh byte models (`total` starts at 256).
#[inline]
fn div_total(range: u64, total: u64) -> u64 {
    if total.is_power_of_two() {
        range >> total.trailing_zeros()
    } else {
        range / total
    }
}

/// Range encoder writing to an internal buffer.
#[derive(Debug)]
pub struct RangeEncoder {
    low: u64,
    range: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// A fresh encoder over the full interval.
    pub fn new() -> Self {
        Self::with_buf(Vec::new())
    }

    /// A fresh encoder writing into `buf` (cleared, capacity kept), so hot
    /// loops can recycle one output allocation across frames: take the buffer
    /// back with [`RangeEncoder::finish`].
    pub fn with_buf(mut buf: Vec<u8>) -> Self {
        buf.clear();
        RangeEncoder { low: 0, range: u64::MAX, out: buf }
    }

    /// Encode a symbol occupying `[cum, cum + freq)` out of `total`.
    pub fn encode(&mut self, cum: u64, freq: u64, total: u64) {
        debug_assert!(freq > 0, "cannot encode zero-frequency symbol");
        debug_assert!(cum + freq <= total && total <= MAX_TOTAL);
        let r = div_total(self.range, total);
        self.low += r * cum;
        self.range = if cum + freq == total {
            // Give the last symbol the division remainder to avoid wasting
            // code space.
            self.range - r * cum
        } else {
            r * freq
        };
        self.normalize();
    }

    /// Encode `n` raw bits (uniform distribution); handy for headers inside a
    /// range-coded stream.
    pub fn encode_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        // Encode 16 bits at a time to stay well below MAX_TOTAL.
        let mut remaining = n;
        while remaining > 0 {
            let chunk = remaining.min(16);
            let shift = remaining - chunk;
            let v = (value >> shift) & ((1u64 << chunk) - 1);
            self.encode(v, 1, 1u64 << chunk);
            remaining -= chunk;
        }
    }

    fn normalize(&mut self) {
        loop {
            if (self.low ^ (self.low.wrapping_add(self.range))) < TOP {
                // Top byte settled.
            } else if self.range < BOT {
                // Interval straddles a top-byte boundary but is small: clamp
                // it to the boundary so the top byte settles.
                self.range = self.low.wrapping_neg() & (BOT - 1);
            } else {
                break;
            }
            self.out.push((self.low >> 56) as u8);
            self.low <<= 8;
            self.range <<= 8;
        }
    }

    /// Flush the interval and return the coded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..8 {
            self.out.push((self.low >> 56) as u8);
            self.low <<= 8;
        }
        self.out
    }

    /// Bytes emitted so far (excluding the final flush).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True when nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

/// Range decoder reading from a byte slice.
///
/// Consuming bytes past the end of the buffer marks the decoder as truncated;
/// the next [`RangeDecoder::decode_freq`] (i.e. the next symbol) then fails
/// with [`CodecError::UnexpectedEof`]. A well-formed stream never trips this:
/// the decoder's byte consumption mirrors the encoder's normalize output plus
/// the 8 flush bytes exactly, so valid streams are consumed to their end and
/// no further.
#[derive(Debug)]
pub struct RangeDecoder<'a> {
    low: u64,
    range: u64,
    code: u64,
    buf: &'a [u8],
    pos: usize,
    truncated: bool,
    /// `total` of the last [`RangeDecoder::decode_freq`]; 0 when no cached
    /// quotient is live.
    pair_total: u64,
    /// The `range / total` quotient from that call. `range` cannot change
    /// between `decode_freq` and the paired `decode` (only `decode` narrows
    /// it, and it invalidates the cache), so reusing the quotient is exact —
    /// it skips the second hardware divide per symbol, nothing else.
    pair_r: u64,
}

impl<'a> RangeDecoder<'a> {
    /// Start decoding from `buf` (reads the initial 8-byte window).
    pub fn new(buf: &'a [u8]) -> Self {
        let mut d = RangeDecoder {
            low: 0,
            range: u64::MAX,
            code: 0,
            buf,
            pos: 0,
            truncated: false,
            pair_total: 0,
            pair_r: 0,
        };
        for _ in 0..8 {
            d.code = (d.code << 8) | d.next_byte();
        }
        d
    }

    #[inline]
    fn next_byte(&mut self) -> u64 {
        // Reading past the end marks the stream truncated; the next symbol
        // decode surfaces it as a hard error instead of silently zero-filling.
        match self.buf.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                b as u64
            }
            None => {
                self.truncated = true;
                0
            }
        }
    }

    /// True once the decoder has tried to read past the end of its input.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Return the cumulative-frequency slot of the next symbol under a model
    /// with the given `total`. The caller maps it to a symbol and then calls
    /// [`RangeDecoder::decode`] with that symbol's `(cum, freq)`.
    ///
    /// Fails with [`CodecError::UnexpectedEof`] if the input ran out before
    /// this symbol (the encoder's flush guarantees valid streams never do),
    /// or with [`CodecError::CorruptStream`] if the coded value fell outside
    /// the current interval — a state no valid stream can reach (the encoder
    /// only ever narrows the interval around the value it emits), so it
    /// identifies a tampered stream before the slot is even mapped to a
    /// symbol.
    pub fn decode_freq(&mut self, total: u64) -> Result<u64, CodecError> {
        debug_assert!(total <= MAX_TOTAL);
        if self.truncated {
            return Err(CodecError::UnexpectedEof);
        }
        let off = self.code.wrapping_sub(self.low);
        if off >= self.range {
            return Err(CodecError::CorruptStream("range-coded value outside current interval"));
        }
        let r = div_total(self.range, total);
        self.pair_total = total;
        self.pair_r = r;
        // The clamp is load-bearing on VALID streams: when `range % total`
        // is nonzero the last symbol also owns the remainder slice, where
        // `off / r` computes to `total`.
        Ok((off / r).min(total - 1))
    }

    /// Consume the symbol occupying `[cum, cum + freq)` out of `total`.
    pub fn decode(&mut self, cum: u64, freq: u64, total: u64) {
        let r = if self.pair_total == total { self.pair_r } else { div_total(self.range, total) };
        self.pair_total = 0;
        self.low += r * cum;
        self.range = if cum + freq == total { self.range - r * cum } else { r * freq };
        self.normalize();
    }

    /// Decode `n` raw bits written by [`RangeEncoder::encode_bits`].
    pub fn decode_bits(&mut self, n: u32) -> Result<u64, CodecError> {
        let mut v = 0u64;
        let mut remaining = n;
        while remaining > 0 {
            let chunk = remaining.min(16);
            let total = 1u64 << chunk;
            let f = self.decode_freq(total)?;
            self.decode(f, 1, total);
            v = (v << chunk) | f;
            remaining -= chunk;
        }
        Ok(v)
    }

    fn normalize(&mut self) {
        loop {
            if (self.low ^ (self.low.wrapping_add(self.range))) < TOP {
            } else if self.range < BOT {
                self.range = self.low.wrapping_neg() & (BOT - 1);
            } else {
                break;
            }
            self.code = (self.code << 8) | self.next_byte();
            self.low <<= 8;
            self.range <<= 8;
        }
    }

    /// Bytes consumed from the input so far (may exceed input length by the
    /// flush padding).
    pub fn bytes_read(&self) -> usize {
        self.pos.min(self.buf.len())
    }
}

/// Convenience: range-code a byte slice with an adaptive order-0 model.
pub fn rc_compress_bytes(data: &[u8]) -> Vec<u8> {
    let mut model = crate::model::AdaptiveModel::new(256);
    let mut enc = RangeEncoder::new();
    for &b in data {
        model.encode(&mut enc, b as usize);
    }
    enc.finish()
}

/// Invert [`rc_compress_bytes`]; `len` is the original byte count.
pub fn rc_decompress_bytes(data: &[u8], len: usize) -> Result<Vec<u8>, CodecError> {
    let mut model = crate::model::AdaptiveModel::new(256);
    let mut dec = RangeDecoder::new(data);
    let mut out = Vec::with_capacity(len.min(1 << 16));
    for _ in 0..len {
        out.push(model.decode(&mut dec)? as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Encode/decode a symbol stream against a fixed (static) distribution.
    fn roundtrip_static(symbols: &[usize], freqs: &[u64]) {
        let total: u64 = freqs.iter().sum();
        let cums: Vec<u64> = freqs
            .iter()
            .scan(0u64, |acc, &f| {
                let c = *acc;
                *acc += f;
                Some(c)
            })
            .collect();
        let mut enc = RangeEncoder::new();
        for &s in symbols {
            enc.encode(cums[s], freqs[s], total);
        }
        let buf = enc.finish();
        let mut dec = RangeDecoder::new(&buf);
        for &s in symbols {
            let slot = dec.decode_freq(total).unwrap();
            let sym = match cums.binary_search(&slot) {
                Ok(i) => {
                    // Slot may land exactly on a cum of a zero-freq symbol;
                    // walk forward to the first nonzero frequency.
                    let mut i = i;
                    while freqs[i] == 0 {
                        i += 1;
                    }
                    i
                }
                Err(i) => i - 1,
            };
            assert_eq!(sym, s);
            dec.decode(cums[sym], freqs[sym], total);
        }
    }

    #[test]
    fn static_roundtrip_skewed() {
        let freqs = [900u64, 50, 30, 20];
        let symbols: Vec<usize> = (0..5000).map(|i| if i % 50 == 0 { i % 4 } else { 0 }).collect();
        roundtrip_static(&symbols, &freqs);
    }

    #[test]
    fn static_roundtrip_uniform() {
        let freqs = [1u64; 16];
        let symbols: Vec<usize> = (0..4096).map(|i| i % 16).collect();
        roundtrip_static(&symbols, &freqs);
    }

    #[test]
    fn raw_bits_roundtrip() {
        let mut enc = RangeEncoder::new();
        enc.encode_bits(0xABCD, 16);
        enc.encode_bits(0x1_2345_6789, 40);
        enc.encode_bits(1, 1);
        enc.encode_bits(u64::MAX, 64);
        let buf = enc.finish();
        let mut dec = RangeDecoder::new(&buf);
        assert_eq!(dec.decode_bits(16).unwrap(), 0xABCD);
        assert_eq!(dec.decode_bits(40).unwrap(), 0x1_2345_6789);
        assert_eq!(dec.decode_bits(1).unwrap(), 1);
        assert_eq!(dec.decode_bits(64).unwrap(), u64::MAX);
    }

    #[test]
    fn adaptive_bytes_roundtrip() {
        let data: Vec<u8> = (0..10_000).map(|i| ((i * 7) % 11) as u8).collect();
        let comp = rc_compress_bytes(&data);
        assert_eq!(rc_decompress_bytes(&comp, data.len()).unwrap(), data);
        // 11 distinct near-uniform symbols need < 4 bits each after adaptation.
        assert!(comp.len() < data.len() / 2 + 64, "compressed {} bytes", comp.len());
    }

    #[test]
    fn adaptive_bytes_empty() {
        let comp = rc_compress_bytes(&[]);
        assert_eq!(rc_decompress_bytes(&comp, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn skewed_bytes_beat_raw_size() {
        // 99% zeros.
        let data: Vec<u8> = (0..50_000).map(|i| u8::from(i % 100 == 0)).collect();
        let comp = rc_compress_bytes(&data);
        assert!(
            comp.len() < data.len() / 8,
            "expected < {} bytes, got {}",
            data.len() / 8,
            comp.len()
        );
    }

    #[test]
    fn truncated_stream_is_an_error_not_zero_fill() {
        let data: Vec<u8> = (0..10_000).map(|i| ((i * 13) % 251) as u8).collect();
        let comp = rc_compress_bytes(&data);
        // Cut the stream before the tail: decoding must fail with a typed
        // error rather than fabricating symbols from zero bytes.
        for cut in [0, 1, 7, 8, comp.len() / 2] {
            let err = rc_decompress_bytes(&comp[..cut], data.len())
                .expect_err("truncated stream must not decode");
            assert!(matches!(err, CodecError::UnexpectedEof), "cut={cut} gave {err:?}");
        }
        // Cutting inside the 8-byte flush tail may land after the final
        // symbol was already determined; the guarantee is Err or the exact
        // original bytes — never silent garbage.
        for cut in comp.len() - 8..comp.len() {
            match rc_decompress_bytes(&comp[..cut], data.len()) {
                Err(CodecError::UnexpectedEof) => {}
                Ok(out) => assert_eq!(out, data, "cut={cut} decoded garbage"),
                Err(e) => panic!("cut={cut} gave unexpected error {e:?}"),
            }
        }
        // The untouched stream still decodes exactly.
        assert_eq!(rc_decompress_bytes(&comp, data.len()).unwrap(), data);
    }

    #[test]
    fn empty_buffer_errors_on_first_symbol() {
        let mut model = crate::model::AdaptiveModel::new(256);
        let mut dec = RangeDecoder::new(&[]);
        assert!(dec.is_truncated());
        assert!(matches!(model.decode(&mut dec), Err(CodecError::UnexpectedEof)));
    }

    #[test]
    fn code_outside_interval_is_corrupt_not_clamped() {
        // Eight 0xFF bytes put the initial coded value at u64::MAX, one past
        // the largest value any valid stream can flush (the final `low` is
        // strictly below `low₀ + range₀ = u64::MAX`). The decoder must
        // surface this as CorruptStream on the first symbol, not fold it
        // into the last slot.
        let hostile = [0xFFu8; 16];
        let mut model = crate::model::AdaptiveModel::new(256);
        let mut dec = RangeDecoder::new(&hostile);
        assert!(matches!(model.decode(&mut dec), Err(CodecError::CorruptStream(_))));
    }

    #[test]
    fn with_buf_reuse_is_byte_identical() {
        let data: Vec<u8> = (0..4000).map(|i| ((i * 31) % 17) as u8).collect();
        let fresh = rc_compress_bytes(&data);
        // Same stream through an encoder recycling a dirty buffer.
        let mut buf = vec![0xAA; 1024];
        for _ in 0..2 {
            let mut model = crate::model::AdaptiveModel::new(256);
            let mut enc = RangeEncoder::with_buf(buf);
            for &b in &data {
                model.encode(&mut enc, b as usize);
            }
            buf = enc.finish();
            assert_eq!(buf, fresh);
        }
    }

    #[test]
    fn long_stream_stability() {
        // Exercise many renormalizations, including forced truncations.
        let data: Vec<u8> =
            (0..200_000u32).map(|i| (i.wrapping_mul(2654435761) >> 24) as u8).collect();
        let comp = rc_compress_bytes(&data);
        assert_eq!(rc_decompress_bytes(&comp, data.len()).unwrap(), data);
    }
}
