//! Shannon entropy of a symbol sequence (paper §2.1).
//!
//! `H(L) = −Σ P(vᵢ)·log₂ P(vᵢ)` over the distinct values of `L`. Measured in
//! bits per symbol; the theoretical lower bound for any order-0 entropy coder
//! and the quantity DBGC's delta transforms aim to shrink.

use std::collections::HashMap;
use std::hash::Hash;

/// Shannon entropy in bits per symbol; 0.0 for an empty sequence.
pub fn shannon_entropy<T: Eq + Hash>(values: impl IntoIterator<Item = T>) -> f64 {
    let mut counts: HashMap<T, u64> = HashMap::new();
    let mut n = 0u64;
    for v in values {
        *counts.entry(v).or_insert(0) += 1;
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Entropy of a byte slice (convenience wrapper).
pub fn byte_entropy(data: &[u8]) -> f64 {
    shannon_entropy(data.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sequence_has_zero_entropy() {
        assert_eq!(shannon_entropy([5i64; 100]), 0.0);
    }

    #[test]
    fn uniform_binary_is_one_bit() {
        let seq: Vec<u8> = (0..1000).map(|i| (i % 2) as u8).collect();
        assert!((shannon_entropy(seq) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_256_is_eight_bits() {
        let seq: Vec<u8> = (0..=255).collect();
        assert!((byte_entropy(&seq) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(shannon_entropy(Vec::<u8>::new()), 0.0);
    }

    #[test]
    fn delta_lowers_entropy_of_ramp() {
        // A linear ramp has n distinct values (max entropy); its deltas are
        // constant (zero entropy). This is the core premise of DBGC's step 2.
        let ramp: Vec<i64> = (0..1024).collect();
        let h_raw = shannon_entropy(ramp.iter().copied());
        let deltas = crate::delta::delta_encode(&ramp);
        let h_delta = shannon_entropy(deltas[1..].iter().copied());
        assert!(h_raw > 9.9);
        assert_eq!(h_delta, 0.0);
    }
}
