//! A Deflate-like composite codec \[13\]: LZ77 + canonical Huffman.
//!
//! The paper uses Deflate for the azimuthal-angle streams because they carry
//! many repeated patterns (§3.5 step 6). We control both ends of the wire, so
//! the RFC 1951 container is not reproduced; the algorithmic pipeline is the
//! same: LZ77 tokens entropy-coded with two Huffman tables (literal/length
//! and distance), with extra bits for the length/distance residuals.
//!
//! Stream layout: `varint original_len | litlen table | dist table | bits`.

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;
use crate::huffman::{HuffmanDecoder, HuffmanEncoder};
use crate::lz77::{lz77_tokenize, Token, MAX_MATCH, MIN_MATCH};
use crate::varint::{write_uvarint, ByteReader};

/// End-of-block symbol in the literal/length alphabet.
const EOB: usize = 256;
/// Literal/length alphabet size: 256 literals + EOB + 29 length codes.
const LITLEN_ALPHABET: usize = 286;
const DIST_ALPHABET: usize = 30;

/// Deflate's length code table: `(base_length, extra_bits)` for codes 257–285.
const LENGTH_CODES: [(usize, u32); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// Deflate's distance code table: `(base_distance, extra_bits)` for codes 0–29.
const DIST_CODES: [(usize, u32); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

/// Map a match length (3–258) to `(code_index, extra_value, extra_bits)`.
fn length_to_code(len: usize) -> (usize, u64, u32) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    // Codes are ordered by base; binary search for the containing bucket.
    let idx = match LENGTH_CODES.binary_search_by_key(&len, |&(b, _)| b) {
        Ok(i) => i,
        Err(i) => i - 1,
    };
    let (base, extra) = LENGTH_CODES[idx];
    (idx, (len - base) as u64, extra)
}

/// Map a distance (1–32768) to `(code_index, extra_value, extra_bits)`.
fn dist_to_code(dist: usize) -> (usize, u64, u32) {
    let idx = match DIST_CODES.binary_search_by_key(&dist, |&(b, _)| b) {
        Ok(i) => i,
        Err(i) => i - 1,
    };
    let (base, extra) = DIST_CODES[idx];
    (idx, (dist - base) as u64, extra)
}

/// Compress `data` with the deflate-like pipeline.
pub fn deflate_compress(data: &[u8]) -> Vec<u8> {
    let tokens = lz77_tokenize(data);

    let mut litlen_freq = vec![0u64; LITLEN_ALPHABET];
    let mut dist_freq = vec![0u64; DIST_ALPHABET];
    for &t in &tokens {
        match t {
            Token::Literal(b) => litlen_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                litlen_freq[257 + length_to_code(len as usize).0] += 1;
                dist_freq[dist_to_code(dist as usize).0] += 1;
            }
        }
    }
    litlen_freq[EOB] += 1;

    let litlen = HuffmanEncoder::from_frequencies(&litlen_freq);
    let dist = HuffmanEncoder::from_frequencies(&dist_freq);

    let mut out = Vec::new();
    write_uvarint(&mut out, data.len() as u64);
    litlen.write_table(&mut out);
    dist.write_table(&mut out);

    let mut w = BitWriter::new();
    for &t in &tokens {
        match t {
            Token::Literal(b) => litlen.encode(&mut w, b as usize),
            Token::Match { len, dist: d } => {
                let (lc, lex, lbits) = length_to_code(len as usize);
                litlen.encode(&mut w, 257 + lc);
                w.write_bits(lex, lbits);
                let (dc, dex, dbits) = dist_to_code(d as usize);
                dist.encode(&mut w, dc);
                w.write_bits(dex, dbits);
            }
        }
    }
    litlen.encode(&mut w, EOB);
    out.extend_from_slice(&w.finish());
    out
}

/// Invert [`deflate_compress`].
pub fn deflate_decompress(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut r = ByteReader::new(data);
    let original_len = r.read_uvarint()? as usize;
    // Every token costs at least one coded bit and emits at most MAX_MATCH
    // (258) bytes, so a payload of B bytes can never reconstruct more than
    // 8 * 258 * B bytes. Declared lengths above that are structurally
    // impossible; reject them before trusting the value anywhere.
    if original_len > r.remaining().saturating_mul(8 * MAX_MATCH) {
        return Err(CodecError::CorruptStream("declared length exceeds payload capacity"));
    }
    let litlen = HuffmanDecoder::read_table(&mut r)?;
    let dist = HuffmanDecoder::read_table(&mut r)?;
    let bits = r.read_slice(r.remaining())?;
    let mut br = BitReader::new(bits);

    // Reserve at most a modest amount up front; growth beyond it is paced by
    // bytes actually decoded (and capped by the `original_len` check below),
    // so a hostile header cannot trigger a huge allocation.
    let mut out = Vec::with_capacity(original_len.min(1 << 20));
    loop {
        let sym = litlen.decode(&mut br)?;
        match sym {
            0..=255 => out.push(sym as u8),
            EOB => break,
            257..=285 => {
                let (base, extra) = LENGTH_CODES[sym - 257];
                let len = base + br.read_bits(extra)? as usize;
                let dsym = dist.decode(&mut br)?;
                if dsym >= DIST_ALPHABET {
                    return Err(CodecError::SymbolOutOfRange {
                        symbol: dsym,
                        alphabet: DIST_ALPHABET,
                    });
                }
                let (dbase, dextra) = DIST_CODES[dsym];
                let d = dbase + br.read_bits(dextra)? as usize;
                if d == 0 || d > out.len() {
                    return Err(CodecError::InvalidBackReference {
                        distance: d,
                        produced: out.len(),
                    });
                }
                let start = out.len() - d;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            _ => {
                return Err(CodecError::SymbolOutOfRange { symbol: sym, alphabet: LITLEN_ALPHABET })
            }
        }
        if out.len() > original_len {
            return Err(CodecError::CorruptStream("output exceeds declared length"));
        }
    }
    if out.len() != original_len {
        return Err(CodecError::CorruptStream("output shorter than declared length"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(data: &[u8]) -> usize {
        let comp = deflate_compress(data);
        assert_eq!(deflate_decompress(&comp).unwrap(), data);
        comp.len()
    }

    #[test]
    fn length_code_table_covers_range() {
        for len in MIN_MATCH..=MAX_MATCH {
            let (idx, extra, bits) = length_to_code(len);
            let (base, b) = LENGTH_CODES[idx];
            assert_eq!(b, bits);
            assert_eq!(base + extra as usize, len);
            assert!(extra < (1 << bits.max(1)));
        }
    }

    #[test]
    fn dist_code_table_covers_range() {
        for dist in [1usize, 2, 4, 5, 8, 100, 1024, 9000, 32768] {
            let (idx, extra, bits) = dist_to_code(dist);
            let (base, b) = DIST_CODES[idx];
            assert_eq!(b, bits);
            assert_eq!(base + extra as usize, dist);
        }
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"x");
        roundtrip(b"no repeats");
    }

    #[test]
    fn repetitive_text_compresses() {
        let data: Vec<u8> = b"the quick brown fox jumps over the lazy dog. "
            .iter()
            .cycle()
            .take(50_000)
            .copied()
            .collect();
        let size = roundtrip(&data);
        assert!(size < data.len() / 10, "compressed to {size} bytes");
    }

    #[test]
    fn random_data_grows_only_slightly() {
        let data: Vec<u8> =
            (0..10_000u32).map(|i| (i.wrapping_mul(2654435761) >> 11) as u8).collect();
        let size = roundtrip(&data);
        assert!(size < data.len() + 1200, "compressed to {size} bytes");
    }

    #[test]
    fn truncated_stream_errors() {
        let comp = deflate_compress(b"hello hello hello hello");
        for cut in [0, 1, comp.len() / 2] {
            assert!(deflate_decompress(&comp[..cut]).is_err());
        }
    }

    #[test]
    fn corrupted_declared_length_detected() {
        let mut comp = deflate_compress(b"abcabcabc");
        comp[0] = comp[0].wrapping_add(1); // bump varint length
        assert!(deflate_decompress(&comp).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn roundtrip_random(data in proptest::collection::vec(any::<u8>(), 0..5000)) {
            roundtrip(&data);
        }

        #[test]
        fn roundtrip_structured(runs in proptest::collection::vec((0u8..8, 1usize..100), 0..100)) {
            let mut data = Vec::new();
            for (b, n) in runs {
                data.extend(std::iter::repeat(b).take(n));
            }
            roundtrip(&data);
        }
    }
}
