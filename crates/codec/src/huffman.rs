//! Canonical Huffman coding \[29\].
//!
//! Code lengths are derived with the classic two-queue/heap construction and
//! assigned canonically (sorted by length, then symbol), so only the length
//! array needs to travel with the stream. Decoding walks the canonical
//! first-code table bit by bit — no decode table memory, and code lengths up
//! to 63 bits are supported, so no length-limiting pass is needed.

use std::collections::BinaryHeap;

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;
use crate::rle::{rle_decode_limited, rle_encode};
use crate::varint::{write_uvarint, ByteReader};

const MAX_LEN: u32 = 63;

/// Compute Huffman code lengths for `freqs` (zero-frequency symbols get
/// length 0, i.e. no code). A single-symbol alphabet gets length 1.
fn code_lengths(freqs: &[u64]) -> Vec<u32> {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        /// Tie-break on creation order for determinism.
        order: usize,
        kind: NodeKind,
    }
    #[derive(PartialEq, Eq)]
    enum NodeKind {
        Leaf(usize),
        Internal(Box<Node>, Box<Node>),
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // BinaryHeap is a max-heap; invert for min-heap behaviour.
            other.weight.cmp(&self.weight).then(other.order.cmp(&self.order))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut lengths = vec![0u32; freqs.len()];
    let mut heap = BinaryHeap::new();
    let mut order = 0usize;
    for (sym, &f) in freqs.iter().enumerate() {
        if f > 0 {
            heap.push(Node { weight: f, order, kind: NodeKind::Leaf(sym) });
            order += 1;
        }
    }
    match heap.len() {
        0 => return lengths,
        1 => {
            if let NodeKind::Leaf(sym) = heap.pop().expect("one node").kind {
                lengths[sym] = 1;
            }
            return lengths;
        }
        _ => {}
    }
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        heap.push(Node {
            weight: a.weight + b.weight,
            order,
            kind: NodeKind::Internal(Box::new(a), Box::new(b)),
        });
        order += 1;
    }
    // Iterative depth-first traversal to assign depths as lengths.
    let root = heap.pop().expect("root");
    let mut stack = vec![(root, 0u32)];
    while let Some((node, depth)) = stack.pop() {
        match node.kind {
            NodeKind::Leaf(sym) => lengths[sym] = depth.min(MAX_LEN),
            NodeKind::Internal(a, b) => {
                stack.push((*a, depth + 1));
                stack.push((*b, depth + 1));
            }
        }
    }
    lengths
}

/// Assign canonical codes given lengths; returns `(code, len)` per symbol.
fn canonical_codes(lengths: &[u32]) -> Result<Vec<(u64, u32)>, CodecError> {
    let max_len = lengths.iter().copied().max().unwrap_or(0);
    if max_len > MAX_LEN {
        return Err(CodecError::InvalidHuffmanTable);
    }
    let mut count_per_len = vec![0u64; max_len as usize + 1];
    for &l in lengths {
        count_per_len[l as usize] += 1;
    }
    count_per_len[0] = 0;
    // Kraft check.
    let mut kraft = 0u128;
    for (l, &c) in count_per_len.iter().enumerate().skip(1) {
        kraft += (c as u128) << (MAX_LEN as usize + 1 - l);
    }
    if kraft > 1u128 << (MAX_LEN + 1) {
        return Err(CodecError::InvalidHuffmanTable);
    }
    let mut next_code = vec![0u64; max_len as usize + 2];
    let mut code = 0u64;
    for l in 1..=max_len as usize {
        code = (code + count_per_len[l - 1]) << 1;
        next_code[l] = code;
    }
    let mut codes = vec![(0u64, 0u32); lengths.len()];
    for (sym, &l) in lengths.iter().enumerate() {
        if l > 0 {
            codes[sym] = (next_code[l as usize], l);
            next_code[l as usize] += 1;
        }
    }
    Ok(codes)
}

/// Canonical Huffman encoder for a fixed alphabet.
#[derive(Debug, Clone)]
pub struct HuffmanEncoder {
    codes: Vec<(u64, u32)>,
    lengths: Vec<u32>,
}

impl HuffmanEncoder {
    /// Build from symbol frequencies. Symbols with zero frequency receive no
    /// code and must not be encoded.
    pub fn from_frequencies(freqs: &[u64]) -> HuffmanEncoder {
        let lengths = code_lengths(freqs);
        let codes = canonical_codes(&lengths).expect("construction yields a valid table");
        HuffmanEncoder { codes, lengths }
    }

    /// Serialize the code-length table (RLE + varint framing).
    pub fn write_table(&self, out: &mut Vec<u8>) {
        let bytes: Vec<u8> = self.lengths.iter().map(|&l| l as u8).collect();
        let rle = rle_encode(&bytes);
        write_uvarint(out, self.lengths.len() as u64);
        write_uvarint(out, rle.len() as u64);
        out.extend_from_slice(&rle);
    }

    /// Encode one symbol.
    pub fn encode(&self, w: &mut BitWriter, sym: usize) {
        let (code, len) = self.codes[sym];
        assert!(len > 0, "symbol {sym} has no code (zero frequency)");
        w.write_bits(code, len);
    }

    /// Code length of `sym` in bits (0 = no code).
    pub fn code_len(&self, sym: usize) -> u32 {
        self.lengths[sym]
    }
}

/// Canonical Huffman decoder built from a serialized length table.
#[derive(Debug, Clone)]
pub struct HuffmanDecoder {
    /// `first_code[l]` — canonical code value of the first code of length `l`.
    first_code: Vec<u64>,
    /// `first_index[l]` — index into `symbols` of that first code.
    first_index: Vec<usize>,
    /// Count of codes per length.
    counts: Vec<u64>,
    /// Symbols sorted canonically (by length, then symbol).
    symbols: Vec<usize>,
    max_len: u32,
}

impl HuffmanDecoder {
    /// Deserialize a table written by [`HuffmanEncoder::write_table`].
    pub fn read_table(r: &mut ByteReader<'_>) -> Result<HuffmanDecoder, CodecError> {
        let n = r.read_uvarint()? as usize;
        if n > 1 << 20 {
            return Err(CodecError::InvalidHuffmanTable);
        }
        let rle_len = r.read_uvarint()? as usize;
        let rle = r.read_slice(rle_len)?;
        // The table must decode to exactly `n` length bytes; cap the RLE
        // expansion there so a tampered run length cannot balloon memory.
        let bytes = rle_decode_limited(rle, n)?;
        if bytes.len() != n {
            return Err(CodecError::InvalidHuffmanTable);
        }
        let lengths: Vec<u32> = bytes.into_iter().map(|b| b as u32).collect();
        HuffmanDecoder::from_lengths(&lengths)
    }

    /// Build directly from a length array (shared with the encoder in-process).
    pub fn from_lengths(lengths: &[u32]) -> Result<HuffmanDecoder, CodecError> {
        // Validate via the same canonical construction.
        canonical_codes(lengths)?;
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        let mut counts = vec![0u64; max_len as usize + 1];
        for &l in lengths {
            if l > 0 {
                counts[l as usize] += 1;
            }
        }
        let mut symbols: Vec<usize> = (0..lengths.len()).filter(|&s| lengths[s] > 0).collect();
        symbols.sort_by_key(|&s| (lengths[s], s));
        // Same canonical numbering as the encoder: the first code of length
        // l continues where length l-1's codes ended, shifted left one bit.
        let mut first_code = vec![0u64; max_len as usize + 2];
        let mut first_index = vec![0usize; max_len as usize + 2];
        let mut code = 0u64;
        let mut index = 0usize;
        for l in 1..=max_len as usize {
            code = (code + counts[l - 1]) << 1;
            first_code[l] = code;
            first_index[l] = index;
            index += counts[l] as usize;
        }
        Ok(HuffmanDecoder { first_code, first_index, counts, symbols, max_len })
    }

    /// Decode one symbol, reading bits as needed.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<usize, CodecError> {
        if self.symbols.is_empty() {
            return Err(CodecError::InvalidHuffmanTable);
        }
        let mut code = 0u64;
        for l in 1..=self.max_len {
            code = (code << 1) | r.read_bit()? as u64;
            let li = l as usize;
            let count = self.counts[li];
            if count > 0 && code < self.first_code[li] + count {
                let offset = (code - self.first_code[li]) as usize;
                return Ok(self.symbols[self.first_index[li] + offset]);
            }
        }
        Err(CodecError::CorruptStream("Huffman code not found"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(freqs: &[u64], stream: &[usize]) -> usize {
        let enc = HuffmanEncoder::from_frequencies(freqs);
        let mut table = Vec::new();
        enc.write_table(&mut table);
        let mut w = BitWriter::new();
        for &s in stream {
            enc.encode(&mut w, s);
        }
        let bits = w.finish();

        let mut br = ByteReader::new(&table);
        let dec = HuffmanDecoder::read_table(&mut br).unwrap();
        let mut r = BitReader::new(&bits);
        for &s in stream {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
        table.len() + bits.len()
    }

    #[test]
    fn simple_alphabet() {
        let freqs = [45u64, 13, 12, 16, 9, 5];
        let stream: Vec<usize> = (0..1000).map(|i| i % 6).collect();
        roundtrip(&freqs, &stream);
    }

    #[test]
    fn skewed_is_short() {
        let mut freqs = vec![0u64; 256];
        freqs[0] = 10_000;
        freqs[1] = 10;
        freqs[2] = 5;
        let stream: Vec<usize> =
            (0..8000).map(|i| if i % 100 == 0 { 1 + i % 2 } else { 0 }).collect();
        let total = roundtrip(&freqs, &stream);
        // ~1 bit per symbol plus table.
        assert!(total < 1600, "total {total} bytes");
    }

    #[test]
    fn single_symbol_alphabet() {
        let mut freqs = vec![0u64; 10];
        freqs[7] = 42;
        let stream = vec![7usize; 42];
        roundtrip(&freqs, &stream);
    }

    #[test]
    fn empty_stream_empty_table() {
        let freqs = vec![0u64; 16];
        roundtrip(&freqs, &[]);
    }

    #[test]
    fn zero_freq_symbol_panics_on_encode() {
        let enc = HuffmanEncoder::from_frequencies(&[10, 0, 5]);
        let mut w = BitWriter::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            enc.encode(&mut w, 1);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let freqs = [5u64, 9, 12, 13, 16, 45];
        let enc = HuffmanEncoder::from_frequencies(&freqs);
        for a in 0..freqs.len() {
            for b in 0..freqs.len() {
                if a == b {
                    continue;
                }
                let (ca, la) = enc.codes[a];
                let (cb, lb) = enc.codes[b];
                if la <= lb {
                    assert_ne!(ca, cb >> (lb - la), "code {a} is a prefix of {b}");
                }
            }
        }
    }

    #[test]
    fn malformed_table_rejected() {
        // Kraft violation: three codes of length 1.
        assert!(HuffmanDecoder::from_lengths(&[1, 1, 1]).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_random(
            freqs in proptest::collection::vec(0u64..1000, 2..64),
            seed in any::<u64>()
        ) {
            let nonzero: Vec<usize> =
                freqs.iter().enumerate().filter(|(_, &f)| f > 0).map(|(i, _)| i).collect();
            prop_assume!(!nonzero.is_empty());
            let mut x = seed;
            let stream: Vec<usize> = (0..500)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    nonzero[(x >> 33) as usize % nonzero.len()]
                })
                .collect();
            roundtrip(&freqs, &stream);
        }
    }
}
