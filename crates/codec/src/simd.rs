//! Feature-gated SIMD kernels with mandatory scalar fallbacks.
//!
//! The batch hot loops of the codec — zigzag transform + OR-fold width scan
//! in [`crate::bitpack`], frequency halving in the Fenwick rescale
//! ([`crate::model`]), and the radial-delta transform ([`crate::delta`]) —
//! funnel through the free functions here. Each has exactly one semantic: the
//! scalar implementation. When the crate is built with the `simd` feature on
//! `x86_64`, an AVX2 path is dispatched at runtime via
//! `is_x86_feature_detected!`; it is required to be bit-identical to the
//! scalar path (pure integer lane arithmetic, no reassociation of anything
//! order-sensitive), so stream bytes never depend on the host CPU. Every
//! other target — or a `simd`-less build — compiles only the scalar code.
//!
//! Dispatch outcome is cached in a process-wide atomic so steady-state calls
//! pay one relaxed load, not a `cpuid`.

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
use std::sync::atomic::{AtomicU8, Ordering};

/// Whether the AVX2 paths are compiled in *and* supported by this CPU.
///
/// Always `false` without the `simd` feature or off `x86_64`; callers can
/// use it to report which path a benchmark actually measured.
#[inline]
pub fn avx2_enabled() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        // 0 = unknown, 1 = no, 2 = yes.
        static AVX2: AtomicU8 = AtomicU8::new(0);
        match AVX2.load(Ordering::Relaxed) {
            0 => {
                let yes = std::arch::is_x86_feature_detected!("avx2");
                AVX2.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
                yes
            }
            n => n == 2,
        }
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

// ---- zigzag block transform ---------------------------------------------

/// Zigzag-encode `src` into `dst` (same length) and return the OR-fold of
/// the encoded values — `width(fold)` is the block's packing width.
#[inline]
pub fn zigzag_encode_block(src: &[i64], dst: &mut [u64]) -> u64 {
    debug_assert_eq!(src.len(), dst.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_enabled() {
        // SAFETY: AVX2 support was just verified at runtime.
        return unsafe { zigzag_encode_block_avx2(src, dst) };
    }
    zigzag_encode_block_scalar(src, dst)
}

#[inline]
fn zigzag_encode_block_scalar(src: &[i64], dst: &mut [u64]) -> u64 {
    let mut folded = 0u64;
    for (d, &v) in dst.iter_mut().zip(src) {
        let z = crate::varint::zigzag_encode(v);
        *d = z;
        folded |= z;
    }
    folded
}

/// Zigzag-decode `src` into `dst` (same length).
#[inline]
pub fn zigzag_decode_block(src: &[u64], dst: &mut [i64]) {
    debug_assert_eq!(src.len(), dst.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_enabled() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { zigzag_decode_block_avx2(src, dst) };
        return;
    }
    zigzag_decode_block_scalar(src, dst);
}

#[inline]
fn zigzag_decode_block_scalar(src: &[u64], dst: &mut [i64]) {
    for (d, &z) in dst.iter_mut().zip(src) {
        *d = crate::varint::zigzag_decode(z);
    }
}

// ---- Fenwick rescale halving --------------------------------------------

/// Ceil-halve every frequency (`(f >> 1) + (f & 1)` per `u32` slot) in place
/// and return the sum of the halved values. Frequencies `>= 1` stay `>= 1`.
#[inline]
pub fn halve_freqs(freqs: &mut [u32]) -> u64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_enabled() {
        // SAFETY: AVX2 support was just verified at runtime.
        return unsafe { halve_freqs_avx2(freqs) };
    }
    halve_freqs_scalar(freqs)
}

#[inline]
fn halve_freqs_scalar(freqs: &mut [u32]) -> u64 {
    // Two u32 lanes per u64: `(x >> 1) + (x & 1)` is `ceil(x / 2)` per lane
    // (the halves cannot carry across the lane boundary because each lane's
    // high bit is cleared by the shift mask before the add).
    let mut total = 0u64;
    let mut chunks = freqs.chunks_exact_mut(2);
    for pair in &mut chunks {
        let v = (pair[0] as u64) | ((pair[1] as u64) << 32);
        let h = ((v >> 1) & 0x7FFF_FFFF_7FFF_FFFF) + (v & 0x0000_0001_0000_0001);
        pair[0] = h as u32;
        pair[1] = (h >> 32) as u32;
        total += (h & 0xFFFF_FFFF) + (h >> 32);
    }
    for f in chunks.into_remainder() {
        let h = (*f >> 1) + (*f & 1);
        *f = h;
        total += h as u64;
    }
    total
}

// ---- radial-delta lane kernels ------------------------------------------

/// Backward differences in place: `v[i] -= v[i-1]` for `i >= 1` (the delta
/// transform). Every difference is independent, so the AVX2 path runs four
/// lanes per step.
#[inline]
pub fn diff_in_place(vals: &mut [i64]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_enabled() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { diff_in_place_avx2(vals) };
        return;
    }
    diff_in_place_scalar(vals);
}

#[inline]
fn diff_in_place_scalar(vals: &mut [i64]) {
    for i in (1..vals.len()).rev() {
        vals[i] = vals[i].wrapping_sub(vals[i - 1]);
    }
}

/// Inclusive prefix sum in place: `v[i] += v[i-1]` for `i >= 1` (the delta
/// inverse). The carry chain is serial; the scalar path keeps the running
/// sum in a register, the AVX2 path uses the in-lane shift-add scan.
#[inline]
pub fn prefix_sum_in_place(vals: &mut [i64]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_enabled() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { prefix_sum_in_place_avx2(vals) };
        return;
    }
    prefix_sum_in_place_scalar(vals);
}

#[inline]
fn prefix_sum_in_place_scalar(vals: &mut [i64]) {
    // Carrying the accumulator in a register avoids the store-to-load
    // forward of re-reading `vals[i - 1]` every iteration.
    let mut acc = match vals.first() {
        Some(&v) => v,
        None => return,
    };
    for v in &mut vals[1..] {
        acc = acc.wrapping_add(*v);
        *v = acc;
    }
}

// ---- AVX2 implementations ------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn zigzag_encode_block_avx2(src: &[i64], dst: &mut [u64]) -> u64 {
    use std::arch::x86_64::*;
    let n = src.len().min(dst.len());
    let mut fold = _mm256_setzero_si256();
    let zero = _mm256_setzero_si256();
    let mut i = 0;
    while i + 4 <= n {
        let v = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
        // zigzag(v) = (v << 1) ^ (v >> 63); the arithmetic shift is emulated
        // with a signed compare (all-ones lane exactly when v < 0).
        let neg = _mm256_cmpgt_epi64(zero, v);
        let z = _mm256_xor_si256(_mm256_slli_epi64(v, 1), neg);
        _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, z);
        fold = _mm256_or_si256(fold, z);
        i += 4;
    }
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, fold);
    let mut folded = lanes[0] | lanes[1] | lanes[2] | lanes[3];
    folded |= zigzag_encode_block_scalar(&src[i..n], &mut dst[i..n]);
    folded
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn zigzag_decode_block_avx2(src: &[u64], dst: &mut [i64]) {
    use std::arch::x86_64::*;
    let n = src.len().min(dst.len());
    let one = _mm256_set1_epi64x(1);
    let zero = _mm256_setzero_si256();
    let mut i = 0;
    while i + 4 <= n {
        let z = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
        // unzigzag(z) = (z >> 1) ^ -(z & 1)
        let sign = _mm256_sub_epi64(zero, _mm256_and_si256(z, one));
        let v = _mm256_xor_si256(_mm256_srli_epi64(z, 1), sign);
        _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, v);
        i += 4;
    }
    zigzag_decode_block_scalar(&src[i..n], &mut dst[i..n]);
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn halve_freqs_avx2(freqs: &mut [u32]) -> u64 {
    use std::arch::x86_64::*;
    let one = _mm256_set1_epi32(1);
    let zero = _mm256_setzero_si256();
    // Accumulate lane sums as u64 pairs (frequencies are < 2^17, so even
    // unwidened u32 sums could not overflow, but the widening add is free).
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    let n = freqs.len();
    while i + 8 <= n {
        let v = _mm256_loadu_si256(freqs.as_ptr().add(i) as *const __m256i);
        let h = _mm256_add_epi32(_mm256_srli_epi32(v, 1), _mm256_and_si256(v, one));
        _mm256_storeu_si256(freqs.as_mut_ptr().add(i) as *mut __m256i, h);
        acc = _mm256_add_epi64(
            acc,
            _mm256_add_epi64(_mm256_unpacklo_epi32(h, zero), _mm256_unpackhi_epi32(h, zero)),
        );
        i += 8;
    }
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let mut total = lanes[0].wrapping_add(lanes[1]).wrapping_add(lanes[2]).wrapping_add(lanes[3]);
    total += halve_freqs_scalar(&mut freqs[i..]);
    total
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn diff_in_place_avx2(vals: &mut [i64]) {
    use std::arch::x86_64::*;
    let n = vals.len();
    if n < 2 {
        return;
    }
    // Process descending so each chunk reads original values: the write to
    // `[i, i + 4)` only clobbers indices a *lower* chunk never reads.
    let mut i = n;
    while i >= 5 {
        let start = i - 4;
        let cur = _mm256_loadu_si256(vals.as_ptr().add(start) as *const __m256i);
        let prev = _mm256_loadu_si256(vals.as_ptr().add(start - 1) as *const __m256i);
        let d = _mm256_sub_epi64(cur, prev);
        _mm256_storeu_si256(vals.as_mut_ptr().add(start) as *mut __m256i, d);
        i = start;
    }
    diff_in_place_scalar(&mut vals[..i]);
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn prefix_sum_in_place_avx2(vals: &mut [i64]) {
    use std::arch::x86_64::*;
    let n = vals.len();
    if n < 2 {
        return;
    }
    let mut carry = _mm256_set1_epi64x(vals[0]);
    let mut i = 1;
    while i + 4 <= n {
        let mut x = _mm256_loadu_si256(vals.as_ptr().add(i) as *const __m256i);
        // In-lane inclusive scan of [a, b, c, d]:
        //   step 1 (shift one 64-bit lane within each 128-bit half):
        //     [a, a+b, c, c+d]
        x = _mm256_add_epi64(x, _mm256_slli_si256(x, 8));
        //   step 2 (broadcast a+b into the upper half only):
        //     [a, a+b, a+b+c, a+b+c+d]
        let lo_hi = _mm256_permute4x64_epi64(x, 0b01_01_01_01);
        let mask = _mm256_set_epi64x(-1, -1, 0, 0);
        x = _mm256_add_epi64(x, _mm256_and_si256(lo_hi, mask));
        // Add the running carry and store.
        x = _mm256_add_epi64(x, carry);
        _mm256_storeu_si256(vals.as_mut_ptr().add(i) as *mut __m256i, x);
        // New carry = last element, broadcast.
        carry = _mm256_permute4x64_epi64(x, 0b11_11_11_11);
        i += 4;
    }
    let mut acc = _mm256_extract_epi64(carry, 0);
    for v in &mut vals[i..] {
        acc = acc.wrapping_add(*v);
        *v = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_i64(n: usize) -> Vec<i64> {
        (0..n as u64)
            .map(|i| {
                let r = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) as i64;
                r >> [0u32, 13, 33, 51][(i % 4) as usize]
            })
            .collect()
    }

    #[test]
    fn zigzag_block_matches_scalar_per_value() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 31, 128, 129] {
            let src = mixed_i64(n);
            let mut enc = vec![0u64; n];
            let folded = zigzag_encode_block(&src, &mut enc);
            let mut expect_fold = 0u64;
            for (i, &v) in src.iter().enumerate() {
                let z = crate::varint::zigzag_encode(v);
                assert_eq!(enc[i], z, "n={n} i={i}");
                expect_fold |= z;
            }
            assert_eq!(folded, expect_fold, "n={n}");
            let mut dec = vec![0i64; n];
            zigzag_decode_block(&enc, &mut dec);
            assert_eq!(dec, src, "n={n}");
        }
    }

    #[test]
    fn halve_freqs_matches_ceil_halving() {
        for n in [0usize, 1, 2, 7, 8, 9, 16, 255, 257] {
            let mut freqs: Vec<u32> =
                (0..n as u32).map(|i| (i.wrapping_mul(2654435761) >> 15) % (1 << 17) + 1).collect();
            let expect: Vec<u32> = freqs.iter().map(|&f| f.div_ceil(2)).collect();
            let expect_total: u64 = expect.iter().map(|&f| f as u64).sum();
            let total = halve_freqs(&mut freqs);
            assert_eq!(freqs, expect, "n={n}");
            assert_eq!(total, expect_total, "n={n}");
        }
    }

    #[test]
    fn diff_and_prefix_sum_invert() {
        for n in [0usize, 1, 2, 4, 5, 9, 64, 100, 1001] {
            let orig = mixed_i64(n);
            let mut v = orig.clone();
            diff_in_place(&mut v);
            // Oracle: plain backward differences.
            for i in (1..n).rev() {
                assert_eq!(v[i], orig[i].wrapping_sub(orig[i - 1]), "n={n} i={i}");
            }
            prefix_sum_in_place(&mut v);
            assert_eq!(v, orig, "n={n}");
        }
    }

    #[test]
    fn extremes_wrap_identically() {
        let orig = vec![i64::MIN, i64::MAX, 0, i64::MIN, -1, i64::MAX, 1, i64::MIN, 17];
        let mut v = orig.clone();
        diff_in_place(&mut v);
        prefix_sum_in_place(&mut v);
        assert_eq!(v, orig);
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[test]
    fn avx2_paths_match_scalar_exactly() {
        if !avx2_enabled() {
            eprintln!("avx2 not available; dispatch test degenerates to scalar-vs-scalar");
        }
        for n in [0usize, 1, 4, 5, 8, 9, 63, 64, 65, 500] {
            let src = mixed_i64(n);
            let mut a = vec![0u64; n];
            let mut b = vec![0u64; n];
            // SAFETY: guarded by the runtime check above (scalar-vs-scalar
            // when the CPU lacks AVX2 — the unsafe call is skipped).
            let fold_simd = if avx2_enabled() {
                unsafe { zigzag_encode_block_avx2(&src, &mut a) }
            } else {
                zigzag_encode_block_scalar(&src, &mut a)
            };
            let fold_scalar = zigzag_encode_block_scalar(&src, &mut b);
            assert_eq!(a, b, "zigzag encode n={n}");
            assert_eq!(fold_simd, fold_scalar, "fold n={n}");

            let mut da = vec![0i64; n];
            let mut db = vec![0i64; n];
            if avx2_enabled() {
                unsafe { zigzag_decode_block_avx2(&a, &mut da) };
            } else {
                zigzag_decode_block_scalar(&a, &mut da);
            }
            zigzag_decode_block_scalar(&b, &mut db);
            assert_eq!(da, db, "zigzag decode n={n}");

            let mut fa = src.clone();
            let mut fb = src.clone();
            if avx2_enabled() {
                unsafe { diff_in_place_avx2(&mut fa) };
            } else {
                diff_in_place_scalar(&mut fa);
            }
            diff_in_place_scalar(&mut fb);
            assert_eq!(fa, fb, "diff n={n}");

            if avx2_enabled() {
                unsafe { prefix_sum_in_place_avx2(&mut fa) };
            } else {
                prefix_sum_in_place_scalar(&mut fa);
            }
            prefix_sum_in_place_scalar(&mut fb);
            assert_eq!(fa, fb, "prefix sum n={n}");

            let mut ha: Vec<u32> = src.iter().map(|&v| (v as u32) % (1 << 17) + 1).collect();
            let mut hb = ha.clone();
            let ta = if avx2_enabled() {
                unsafe { halve_freqs_avx2(&mut ha) }
            } else {
                halve_freqs_scalar(&mut ha)
            };
            let tb = halve_freqs_scalar(&mut hb);
            assert_eq!(ha, hb, "halve n={n}");
            assert_eq!(ta, tb, "halve total n={n}");
        }
    }
}
