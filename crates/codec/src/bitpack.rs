//! Fixed-width bit-packing and frame-of-reference (FOR) encoding.
//!
//! The paper's related work (§2.2) surveys lightweight column-store codecs —
//! delta, run-length, scaling, bit-packing \[18, 12, 6\]. These two are
//! provided both as comparison points for the entropy-coding path DBGC
//! actually uses (see the `codec_ablation` experiment) and as generally
//! useful building blocks:
//!
//! * [`bitpack_encode`] — block-wise fixed-width packing: each block of 128
//!   values is stored with the bit width of its largest zigzagged value;
//! * [`for_encode`] — frame of reference: per block, the minimum is stored
//!   once and offsets are bit-packed (ideal for sorted or clustered data).

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;
use crate::varint::{write_uvarint, ByteReader};

/// Values per block; small enough to adapt to local ranges, large enough to
/// amortize the per-block width byte.
pub const BLOCK: usize = 128;

#[inline]
fn width_of(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// Bit-pack signed integers (zigzag + per-block fixed width).
///
/// Layout: `varint count | per block: width byte + packed values`.
pub fn bitpack_encode(vals: &[i64]) -> Vec<u8> {
    let mut out = Vec::new();
    write_uvarint(&mut out, vals.len() as u64);
    let mut bits = BitWriter::new();
    let mut zz = [0u64; BLOCK];
    for block in vals.chunks(BLOCK) {
        // OR-folding the zigzagged values gives the block width with a single
        // leading_zeros: width(a | b) == max(width(a), width(b)). The zigzag
        // transform and fold run through the batch kernel (AVX2 when the
        // `simd` feature detects it; identical bytes either way).
        let zz = &mut zz[..block.len()];
        let folded = crate::simd::zigzag_encode_block(block, zz);
        let width = width_of(folded);
        bits.write_bits(width as u64, 7);
        bits.write_bits_batch(zz, width);
    }
    out.extend_from_slice(&bits.finish());
    out
}

/// Invert [`bitpack_encode`].
pub fn bitpack_decode(bytes: &[u8]) -> Result<Vec<i64>, CodecError> {
    let mut r = ByteReader::new(bytes);
    let n = r.read_uvarint()? as usize;
    // Each block of up to BLOCK values carries a 7-bit width header, so a
    // payload of B bytes cannot hold more than ~B * 8/7 * BLOCK values.
    // Declared counts above that are structurally impossible.
    if n > r.remaining().saturating_mul(147).saturating_add(BLOCK) {
        return Err(CodecError::CorruptStream("bitpack count exceeds payload capacity"));
    }
    let payload = r.read_slice(r.remaining())?;
    let mut bits = BitReader::new(payload);
    let mut out = Vec::with_capacity(n.min(1 << 16));
    let mut raw = [0u64; BLOCK];
    while out.len() < n {
        let width = bits.read_bits(7)? as u32;
        if width > 64 {
            return Err(CodecError::CorruptStream("bitpack width out of range"));
        }
        let in_block = BLOCK.min(n - out.len());
        let raw = &mut raw[..in_block];
        bits.read_bits_batch(width, raw)?;
        let start = out.len();
        out.resize(start + in_block, 0);
        crate::simd::zigzag_decode_block(raw, &mut out[start..]);
    }
    Ok(out)
}

/// Frame-of-reference encode: per block, `varint zigzag(min)` then the
/// offsets from the minimum bit-packed at the block's required width.
pub fn for_encode(vals: &[i64]) -> Vec<u8> {
    let mut out = Vec::new();
    write_uvarint(&mut out, vals.len() as u64);
    // Per-block minima first (varint), then one packed bitstream.
    let mut bits = BitWriter::new();
    let mut header = Vec::new();
    let mut offsets = [0u64; BLOCK];
    for block in vals.chunks(BLOCK) {
        let min = block.iter().copied().min().expect("chunks are non-empty");
        crate::varint::write_ivarint(&mut header, min);
        // Wrapping subtraction is exact here: the true offset is < 2^64 and
        // two's-complement wrap-around reproduces it bit-for-bit.
        let offsets = &mut offsets[..block.len()];
        let mut folded = 0u64;
        for (dst, &v) in offsets.iter_mut().zip(block) {
            let off = v.wrapping_sub(min) as u64;
            *dst = off;
            folded |= off;
        }
        let width = width_of(folded);
        bits.write_bits(width as u64, 7);
        bits.write_bits_batch(offsets, width);
    }
    write_uvarint(&mut out, header.len() as u64);
    out.extend_from_slice(&header);
    out.extend_from_slice(&bits.finish());
    out
}

/// Invert [`for_encode`].
pub fn for_decode(bytes: &[u8]) -> Result<Vec<i64>, CodecError> {
    let mut r = ByteReader::new(bytes);
    let n = r.read_uvarint()? as usize;
    // Same structural bound as `bitpack_decode`: ≥ 7 payload bits per block.
    if n > r.remaining().saturating_mul(147).saturating_add(BLOCK) {
        return Err(CodecError::CorruptStream("FOR count exceeds payload capacity"));
    }
    let header_len = r.read_uvarint()? as usize;
    let header = r.read_slice(header_len)?;
    let mut hr = ByteReader::new(header);
    let payload = r.read_slice(r.remaining())?;
    let mut bits = BitReader::new(payload);
    let mut out = Vec::with_capacity(n.min(1 << 16));
    let mut raw = [0u64; BLOCK];
    while out.len() < n {
        let min = hr.read_ivarint()?;
        let width = bits.read_bits(7)? as u32;
        if width > 64 {
            return Err(CodecError::CorruptStream("FOR width out of range"));
        }
        let in_block = BLOCK.min(n - out.len());
        let raw = &mut raw[..in_block];
        bits.read_bits_batch(width, raw)?;
        out.extend(raw.iter().map(|&off| min.wrapping_add(off as i64)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bitpack_roundtrip_small_values() {
        let vals: Vec<i64> = (0..1000).map(|i| (i % 13) - 6).collect();
        let enc = bitpack_encode(&vals);
        assert_eq!(bitpack_decode(&enc).unwrap(), vals);
        // 13 values → zigzag ≤ 12 → 4 bits each plus headers.
        assert!(enc.len() < 1000, "got {} bytes", enc.len());
    }

    #[test]
    fn for_exploits_clustered_ranges() {
        // Values clustered around a huge base: FOR strips the base per block.
        let vals: Vec<i64> = (0..1024).map(|i| 5_000_000_000 + (i % 7)).collect();
        let f = for_encode(&vals);
        let bp = bitpack_encode(&vals);
        assert_eq!(for_decode(&f).unwrap(), vals);
        assert!(
            f.len() * 4 < bp.len(),
            "FOR {} should be far below plain bitpack {}",
            f.len(),
            bp.len()
        );
    }

    #[test]
    fn empty_and_single() {
        for vals in [vec![], vec![42i64], vec![i64::MIN], vec![i64::MAX]] {
            assert_eq!(bitpack_decode(&bitpack_encode(&vals)).unwrap(), vals);
            assert_eq!(for_decode(&for_encode(&vals)).unwrap(), vals);
        }
    }

    #[test]
    fn block_boundary_sizes() {
        for n in [BLOCK - 1, BLOCK, BLOCK + 1, 3 * BLOCK] {
            let vals: Vec<i64> = (0..n as i64).collect();
            assert_eq!(bitpack_decode(&bitpack_encode(&vals)).unwrap(), vals);
            assert_eq!(for_decode(&for_encode(&vals)).unwrap(), vals);
        }
    }

    #[test]
    fn truncated_streams_error() {
        let vals: Vec<i64> = (0..500).collect();
        let enc = bitpack_encode(&vals);
        assert!(bitpack_decode(&enc[..enc.len() / 2]).is_err());
        let enc = for_encode(&vals);
        assert!(for_decode(&enc[..enc.len() / 2]).is_err());
    }

    #[test]
    fn width_zero_blocks() {
        // All-zero input packs to width 0: headers only.
        let vals = vec![0i64; 10_000];
        let enc = bitpack_encode(&vals);
        assert!(enc.len() < 100, "got {} bytes", enc.len());
        assert_eq!(bitpack_decode(&enc).unwrap(), vals);
    }

    proptest! {
        #[test]
        fn bitpack_roundtrip(vals in proptest::collection::vec(any::<i64>(), 0..700)) {
            prop_assert_eq!(bitpack_decode(&bitpack_encode(&vals)).unwrap(), vals);
        }

        #[test]
        fn for_roundtrip(vals in proptest::collection::vec(any::<i64>(), 0..700)) {
            prop_assert_eq!(for_decode(&for_encode(&vals)).unwrap(), vals);
        }
    }
}
