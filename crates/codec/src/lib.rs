//! Entropy-coding substrates for the DBGC LiDAR point-cloud compressor.
//!
//! The paper composes its pipeline out of classic lightweight database
//! compression techniques (§2.2): delta coding, data scaling, run-length
//! encoding, arithmetic coding, and Deflate. This crate implements all of
//! them from scratch:
//!
//! * [`bitio`] — MSB-first bit reader/writer;
//! * [`varint`] — LEB128 varints and zigzag mapping for signed integers;
//! * [`delta`] — delta encoding (paper Definition 2.3);
//! * [`rle`] — run-length encoding;
//! * [`entropy`] — Shannon entropy of a symbol sequence (paper §2.1);
//! * [`range`] — a carryless range coder (drop-in replacement for the
//!   arithmetic coder \[58\] the paper uses);
//! * [`dual`] — interleaved two-lane range coding, which breaks the decoder's
//!   serial interval-state dependency chain for dense symbol streams;
//! * [`wide`] — the four-lane generalization of [`dual`] (the "wide" entropy
//!   profile), trading three extra flush tails for four independent interval
//!   chains the CPU can overlap;
//! * [`simd`] — feature-gated `core::arch` helpers with mandatory scalar
//!   fallbacks, used by the batch bitpack/delta kernels;
//! * [`model`] — adaptive frequency models (order-0 and contextual) backed by
//!   Fenwick trees;
//! * [`huffman`] — canonical Huffman coding;
//! * [`lz77`] — LZ77 with hash-chain match search;
//! * [`deflate`] — LZ77 + two canonical Huffman tables, a deflate-like
//!   composite (both ends of the wire are ours, so RFC 1951 framing is not
//!   reproduced);
//! * [`bitpack`] — fixed-width bit-packing and frame-of-reference encoding,
//!   the column-store codecs of the paper's §2.2 survey, used as comparison
//!   points in the codec-ablation experiment;
//! * [`intseq`] — integer-sequence codecs combining the above, the building
//!   blocks consumed by the DBGC coordinate compressor.

#![warn(missing_docs)]

pub mod bitio;
pub mod bitpack;
pub mod deflate;
pub mod delta;
pub mod dual;
pub mod entropy;
pub mod error;
pub mod huffman;
pub mod intseq;
pub mod lz77;
pub mod model;
pub mod range;
pub mod rle;
pub mod simd;
pub mod varint;
pub mod wide;

pub use bitio::{BitReader, BitWriter};
pub use bitpack::{bitpack_decode, bitpack_encode, for_decode, for_encode};
pub use deflate::{deflate_compress, deflate_decompress};
pub use delta::{delta_decode, delta_decode_in_place, delta_encode, delta_encode_in_place};
pub use dual::{DualRangeDecoder, DualRangeEncoder, RangeSink, RangeSource};
pub use entropy::shannon_entropy;
pub use error::CodecError;
pub use huffman::{HuffmanDecoder, HuffmanEncoder};
pub use model::{AdaptiveModel, ContextModel};
pub use range::{RangeDecoder, RangeEncoder};
pub use rle::{rle_decode, rle_decode_limited, rle_encode};
pub use varint::{read_uvarint, write_uvarint, zigzag_decode, zigzag_encode, ByteReader};
pub use wide::{EntropyProfile, WideRangeDecoder, WideRangeEncoder};
