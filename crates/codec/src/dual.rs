//! Interleaved two-lane range coding.
//!
//! A range decoder is a serial dependency chain: each symbol's divide →
//! compare → renormalize must retire before the next symbol can start.
//! Splitting a symbol stream across two *independent* coder lanes — even
//! symbols through lane A, odd through lane B — breaks the interval-state
//! chain: the CPU can overlap lane B's divide with lane A's renormalize,
//! which is where the remaining decode time lives once the models are cheap
//! (the shape batched/vectorized coders like RIDDLE exploit).
//!
//! The *model* is still updated in stream order by the caller, so symbol
//! probabilities — and compression ratio — are identical to the single-lane
//! coder; only the interval state is duplicated. The cost is one extra
//! 8-byte flush tail and a varint frame header per stream.
//!
//! Framing: `uvarint len(lane A) | lane A bytes | lane B bytes`.

use crate::error::CodecError;
use crate::range::{RangeDecoder, RangeEncoder};
use crate::varint::{write_uvarint, ByteReader};

/// Abstraction over range-coder encode targets, so one model implementation
/// drives both the single-lane [`RangeEncoder`] and [`DualRangeEncoder`].
pub trait RangeSink {
    /// Encode a symbol occupying `[cum, cum + freq)` out of `total`.
    fn put(&mut self, cum: u64, freq: u64, total: u64);
}

/// Abstraction over range-coder decode sources (mirror of [`RangeSink`]).
pub trait RangeSource {
    /// Slot of the next symbol under a model with the given `total`.
    fn peek_freq(&mut self, total: u64) -> Result<u64, CodecError>;
    /// Consume the symbol occupying `[cum, cum + freq)` out of `total`.
    fn consume(&mut self, cum: u64, freq: u64, total: u64);
}

impl RangeSink for RangeEncoder {
    #[inline]
    fn put(&mut self, cum: u64, freq: u64, total: u64) {
        self.encode(cum, freq, total);
    }
}

impl RangeSource for RangeDecoder<'_> {
    #[inline]
    fn peek_freq(&mut self, total: u64) -> Result<u64, CodecError> {
        self.decode_freq(total)
    }

    #[inline]
    fn consume(&mut self, cum: u64, freq: u64, total: u64) {
        self.decode(cum, freq, total);
    }
}

/// Two-lane range encoder: symbols alternate lanes, starting with lane A.
#[derive(Debug, Default)]
pub struct DualRangeEncoder {
    lanes: [RangeEncoder; 2],
    turn: usize,
}

impl DualRangeEncoder {
    /// A fresh encoder; the first symbol goes to lane A.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode a symbol on the current lane and advance the turn.
    #[inline]
    pub fn encode(&mut self, cum: u64, freq: u64, total: u64) {
        self.lanes[self.turn].encode(cum, freq, total);
        self.turn ^= 1;
    }

    /// Flush both lanes and return the framed stream.
    pub fn finish(self) -> Vec<u8> {
        let [a, b] = self.lanes;
        let a = a.finish();
        let b = b.finish();
        let mut out = Vec::with_capacity(a.len() + b.len() + 5);
        write_uvarint(&mut out, a.len() as u64);
        out.extend_from_slice(&a);
        out.extend_from_slice(&b);
        out
    }
}

impl RangeSink for DualRangeEncoder {
    #[inline]
    fn put(&mut self, cum: u64, freq: u64, total: u64) {
        self.encode(cum, freq, total);
    }
}

/// Two-lane range decoder over a [`DualRangeEncoder`] frame.
#[derive(Debug)]
pub struct DualRangeDecoder<'a> {
    lanes: [RangeDecoder<'a>; 2],
    turn: usize,
}

impl<'a> DualRangeDecoder<'a> {
    /// Parse the lane frame and start both decoders.
    pub fn new(buf: &'a [u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(buf);
        let len_a = r.read_uvarint()? as usize;
        if len_a > r.remaining() {
            return Err(CodecError::CorruptStream("dual-lane frame shorter than lane A length"));
        }
        let a = r.read_slice(len_a)?;
        let b = r.read_slice(r.remaining())?;
        Ok(DualRangeDecoder { lanes: [RangeDecoder::new(a), RangeDecoder::new(b)], turn: 0 })
    }

    /// Slot of the next symbol on the current lane.
    #[inline]
    pub fn decode_freq(&mut self, total: u64) -> Result<u64, CodecError> {
        self.lanes[self.turn].decode_freq(total)
    }

    /// Consume the symbol on the current lane and advance the turn.
    #[inline]
    pub fn decode(&mut self, cum: u64, freq: u64, total: u64) {
        self.lanes[self.turn].decode(cum, freq, total);
        self.turn ^= 1;
    }
}

impl RangeSource for DualRangeDecoder<'_> {
    #[inline]
    fn peek_freq(&mut self, total: u64) -> Result<u64, CodecError> {
        self.decode_freq(total)
    }

    #[inline]
    fn consume(&mut self, cum: u64, freq: u64, total: u64) {
        self.decode(cum, freq, total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AdaptiveModel;

    #[test]
    fn dual_roundtrip_adaptive_bytes() {
        let data: Vec<u8> = (0..30_000u32).map(|i| (i.wrapping_mul(0x9E37) >> 9) as u8).collect();
        let mut model = AdaptiveModel::new(256);
        let mut enc = DualRangeEncoder::new();
        for &b in &data {
            model.encode(&mut enc, b as usize);
        }
        let buf = enc.finish();
        let mut model = AdaptiveModel::new(256);
        let mut dec = DualRangeDecoder::new(&buf).unwrap();
        for &b in &data {
            assert_eq!(model.decode(&mut dec).unwrap(), b as usize);
        }
    }

    #[test]
    fn dual_empty_stream() {
        let buf = DualRangeEncoder::new().finish();
        // Both lanes flush their 8-byte tails even with no symbols.
        assert_eq!(buf.len(), 1 + 16);
        assert!(DualRangeDecoder::new(&buf).is_ok());
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let mut model = AdaptiveModel::new(16);
        let mut enc = DualRangeEncoder::new();
        for i in 0..100 {
            model.encode(&mut enc, i % 16);
        }
        let buf = enc.finish();
        // A frame whose declared lane A exceeds the payload is corrupt.
        assert!(DualRangeDecoder::new(&buf[..1]).is_err());
        // Cutting lane B starves the odd lane: decode must error, not loop.
        let mut model = AdaptiveModel::new(16);
        let mut dec = DualRangeDecoder::new(&buf[..buf.len() - 12]).unwrap();
        let mut failed = false;
        for _ in 0..100 {
            if model.decode(&mut dec).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "truncated lane must surface an error");
    }

    #[test]
    fn compression_matches_single_lane_closely() {
        // Splitting the interval state costs one extra flush tail + header,
        // not ratio: the shared model sees the identical symbol sequence.
        let data: Vec<u8> = (0..40_000).map(|i| u8::from(i % 19 == 0)).collect();
        let single = crate::range::rc_compress_bytes(&data);
        let mut model = AdaptiveModel::new(256);
        let mut enc = DualRangeEncoder::new();
        for &b in &data {
            model.encode(&mut enc, b as usize);
        }
        let dual = enc.finish();
        assert!(dual.len() <= single.len() + 32, "dual {} vs single {}", dual.len(), single.len());
    }
}
