//! Chaos-injected end-to-end transport tests.
//!
//! Each seed deterministically derives a fault schedule (bit flips, drops,
//! disconnects, stalls, duplicated/reordered chunks, bandwidth collapses),
//! drives a resilient client session through it into a session server, and
//! asserts total recovery: every frame stored exactly once, in order, with
//! intact bytes, and the server's intact-frame counters partitioning
//! exactly. `cargo test -p dbgc-net --test chaos` runs the smoke set; the
//! full 1000-seed sweep is `#[ignore]`d for CI and run with
//! `cargo test -p dbgc-net --release --test chaos -- --ignored`.

use dbgc_net::chaos::{run_chaos, run_chaos_with_schedule, ChaosConfig};
use dbgc_net::FaultSchedule;

fn assert_recovers(config: &ChaosConfig) {
    let report = run_chaos(config);
    if let Err(e) = report.verify() {
        panic!("{e}\n{}", report.summary());
    }
}

#[test]
fn smoke_lossy_seeds_1_through_8() {
    for seed in 1..=8 {
        assert_recovers(&ChaosConfig::smoke(seed));
    }
}

#[test]
fn smoke_hostile_seeds_101_through_108() {
    for seed in 101..=108 {
        assert_recovers(&ChaosConfig::hostile(seed));
    }
}

#[test]
fn replay_from_seed_alone_is_deterministic() {
    // The schedule, payloads, and delivery outcome are all functions of the
    // seed; only wall-clock-dependent counters (retries, timeouts) may vary
    // between runs.
    let config = ChaosConfig::smoke(5);
    let a = run_chaos(&config);
    let b = run_chaos(&config);
    a.verify().unwrap();
    b.verify().unwrap();
    assert_eq!(a.stored_sequences, b.stored_sequences);
    assert_eq!(config.schedule().to_bytes(), config.schedule().to_bytes());
}

#[test]
fn serialized_schedule_reruns_identically() {
    // A schedule that survived a corpus roundtrip drives the same bytes
    // through the link — the fuzzer's wire-fault replay path.
    let config = ChaosConfig::smoke(7);
    let schedule = config.schedule();
    let restored = FaultSchedule::from_bytes(&schedule.to_bytes());
    assert_eq!(schedule, restored);
    let report = run_chaos_with_schedule(&config, restored);
    report.verify().unwrap_or_else(|e| panic!("{e}\n{}", report.summary()));
}

#[test]
fn smoke_set_actually_injects_faults() {
    // Guard against the harness silently degenerating into a clean-pipe
    // test: across the smoke seeds, several distinct fault kinds must fire.
    let mut by_kind = [0u64; 7];
    for seed in 1..=8 {
        let report = run_chaos(&ChaosConfig::smoke(seed));
        for (k, n) in report.faults_by_kind.iter().enumerate() {
            by_kind[k] += n;
        }
    }
    let kinds_seen = by_kind.iter().filter(|&&n| n > 0).count();
    assert!(kinds_seen >= 4, "only {kinds_seen} fault kinds fired: {by_kind:?}");
}

/// The acceptance sweep: 1000 seeded schedules, every one recovered.
/// Ignored by default (minutes of wall clock); CI runs the smoke subset.
#[test]
#[ignore = "full acceptance sweep; run with --release -- --ignored"]
fn sweep_1000_seeds() {
    let mut failures = Vec::new();
    for seed in 1..=700u64 {
        let report = run_chaos(&ChaosConfig::smoke(seed));
        if let Err(e) = report.verify() {
            failures.push(e);
        }
    }
    for seed in 701..=1000u64 {
        let report = run_chaos(&ChaosConfig::hostile(seed));
        if let Err(e) = report.verify() {
            failures.push(e);
        }
    }
    assert!(failures.is_empty(), "{} seeds failed:\n{}", failures.len(), failures.join("\n"));
}
