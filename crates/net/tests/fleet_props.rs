//! Property tests for the fleet admission controller.
//!
//! Two guarantees, under any interleaving of connects, disconnects, and
//! evictions the generator can produce:
//!
//! 1. the number of active sessions **never** exceeds the cap — including
//!    under genuinely concurrent racing hellos across shards (the CAS gate);
//! 2. a refused client gets a clean typed outcome — a [`Control::Reject`]
//!    frame on the wire, surfaced as [`NetError::Rejected`] by the resilient
//!    client — never a hang or a reset-by-peer.

use dbgc_net::fleet::{FleetConfig, FleetHandle, FleetServer};
use dbgc_net::protocol::{write_frame, Control, FrameReader, REJECT_FLEET_FULL};
use dbgc_net::session::{ResilientClient, SessionConfig};
use dbgc_net::NetError;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// One scripted step against a running fleet.
#[derive(Debug, Clone, Copy)]
enum Action {
    /// Open a connection and hello as session `id`.
    Connect(u64),
    /// Drop the most recent live connection (the session slot stays; the
    /// tenant's state must survive for reconnects).
    Disconnect,
    /// Evict session `id`, releasing its slot if it was admitted.
    Evict(u64),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    (0usize..4, 0u64..12).prop_map(|(kind, id)| match kind {
        0 | 1 => Action::Connect(id), // bias toward connects: they carry the property
        2 => Action::Disconnect,
        _ => Action::Evict(id),
    })
}

/// Hello as `id` over a fresh connection and wait for the server's verdict.
/// Returns `Ok(admitted)`; panics if the server hangs up without answering
/// (the "no hang, no reset" half of the property).
fn hello(handle: &FleetHandle, id: u64) -> (bool, Option<(dbgc_net::fleet::FleetConnTx, u32)>) {
    let (mut tx, rx) = handle.connect(id).expect("fleet alive");
    write_frame(&mut tx, &Control::Hello { session_id: id, last_acked: 0 }.to_frame())
        .expect("hello write");
    let mut reader = FrameReader::new(rx);
    let (frame, _) = reader.next_frame().expect("server must answer every hello");
    match Control::from_frame(&frame) {
        Some(Control::Ack { session_id, next_expected }) => {
            assert_eq!(session_id, id);
            (true, Some((tx, next_expected)))
        }
        Some(Control::Reject { session_id, code }) => {
            assert_eq!(session_id, id);
            assert_eq!(code, REJECT_FLEET_FULL, "serialized script only refuses on the cap");
            (false, None)
        }
        other => panic!("hello answered with {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serialized interleavings: after every step, active sessions ≤ cap,
    /// and each hello's verdict matches the model exactly (admitted iff the
    /// session is already resident or a slot is free).
    #[test]
    fn sessions_never_exceed_cap(
        cap in 1usize..5,
        shards in 1usize..4,
        script in proptest::collection::vec(action_strategy(), 1..40),
    ) {
        let mut config = FleetConfig::new(cap);
        config.shards = shards;
        let fleet = FleetServer::spawn(config);
        let handle = fleet.handle();
        let mut live: Vec<dbgc_net::fleet::FleetConnTx> = Vec::new();
        let mut resident: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for action in script {
            match action {
                Action::Connect(id) => {
                    let expect_admit = resident.contains(&id) || resident.len() < cap;
                    let (admitted, conn) = hello(&handle, id);
                    prop_assert_eq!(admitted, expect_admit, "hello({}) verdict", id);
                    if admitted {
                        resident.insert(id);
                        live.push(conn.unwrap().0);
                    }
                }
                Action::Disconnect => {
                    live.pop(); // Drop closes the connection; slot persists.
                }
                Action::Evict(id) => {
                    let evicted = handle.evict(id).is_some();
                    prop_assert_eq!(evicted, resident.remove(&id), "evict({})", id);
                }
            }
            prop_assert!(handle.sessions_active() <= cap, "cap breached mid-script");
            prop_assert_eq!(handle.sessions_active(), resident.len(), "model drift");
        }
        drop(live);
        let report = fleet.shutdown();
        prop_assert!(report.sessions_peak <= cap, "peak {} > cap {}", report.sessions_peak, cap);
    }

    /// Genuinely concurrent racing hellos: with `k` clients storming a
    /// cap-`c` fleet at once, exactly `c` distinct sessions are admitted,
    /// the peak never overshoots, and every refused client gets the typed
    /// error promptly.
    #[test]
    fn concurrent_hellos_admit_exactly_cap(
        cap in 1usize..6,
        extra in 1usize..8,
        shards in 1usize..4,
    ) {
        let total = cap + extra;
        let mut config = FleetConfig::new(cap);
        config.shards = shards;
        let fleet = FleetServer::spawn(config);
        let handle = fleet.handle();
        let clients: Vec<_> = (0..total as u64)
            .map(|id| {
                let handle = handle.clone();
                std::thread::spawn(move || {
                    let h = handle.clone();
                    let connector = move || h.connect(id);
                    let mut client = ResilientClient::new(connector, SessionConfig::fast_test(id));
                    client.send_payload(vec![id as u8; 32]).map(|_| client)
                })
            })
            .collect();
        let mut admitted = 0usize;
        for client in clients {
            match client.join().expect("client thread") {
                Ok(client) => {
                    admitted += 1;
                    client.finish().expect("admitted client completes");
                }
                Err(NetError::Rejected { code }) => {
                    prop_assert_eq!(code, REJECT_FLEET_FULL);
                }
                Err(other) => {
                    return Err(TestCaseError::fail(format!(
                        "refused client saw {other:?}, not the typed Rejected error"
                    )));
                }
            }
        }
        prop_assert_eq!(admitted, cap, "exactly the cap admitted");
        let report = fleet.shutdown();
        prop_assert_eq!(report.sessions_peak, cap);
        prop_assert_eq!(report.admission_rejects as usize, extra);
        prop_assert_eq!(report.tenants.len(), cap);
        report.verify_partition().map_err(TestCaseError::fail)?;
    }
}

/// A rejected `ResilientClient` fails fast — it must not burn its retry
/// budget reconnecting into a wall, and must not hang.
#[test]
fn rejection_is_prompt_not_a_hang() {
    let fleet = FleetServer::spawn(FleetConfig::new(1));
    let handle = fleet.handle();
    let mut first = {
        let h = handle.clone();
        ResilientClient::new(move || h.connect(900), SessionConfig::fast_test(900))
    };
    first.send_payload(vec![1; 16]).unwrap();
    let start = std::time::Instant::now();
    let mut second = {
        let h = handle.clone();
        ResilientClient::new(move || h.connect(901), SessionConfig::fast_test(901))
    };
    match second.send_payload(vec![2; 16]) {
        Err(NetError::Rejected { code }) => assert_eq!(code, REJECT_FLEET_FULL),
        other => panic!("expected Rejected, got {other:?}"),
    }
    assert!(
        start.elapsed() < std::time::Duration::from_secs(2),
        "rejection took {:?} — the client retried into the wall",
        start.elapsed()
    );
    first.finish().unwrap();
    fleet.shutdown();
}
