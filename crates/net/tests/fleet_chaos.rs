//! Fleet-scale chaos tests: many resilient clients over seeded faulty links
//! into one fleet server, with the fleet-wide exactly-once partition
//! invariant (`frames_intact == durable + deduped + gap_dropped +
//! decode_failures + shed`) checked on every run.
//!
//! `cargo test -p dbgc-net --test fleet_chaos` runs the smoke set; CI's
//! `fleet-smoke` job adds the 200-seed release sweep
//! (`--release -- sweep_200`), and acceptance runs the full 1000
//! (`--release -- --ignored`).

use std::collections::BTreeMap;

use dbgc_net::fleet_chaos::{run_fleet_chaos, FleetChaosConfig, FleetChaosReport};
use dbgc_net::OverloadPolicy;

fn assert_recovers(config: &FleetChaosConfig) -> FleetChaosReport {
    let report = run_fleet_chaos(config);
    if let Err(e) = report.verify() {
        panic!("{e}\n{}", report.summary());
    }
    report
}

/// The seed-indexed sweep shape: every fourth seed runs with tight
/// `DropOldest` budgets so load shedding is exercised *inside* the sweep,
/// not only in dedicated tests.
fn sweep_config(seed: u64) -> FleetChaosConfig {
    if seed % 4 == 0 {
        FleetChaosConfig::shedding(seed)
    } else {
        FleetChaosConfig::smoke(seed)
    }
}

#[test]
fn smoke_lossy_fleet_seeds_1_through_6() {
    for seed in 1..=6 {
        assert_recovers(&FleetChaosConfig::smoke(seed));
    }
}

#[test]
fn smoke_shedding_fleet_seeds_201_through_204() {
    for seed in 201..=204 {
        let report = assert_recovers(&FleetChaosConfig::shedding(seed));
        assert!(report.fleet.shed_frames > 0, "seed {seed}: tight budgets must shed");
    }
}

#[test]
fn smoke_blocking_fleet_with_drain_cadence() {
    // Block-policy budgets park tenants until the archival drain relieves
    // them; delivery must still be total (Block never sheds).
    let mut config = FleetChaosConfig::smoke(42);
    config.max_tenant_frames = 3;
    config.policy = OverloadPolicy::Block;
    config.drain_period = Some(std::time::Duration::from_millis(2));
    let report = assert_recovers(&config);
    assert_eq!(report.fleet.shed_frames, 0, "Block never sheds");
}

#[test]
fn replay_from_seed_alone_is_deterministic() {
    // Same seed, same client set: per-tenant delivery outcomes are
    // identical between runs (only wall-clock-dependent client stats may
    // vary).
    let config = FleetChaosConfig::smoke(9);
    let a = assert_recovers(&config);
    let b = assert_recovers(&config);
    assert_eq!(tenant_counters(&a), tenant_counters(&b));
}

/// Per-tenant (durable, shed, deduped, gap_dropped) counters, keyed by
/// session id.
fn tenant_counters(report: &FleetChaosReport) -> BTreeMap<u64, (Vec<u32>, Vec<u32>, usize, usize)> {
    report
        .fleet
        .tenants
        .iter()
        .map(|t| (t.session_id, (t.durable.clone(), t.shed.clone(), t.deduped, t.gap_dropped)))
        .collect()
}

#[test]
fn fleet_determinism_across_shard_counts() {
    // Same seed + same client set ⇒ identical per-tenant stored / deduped /
    // gap_dropped / shed at 1, 2, and 4 event-loop shards (the fleet
    // analogue of the den-stage shard-determinism test). Clean links keep
    // retransmission timing out of the picture; the tight per-tenant
    // DropOldest budget makes shedding part of what must reproduce.
    for seed in [5u64, 6, 7] {
        let mut reference = None;
        for shards in [1usize, 2, 4] {
            let mut config = FleetChaosConfig::clean(seed);
            config.shards = shards;
            config.tenants = 6;
            config.frames_per_tenant = 10;
            config.max_tenant_frames = 3;
            config.policy = OverloadPolicy::DropOldest;
            let report = assert_recovers(&config);
            assert!(report.fleet.shed_frames > 0, "seed {seed}: budget must bind");
            let counters = tenant_counters(&report);
            match &reference {
                None => reference = Some(counters),
                Some(want) => assert_eq!(
                    &counters, want,
                    "seed {seed}: outcomes differ between 1 and {shards} shards"
                ),
            }
        }
    }
}

/// CI-sized sweep for the `fleet-smoke` job (release build): seeds 1–200,
/// every fourth under tight shedding budgets.
#[test]
#[ignore = "release sweep; run with --release -- --ignored sweep_200"]
fn sweep_200_seeds() {
    let mut failures = Vec::new();
    for seed in 1..=200u64 {
        if let Err(e) = run_fleet_chaos(&sweep_config(seed)).verify() {
            failures.push(e);
        }
    }
    assert!(failures.is_empty(), "{} seeds failed:\n{}", failures.len(), failures.join("\n"));
}

/// The acceptance sweep: 1000 seeded fleet storms, every one holding the
/// fleet-wide exactly-once partition. Ignored by default (minutes of wall
/// clock); run with `--release -- --ignored`.
#[test]
#[ignore = "full acceptance sweep; run with --release -- --ignored"]
fn sweep_1000_seeds() {
    let mut failures = Vec::new();
    for seed in 1..=1000u64 {
        if let Err(e) = run_fleet_chaos(&sweep_config(seed)).verify() {
            failures.push(e);
        }
    }
    assert!(failures.is_empty(), "{} seeds failed:\n{}", failures.len(), failures.join("\n"));
}
