//! The resilient client session: acked delivery over unreliable transports.
//!
//! The wire-v2 [`crate::Client`] is fire-and-forget — fine on a clean pipe,
//! silently lossy on a real mobile uplink. [`ResilientClient`] layers wire-v3
//! session semantics on top of any reconnectable transport:
//!
//! * every connection opens with a [`Control::Hello`] carrying the session id
//!   and the client's acked floor, so the server can deduplicate replays and
//!   detect gaps across reconnects;
//! * the server acknowledges progress with [`Control::Ack`]; unacknowledged
//!   frames stay in a bounded in-flight window and are retransmitted
//!   go-back-N style after a reconnect;
//! * failures (send errors, ack stalls past `send_timeout`) trigger
//!   reconnection under a typed [`RetryPolicy`] with exponential backoff and
//!   seeded jitter — every timing decision replays from the seed.
//!
//! The ack stream is drained on a per-connection pump thread so a stalled
//! server can never deadlock the sender.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError};
use std::time::Duration;

use crate::protocol::{write_frame, Control, FrameReader, NetError, WireFrame};
use crate::retry::{Backoff, RetryPolicy};

/// Optional metrics sink (always `None` with the `metrics` feature off).
#[cfg(feature = "metrics")]
type MetricsSink = Option<dbgc_metrics::Collector>;
#[cfg(not(feature = "metrics"))]
type MetricsSink = Option<std::convert::Infallible>;

/// Something that can (re)establish a connection to the server: a write half
/// for data frames and a read half for acknowledgements.
///
/// Implemented for any `FnMut() -> io::Result<(Tx, Rx)>` closure, so tests
/// and the chaos harness can hand out fresh fault-injected pipe pairs.
pub trait Connect {
    /// Write half (client → server data frames).
    type Tx: Write;
    /// Read half (server → client acks); pumped on a helper thread.
    type Rx: Read + Send + 'static;
    /// Attempt one connection.
    fn connect(&mut self) -> std::io::Result<(Self::Tx, Self::Rx)>;
}

impl<Tx, Rx, F> Connect for F
where
    Tx: Write,
    Rx: Read + Send + 'static,
    F: FnMut() -> std::io::Result<(Tx, Rx)>,
{
    type Tx = Tx;
    type Rx = Rx;
    fn connect(&mut self) -> std::io::Result<(Tx, Rx)> {
        self()
    }
}

/// Tuning for a [`ResilientClient`] session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Session identity carried in every hello; lets the server tie
    /// reconnects back to the same dedup state.
    pub session_id: u64,
    /// Maximum unacknowledged frames in flight before sends block on acks.
    pub window: usize,
    /// How long to wait for ack progress before declaring the connection
    /// stalled and reconnecting.
    pub send_timeout: Duration,
    /// Retry/backoff policy for connects and stall recoveries.
    pub retry: RetryPolicy,
    /// Seed for backoff jitter; replays produce identical timing.
    pub seed: u64,
}

impl SessionConfig {
    /// Production-flavoured defaults for `session_id`: window 32, 2 s send
    /// timeout, [`RetryPolicy::mobile_uplink`].
    pub fn new(session_id: u64) -> SessionConfig {
        SessionConfig {
            session_id,
            window: 32,
            send_timeout: Duration::from_secs(2),
            retry: RetryPolicy::mobile_uplink(),
            seed: session_id,
        }
    }

    /// Millisecond-scale timeouts for tests and chaos sweeps.
    pub fn fast_test(session_id: u64) -> SessionConfig {
        SessionConfig {
            session_id,
            window: 8,
            send_timeout: Duration::from_millis(400),
            retry: RetryPolicy::fast_test(),
            seed: session_id,
        }
    }
}

/// Counters describing what a session endured; see also the `net.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Data frames handed to [`ResilientClient::send_payload`].
    pub frames_sent: u64,
    /// Frames rewritten after a reconnect (go-back-N replays).
    pub retransmits: u64,
    /// Successful connections after the first.
    pub reconnects: u64,
    /// Connection attempts, successful or not.
    pub connect_attempts: u64,
    /// Acknowledgements applied.
    pub acks_received: u64,
    /// Ack waits that hit `send_timeout`.
    pub timeouts: u64,
    /// Failed operations that consumed retry budget.
    pub retries: u64,
}

/// A client session that survives a faulty transport; see the module docs.
pub struct ResilientClient<C: Connect> {
    connector: C,
    config: SessionConfig,
    backoff: Backoff,
    tx: Option<C::Tx>,
    acks: Option<Receiver<Control>>,
    /// Sent-but-unacked frames, oldest first (the go-back-N window).
    unacked: VecDeque<(u32, Vec<u8>)>,
    next_sequence: u32,
    /// Server-confirmed floor: everything below is stored server-side.
    acked_floor: u32,
    ever_connected: bool,
    stats: SessionStats,
    #[cfg_attr(not(feature = "metrics"), allow(dead_code))]
    metrics: MetricsSink,
}

impl<C: Connect> ResilientClient<C> {
    /// A new session; no connection is attempted until the first send.
    pub fn new(connector: C, config: SessionConfig) -> ResilientClient<C> {
        let backoff = Backoff::new(config.retry, config.seed);
        ResilientClient {
            connector,
            config,
            backoff,
            tx: None,
            acks: None,
            unacked: VecDeque::new(),
            next_sequence: 0,
            acked_floor: 0,
            ever_connected: false,
            stats: SessionStats::default(),
            metrics: None,
        }
    }

    /// Mirror session counters (`net.retries`, `net.reconnects`,
    /// `net.retransmits`, `net.timeouts`, `net.acks_applied`,
    /// `net.frames_sent`, `net.bytes_sent`) into `collector`.
    #[cfg(feature = "metrics")]
    pub fn with_metrics(mut self, collector: &dbgc_metrics::Collector) -> ResilientClient<C> {
        self.metrics = Some(collector.clone());
        self
    }

    fn incr(&self, _name: &str, _n: u64) {
        #[cfg(feature = "metrics")]
        if let Some(c) = &self.metrics {
            c.incr(_name, _n);
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Frames currently in flight (sent, not yet acknowledged).
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }

    /// Spawn the ack pump for a fresh read half: parses control frames off
    /// the wire and forwards acks over an unbounded channel, so the sender
    /// never blocks on a slow ack path.
    fn spawn_pump(rx: C::Rx) -> Receiver<Control> {
        let (tx, out) = channel();
        std::thread::Builder::new()
            .name("dbgc-net-ack-pump".into())
            .spawn(move || {
                let mut reader = FrameReader::new(rx);
                while let Ok((frame, _)) = reader.next_frame() {
                    if let Some(control) = Control::from_frame(&frame) {
                        if tx.send(control).is_err() {
                            return; // session dropped this connection
                        }
                    }
                }
            })
            .expect("spawn ack pump");
        out
    }

    /// Apply one ack: advance the floor, drop covered frames from the
    /// window. Returns `true` if the floor moved.
    fn apply_ack(&mut self, control: Control) -> bool {
        let Control::Ack { session_id, next_expected } = control else { return false };
        if session_id != self.config.session_id {
            return false;
        }
        self.stats.acks_received += 1;
        self.incr("net.acks_applied", 1);
        let before = self.unacked.len();
        while self.unacked.front().is_some_and(|(seq, _)| *seq < next_expected) {
            self.unacked.pop_front();
        }
        if next_expected > self.acked_floor {
            self.acked_floor = next_expected;
        }
        self.unacked.len() != before
    }

    /// Drain any acks that already arrived, without blocking.
    fn drain_acks(&mut self) {
        loop {
            let Some(acks) = &self.acks else { return };
            match acks.try_recv() {
                Ok(control) => {
                    self.apply_ack(control);
                }
                Err(_) => return,
            }
        }
    }

    /// Tear down the current connection (the pump thread notices the
    /// channel die and exits once its read half fails).
    fn disconnect(&mut self) {
        self.tx = None;
        self.acks = None;
    }

    /// One connection attempt: connect, hello, wait for the handshake ack,
    /// retransmit everything still unacked.
    fn try_connect(&mut self) -> Result<(), NetError> {
        let (mut tx, rx) = self.connector.connect()?;
        let acks = Self::spawn_pump(rx);
        let hello =
            Control::Hello { session_id: self.config.session_id, last_acked: self.acked_floor };
        write_frame(&mut tx, &hello.to_frame())?;
        // Handshake: the server answers every hello with its cursor.
        let deadline_err = || NetError::Timeout;
        let control = acks.recv_timeout(self.config.send_timeout).map_err(|_| deadline_err())?;
        if let Control::Reject { session_id, code } = control {
            if session_id == self.config.session_id {
                // The server refused the session outright (fleet admission).
                // Terminal: reconnecting would only be rejected again.
                return Err(NetError::Rejected { code });
            }
        }
        self.tx = Some(tx);
        self.acks = Some(acks);
        self.apply_ack(control);
        if self.ever_connected {
            self.stats.reconnects += 1;
            self.incr("net.reconnects", 1);
        }
        self.ever_connected = true;
        // Go-back-N: replay the window the server hasn't confirmed.
        let replay: Vec<(u32, Vec<u8>)> = self.unacked.iter().cloned().collect();
        if !replay.is_empty() {
            self.stats.retransmits += replay.len() as u64;
            self.incr("net.retransmits", replay.len() as u64);
        }
        for (sequence, payload) in replay {
            let tx = self.tx.as_mut().expect("just connected");
            write_frame(tx, &WireFrame { sequence, payload })?;
        }
        Ok(())
    }

    /// Ensure a live connection, consuming retry budget on failures.
    fn ensure_connected(&mut self) -> Result<(), NetError> {
        while self.tx.is_none() {
            self.stats.connect_attempts += 1;
            match self.try_connect() {
                Ok(()) => {
                    self.backoff.reset();
                    return Ok(());
                }
                Err(e @ NetError::Rejected { .. }) => {
                    // A typed refusal is final — surface it without burning
                    // the retry budget or hammering a full fleet.
                    self.disconnect();
                    return Err(e);
                }
                Err(e) => {
                    self.disconnect();
                    self.stats.retries += 1;
                    self.incr("net.retries", 1);
                    if !self.backoff.wait() {
                        return Err(NetError::RetriesExhausted {
                            attempts: self.backoff.attempts(),
                            last_error: e.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Block until an ack arrives or `send_timeout` passes; a timeout or a
    /// dead pump kills the connection so the caller reconnects.
    fn wait_for_ack(&mut self) -> Result<(), NetError> {
        let Some(acks) = &self.acks else {
            return Ok(()); // not connected; caller reconnects
        };
        match acks.recv_timeout(self.config.send_timeout) {
            Ok(Control::Reject { session_id, code }) if session_id == self.config.session_id => {
                // Mid-session refusal (e.g. evicted by the fleet operator):
                // terminal for the same reason as at the handshake.
                self.disconnect();
                Err(NetError::Rejected { code })
            }
            Ok(control) => {
                self.apply_ack(control);
                Ok(())
            }
            Err(RecvTimeoutError::Timeout) => {
                self.stats.timeouts += 1;
                self.incr("net.timeouts", 1);
                self.disconnect();
                Ok(())
            }
            Err(RecvTimeoutError::Disconnected) => {
                self.disconnect();
                Ok(())
            }
        }
    }

    /// Send one compressed frame, returning its sequence number.
    ///
    /// Blocks while the in-flight window is full, reconnecting and
    /// retransmitting as needed; fails only with
    /// [`NetError::RetriesExhausted`] once the backoff budget is spent
    /// without progress.
    pub fn send_payload(&mut self, payload: Vec<u8>) -> Result<u32, NetError> {
        let sequence = self.next_sequence;
        self.next_sequence = self.next_sequence.wrapping_add(1);
        self.incr("net.frames_sent", 1);
        self.incr("net.bytes_sent", payload.len() as u64);
        self.stats.frames_sent += 1;
        // Connect before queueing: a reconnect replays `unacked`, and this
        // frame gets its first transmission below, not via that replay.
        self.ensure_connected()?;
        self.unacked.push_back((sequence, payload.clone()));
        if let Some(tx) = self.tx.as_mut() {
            if write_frame(tx, &WireFrame { sequence, payload }).is_err() {
                self.disconnect(); // reconnect below retransmits it
            }
        }
        self.drain_acks();
        // Window admission: wait for acks until there is room again.
        while self.unacked.len() > self.config.window {
            self.ensure_connected()?;
            let floor = self.acked_floor;
            self.wait_for_ack()?;
            if self.acked_floor > floor {
                self.backoff.reset();
            } else {
                // No progress: the server may be re-acking an old floor
                // because a frame was destroyed on the wire (it can only
                // arrive again via go-back-N). Force a reconnect-and-replay.
                self.stats.retries += 1;
                self.incr("net.retries", 1);
                if !self.backoff.wait() {
                    return Err(NetError::RetriesExhausted {
                        attempts: self.backoff.attempts(),
                        last_error: "no ack progress with a full window".into(),
                    });
                }
                self.disconnect();
            }
        }
        Ok(sequence)
    }

    /// Drive the session until every sent frame is acknowledged, then close
    /// the connection. Returns the final stats.
    pub fn finish(mut self) -> Result<SessionStats, NetError> {
        while !self.unacked.is_empty() {
            self.ensure_connected()?;
            let floor = self.acked_floor;
            self.drain_acks();
            if self.unacked.is_empty() {
                break;
            }
            self.wait_for_ack()?;
            if self.acked_floor > floor {
                self.backoff.reset();
            } else if self.tx.is_some() {
                // Connected but no progress within the deadline.
                self.stats.retries += 1;
                self.incr("net.retries", 1);
                if !self.backoff.wait() {
                    return Err(NetError::RetriesExhausted {
                        attempts: self.backoff.attempts(),
                        last_error: "undelivered frames at session close".into(),
                    });
                }
                self.disconnect();
            }
        }
        self.disconnect();
        Ok(self.stats)
    }
}

impl<C: Connect> std::fmt::Debug for ResilientClient<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientClient")
            .field("session_id", &self.config.session_id)
            .field("next_sequence", &self.next_sequence)
            .field("acked_floor", &self.acked_floor)
            .field("in_flight", &self.unacked.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{throttled_pipe, PipeReader, PipeWriter};
    use crate::server::SessionServer;
    use std::sync::mpsc::Sender;

    /// A connector that hands out fresh pipe pairs and ships the server-side
    /// halves to an acceptor thread.
    struct PipeConnector {
        accept_tx: Sender<(PipeReader, PipeWriter)>,
    }

    impl Connect for PipeConnector {
        type Tx = PipeWriter;
        type Rx = PipeReader;
        fn connect(&mut self) -> std::io::Result<(PipeWriter, PipeReader)> {
            let (data_tx, data_rx) = throttled_pipe(None);
            let (ack_tx, ack_rx) = throttled_pipe(None);
            self.accept_tx.send((data_rx, ack_tx)).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "server gone")
            })?;
            Ok((data_tx, ack_rx))
        }
    }

    fn spawn_server() -> (Sender<(PipeReader, PipeWriter)>, std::thread::JoinHandle<SessionServer>)
    {
        let (accept_tx, accept_rx) = channel::<(PipeReader, PipeWriter)>();
        let handle = std::thread::spawn(move || {
            let mut core = SessionServer::new(false);
            while let Ok((rx, ack)) = accept_rx.recv() {
                let _ = core.serve_connection(rx, Some(ack));
            }
            core
        });
        (accept_tx, handle)
    }

    #[test]
    fn clean_session_delivers_in_order_with_acks() {
        let (accept_tx, server) = spawn_server();
        let mut client = ResilientClient::new(
            PipeConnector { accept_tx: accept_tx.clone() },
            SessionConfig::fast_test(42),
        );
        for i in 0..20u8 {
            client.send_payload(vec![i; 50]).unwrap();
        }
        let stats = client.finish().unwrap();
        drop(accept_tx); // acceptor loop ends
        let core = server.join().unwrap();
        assert_eq!(stats.frames_sent, 20);
        assert_eq!(stats.reconnects, 0);
        assert_eq!(stats.retransmits, 0);
        let seqs: Vec<u32> = core.frames().iter().map(|f| f.sequence).collect();
        assert_eq!(seqs, (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn dead_first_connection_is_retried() {
        let (accept_tx, server) = spawn_server();
        let mut fail_budget = 2;
        let mut inner = PipeConnector { accept_tx: accept_tx.clone() };
        let connector = move || {
            if fail_budget > 0 {
                fail_budget -= 1;
                return Err(std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "injected"));
            }
            inner.connect()
        };
        let mut client = ResilientClient::new(connector, SessionConfig::fast_test(7));
        client.send_payload(vec![1, 2, 3]).unwrap();
        let stats = client.finish().unwrap();
        drop(accept_tx);
        let core = server.join().unwrap();
        assert_eq!(core.frames().len(), 1);
        assert!(stats.retries >= 2, "both refused connects consumed budget: {stats:?}");
    }

    #[test]
    fn retries_exhausted_is_typed() {
        let connector = || -> std::io::Result<(PipeWriter, PipeReader)> {
            Err(std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "always down"))
        };
        let mut config = SessionConfig::fast_test(1);
        config.retry.max_retries = 3;
        let mut client = ResilientClient::new(connector, config);
        let err = client.send_payload(vec![0]).unwrap_err();
        match err {
            NetError::RetriesExhausted { attempts, last_error } => {
                assert_eq!(attempts, 3);
                assert!(last_error.contains("always down"), "{last_error}");
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn mid_session_disconnect_retransmits_unacked_window() {
        // Connection 1 swallows frames without acking (its server half is
        // dropped), so the client must time out, reconnect, and replay.
        let (accept_tx, accept_rx) = channel::<(PipeReader, PipeWriter)>();
        let server = std::thread::spawn(move || {
            let mut core = SessionServer::new(false);
            // First connection: read the hello, ack it, then vanish.
            let (rx, ack) = accept_rx.recv().unwrap();
            {
                let mut reader = FrameReader::new(rx);
                let (hello, _) = reader.next_frame().unwrap();
                assert!(matches!(Control::from_frame(&hello), Some(Control::Hello { .. })));
                let mut ack = ack;
                write_frame(&mut ack, &Control::Ack { session_id: 9, next_expected: 0 }.to_frame())
                    .unwrap();
                // Drop rx/ack: frames sent on connection 1 are lost.
            }
            while let Ok((rx, ack)) = accept_rx.recv() {
                let _ = core.serve_connection(rx, Some(ack));
            }
            core
        });
        let mut client = ResilientClient::new(
            PipeConnector { accept_tx: accept_tx.clone() },
            SessionConfig::fast_test(9),
        );
        for i in 0..5u8 {
            client.send_payload(vec![i; 30]).unwrap();
        }
        let stats = client.finish().unwrap();
        drop(accept_tx);
        let core = server.join().unwrap();
        let seqs: Vec<u32> = core.frames().iter().map(|f| f.sequence).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4], "all frames stored exactly once, in order");
        assert!(stats.reconnects >= 1, "{stats:?}");
        // How many frames needed replay depends on when the dead pipe's
        // writes started failing; at least the first frame always does.
        assert!(stats.retransmits >= 1, "{stats:?}");
    }
}
