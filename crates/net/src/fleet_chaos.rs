//! The fleet-scale chaos harness: N resilient clients over seeded faulty
//! links into **one** [`FleetServer`], replayable from a single seed.
//!
//! [`run_fleet_chaos`] derives one sub-seed per tenant (payloads, fault
//! schedule, and backoff jitter are all functions of it), drives every
//! client on its own thread, optionally drains the archive path on a cadence
//! while the storm runs, and folds the shutdown [`FleetReport`] plus every
//! drained frame into a [`FleetChaosReport`].
//!
//! The fleet-wide invariant ([`FleetChaosReport::verify`]) extends the
//! single-client chaos contract to many tenants under load shedding: for
//! every tenant, `durable ∪ shed` covers `0..frames` **exactly once**,
//! durable sequences are strictly in order with byte-intact payloads, and
//! the shared counters partition twice — on the wire as `frames_intact ==
//! stored + deduped + gap_dropped + decode_failures`, in storage as
//! `stored == durable + shed` — which together give the headline identity
//! `frames_intact == durable + deduped + gap_dropped + decode_failures + shed`.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::fault::{FaultProfile, FaultSchedule, FaultyLink, SplitMix64};
use crate::fleet::{FleetConfig, FleetConnTx, FleetReport, FleetServer};
use crate::pipeline::OverloadPolicy;
use crate::protocol::NetError;
use crate::retry::RetryPolicy;
use crate::server::StoredFrame;
use crate::session::{ResilientClient, SessionConfig, SessionStats};

pub use crate::chaos::chaos_payload;

/// Parameters of one fleet-chaos run. Everything observable is a function of
/// `seed` and the shape fields.
#[derive(Debug, Clone)]
pub struct FleetChaosConfig {
    /// Master seed; per-tenant sub-seeds, schedules, and payloads derive
    /// from it.
    pub seed: u64,
    /// Concurrent sensor sessions to drive.
    pub tenants: usize,
    /// Data frames each tenant sends.
    pub frames_per_tenant: usize,
    /// Bytes per synthetic payload.
    pub payload_len: usize,
    /// Fleet event-loop shards.
    pub shards: usize,
    /// Fault intensity of every tenant's link.
    pub profile: FaultProfile,
    /// Ack-progress deadline before a client reconnects.
    pub send_timeout: Duration,
    /// Client retry/backoff policy.
    pub retry: RetryPolicy,
    /// Per-tenant undrained-frame cap handed to the fleet (0 = unbounded).
    pub max_tenant_frames: usize,
    /// Global undrained-byte budget handed to the fleet (0 = unbounded).
    pub max_fleet_bytes: u64,
    /// Fleet overload policy under those budgets.
    pub policy: OverloadPolicy,
    /// Drain the archive path on this cadence while clients run (required
    /// for `Block`-policy runs with caps, where only a drain un-pauses).
    pub drain_period: Option<Duration>,
}

impl FleetChaosConfig {
    /// Standard smoke shape: 4 tenants × 8 frames over lossy-4G links into
    /// a 2-shard fleet, no shedding budgets.
    pub fn smoke(seed: u64) -> FleetChaosConfig {
        FleetChaosConfig {
            seed,
            tenants: 4,
            frames_per_tenant: 8,
            payload_len: 256,
            shards: 2,
            profile: FaultProfile::lossy_4g(),
            send_timeout: Duration::from_millis(200),
            retry: RetryPolicy::fast_test(),
            max_tenant_frames: 0,
            max_fleet_bytes: 0,
            policy: OverloadPolicy::Block,
            drain_period: None,
        }
    }

    /// Tight budgets: per-tenant cap of 3 undrained frames under
    /// `DropOldest`, so load shedding runs *during* the fault storm and the
    /// `durable + shed` partition is exercised, not just satisfied trivially.
    pub fn shedding(seed: u64) -> FleetChaosConfig {
        FleetChaosConfig {
            max_tenant_frames: 3,
            policy: OverloadPolicy::DropOldest,
            frames_per_tenant: 12,
            tenants: 3,
            ..FleetChaosConfig::smoke(seed)
        }
    }

    /// Clean links (no faults): the shape used by the determinism test,
    /// where per-tenant outcomes must be identical across shard counts.
    pub fn clean(seed: u64) -> FleetChaosConfig {
        FleetChaosConfig { profile: FaultProfile::clean(), ..FleetChaosConfig::smoke(seed) }
    }

    /// The per-tenant identities and sub-seeds this config derives: session
    /// ids are index-tagged (collision-free by construction) yet hash-spread
    /// across shards.
    pub fn tenant_plan(&self) -> Vec<(u64, u64)> {
        let mut rng = SplitMix64(self.seed ^ 0xF1EE_7000_0000_0000);
        (0..self.tenants as u64)
            .map(|index| {
                let sub_seed = rng.next();
                ((index << 32) | (sub_seed & 0xFFFF_FFFF), sub_seed)
            })
            .collect()
    }

    /// The fleet configuration this run drives.
    pub fn fleet_config(&self) -> FleetConfig {
        let mut fleet = FleetConfig::new(self.tenants.max(1));
        fleet.shards = self.shards.max(1);
        fleet.max_tenant_frames = self.max_tenant_frames;
        fleet.max_fleet_bytes = self.max_fleet_bytes;
        fleet.policy = self.policy;
        fleet
    }

    fn schedule_for(&self, sub_seed: u64) -> FaultSchedule {
        // Faults spread over one clean transmission of the tenant's stream
        // (headers + hello slack); retransmitted bytes past that run clean.
        let stream_len = (self.frames_per_tenant * (self.payload_len + 20) + 128) as u64;
        FaultSchedule::generate(sub_seed, &self.profile, stream_len)
    }
}

/// One tenant's client-side outcome.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// The tenant's session id (see [`FleetChaosConfig::tenant_plan`]).
    pub session_id: u64,
    /// The tenant's sub-seed (drives its payloads and schedule).
    pub sub_seed: u64,
    /// Session stats, or the typed error the client gave up with.
    pub client: Result<SessionStats, String>,
    /// Fault events the tenant's schedule actually applied.
    pub faults_applied: u64,
}

/// What one fleet-chaos run did; see [`FleetChaosReport::verify`].
#[derive(Debug)]
pub struct FleetChaosReport {
    /// The driving master seed.
    pub seed: u64,
    /// Frames each tenant attempted to deliver.
    pub frames_per_tenant: usize,
    /// Payload size the run used (needed to recheck bytes).
    pub payload_len: usize,
    /// Per-tenant client outcomes, in tenant-plan order.
    pub outcomes: Vec<TenantOutcome>,
    /// Frames handed over by mid-run drains, per session id.
    pub drained: Vec<(u64, Vec<StoredFrame>)>,
    /// The fleet's shutdown report (per-tenant durable/shed, counters).
    pub fleet: FleetReport,
}

impl FleetChaosReport {
    /// Check the fleet-wide exactly-once invariant; `Err` names the first
    /// violation (prefixed with the offending seed for replay).
    pub fn verify(&self) -> Result<(), String> {
        let frames = self.frames_per_tenant as u32;
        for outcome in &self.outcomes {
            let sid = outcome.session_id;
            if let Err(e) = &outcome.client {
                return Err(format!("seed {}: tenant {sid} client failed: {e}", self.seed));
            }
            let tenant = self
                .fleet
                .tenant(sid)
                .ok_or_else(|| format!("seed {}: tenant {sid} missing from fleet", self.seed))?;
            if !tenant.durable.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!(
                    "seed {}: tenant {sid} durable {:?} is not strictly in order",
                    self.seed, tenant.durable
                ));
            }
            let mut all: Vec<u32> =
                tenant.durable.iter().chain(tenant.shed.iter()).copied().collect();
            all.sort_unstable();
            if all != (0..frames).collect::<Vec<u32>>() {
                return Err(format!(
                    "seed {}: tenant {sid} durable∪shed {:?} != 0..{frames} exactly once \
                     (durable {:?}, shed {:?})",
                    self.seed, all, tenant.durable, tenant.shed
                ));
            }
            for frame in &tenant.resident_frames {
                let want =
                    chaos_payload(outcome.sub_seed, frame.sequence as usize, self.payload_len);
                if frame.bytes != want {
                    return Err(format!(
                        "seed {}: tenant {sid} frame {} bytes differ from what was sent",
                        self.seed, frame.sequence
                    ));
                }
            }
        }
        for (sid, frames) in &self.drained {
            let Some(outcome) = self.outcomes.iter().find(|o| o.session_id == *sid) else {
                return Err(format!("seed {}: drained frames for unknown tenant {sid}", self.seed));
            };
            for frame in frames {
                let want =
                    chaos_payload(outcome.sub_seed, frame.sequence as usize, self.payload_len);
                if frame.bytes != want {
                    return Err(format!(
                        "seed {}: tenant {sid} drained frame {} bytes differ",
                        self.seed, frame.sequence
                    ));
                }
            }
        }
        if self.fleet.tenants.len() != self.outcomes.len() {
            return Err(format!(
                "seed {}: fleet saw {} tenants, run drove {}",
                self.seed,
                self.fleet.tenants.len(),
                self.outcomes.len()
            ));
        }
        if self.fleet.admission_rejects != 0 {
            return Err(format!(
                "seed {}: {} admission rejects with cap == tenant count",
                self.seed, self.fleet.admission_rejects
            ));
        }
        self.fleet.verify_partition().map_err(|e| format!("seed {}: {e}", self.seed))
    }

    /// One-line human summary for recovery reports.
    pub fn summary(&self) -> String {
        let durable: usize = self.fleet.tenants.iter().map(|t| t.durable.len()).sum();
        let shed: usize = self.fleet.tenants.iter().map(|t| t.shed.len()).sum();
        let faults: u64 = self.outcomes.iter().map(|o| o.faults_applied).sum();
        let failed = self.outcomes.iter().filter(|o| o.client.is_err()).count();
        format!(
            "seed {}: {} tenants × {} frames — {durable} durable, {shed} shed, \
             {faults} faults applied, {} client failures, peak sessions {}",
            self.seed,
            self.outcomes.len(),
            self.frames_per_tenant,
            failed,
            self.fleet.sessions_peak
        )
    }
}

/// Drive one full fleet-chaos run: spawn the fleet, storm it with every
/// tenant concurrently, settle, shut down, and report.
pub fn run_fleet_chaos(config: &FleetChaosConfig) -> FleetChaosReport {
    let fleet = FleetServer::spawn(config.fleet_config());
    let handle = fleet.handle();

    // Optional archival cadence: keeps Block-policy tenants flowing and
    // exercises the drain hand-off under fire.
    let stop = Arc::new(AtomicBool::new(false));
    let drainer = config.drain_period.map(|period| {
        let handle = handle.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut drained: Vec<(u64, Vec<StoredFrame>)> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                merge_drained(&mut drained, handle.drain());
                std::thread::sleep(period);
            }
            merge_drained(&mut drained, handle.drain());
            drained
        })
    });

    let clients: Vec<_> = config
        .tenant_plan()
        .into_iter()
        .map(|(session_id, sub_seed)| {
            let handle = handle.clone();
            let state = config.schedule_for(sub_seed).into_state();
            let frames = config.frames_per_tenant;
            let payload_len = config.payload_len;
            let mut session = SessionConfig::fast_test(session_id);
            session.send_timeout = config.send_timeout;
            session.retry = config.retry;
            session.seed = sub_seed;
            std::thread::spawn(move || {
                let link_state = Arc::clone(&state);
                let connector = move || -> io::Result<(FaultyLink<FleetConnTx>, _)> {
                    let (tx, rx) = handle.connect(session_id)?;
                    Ok((FaultyLink::new(tx, Arc::clone(&link_state)), rx))
                };
                let mut client = ResilientClient::new(connector, session);
                let mut result: Result<SessionStats, NetError> = Ok(SessionStats::default());
                for index in 0..frames {
                    let payload = chaos_payload(sub_seed, index, payload_len);
                    if let Err(e) = client.send_payload(payload) {
                        result = Err(e);
                        break;
                    }
                }
                if result.is_ok() {
                    result = client.finish();
                } else {
                    drop(client);
                }
                let faults_applied = state.lock().expect("fault state").events_applied();
                TenantOutcome {
                    session_id,
                    sub_seed,
                    client: result.map_err(|e| e.to_string()),
                    faults_applied,
                }
            })
        })
        .collect();

    let mut outcomes: Vec<TenantOutcome> =
        clients.into_iter().map(|t| t.join().expect("fleet-chaos client thread")).collect();
    outcomes.sort_by_key(|o| o.session_id);

    stop.store(true, Ordering::Relaxed);
    let drained = match drainer {
        Some(t) => t.join().expect("fleet-chaos drainer thread"),
        None => Vec::new(),
    };

    FleetChaosReport {
        seed: config.seed,
        frames_per_tenant: config.frames_per_tenant,
        payload_len: config.payload_len,
        outcomes,
        drained,
        fleet: fleet.shutdown(),
    }
}

/// Fold a drain batch into the accumulated per-tenant frame lists.
fn merge_drained(into: &mut Vec<(u64, Vec<StoredFrame>)>, batch: Vec<(u64, Vec<StoredFrame>)>) {
    for (sid, mut frames) in batch {
        if frames.is_empty() {
            continue;
        }
        match into.iter_mut().find(|(s, _)| *s == sid) {
            Some((_, existing)) => existing.append(&mut frames),
            None => into.push((sid, frames)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_fleet_delivers_every_tenant() {
        let report = run_fleet_chaos(&FleetChaosConfig::clean(7));
        report.verify().unwrap_or_else(|e| panic!("{e}\n{}", report.summary()));
        assert_eq!(report.fleet.shed_frames, 0);
        for outcome in &report.outcomes {
            let stats = outcome.client.as_ref().unwrap();
            assert_eq!(stats.reconnects, 0, "clean links never reconnect");
        }
    }

    #[test]
    fn lossy_fleet_recovers_every_tenant() {
        let report = run_fleet_chaos(&FleetChaosConfig::smoke(11));
        report.verify().unwrap_or_else(|e| panic!("{e}\n{}", report.summary()));
        assert!(
            report.outcomes.iter().map(|o| o.faults_applied).sum::<u64>() > 0,
            "schedules were not a no-op"
        );
    }

    #[test]
    fn shedding_fleet_keeps_the_partition() {
        let report = run_fleet_chaos(&FleetChaosConfig::shedding(13));
        report.verify().unwrap_or_else(|e| panic!("{e}\n{}", report.summary()));
        assert!(report.fleet.shed_frames > 0, "tight budgets must shed");
    }

    #[test]
    fn drain_cadence_hands_frames_over_mid_run() {
        let mut config = FleetChaosConfig::clean(17);
        config.drain_period = Some(Duration::from_millis(2));
        let report = run_fleet_chaos(&config);
        report.verify().unwrap_or_else(|e| panic!("{e}\n{}", report.summary()));
        let drained: usize = report.drained.iter().map(|(_, f)| f.len()).sum();
        assert!(drained > 0, "the drainer ran while clients were live");
    }
}
