//! Link bandwidth models (paper §4.4).
//!
//! The end-to-end experiments need transfer times over three hops: sensor →
//! client (100BASE-TX Ethernet), client → server (4G uplink), and server
//! memory → storage (HDD). [`LinkModel`] computes those analytically;
//! [`throttled_pipe`] provides a live in-memory pipe that actually paces
//! writes at the configured bandwidth for wall-clock simulations.

use std::io::{self, Read, Write};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::time::{Duration, Instant};

/// An analytic bandwidth model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Usable bandwidth in bits per second.
    pub bits_per_second: f64,
}

impl LinkModel {
    /// A link with the given usable bandwidth.
    pub fn new(bits_per_second: f64) -> LinkModel {
        assert!(bits_per_second > 0.0);
        LinkModel { bits_per_second }
    }

    /// 4G mobile uplink: 8.2 Mbps average (paper §4.4, citing \[41\]).
    pub fn mobile_4g() -> LinkModel {
        LinkModel::new(8.2e6)
    }

    /// 100BASE-TX Ethernet (sensor → client).
    pub fn ethernet_100base_tx() -> LinkModel {
        LinkModel::new(100e6)
    }

    /// Data-centre HDD write path (≥ 500 Mbps, paper §4.4).
    pub fn hdd_write() -> LinkModel {
        LinkModel::new(500e6)
    }

    /// Time to transfer `bytes` over this link.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(bytes as f64 * 8.0 / self.bits_per_second)
    }

    /// Sustained frame rate achievable for frames of `bytes` each.
    pub fn frames_per_second(&self, bytes: usize) -> f64 {
        if bytes == 0 {
            f64::INFINITY
        } else {
            self.bits_per_second / (bytes as f64 * 8.0)
        }
    }

    /// Bandwidth required to ship `bytes`-sized frames at `fps`, in Mbps —
    /// the paper's "bandwidth requirement" metric (`8·f·|B|`).
    pub fn required_mbps(bytes: usize, fps: f64) -> f64 {
        bytes as f64 * 8.0 * fps / 1e6
    }
}

/// Writer half of a throttled in-memory pipe.
#[derive(Debug)]
pub struct PipeWriter {
    tx: SyncSender<Vec<u8>>,
    model: Option<LinkModel>,
    /// Pacing horizon: the time at which everything written so far has
    /// "arrived" under the bandwidth model.
    horizon: Instant,
}

/// Reader half of a throttled in-memory pipe.
#[derive(Debug)]
pub struct PipeReader {
    rx: Receiver<Vec<u8>>,
    buf: Vec<u8>,
    pos: usize,
}

/// Create an in-memory pipe; with `Some(model)` the writer blocks to pace
/// output at the modelled bandwidth.
pub fn throttled_pipe(model: Option<LinkModel>) -> (PipeWriter, PipeReader) {
    let (tx, rx) = sync_channel(64);
    (PipeWriter { tx, model, horizon: Instant::now() }, PipeReader { rx, buf: Vec::new(), pos: 0 })
}

impl Write for PipeWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if let Some(model) = self.model {
            let now = Instant::now();
            if self.horizon < now {
                self.horizon = now;
            }
            self.horizon += model.transfer_time(data.len());
            let sleep = self.horizon.saturating_duration_since(now);
            if !sleep.is_zero() {
                std::thread::sleep(sleep);
            }
        }
        self.tx
            .send(data.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "reader dropped"))?;
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        while self.pos == self.buf.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.buf = chunk;
                    self.pos = 0;
                }
                Err(_) => return Ok(0), // writer dropped: EOF
            }
        }
        let n = (self.buf.len() - self.pos).min(out.len());
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A watchdog `Read` wrapper: fails with `io::ErrorKind::TimedOut` when the
/// underlying transport delivers no bytes within `timeout`, instead of
/// blocking forever on a stalled peer.
///
/// The inner reader is pumped on a helper thread (generic `Read` has no
/// native timeout), so `R: Send + 'static`. The typed error surfaces as
/// [`crate::NetError::Timeout`] through the `From<io::Error>` conversion, so
/// a server wrapped as `Server::new(TimedReader::new(r, d), …)` fails a
/// stalled stream with `NetError::Timeout`.
///
/// If the wrapper is dropped while the inner read is still blocked, the
/// helper thread lingers until that read completes or errors — bounded in
/// practice by the peer closing, and by reconnect counts in the chaos
/// harness.
#[derive(Debug)]
pub struct TimedReader {
    rx: Receiver<io::Result<Vec<u8>>>,
    buf: Vec<u8>,
    pos: usize,
    timeout: Duration,
    eof: bool,
}

impl TimedReader {
    /// Wrap `inner`, budgeting `timeout` per read before declaring a stall.
    pub fn new<R: Read + Send + 'static>(mut inner: R, timeout: Duration) -> TimedReader {
        let (tx, rx) = sync_channel::<io::Result<Vec<u8>>>(4);
        std::thread::Builder::new()
            .name("dbgc-net-timed-reader".into())
            .spawn(move || {
                let mut chunk = [0u8; 8192];
                loop {
                    match inner.read(&mut chunk) {
                        Ok(0) => {
                            let _ = tx.send(Ok(Vec::new()));
                            return;
                        }
                        Ok(n) => {
                            if tx.send(Ok(chunk[..n].to_vec())).is_err() {
                                return; // wrapper dropped
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                }
            })
            .expect("spawn timed-reader pump");
        TimedReader { rx, buf: Vec::new(), pos: 0, timeout, eof: false }
    }
}

impl Read for TimedReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        while self.pos == self.buf.len() {
            if self.eof {
                return Ok(0);
            }
            match self.rx.recv_timeout(self.timeout) {
                Ok(Ok(chunk)) if chunk.is_empty() => {
                    self.eof = true;
                    return Ok(0);
                }
                Ok(Ok(chunk)) => {
                    self.buf = chunk;
                    self.pos = 0;
                }
                Ok(Err(e)) => {
                    self.eof = true;
                    return Err(e);
                }
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("no bytes within {:?}", self.timeout),
                    ));
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    self.eof = true;
                    return Ok(0);
                }
            }
        }
        let n = (self.buf.len() - self.pos).min(out.len());
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_math() {
        let link = LinkModel::mobile_4g();
        // 0.6 Mbit at 8.2 Mbps ≈ 73 ms (the paper's 2 cm city frame).
        let t = link.transfer_time(75_000);
        assert!((t.as_secs_f64() - 0.0732).abs() < 0.001, "{t:?}");
        // 96 Mbit/s of raw LiDAR needs 96 Mbps.
        assert!((LinkModel::required_mbps(1_200_000, 10.0) - 96.0).abs() < 1e-9);
    }

    #[test]
    fn frames_per_second_math() {
        let link = LinkModel::mobile_4g();
        assert!(link.frames_per_second(75_000) > 13.0);
        assert!(link.frames_per_second(1_200_000) < 1.0);
        assert!(link.frames_per_second(0).is_infinite());
    }

    #[test]
    fn unthrottled_pipe_roundtrip() {
        let (mut w, mut r) = throttled_pipe(None);
        let data: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
        let handle = {
            let data = data.clone();
            std::thread::spawn(move || {
                w.write_all(&data).unwrap();
            })
        };
        let mut got = Vec::new();
        r.read_to_end(&mut got).unwrap();
        handle.join().unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn timed_reader_passes_data_and_eof() {
        let (mut w, r) = throttled_pipe(None);
        let mut timed = TimedReader::new(r, Duration::from_secs(5));
        let handle = std::thread::spawn(move || {
            w.write_all(b"some bytes").unwrap();
        });
        let mut got = Vec::new();
        timed.read_to_end(&mut got).unwrap();
        handle.join().unwrap();
        assert_eq!(got, b"some bytes");
        let mut more = [0u8; 4];
        assert_eq!(timed.read(&mut more).unwrap(), 0, "EOF is sticky");
    }

    #[test]
    fn timed_reader_raises_timeout_on_stall() {
        let (w, r) = throttled_pipe(None);
        let mut timed = TimedReader::new(r, Duration::from_millis(30));
        let mut buf = [0u8; 16];
        let err = timed.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        drop(w);
    }

    #[test]
    fn throttled_pipe_paces_writes() {
        // 1 Mbps: 12_500 bytes should take ~100 ms.
        let (mut w, mut r) = throttled_pipe(Some(LinkModel::new(1e6)));
        let start = Instant::now();
        let handle = std::thread::spawn(move || {
            let mut got = Vec::new();
            r.read_to_end(&mut got).unwrap();
            got.len()
        });
        w.write_all(&vec![0u8; 12_500]).unwrap();
        drop(w);
        assert_eq!(handle.join().unwrap(), 12_500);
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(80), "{elapsed:?}");
        assert!(elapsed < Duration::from_millis(500), "{elapsed:?}");
    }
}
