//! The DBGC client: compress frames from the sensor and ship them upstream.

use std::io::Write;

use dbgc::{CompressedFrame, Dbgc};
use dbgc_geom::PointCloud;

use crate::protocol::{write_frame, NetError, WireFrame};

/// Compresses point clouds and sends the bitstreams over a transport.
#[derive(Debug)]
pub struct Client<W: Write> {
    compressor: Dbgc,
    transport: W,
    next_sequence: u32,
}

impl<W: Write> Client<W> {
    /// A client compressing with `compressor` and writing to `transport`.
    pub fn new(compressor: Dbgc, transport: W) -> Client<W> {
        Client { compressor, transport, next_sequence: 0 }
    }

    /// Compress `cloud` and send it; returns the compression result for
    /// stats/verification.
    pub fn send_cloud(&mut self, cloud: &PointCloud) -> Result<CompressedFrame, NetError> {
        let frame = self
            .compressor
            .compress(cloud)
            .map_err(|e| NetError::Io(std::io::Error::other(e.to_string())))?;
        write_frame(
            &mut self.transport,
            &WireFrame { sequence: self.next_sequence, payload: frame.bytes.clone() },
        )?;
        self.next_sequence += 1;
        Ok(frame)
    }

    /// Number of frames sent so far.
    pub fn frames_sent(&self) -> u32 {
        self.next_sequence
    }

    /// Consume the client, returning the transport (e.g. to close it).
    pub fn into_transport(self) -> W {
        self.transport
    }
}
