//! Client/server transport for online LiDAR compression (paper §3.1, §4.4).
//!
//! The DBGC system acquires point clouds at the *client* (sensor host),
//! compresses them, and ships the bitstreams over a constrained mobile uplink
//! to a *server* that decompresses and stores them. This crate provides:
//!
//! * [`protocol`] — length-prefixed frame protocol over any `Read`/`Write`,
//!   including the stateful [`protocol::FrameReader`] resynchronizer and
//!   wire-v3 session control frames;
//! * [`link`] — a bandwidth model ([`link::LinkModel`]) for computing
//!   transfer times (4G uplink ≈ 8.2 Mbps, paper §4.4), a throttled
//!   in-memory pipe for live simulation, and a stall watchdog
//!   ([`link::TimedReader`]);
//! * [`fault`] — deterministic, seed-replayable fault injection
//!   ([`fault::FaultyLink`]) for chaos testing the whole stack;
//! * [`retry`] — typed retry policies with exponential backoff and jitter;
//! * [`client`] — compresses frames and sends them (fire-and-forget v2);
//! * [`session`] — the resilient client: acked delivery, reconnect,
//!   retransmission from a bounded in-flight window;
//! * [`server`] — receives frames, optionally decompresses, and stores them
//!   (in memory or on disk, standing in for the paper's ODBC sink), with
//!   duplicate/gap accounting that persists across reconnects;
//! * [`pipeline`] — a frame-ordered worker pool so compression keeps up with
//!   a 10 fps sensor (§4.4's online-processing claim), with bounded queues
//!   and overload policies (block / drop-oldest / degrade);
//! * [`chaos`] — the seeded end-to-end chaos harness used by tests, the
//!   fuzzer's wire-fault mode, and CI smoke jobs.

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod fault;
pub mod fleet;
pub mod fleet_chaos;
pub mod link;
pub mod pipeline;
pub mod protocol;
pub mod retry;
pub mod server;
pub mod session;

pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use client::Client;
pub use fault::{FaultEvent, FaultProfile, FaultSchedule, FaultyLink};
pub use fleet::{FleetConfig, FleetHandle, FleetReport, FleetServer, TenantReport};
pub use fleet_chaos::{run_fleet_chaos, FleetChaosConfig, FleetChaosReport};
pub use link::{LinkModel, TimedReader};
pub use pipeline::{OverloadPolicy, PipelinedCompressor};
pub use protocol::{
    frame_checksum, read_frame, read_frame_resync, write_frame, Control, FrameReader, NetError,
    WireFrame, DEFAULT_MAX_PAYLOAD, REJECT_FLEET_FULL, REJECT_WRONG_SHARD,
};
pub use retry::{Backoff, RetryPolicy};
pub use server::{
    AnomalyKind, DroppedFrame, NoAck, SeqAnomaly, Server, SessionServer, StoredFrame,
};
pub use session::{ResilientClient, SessionConfig, SessionStats};
