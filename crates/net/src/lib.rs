//! Client/server transport for online LiDAR compression (paper §3.1, §4.4).
//!
//! The DBGC system acquires point clouds at the *client* (sensor host),
//! compresses them, and ships the bitstreams over a constrained mobile uplink
//! to a *server* that decompresses and stores them. This crate provides:
//!
//! * [`protocol`] — length-prefixed frame protocol over any `Read`/`Write`;
//! * [`link`] — a bandwidth model ([`link::LinkModel`]) for computing
//!   transfer times (4G uplink ≈ 8.2 Mbps, paper §4.4) and a throttled
//!   in-memory pipe for live simulation;
//! * [`client`] — compresses frames and sends them;
//! * [`server`] — receives frames, optionally decompresses, and stores them
//!   (in memory or on disk, standing in for the paper's ODBC sink);
//! * [`pipeline`] — a frame-ordered worker pool so compression keeps up with
//!   a 10 fps sensor (§4.4's online-processing claim).

#![warn(missing_docs)]

pub mod client;
pub mod link;
pub mod pipeline;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use link::LinkModel;
pub use pipeline::PipelinedCompressor;
pub use protocol::{
    frame_checksum, read_frame, read_frame_resync, write_frame, NetError, WireFrame,
};
pub use server::{DroppedFrame, Server, StoredFrame};
