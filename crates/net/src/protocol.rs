//! Length-prefixed wire protocol for compressed point-cloud frames.
//!
//! ```text
//! "DBGF" | u32 sequence | u64 payload_len | payload bytes
//! ```
//!
//! All integers little-endian. Works over any `Read`/`Write`, so the same
//! code drives TCP sockets, in-memory pipes, and files.

use std::fmt;
use std::io::{self, Read, Write};

const WIRE_MAGIC: [u8; 4] = *b"DBGF";
/// Upper bound on a frame payload (a compressed LiDAR frame is < 1 MiB; this
/// guards against corrupt length fields).
const MAX_PAYLOAD: u64 = 1 << 30;

/// A framed message: a compressed point cloud plus its sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFrame {
    /// Monotone frame sequence number.
    pub sequence: u32,
    /// The DBGC bitstream.
    pub payload: Vec<u8>,
}

/// Transport-level failure.
#[derive(Debug)]
pub enum NetError {
    /// Underlying transport failure.
    Io(io::Error),
    /// The stream does not start with the wire magic.
    BadMagic,
    /// A declared payload length exceeds the sanity limit.
    OversizedFrame(u64),
    /// Clean end of stream between frames.
    Closed,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "I/O error: {e}"),
            NetError::BadMagic => write!(f, "bad wire magic"),
            NetError::OversizedFrame(n) => write!(f, "frame of {n} bytes exceeds limit"),
            NetError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, frame: &WireFrame) -> Result<(), NetError> {
    w.write_all(&WIRE_MAGIC)?;
    w.write_all(&frame.sequence.to_le_bytes())?;
    w.write_all(&(frame.payload.len() as u64).to_le_bytes())?;
    w.write_all(&frame.payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame; returns [`NetError::Closed`] on a clean EOF at a frame
/// boundary.
pub fn read_frame(r: &mut impl Read) -> Result<WireFrame, NetError> {
    let mut magic = [0u8; 4];
    match r.read_exact(&mut magic) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(NetError::Closed),
        Err(e) => return Err(e.into()),
    }
    if magic != WIRE_MAGIC {
        return Err(NetError::BadMagic);
    }
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    let sequence = u32::from_le_bytes(buf4);
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let len = u64::from_le_bytes(buf8);
    if len > MAX_PAYLOAD {
        return Err(NetError::OversizedFrame(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(WireFrame { sequence, payload })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        let frames: Vec<WireFrame> = (0..5)
            .map(|i| WireFrame { sequence: i, payload: vec![i as u8; (i * 100) as usize] })
            .collect();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = &buf[..];
        for f in &frames {
            assert_eq!(&read_frame(&mut r).unwrap(), f);
        }
        assert!(matches!(read_frame(&mut r), Err(NetError::Closed)));
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00";
        assert!(matches!(read_frame(&mut &buf[..]), Err(NetError::BadMagic)));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DBGF");
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(read_frame(&mut &buf[..]), Err(NetError::OversizedFrame(_))));
    }

    /// A reader that returns at most one byte per call, exercising every
    /// partial-read path in `read_frame`.
    struct Dribble<'a>(&'a [u8]);
    impl std::io::Read for Dribble<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() || out.is_empty() {
                return Ok(0);
            }
            out[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn fragmented_transport_reassembles() {
        let mut buf = Vec::new();
        let frame = WireFrame { sequence: 9, payload: (0..=255).collect() };
        write_frame(&mut buf, &frame).unwrap();
        let mut r = Dribble(&buf);
        assert_eq!(read_frame(&mut r).unwrap(), frame);
        assert!(matches!(read_frame(&mut r), Err(NetError::Closed)));
    }

    #[test]
    fn truncated_mid_frame_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireFrame { sequence: 1, payload: vec![7; 100] }).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(matches!(read_frame(&mut &buf[..]), Err(NetError::Io(_))));
    }
}
