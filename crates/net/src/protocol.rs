//! Length-prefixed wire protocol for compressed point-cloud frames.
//!
//! ```text
//! "DBGF" | u32 sequence | u64 payload_len | u32 crc32 | payload bytes
//! ```
//!
//! All integers little-endian. The CRC-32 (IEEE) covers the sequence, the
//! payload length, and the payload, so a flipped bit anywhere in a frame —
//! including its header — is detected. Works over any `Read`/`Write`, so the
//! same code drives TCP sockets, in-memory pipes, and files.
//!
//! Corruption handling: [`read_frame`] fails fast with a typed error;
//! [`read_frame_resync`] additionally scans forward for the next wire magic
//! so a stream survives one corrupt frame instead of desyncing — the damaged
//! frame is dropped and the skipped byte count reported to the caller.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};

const WIRE_MAGIC: [u8; 4] = *b"DBGF";
/// Default upper bound on a frame payload. A compressed LiDAR frame is
/// < 1 MiB even at fine bounds; 8 MiB leaves generous headroom while keeping
/// a corrupt length field from driving a gigabyte-sized read. Tune per
/// deployment with [`FrameReader::with_max_payload`].
pub const DEFAULT_MAX_PAYLOAD: u64 = 8 << 20;

/// Sequence number reserved for wire-v3 control frames ([`Control`]). Data
/// frames never use it; v2 peers that ignore control frames simply see an
/// odd sequence number and keep decoding.
pub const CONTROL_SEQUENCE: u32 = u32::MAX;

/// A framed message: a compressed point cloud plus its sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFrame {
    /// Monotone frame sequence number.
    pub sequence: u32,
    /// The DBGC bitstream.
    pub payload: Vec<u8>,
}

/// Transport-level failure.
#[derive(Debug)]
pub enum NetError {
    /// Underlying transport failure.
    Io(io::Error),
    /// The stream does not start with the wire magic.
    BadMagic,
    /// A declared payload length exceeds the sanity limit.
    OversizedFrame(u64),
    /// The frame checksum does not match its contents.
    ChecksumMismatch {
        /// Sequence number as read from the (possibly corrupt) header.
        sequence: u32,
    },
    /// Clean end of stream between frames.
    Closed,
    /// A stalled peer exceeded its deadline: no bytes (or no acknowledgement
    /// progress) within the configured budget. Raised by watchdogs like
    /// [`crate::link::TimedReader`] and the resilient client instead of
    /// hanging forever.
    Timeout,
    /// A retry budget was exhausted without the operation succeeding.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// The terminal failure, rendered for logs.
        last_error: String,
    },
    /// The server refused the session with a [`Control::Reject`] frame —
    /// e.g. the fleet admission cap is reached. Terminal: retrying the same
    /// connection will not help, so the resilient client surfaces this
    /// immediately instead of burning its retry budget.
    Rejected {
        /// Machine-readable refusal code (see the `REJECT_*` constants).
        code: u32,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "I/O error: {e}"),
            NetError::BadMagic => write!(f, "bad wire magic"),
            NetError::OversizedFrame(n) => write!(f, "frame of {n} bytes exceeds limit"),
            NetError::ChecksumMismatch { sequence } => {
                write!(f, "checksum mismatch on frame {sequence}")
            }
            NetError::Closed => write!(f, "connection closed"),
            NetError::Timeout => write!(f, "peer stalled past its deadline"),
            NetError::RetriesExhausted { attempts, last_error } => {
                write!(f, "gave up after {attempts} attempts: {last_error}")
            }
            NetError::Rejected { code } => {
                let why = match *code {
                    REJECT_FLEET_FULL => "fleet admission cap reached",
                    REJECT_WRONG_SHARD => "session routed to the wrong shard",
                    _ => "refused by server",
                };
                write!(f, "session rejected (code {code}): {why}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        // Watchdog wrappers surface stalls as `TimedOut`; give every reader
        // the typed variant for free.
        if e.kind() == io::ErrorKind::TimedOut {
            NetError::Timeout
        } else {
            NetError::Io(e)
        }
    }
}

/// Wire-v3 control frames, carried as ordinary checksummed frames with the
/// reserved sequence [`CONTROL_SEQUENCE`] and a one-byte tag prefix.
///
/// v3 is negotiated, never required: a client that sends no [`Control::Hello`]
/// speaks plain v2 and the server behaves exactly as before. Once a hello is
/// seen the connection is a *session*: the server deduplicates replayed
/// sequences, drops out-of-order arrivals (the client retransmits them in
/// order), and acknowledges progress so the client can bound its in-flight
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Client → server, first frame after (re)connecting.
    Hello {
        /// Random per-stream id; reconnects reuse it so the server keeps its
        /// dedup state instead of treating the client as new.
        session_id: u64,
        /// The client's acknowledgement floor: every sequence below this is
        /// known stored. The server answers with its own view.
        last_acked: u32,
    },
    /// Server → client: everything below `next_expected` is stored durably.
    Ack {
        /// Session this acknowledgement belongs to.
        session_id: u64,
        /// The next sequence the server will store.
        next_expected: u32,
    },
    /// Server → client: the session is refused and the connection is about
    /// to close. Sent instead of an [`Control::Ack`] in reply to a hello the
    /// server will not serve (fleet admission cap, shard mismatch). Old
    /// clients that predate this tag ignore it and time out; v3.1 clients
    /// surface [`NetError::Rejected`] immediately.
    Reject {
        /// Session the refusal belongs to.
        session_id: u64,
        /// Machine-readable reason (see the `REJECT_*` constants).
        code: u32,
    },
}

/// [`Control::Reject`] code: the fleet's admission cap is reached.
pub const REJECT_FLEET_FULL: u32 = 1;
/// [`Control::Reject`] code: the session id does not belong on the shard the
/// connection was registered with (in-process drivers must route by id).
pub const REJECT_WRONG_SHARD: u32 = 2;

const CONTROL_TAG_HELLO: u8 = 0x01;
const CONTROL_TAG_ACK: u8 = 0x02;
const CONTROL_TAG_REJECT: u8 = 0x03;

impl Control {
    /// Encode as a control-frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(13);
        match self {
            Control::Hello { session_id, last_acked } => {
                out.push(CONTROL_TAG_HELLO);
                out.extend_from_slice(&session_id.to_le_bytes());
                out.extend_from_slice(&last_acked.to_le_bytes());
            }
            Control::Ack { session_id, next_expected } => {
                out.push(CONTROL_TAG_ACK);
                out.extend_from_slice(&session_id.to_le_bytes());
                out.extend_from_slice(&next_expected.to_le_bytes());
            }
            Control::Reject { session_id, code } => {
                out.push(CONTROL_TAG_REJECT);
                out.extend_from_slice(&session_id.to_le_bytes());
                out.extend_from_slice(&code.to_le_bytes());
            }
        }
        out
    }

    /// Decode a control-frame payload; `None` if it is not a valid control
    /// message (the caller should then treat the frame as data).
    pub fn decode(payload: &[u8]) -> Option<Control> {
        if payload.len() != 13 {
            return None;
        }
        let session_id = u64::from_le_bytes(payload[1..9].try_into().ok()?);
        let low = u32::from_le_bytes(payload[9..13].try_into().ok()?);
        match payload[0] {
            CONTROL_TAG_HELLO => Some(Control::Hello { session_id, last_acked: low }),
            CONTROL_TAG_ACK => Some(Control::Ack { session_id, next_expected: low }),
            CONTROL_TAG_REJECT => Some(Control::Reject { session_id, code: low }),
            _ => None,
        }
    }

    /// Wrap into a wire frame (reserved sequence + encoded payload).
    pub fn to_frame(&self) -> WireFrame {
        WireFrame { sequence: CONTROL_SEQUENCE, payload: self.encode() }
    }

    /// Interpret `frame` as a control message, if it is one.
    pub fn from_frame(frame: &WireFrame) -> Option<Control> {
        if frame.sequence != CONTROL_SEQUENCE {
            return None;
        }
        Control::decode(&frame.payload)
    }
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    for &b in data {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// CRC-32 (IEEE) over a frame's sequence, payload length, and payload.
pub fn frame_checksum(sequence: u32, payload: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFF_u32;
    c = crc32_update(c, &sequence.to_le_bytes());
    c = crc32_update(c, &(payload.len() as u64).to_le_bytes());
    c = crc32_update(c, payload);
    !c
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, frame: &WireFrame) -> Result<(), NetError> {
    w.write_all(&WIRE_MAGIC)?;
    w.write_all(&frame.sequence.to_le_bytes())?;
    w.write_all(&(frame.payload.len() as u64).to_le_bytes())?;
    w.write_all(&frame_checksum(frame.sequence, &frame.payload).to_le_bytes())?;
    w.write_all(&frame.payload)?;
    w.flush()?;
    Ok(())
}

/// Read and verify the frame body after the magic: header fields + payload.
fn read_frame_body(r: &mut impl Read, max_payload: u64) -> Result<WireFrame, NetError> {
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    let sequence = u32::from_le_bytes(buf4);
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let len = u64::from_le_bytes(buf8);
    r.read_exact(&mut buf4)?;
    let checksum = u32::from_le_bytes(buf4);
    if len > max_payload {
        return Err(NetError::OversizedFrame(len));
    }
    // Reservation is clamped; a corrupt length field only costs as many
    // bytes as the stream actually delivers before the checksum fails.
    let mut payload = Vec::with_capacity(len.min(1 << 16) as usize);
    let got = r.take(len).read_to_end(&mut payload)?;
    if got as u64 != len {
        return Err(NetError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "stream ended mid-payload",
        )));
    }
    if frame_checksum(sequence, &payload) != checksum {
        return Err(NetError::ChecksumMismatch { sequence });
    }
    Ok(WireFrame { sequence, payload })
}

/// Read one frame; returns [`NetError::Closed`] on a clean EOF at a frame
/// boundary. Fails fast on corruption — see [`read_frame_resync`] for the
/// skip-and-continue variant.
pub fn read_frame(r: &mut impl Read) -> Result<WireFrame, NetError> {
    read_frame_with_limit(r, DEFAULT_MAX_PAYLOAD)
}

/// [`read_frame`] with an explicit payload sanity bound.
pub fn read_frame_with_limit(r: &mut impl Read, max_payload: u64) -> Result<WireFrame, NetError> {
    let mut magic = [0u8; 4];
    match r.read_exact(&mut magic) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(NetError::Closed),
        Err(e) => return Err(e.into()),
    }
    if magic != WIRE_MAGIC {
        return Err(NetError::BadMagic);
    }
    read_frame_body(r, max_payload)
}

/// Read the next verifiable frame, resynchronizing past corruption.
///
/// Scans forward for the wire magic, then reads and checksums the candidate
/// frame; on a checksum or length failure the candidate is discarded and the
/// scan continues. Returns the frame plus the number of corrupt bytes skipped
/// over (0 on a clean stream). Returns [`NetError::Closed`] once the stream
/// ends, even if trailing corrupt bytes were discarded first.
///
/// **Limitation:** a failed candidate's body bytes are consumed, so a real
/// frame whose magic sits *inside* that body is lost — the function survives
/// one corrupt region, not arbitrary damage. [`FrameReader`] keeps a pushback
/// buffer and rescans discarded candidate bytes, recovering every verifiable
/// frame; prefer it for anything long-running.
pub fn read_frame_resync(r: &mut impl Read) -> Result<(WireFrame, u64), NetError> {
    let mut skipped = 0u64;
    let mut window = [0u8; 4];
    let mut have = 0usize;
    loop {
        while have < 4 {
            let mut b = [0u8; 1];
            match r.read(&mut b) {
                Ok(0) => return Err(NetError::Closed),
                Ok(_) => {
                    window[have] = b[0];
                    have += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        if window == WIRE_MAGIC {
            match read_frame_body(r, DEFAULT_MAX_PAYLOAD) {
                Ok(frame) => return Ok((frame, skipped)),
                Err(NetError::ChecksumMismatch { .. }) | Err(NetError::OversizedFrame(_)) => {
                    // Discard the candidate (its body bytes are already
                    // consumed) and keep scanning from the current position.
                    skipped += 4;
                    have = 0;
                }
                Err(NetError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => {
                    return Err(NetError::Closed);
                }
                Err(e) => return Err(e),
            }
        } else {
            window.rotate_left(1);
            have = 3;
            skipped += 1;
        }
    }
}

/// A stateful, resynchronizing frame reader with bounded memory.
///
/// Unlike the free [`read_frame_resync`], discarded candidate bytes are kept
/// in a pushback buffer and rescanned, so the reader recovers every
/// verifiable frame in the stream no matter how corruption falls: magics
/// split across transport chunk boundaries, real frames hiding inside a
/// corrupt candidate's payload, and arbitrarily many back-to-back corrupt
/// regions. Peak buffering is bounded by `max_payload` + header size.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    max_payload: u64,
    /// Bytes fetched from `inner` but not yet consumed by a verified frame.
    pending: VecDeque<u8>,
    /// `inner` reached end of stream; only `pending` remains.
    eof: bool,
    /// Scratch for bulk reads from `inner`.
    chunk: Vec<u8>,
    /// Lifetime total of corrupt bytes discarded (includes trailing garbage
    /// that precedes end-of-stream, which no per-frame count can report).
    total_skipped: u64,
}

const WIRE_HEADER_LEN: usize = 20; // magic + sequence + length + crc

impl<R: Read> FrameReader<R> {
    /// Wrap `inner` with the [`DEFAULT_MAX_PAYLOAD`] sanity bound.
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader {
            inner,
            max_payload: DEFAULT_MAX_PAYLOAD,
            pending: VecDeque::new(),
            eof: false,
            chunk: vec![0u8; 16 << 10],
            total_skipped: 0,
        }
    }

    /// Override the payload sanity bound (also bounds the pushback buffer).
    pub fn with_max_payload(mut self, max_payload: u64) -> FrameReader<R> {
        self.max_payload = max_payload;
        self
    }

    /// The configured payload bound.
    pub fn max_payload(&self) -> u64 {
        self.max_payload
    }

    /// Lifetime total of corrupt bytes this reader has discarded, including
    /// trailing garbage counted when the stream closed.
    pub fn bytes_skipped(&self) -> u64 {
        self.total_skipped
    }

    /// Consume the reader, returning the transport. Unscanned pushback bytes
    /// are dropped.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Pull more bytes from the transport into `pending`; `Ok(false)` on EOF.
    fn fill(&mut self) -> Result<bool, NetError> {
        if self.eof {
            return Ok(false);
        }
        loop {
            match self.inner.read(&mut self.chunk) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(false);
                }
                Ok(n) => {
                    self.pending.extend(&self.chunk[..n]);
                    return Ok(true);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Ensure at least `n` bytes are pending; `Ok(false)` if the stream ended
    /// first.
    fn want(&mut self, n: usize) -> Result<bool, NetError> {
        while self.pending.len() < n {
            if !self.fill()? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Drop one leading byte (established garbage).
    fn skip_front(&mut self, skipped: &mut u64) {
        self.pending.pop_front();
        *skipped += 1;
        self.total_skipped += 1;
    }

    fn pending_at(&self, i: usize) -> u8 {
        *self.pending.get(i).expect("index within pending")
    }

    /// Read the next verifiable frame, scanning past any corruption.
    ///
    /// Returns the frame plus the number of corrupt bytes discarded before
    /// it; [`NetError::Closed`] once the stream ends (possibly after
    /// discarding trailing garbage). I/O errors other than EOF propagate.
    pub fn next_frame(&mut self) -> Result<(WireFrame, u64), NetError> {
        let mut skipped = 0u64;
        loop {
            // Align the front of `pending` on the wire magic.
            if !self.want(4)? {
                // Trailing garbage: the per-frame count dies with `Closed`,
                // but the lifetime total still records it.
                self.total_skipped += self.pending.len() as u64;
                self.pending.clear();
                return Err(NetError::Closed);
            }
            if (0..4).any(|i| self.pending_at(i) != WIRE_MAGIC[i]) {
                self.skip_front(&mut skipped);
                continue;
            }
            // Parse the fixed header.
            if !self.want(WIRE_HEADER_LEN)? {
                self.skip_front(&mut skipped);
                continue;
            }
            let field = |me: &Self, at: usize, n: usize| -> u64 {
                (0..n).fold(0u64, |acc, i| acc | (me.pending_at(at + i) as u64) << (8 * i))
            };
            let sequence = field(self, 4, 4) as u32;
            let len = field(self, 8, 8);
            let checksum = field(self, 16, 4) as u32;
            if len > self.max_payload {
                // Hostile length: the magic itself is garbage, rescan from
                // the next byte.
                self.skip_front(&mut skipped);
                continue;
            }
            let total = WIRE_HEADER_LEN + len as usize;
            if !self.want(total)? {
                // Stream ended mid-candidate; the magic byte is garbage but
                // the tail may still hide a smaller intact frame.
                self.skip_front(&mut skipped);
                continue;
            }
            let payload: Vec<u8> =
                self.pending.iter().skip(WIRE_HEADER_LEN).take(len as usize).copied().collect();
            if frame_checksum(sequence, &payload) == checksum {
                self.pending.drain(..total);
                return Ok((WireFrame { sequence, payload }, skipped));
            }
            // Bad checksum: discard only the first byte of the bogus magic
            // and rescan — a real frame may start anywhere inside this
            // candidate's bytes.
            self.skip_front(&mut skipped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        let frames: Vec<WireFrame> = (0..5)
            .map(|i| WireFrame { sequence: i, payload: vec![i as u8; (i * 100) as usize] })
            .collect();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = &buf[..];
        for f in &frames {
            assert_eq!(&read_frame(&mut r).unwrap(), f);
        }
        assert!(matches!(read_frame(&mut r), Err(NetError::Closed)));
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00";
        assert!(matches!(read_frame(&mut &buf[..]), Err(NetError::BadMagic)));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DBGF");
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(read_frame(&mut &buf[..]), Err(NetError::OversizedFrame(_))));
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireFrame { sequence: 3, payload: vec![0xAB; 64] }).unwrap();
        let payload_start = buf.len() - 64;
        buf[payload_start + 20] ^= 0x10;
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(NetError::ChecksumMismatch { sequence: 3 })
        ));
    }

    #[test]
    fn flipped_header_bit_fails_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireFrame { sequence: 3, payload: vec![0xAB; 64] }).unwrap();
        buf[5] ^= 0x01; // sequence field
        assert!(matches!(read_frame(&mut &buf[..]), Err(NetError::ChecksumMismatch { .. })));
    }

    #[test]
    fn resync_skips_corrupt_frame() {
        let mut buf = Vec::new();
        for i in 0..3u32 {
            write_frame(&mut buf, &WireFrame { sequence: i, payload: vec![i as u8; 200] }).unwrap();
        }
        // Corrupt the middle frame's payload.
        let frame_size = buf.len() / 3;
        buf[frame_size + 40] ^= 0xFF;
        let mut r = &buf[..];
        let (f0, s0) = read_frame_resync(&mut r).unwrap();
        assert_eq!((f0.sequence, s0), (0, 0));
        let (f2, s2) = read_frame_resync(&mut r).unwrap();
        assert_eq!(f2.sequence, 2, "frame 1 dropped, frame 2 recovered");
        assert!(s2 > 0, "skipped bytes reported");
        assert!(matches!(read_frame_resync(&mut r), Err(NetError::Closed)));
    }

    #[test]
    fn resync_skips_leading_garbage() {
        let mut buf = b"garbage bytes before the stream".to_vec();
        write_frame(&mut buf, &WireFrame { sequence: 7, payload: vec![1, 2, 3] }).unwrap();
        let mut r = &buf[..];
        let (frame, skipped) = read_frame_resync(&mut r).unwrap();
        assert_eq!(frame.sequence, 7);
        assert_eq!(skipped, 31);
    }

    #[test]
    fn resync_survives_magic_inside_corrupt_region() {
        // A corrupt length field makes frame 0's body end early; the scan
        // must still find the following intact frame.
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireFrame { sequence: 0, payload: vec![9; 50] }).unwrap();
        let good_start = buf.len();
        write_frame(&mut buf, &WireFrame { sequence: 1, payload: vec![8; 50] }).unwrap();
        // Tamper with frame 0's length field (bytes 8..16).
        buf[8] -= 5;
        let mut r = &buf[..];
        let (frame, skipped) = read_frame_resync(&mut r).unwrap();
        assert_eq!(frame.sequence, 1);
        assert!(skipped > 0 && skipped <= good_start as u64);
        assert!(matches!(read_frame_resync(&mut r), Err(NetError::Closed)));
    }

    /// A reader that returns at most one byte per call, exercising every
    /// partial-read path in `read_frame`.
    struct Dribble<'a>(&'a [u8]);
    impl std::io::Read for Dribble<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() || out.is_empty() {
                return Ok(0);
            }
            out[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn fragmented_transport_reassembles() {
        let mut buf = Vec::new();
        let frame = WireFrame { sequence: 9, payload: (0..=255).collect() };
        write_frame(&mut buf, &frame).unwrap();
        let mut r = Dribble(&buf);
        assert_eq!(read_frame(&mut r).unwrap(), frame);
        assert!(matches!(read_frame(&mut r), Err(NetError::Closed)));
    }

    #[test]
    fn truncated_mid_frame_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireFrame { sequence: 1, payload: vec![7; 100] }).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(matches!(read_frame(&mut &buf[..]), Err(NetError::Io(_))));
    }

    fn encode(frames: &[WireFrame]) -> Vec<u8> {
        let mut buf = Vec::new();
        for f in frames {
            write_frame(&mut buf, f).unwrap();
        }
        buf
    }

    fn drain_reader(r: impl io::Read) -> (Vec<(u32, usize)>, u64) {
        let mut reader = FrameReader::new(r);
        let mut got = Vec::new();
        loop {
            match reader.next_frame() {
                Ok((f, _)) => got.push((f.sequence, f.payload.len())),
                Err(NetError::Closed) => return (got, reader.bytes_skipped()),
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }

    /// A reader delivering fixed-size chunks, so the wire magic can straddle
    /// a transport read boundary.
    struct Chunked<'a> {
        data: &'a [u8],
        chunk: usize,
    }
    impl io::Read for Chunked<'_> {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            let n = self.data.len().min(self.chunk).min(out.len());
            out[..n].copy_from_slice(&self.data[..n]);
            self.data = &self.data[n..];
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_clean_stream() {
        let frames: Vec<WireFrame> = (0..4)
            .map(|i| WireFrame { sequence: i, payload: vec![i as u8; 64 + i as usize] })
            .collect();
        let buf = encode(&frames);
        let (got, skipped) = drain_reader(&buf[..]);
        assert_eq!(got, vec![(0, 64), (1, 65), (2, 66), (3, 67)]);
        assert_eq!(skipped, 0);
    }

    #[test]
    fn frame_reader_magic_split_across_chunk_boundary() {
        // Regression: deliver the stream in chunk sizes that split "DBGF"
        // at every possible offset, with leading garbage shifting alignment.
        let frame = WireFrame { sequence: 5, payload: vec![0x5A; 97] };
        for garbage in 0..5usize {
            let mut buf = vec![0xEE; garbage];
            buf.extend(encode(std::slice::from_ref(&frame)));
            for chunk in 1..8usize {
                let (got, skipped) = drain_reader(Chunked { data: &buf, chunk });
                assert_eq!(got, vec![(5, 97)], "garbage {garbage}, chunk {chunk}");
                assert_eq!(skipped, garbage as u64);
            }
        }
    }

    #[test]
    fn frame_reader_recovers_frame_hidden_in_corrupt_candidate_payload() {
        // Regression: frame 0's length field is inflated so the legacy
        // resync reader swallows frame 1 inside the bogus candidate body.
        // The buffered reader must rescan and recover frame 1.
        let f0 = WireFrame { sequence: 0, payload: vec![9; 50] };
        let f1 = WireFrame { sequence: 1, payload: vec![8; 50] };
        let mut buf = encode(&[f0, f1.clone()]);
        buf[8] += 60; // frame 0 now claims its payload covers frame 1 too
        let (got, skipped) = drain_reader(&buf[..]);
        assert_eq!(got, vec![(1, 50)], "frame 1 must survive");
        assert!(skipped > 0);

        // The legacy one-region reader documents the weaker behaviour: it
        // consumes the candidate body, losing frame 1.
        let mut r = &buf[..];
        assert!(matches!(read_frame_resync(&mut r), Err(NetError::Closed)));
    }

    #[test]
    fn frame_reader_back_to_back_corrupt_frames() {
        // Two adjacent corrupt frames, then an intact one: the reader must
        // cross both corrupt regions (the legacy API only survives one).
        let frames: Vec<WireFrame> =
            (0..4).map(|i| WireFrame { sequence: i, payload: vec![i as u8 + 1; 120] }).collect();
        let mut buf = encode(&frames);
        let stride = buf.len() / 4;
        buf[stride + 30] ^= 0xFF; // corrupt frame 1 payload
        buf[2 * stride + 30] ^= 0xFF; // corrupt frame 2 payload
        let (got, skipped) = drain_reader(&buf[..]);
        assert_eq!(got, vec![(0, 120), (3, 120)]);
        assert!(skipped > 0);
    }

    #[test]
    fn frame_reader_every_frame_corrupt_reports_closed() {
        let frames: Vec<WireFrame> =
            (0..3).map(|i| WireFrame { sequence: i, payload: vec![7; 80] }).collect();
        let mut buf = encode(&frames);
        let stride = buf.len() / 3;
        for k in 0..3 {
            buf[k * stride + 40] ^= 0x01;
        }
        let (got, skipped) = drain_reader(&buf[..]);
        assert!(got.is_empty());
        assert_eq!(skipped, buf.len() as u64, "every byte accounted as skipped");
    }

    #[test]
    fn frame_reader_max_payload_knob() {
        let frame = WireFrame { sequence: 1, payload: vec![3; 2000] };
        let buf = encode(std::slice::from_ref(&frame));
        // Under the default bound the frame reads fine.
        let mut ok = FrameReader::new(&buf[..]);
        assert_eq!(ok.next_frame().unwrap().0, frame);
        // With a 1 KiB knob the 2 KB frame is treated as hostile garbage.
        let mut tight = FrameReader::new(&buf[..]).with_max_payload(1 << 10);
        assert!(matches!(tight.next_frame(), Err(NetError::Closed)));
    }

    // The doc comment promises "< 1 MiB" typical frames; the guard must
    // be within an order of magnitude, not a 1 GiB barn door.
    const _: () = assert!(DEFAULT_MAX_PAYLOAD <= 16 << 20);
    const _: () = assert!(DEFAULT_MAX_PAYLOAD >= 1 << 20);

    #[test]
    fn default_payload_bound_is_sane() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DBGF");
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&(DEFAULT_MAX_PAYLOAD + 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(read_frame(&mut &buf[..]), Err(NetError::OversizedFrame(_))));
    }

    #[test]
    fn control_frames_roundtrip_and_reject_garbage() {
        for c in [
            Control::Hello { session_id: 0xDEAD_BEEF_0123, last_acked: 42 },
            Control::Ack { session_id: 7, next_expected: 0 },
            Control::Reject { session_id: 11, code: REJECT_FLEET_FULL },
        ] {
            let frame = c.to_frame();
            assert_eq!(frame.sequence, CONTROL_SEQUENCE);
            assert_eq!(Control::from_frame(&frame), Some(c));
            // Survives the wire.
            let mut buf = Vec::new();
            write_frame(&mut buf, &frame).unwrap();
            let back = read_frame(&mut &buf[..]).unwrap();
            assert_eq!(Control::from_frame(&back), Some(c));
        }
        assert_eq!(Control::decode(&[]), None);
        assert_eq!(Control::decode(&[0x7F; 13]), None, "unknown tags stay unrecognized");
        assert_eq!(Control::decode(&[0x01; 12]), None);
        // A data frame is never mistaken for control.
        let data = WireFrame { sequence: 3, payload: vec![CONTROL_TAG_HELLO; 13] };
        assert_eq!(Control::from_frame(&data), None);
    }

    #[test]
    fn checksum_covers_every_field() {
        let a = frame_checksum(1, b"abc");
        let b = frame_checksum(2, b"abc");
        let c = frame_checksum(1, b"abd");
        assert!(a != b && a != c && b != c);
        // IEEE CRC-32 sanity: the classic test vector for the underlying
        // polynomial ("123456789" -> 0xCBF43926).
        assert_eq!(!crc32_update(0xFFFF_FFFF, b"123456789"), 0xCBF4_3926);
    }
}
