//! Length-prefixed wire protocol for compressed point-cloud frames.
//!
//! ```text
//! "DBGF" | u32 sequence | u64 payload_len | u32 crc32 | payload bytes
//! ```
//!
//! All integers little-endian. The CRC-32 (IEEE) covers the sequence, the
//! payload length, and the payload, so a flipped bit anywhere in a frame —
//! including its header — is detected. Works over any `Read`/`Write`, so the
//! same code drives TCP sockets, in-memory pipes, and files.
//!
//! Corruption handling: [`read_frame`] fails fast with a typed error;
//! [`read_frame_resync`] additionally scans forward for the next wire magic
//! so a stream survives one corrupt frame instead of desyncing — the damaged
//! frame is dropped and the skipped byte count reported to the caller.

use std::fmt;
use std::io::{self, Read, Write};

const WIRE_MAGIC: [u8; 4] = *b"DBGF";
/// Upper bound on a frame payload (a compressed LiDAR frame is < 1 MiB; this
/// guards against corrupt length fields).
const MAX_PAYLOAD: u64 = 1 << 30;

/// A framed message: a compressed point cloud plus its sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFrame {
    /// Monotone frame sequence number.
    pub sequence: u32,
    /// The DBGC bitstream.
    pub payload: Vec<u8>,
}

/// Transport-level failure.
#[derive(Debug)]
pub enum NetError {
    /// Underlying transport failure.
    Io(io::Error),
    /// The stream does not start with the wire magic.
    BadMagic,
    /// A declared payload length exceeds the sanity limit.
    OversizedFrame(u64),
    /// The frame checksum does not match its contents.
    ChecksumMismatch {
        /// Sequence number as read from the (possibly corrupt) header.
        sequence: u32,
    },
    /// Clean end of stream between frames.
    Closed,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "I/O error: {e}"),
            NetError::BadMagic => write!(f, "bad wire magic"),
            NetError::OversizedFrame(n) => write!(f, "frame of {n} bytes exceeds limit"),
            NetError::ChecksumMismatch { sequence } => {
                write!(f, "checksum mismatch on frame {sequence}")
            }
            NetError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    for &b in data {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// CRC-32 (IEEE) over a frame's sequence, payload length, and payload.
pub fn frame_checksum(sequence: u32, payload: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFF_u32;
    c = crc32_update(c, &sequence.to_le_bytes());
    c = crc32_update(c, &(payload.len() as u64).to_le_bytes());
    c = crc32_update(c, payload);
    !c
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, frame: &WireFrame) -> Result<(), NetError> {
    w.write_all(&WIRE_MAGIC)?;
    w.write_all(&frame.sequence.to_le_bytes())?;
    w.write_all(&(frame.payload.len() as u64).to_le_bytes())?;
    w.write_all(&frame_checksum(frame.sequence, &frame.payload).to_le_bytes())?;
    w.write_all(&frame.payload)?;
    w.flush()?;
    Ok(())
}

/// Read and verify the frame body after the magic: header fields + payload.
fn read_frame_body(r: &mut impl Read) -> Result<WireFrame, NetError> {
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    let sequence = u32::from_le_bytes(buf4);
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let len = u64::from_le_bytes(buf8);
    r.read_exact(&mut buf4)?;
    let checksum = u32::from_le_bytes(buf4);
    if len > MAX_PAYLOAD {
        return Err(NetError::OversizedFrame(len));
    }
    // Reservation is clamped; a corrupt length field only costs as many
    // bytes as the stream actually delivers before the checksum fails.
    let mut payload = Vec::with_capacity(len.min(1 << 16) as usize);
    let got = r.take(len).read_to_end(&mut payload)?;
    if got as u64 != len {
        return Err(NetError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "stream ended mid-payload",
        )));
    }
    if frame_checksum(sequence, &payload) != checksum {
        return Err(NetError::ChecksumMismatch { sequence });
    }
    Ok(WireFrame { sequence, payload })
}

/// Read one frame; returns [`NetError::Closed`] on a clean EOF at a frame
/// boundary. Fails fast on corruption — see [`read_frame_resync`] for the
/// skip-and-continue variant.
pub fn read_frame(r: &mut impl Read) -> Result<WireFrame, NetError> {
    let mut magic = [0u8; 4];
    match r.read_exact(&mut magic) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(NetError::Closed),
        Err(e) => return Err(e.into()),
    }
    if magic != WIRE_MAGIC {
        return Err(NetError::BadMagic);
    }
    read_frame_body(r)
}

/// Read the next verifiable frame, resynchronizing past corruption.
///
/// Scans forward for the wire magic, then reads and checksums the candidate
/// frame; on a checksum or length failure the candidate is discarded and the
/// scan continues. Returns the frame plus the number of corrupt bytes skipped
/// over (0 on a clean stream). Returns [`NetError::Closed`] once the stream
/// ends, even if trailing corrupt bytes were discarded first.
pub fn read_frame_resync(r: &mut impl Read) -> Result<(WireFrame, u64), NetError> {
    let mut skipped = 0u64;
    let mut window = [0u8; 4];
    let mut have = 0usize;
    loop {
        while have < 4 {
            let mut b = [0u8; 1];
            match r.read(&mut b) {
                Ok(0) => return Err(NetError::Closed),
                Ok(_) => {
                    window[have] = b[0];
                    have += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        if window == WIRE_MAGIC {
            match read_frame_body(r) {
                Ok(frame) => return Ok((frame, skipped)),
                Err(NetError::ChecksumMismatch { .. }) | Err(NetError::OversizedFrame(_)) => {
                    // Discard the candidate (its body bytes are already
                    // consumed) and keep scanning from the current position.
                    skipped += 4;
                    have = 0;
                }
                Err(NetError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => {
                    return Err(NetError::Closed);
                }
                Err(e) => return Err(e),
            }
        } else {
            window.rotate_left(1);
            have = 3;
            skipped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        let frames: Vec<WireFrame> = (0..5)
            .map(|i| WireFrame { sequence: i, payload: vec![i as u8; (i * 100) as usize] })
            .collect();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = &buf[..];
        for f in &frames {
            assert_eq!(&read_frame(&mut r).unwrap(), f);
        }
        assert!(matches!(read_frame(&mut r), Err(NetError::Closed)));
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00";
        assert!(matches!(read_frame(&mut &buf[..]), Err(NetError::BadMagic)));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DBGF");
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(read_frame(&mut &buf[..]), Err(NetError::OversizedFrame(_))));
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireFrame { sequence: 3, payload: vec![0xAB; 64] }).unwrap();
        let payload_start = buf.len() - 64;
        buf[payload_start + 20] ^= 0x10;
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(NetError::ChecksumMismatch { sequence: 3 })
        ));
    }

    #[test]
    fn flipped_header_bit_fails_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireFrame { sequence: 3, payload: vec![0xAB; 64] }).unwrap();
        buf[5] ^= 0x01; // sequence field
        assert!(matches!(read_frame(&mut &buf[..]), Err(NetError::ChecksumMismatch { .. })));
    }

    #[test]
    fn resync_skips_corrupt_frame() {
        let mut buf = Vec::new();
        for i in 0..3u32 {
            write_frame(&mut buf, &WireFrame { sequence: i, payload: vec![i as u8; 200] }).unwrap();
        }
        // Corrupt the middle frame's payload.
        let frame_size = buf.len() / 3;
        buf[frame_size + 40] ^= 0xFF;
        let mut r = &buf[..];
        let (f0, s0) = read_frame_resync(&mut r).unwrap();
        assert_eq!((f0.sequence, s0), (0, 0));
        let (f2, s2) = read_frame_resync(&mut r).unwrap();
        assert_eq!(f2.sequence, 2, "frame 1 dropped, frame 2 recovered");
        assert!(s2 > 0, "skipped bytes reported");
        assert!(matches!(read_frame_resync(&mut r), Err(NetError::Closed)));
    }

    #[test]
    fn resync_skips_leading_garbage() {
        let mut buf = b"garbage bytes before the stream".to_vec();
        write_frame(&mut buf, &WireFrame { sequence: 7, payload: vec![1, 2, 3] }).unwrap();
        let mut r = &buf[..];
        let (frame, skipped) = read_frame_resync(&mut r).unwrap();
        assert_eq!(frame.sequence, 7);
        assert_eq!(skipped, 31);
    }

    #[test]
    fn resync_survives_magic_inside_corrupt_region() {
        // A corrupt length field makes frame 0's body end early; the scan
        // must still find the following intact frame.
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireFrame { sequence: 0, payload: vec![9; 50] }).unwrap();
        let good_start = buf.len();
        write_frame(&mut buf, &WireFrame { sequence: 1, payload: vec![8; 50] }).unwrap();
        // Tamper with frame 0's length field (bytes 8..16).
        buf[8] -= 5;
        let mut r = &buf[..];
        let (frame, skipped) = read_frame_resync(&mut r).unwrap();
        assert_eq!(frame.sequence, 1);
        assert!(skipped > 0 && skipped <= good_start as u64);
        assert!(matches!(read_frame_resync(&mut r), Err(NetError::Closed)));
    }

    /// A reader that returns at most one byte per call, exercising every
    /// partial-read path in `read_frame`.
    struct Dribble<'a>(&'a [u8]);
    impl std::io::Read for Dribble<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() || out.is_empty() {
                return Ok(0);
            }
            out[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn fragmented_transport_reassembles() {
        let mut buf = Vec::new();
        let frame = WireFrame { sequence: 9, payload: (0..=255).collect() };
        write_frame(&mut buf, &frame).unwrap();
        let mut r = Dribble(&buf);
        assert_eq!(read_frame(&mut r).unwrap(), frame);
        assert!(matches!(read_frame(&mut r), Err(NetError::Closed)));
    }

    #[test]
    fn truncated_mid_frame_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireFrame { sequence: 1, payload: vec![7; 100] }).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(matches!(read_frame(&mut &buf[..]), Err(NetError::Io(_))));
    }

    #[test]
    fn checksum_covers_every_field() {
        let a = frame_checksum(1, b"abc");
        let b = frame_checksum(2, b"abc");
        let c = frame_checksum(1, b"abd");
        assert!(a != b && a != c && b != c);
        // IEEE CRC-32 sanity: the classic test vector for the underlying
        // polynomial ("123456789" -> 0xCBF43926).
        assert_eq!(!crc32_update(0xFFFF_FFFF, b"123456789"), 0xCBF4_3926);
    }
}
