//! The multi-tenant ingestion fleet: one server, many sensor streams.
//!
//! [`crate::server::SessionServer`] is a transport-free state machine, but
//! everything above it so far serves *one* blocking connection at a time.
//! This module multiplexes thousands of them behind a single façade:
//!
//! * **Sharded event loops.** [`FleetServer::spawn`] starts `shards` worker
//!   threads; each owns a [`FleetCore`] — connections, per-tenant
//!   `SessionServer`s, and budgets for its shard — and drains a bounded event
//!   queue. Sessions route to shards by a hash of their id, so one tenant's
//!   state never migrates and per-tenant processing stays in order.
//! * **Push-based framing.** Connections don't get a blocking reader.
//!   Transport bytes land in a per-connection feed buffer and a wakeup event
//!   is queued; the shard pumps the connection's [`FrameReader`] until it
//!   reports `WouldBlock` (feed empty). The reader keeps its full
//!   resynchronization behaviour and its per-connection payload guard
//!   ([`FleetConfig::max_payload`], default 8 MiB).
//! * **Admission control.** A fleet-wide session cap enforced with a single
//!   atomic compare-and-swap: concurrent hellos on different shards can never
//!   overshoot. A refused session gets a typed [`Control::Reject`] frame —
//!   never a hang or a reset — which v3.1 clients surface as
//!   [`NetError::Rejected`] without burning their retry budget.
//! * **Fleet-scope load shedding.** The per-pipeline
//!   [`OverloadPolicy`] is lifted to fleet scope: per-tenant undrained-frame
//!   caps and a global byte budget, checked after every stored frame.
//!   `Block` pauses the offending tenant's connections (the client's bounded
//!   window throttles it); `DropOldest` shed the tenant's oldest undrained
//!   frame; `Degrade` decimates over-fair-share tenants to half temporal
//!   resolution while pressure lasts. Shed frames were already
//!   acknowledged, so the session protocol never stalls — they are counted
//!   (`fleet.shed_frames`) and reported per tenant instead.
//! * **Never block the loop.** Acks are forwarded over a bounded channel
//!   with `try_send`; a full ack queue drops the (idempotent) ack and counts
//!   `fleet.ack_drops` — the client recovers by timeout and reconnect.
//!
//! ### Accounting
//!
//! The wire-level partition from the chaos suite still holds per fleet
//! (all tenants share one collector): `net.frames_intact ==
//! net.frames_stored + net.frames_deduped + net.frames_gap_dropped +
//! net.decode_failures`. Shedding happens *after* storage, adding a second
//! exact partition: `net.frames_stored == drained + resident + shed`.
//! Substituting gives the fleet-wide exactly-once invariant the fleet-chaos
//! harness asserts: `frames_intact == durable + deduped + gap_dropped +
//! decode_failures + shed`, where durable = drained + resident.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::fault::SplitMix64;
use crate::pipeline::OverloadPolicy;
use crate::protocol::{
    write_frame, Control, FrameReader, NetError, WireFrame, DEFAULT_MAX_PAYLOAD, REJECT_FLEET_FULL,
    REJECT_WRONG_SHARD,
};
use crate::server::{AnomalyKind, SessionServer, StoredFrame};

/// Tuning for a [`FleetServer`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Event-loop shards (worker threads); sessions hash onto them by id.
    pub shards: usize,
    /// Fleet-wide admission cap on resident tenant sessions.
    pub max_sessions: usize,
    /// Per-tenant cap on stored-but-undrained frames (0 = unbounded).
    pub max_tenant_frames: usize,
    /// Global budget on undrained payload bytes across all tenants
    /// (0 = unbounded).
    pub max_fleet_bytes: u64,
    /// What to do when a budget is exceeded; see the module docs.
    pub policy: OverloadPolicy,
    /// Per-connection payload guard handed to each [`FrameReader`].
    pub max_payload: u64,
    /// Decompress stored frames (the paper's non-bypass mode).
    pub decompress: bool,
    /// Bound of each shard's event queue; senders block when it fills, so
    /// backpressure lands on clients, never on the loop.
    pub event_queue: usize,
    /// Per-connection feed-buffer guard: a connection whose unparsed bytes
    /// exceed this blocks its writer (and eventually times out), bounding
    /// memory against tenants that outrun their shard.
    pub feed_cap: usize,
    /// How long an in-process writer may stall on a full feed before its
    /// write fails with `TimedOut` (the resilient client then reconnects).
    pub write_stall: Duration,
}

impl FleetConfig {
    /// Defaults for `max_sessions` tenants on one shard: 8 MiB payload
    /// guard, no shedding budgets, `Block` policy.
    pub fn new(max_sessions: usize) -> FleetConfig {
        FleetConfig {
            shards: 1,
            max_sessions,
            max_tenant_frames: 0,
            max_fleet_bytes: 0,
            policy: OverloadPolicy::Block,
            max_payload: DEFAULT_MAX_PAYLOAD,
            decompress: false,
            event_queue: 1024,
            feed_cap: 4 * DEFAULT_MAX_PAYLOAD as usize + (64 << 10),
            write_stall: Duration::from_secs(2),
        }
    }

    /// Which shard owns `session_id`. Mixed, so sequential sensor ids still
    /// spread evenly.
    pub fn shard_of(&self, session_id: u64) -> usize {
        (SplitMix64(session_id).next() % self.shards.max(1) as u64) as usize
    }
}

/// Fleet-wide state shared by every shard: the admission gate, the global
/// byte budget, and counters mirrored into the metrics collector.
struct FleetShared {
    sessions: AtomicUsize,
    sessions_peak: AtomicUsize,
    fleet_bytes: AtomicU64,
    admission_rejects: AtomicU64,
    shed_frames: AtomicU64,
    prehello_frames: AtomicU64,
    ack_drops: AtomicU64,
    #[cfg(feature = "metrics")]
    collector: dbgc_metrics::Collector,
}

impl FleetShared {
    fn new() -> FleetShared {
        FleetShared {
            sessions: AtomicUsize::new(0),
            sessions_peak: AtomicUsize::new(0),
            fleet_bytes: AtomicU64::new(0),
            admission_rejects: AtomicU64::new(0),
            shed_frames: AtomicU64::new(0),
            prehello_frames: AtomicU64::new(0),
            ack_drops: AtomicU64::new(0),
            #[cfg(feature = "metrics")]
            collector: dbgc_metrics::Collector::new(),
        }
    }

    fn incr(&self, _name: &str, _n: u64) {
        #[cfg(feature = "metrics")]
        self.collector.incr(_name, _n);
    }

    fn set_gauge(&self, _name: &str, _v: f64) {
        #[cfg(feature = "metrics")]
        self.collector.set_gauge(_name, _v);
    }

    /// Claim one session slot iff the fleet is under `cap`. The CAS loop is
    /// the whole admission controller: shards race freely and the cap still
    /// holds exactly.
    fn try_admit(&self, cap: usize) -> bool {
        let admitted = self
            .sessions
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| (n < cap).then_some(n + 1))
            .is_ok();
        if admitted {
            let now = self.sessions.load(Ordering::SeqCst);
            self.sessions_peak.fetch_max(now, Ordering::SeqCst);
            self.set_gauge("fleet.sessions_active", now as f64);
            self.set_gauge("fleet.sessions_peak", self.sessions_peak.load(Ordering::SeqCst) as f64);
        }
        admitted
    }

    fn release_session(&self) {
        let before = self.sessions.fetch_sub(1, Ordering::SeqCst);
        self.set_gauge("fleet.sessions_active", before.saturating_sub(1) as f64);
    }
}

/// Transport bytes queued for a connection plus its close flags.
#[derive(Debug, Default)]
struct FeedShared {
    buf: VecDeque<u8>,
    /// The client hung up: the reader sees EOF once `buf` drains.
    client_closed: bool,
    /// The fleet dropped the connection: further writes fail.
    server_closed: bool,
}

/// The read half the shard's [`FrameReader`] consumes: nonblocking — an
/// empty, still-open feed reports `WouldBlock` so the pump yields back to
/// the event loop with the reader's resync state intact.
#[derive(Debug)]
struct ByteFeed(Arc<Mutex<FeedShared>>);

impl Read for ByteFeed {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let mut feed = self.0.lock().expect("feed lock");
        if feed.buf.is_empty() {
            return if feed.client_closed {
                Ok(0)
            } else {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "feed empty"))
            };
        }
        let n = out.len().min(feed.buf.len());
        for (i, b) in feed.buf.drain(..n).enumerate() {
            out[i] = b;
        }
        Ok(n)
    }
}

/// Write half of the fleet's server → client control path. Whole frames are
/// buffered and forwarded with `try_send`: the event loop never blocks on a
/// slow client, and a dropped ack is harmless (acks are idempotent; the
/// client recovers via its send timeout).
pub struct AckSender {
    tx: SyncSender<Vec<u8>>,
    buf: Vec<u8>,
    shared: Arc<FleetShared>,
}

impl Write for AckSender {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        match self.tx.try_send(std::mem::take(&mut self.buf)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                // Shed the ack, keep the loop moving.
                self.shared.ack_drops.fetch_add(1, Ordering::Relaxed);
                self.shared.incr("fleet.ack_drops", 1);
                Ok(())
            }
            Err(TrySendError::Disconnected(_)) => {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "ack receiver gone"))
            }
        }
    }
}

/// Client-side read half for acks/rejects; blocks like a socket, reports
/// EOF when the fleet drops the connection. Feed it to a [`FrameReader`]
/// (the resilient client's ack pump already does).
#[derive(Debug)]
pub struct AckReceiver {
    rx: Receiver<Vec<u8>>,
    cur: Vec<u8>,
    pos: usize,
}

impl Read for AckReceiver {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        while self.pos >= self.cur.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.cur = chunk;
                    self.pos = 0;
                }
                Err(_) => return Ok(0),
            }
        }
        let n = out.len().min(self.cur.len() - self.pos);
        out[..n].copy_from_slice(&self.cur[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// The in-process client write half handed out by [`FleetHandle::connect`]:
/// bytes go straight into the connection's feed buffer and a wakeup event is
/// queued. Applies the feed-cap backpressure described on
/// [`FleetConfig::feed_cap`]. Dropping it closes the connection cleanly.
pub struct FleetConnTx {
    conn: u64,
    shard_tx: SyncSender<FleetEvent>,
    feed: Arc<Mutex<FeedShared>>,
    feed_cap: usize,
    write_stall: Duration,
}

impl Write for FleetConnTx {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let start = Instant::now();
        loop {
            {
                let mut feed = self.feed.lock().expect("feed lock");
                if feed.server_closed {
                    return Err(io::Error::new(io::ErrorKind::BrokenPipe, "connection dropped"));
                }
                if feed.buf.len() + data.len() <= self.feed_cap {
                    feed.buf.extend(data);
                    break;
                }
            }
            // Over the feed cap: backpressure. A paused (Block-policy)
            // tenant parks here until a drain, bounded by the stall budget.
            if start.elapsed() > self.write_stall {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "feed full past stall budget"));
            }
            std::thread::sleep(Duration::from_micros(500));
        }
        self.shard_tx
            .send(FleetEvent::Data { conn: self.conn })
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "fleet shut down"))?;
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for FleetConnTx {
    fn drop(&mut self) {
        if let Ok(mut feed) = self.feed.lock() {
            feed.client_closed = true;
        }
        let _ = self.shard_tx.send(FleetEvent::Close { conn: self.conn });
    }
}

/// One shard's mailbox.
enum FleetEvent {
    /// A new connection with its feed, ack path, and routing hint.
    Accept { conn: u64, feed: Arc<Mutex<FeedShared>>, ack: AckSender },
    /// Bytes landed in `conn`'s feed; pump its reader.
    Data { conn: u64 },
    /// The client hung up; drain the feed tail, then forget the connection.
    Close { conn: u64 },
    /// Hand every tenant's stored frames to the caller (the archival path).
    Drain { reply: SyncSender<Vec<(u64, Vec<StoredFrame>)>> },
    /// Retire one tenant, freeing its admission slot; replies with its
    /// undrained frames (`None` if the tenant lives on another shard or
    /// does not exist).
    Evict { session: u64, reply: SyncSender<Option<Vec<StoredFrame>>> },
    /// Barrier: replies once every earlier event on this shard is applied.
    Sync { reply: SyncSender<()> },
    /// Exit the loop even while senders remain.
    Shutdown,
}

/// Per-connection state on a shard.
struct Conn {
    reader: FrameReader<ByteFeed>,
    feed: Arc<Mutex<FeedShared>>,
    ack: Option<AckSender>,
    /// Bound tenant once a hello routed it; `None` drops data frames.
    tenant: Option<u64>,
    /// Watermark into `reader.bytes_skipped()` for resync attribution.
    skip_mark: u64,
}

/// Per-tenant state on a shard: the session state machine plus fleet
/// bookkeeping.
#[derive(Debug)]
struct Tenant {
    server: SessionServer,
    /// Payload bytes stored but not yet drained (the global-budget share).
    resident_bytes: u64,
    /// Sequences handed to [`FleetHandle::drain`] so far, in order.
    drained_seqs: Vec<u32>,
    /// Sequences shed under overload (acknowledged, then dropped).
    shed_seqs: Vec<u32>,
    /// `Block`-policy flag: stop pumping this tenant's connections until a
    /// drain relieves the pressure.
    paused: bool,
    /// `Degrade` decimation phase; resets when pressure clears.
    decim: u64,
}

/// What one shard knew at shutdown; aggregated into [`FleetReport`].
#[derive(Debug)]
pub struct TenantReport {
    /// The tenant's wire-v3 session id.
    pub session_id: u64,
    /// Durably-held sequences: drained first, then still-resident, in
    /// storage order.
    pub durable: Vec<u32>,
    /// Frames still resident (undrained) at shutdown, bytes included.
    pub resident_frames: Vec<StoredFrame>,
    /// Sequences shed under overload after being acknowledged.
    pub shed: Vec<u32>,
    /// Replayed frames deduplicated (from the session's anomaly log).
    pub deduped: usize,
    /// Out-of-order frames dropped for go-back-N to re-deliver.
    pub gap_dropped: usize,
    /// Checksummed frames whose payload failed to decode.
    pub decode_failures: usize,
    /// Corrupt wire regions resynchronized past on this tenant's
    /// connections.
    pub resyncs: usize,
}

impl TenantReport {
    /// The tenant's share of the fleet partition: intact data frames implied
    /// by its terminal outcomes. With every client done and the session
    /// idle, `durable + shed` must cover `0..n` exactly once for exactly-once
    /// delivery.
    pub fn implied_intact(&self) -> u64 {
        (self.durable.len() + self.shed.len() + self.deduped + self.gap_dropped) as u64
            + self.decode_failures as u64
    }
}

/// Aggregated outcome of a fleet run, built by [`FleetServer::shutdown`].
#[derive(Debug)]
pub struct FleetReport {
    /// Every tenant the fleet admitted, sorted by session id.
    pub tenants: Vec<TenantReport>,
    /// High-water mark of concurrently resident sessions.
    pub sessions_peak: usize,
    /// Hellos refused at the admission gate (typed `Reject` sent).
    pub admission_rejects: u64,
    /// Frames shed across the fleet under overload policies.
    pub shed_frames: u64,
    /// Data frames dropped because no hello had bound the connection.
    pub prehello_frames: u64,
    /// Acks dropped by the non-blocking ack path.
    pub ack_drops: u64,
    /// `net.*` / `fleet.*` counters (empty without the `metrics` feature).
    pub counters: Vec<(String, u64)>,
}

impl FleetReport {
    /// Look up a captured counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(k, _)| k == name).map_or(0, |(_, v)| *v)
    }

    /// Report for one tenant, if admitted.
    pub fn tenant(&self, session_id: u64) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.session_id == session_id)
    }

    /// Check the fleet-wide counter partition (metrics feature only; `Ok`
    /// when counters were not captured): every intact data frame is exactly
    /// one of durable, deduplicated, gap-dropped, a decode failure, or shed.
    pub fn verify_partition(&self) -> Result<(), String> {
        if self.counters.is_empty() {
            return Ok(());
        }
        let intact = self.counter("net.frames_intact");
        let stored = self.counter("net.frames_stored");
        let parts = stored
            + self.counter("net.frames_deduped")
            + self.counter("net.frames_gap_dropped")
            + self.counter("net.decode_failures");
        if intact != parts {
            return Err(format!(
                "wire partition broken: frames_intact {intact} != \
                 stored+deduped+gap_dropped+decode_failures {parts}"
            ));
        }
        // Storage partition: stored == durable + shed (shed happens after
        // storage, so `net.frames_shed` must reconcile exactly).
        let durable: u64 = self.tenants.iter().map(|t| t.durable.len() as u64).sum();
        let shed: u64 = self.tenants.iter().map(|t| t.shed.len() as u64).sum();
        if stored != durable + shed {
            return Err(format!(
                "storage partition broken: frames_stored {stored} != durable {durable} + shed {shed}"
            ));
        }
        if shed != self.counter("net.frames_shed") {
            return Err(format!(
                "shed accounting broken: reported {shed} != net.frames_shed {}",
                self.counter("net.frames_shed")
            ));
        }
        Ok(())
    }
}

/// One shard's state machine. Single-threaded by construction: the owning
/// worker applies events in mailbox order, so per-tenant outcomes are a pure
/// function of each tenant's byte stream regardless of shard count.
struct FleetCore {
    index: usize,
    config: FleetConfig,
    shared: Arc<FleetShared>,
    conns: HashMap<u64, Conn>,
    tenants: HashMap<u64, Tenant>,
}

/// Outcome of one pump step, decoupling the reader borrow from routing.
enum Pumped {
    Frame(WireFrame, u64),
    Yield(u64),
    Done(u64),
}

impl FleetCore {
    fn new(index: usize, config: FleetConfig, shared: Arc<FleetShared>) -> FleetCore {
        FleetCore { index, config, shared, conns: HashMap::new(), tenants: HashMap::new() }
    }

    /// Apply one event; `false` ends the shard loop.
    fn handle_event(&mut self, event: FleetEvent) -> bool {
        match event {
            FleetEvent::Accept { conn, feed, ack } => {
                let reader = FrameReader::new(ByteFeed(Arc::clone(&feed)))
                    .with_max_payload(self.config.max_payload);
                self.conns.insert(
                    conn,
                    Conn { reader, feed, ack: Some(ack), tenant: None, skip_mark: 0 },
                );
            }
            FleetEvent::Data { conn } | FleetEvent::Close { conn } => self.pump(conn),
            FleetEvent::Drain { reply } => {
                let drained = self.drain_all();
                let _ = reply.send(drained);
            }
            FleetEvent::Evict { session, reply } => {
                let _ = reply.send(self.evict(session));
            }
            FleetEvent::Sync { reply } => {
                let _ = reply.send(());
            }
            FleetEvent::Shutdown => return false,
        }
        true
    }

    /// Pump one connection's reader until the feed runs dry, the connection
    /// ends, or its tenant pauses.
    fn pump(&mut self, conn_id: u64) {
        loop {
            let step = {
                let Some(conn) = self.conns.get_mut(&conn_id) else { return };
                if let Some(t) = conn.tenant {
                    if self.tenants.get(&t).is_some_and(|t| t.paused) {
                        return;
                    }
                }
                match conn.reader.next_frame() {
                    Ok((wire, _)) => {
                        let total = conn.reader.bytes_skipped();
                        let delta = total - conn.skip_mark;
                        conn.skip_mark = total;
                        Pumped::Frame(wire, delta)
                    }
                    Err(NetError::Io(e)) if e.kind() == io::ErrorKind::WouldBlock => {
                        let total = conn.reader.bytes_skipped();
                        Pumped::Yield(total)
                    }
                    // `Closed` or a hard error: the connection is over either
                    // way (session state persists for a reconnect).
                    Err(_) => {
                        let total = conn.reader.bytes_skipped();
                        Pumped::Done(total)
                    }
                }
            };
            match step {
                Pumped::Frame(wire, skip_delta) => {
                    self.account_skip(conn_id, skip_delta);
                    self.handle_wire(conn_id, wire);
                }
                Pumped::Yield(total) => {
                    self.settle_skip(conn_id, total);
                    return;
                }
                Pumped::Done(total) => {
                    self.settle_skip(conn_id, total);
                    self.remove_conn(conn_id);
                    return;
                }
            }
        }
    }

    /// Attribute garbage consumed since the watermark, then advance it.
    fn settle_skip(&mut self, conn_id: u64, total: u64) {
        let delta = match self.conns.get_mut(&conn_id) {
            Some(conn) => {
                let delta = total - conn.skip_mark;
                conn.skip_mark = total;
                delta
            }
            None => return,
        };
        self.account_skip(conn_id, delta);
    }

    fn account_skip(&mut self, conn_id: u64, skipped: u64) {
        if skipped == 0 {
            return;
        }
        let tenant = self.conns.get(&conn_id).and_then(|c| c.tenant);
        match tenant.and_then(|t| self.tenants.get_mut(&t)) {
            Some(tenant) => tenant.server.record_resync(skipped),
            None => {
                // Garbage on an unbound connection is the fleet's to count.
                self.shared.incr("net.resyncs", 1);
                self.shared.incr("net.bytes_skipped", skipped);
            }
        }
    }

    /// Route one parsed frame: hellos bind/admit, data frames go to the
    /// bound tenant's session state machine, then budgets are enforced.
    fn handle_wire(&mut self, conn_id: u64, wire: WireFrame) {
        #[cfg(feature = "metrics")]
        let t0 = Instant::now();
        if let Some(control) = Control::from_frame(&wire) {
            match control {
                Control::Hello { session_id, .. } => self.handle_hello(conn_id, session_id, wire),
                // Client-bound control arriving here is noise; ignore.
                Control::Ack { .. } | Control::Reject { .. } => {}
            }
        } else {
            match self.conns.get(&conn_id).and_then(|c| c.tenant) {
                None => {
                    // Data before any hello: the fleet speaks sessions only.
                    self.shared.prehello_frames.fetch_add(1, Ordering::Relaxed);
                    self.shared.incr("fleet.prehello_frames", 1);
                }
                Some(sid) => self.handle_data(conn_id, sid, wire),
            }
        }
        #[cfg(feature = "metrics")]
        self.shared.collector.record("fleet.frame_handle_us", t0.elapsed().as_micros() as u64);
    }

    fn handle_hello(&mut self, conn_id: u64, session_id: u64, wire: WireFrame) {
        if self.config.shard_of(session_id) != self.index {
            // The driver registered this connection on the wrong shard; a
            // session split across shards would break dedup, so refuse.
            self.reject(conn_id, session_id, REJECT_WRONG_SHARD);
            return;
        }
        if !self.tenants.contains_key(&session_id) {
            if !self.shared.try_admit(self.config.max_sessions) {
                self.shared.admission_rejects.fetch_add(1, Ordering::Relaxed);
                self.shared.incr("fleet.admission_rejects", 1);
                self.reject(conn_id, session_id, REJECT_FLEET_FULL);
                return;
            }
            let server = SessionServer::new(self.config.decompress);
            #[cfg(feature = "metrics")]
            let server = server.with_metrics(&self.shared.collector);
            self.tenants.insert(
                session_id,
                Tenant {
                    server,
                    resident_bytes: 0,
                    drained_seqs: Vec::new(),
                    shed_seqs: Vec::new(),
                    paused: false,
                    decim: 0,
                },
            );
        }
        let Some(conn) = self.conns.get_mut(&conn_id) else { return };
        conn.tenant = Some(session_id);
        let tenant = self.tenants.get_mut(&session_id).expect("tenant just ensured");
        // The session machine handles the hello itself (reconnect counters,
        // ahead-of-cursor gap records) and sends the handshake ack.
        let _ = tenant.server.handle_frame(wire, &mut conn.ack);
    }

    fn handle_data(&mut self, conn_id: u64, session_id: u64, wire: WireFrame) {
        let payload_len = wire.payload.len() as u64;
        let Some(conn) = self.conns.get_mut(&conn_id) else { return };
        let Some(tenant) = self.tenants.get_mut(&session_id) else { return };
        let stored = tenant.server.handle_frame(wire, &mut conn.ack).unwrap_or(false);
        if stored {
            tenant.resident_bytes += payload_len;
            self.shared.fleet_bytes.fetch_add(payload_len, Ordering::SeqCst);
            self.enforce_budgets(session_id);
        }
    }

    /// Post-store budget check (high-watermark: budgets may overshoot by the
    /// one frame that triggered the check). The frame is already stored and
    /// acknowledged, so every policy below preserves session liveness.
    fn enforce_budgets(&mut self, session_id: u64) {
        let cap_frames = self.config.max_tenant_frames;
        let cap_bytes = self.config.max_fleet_bytes;
        let policy = self.config.policy;
        let global = self.shared.fleet_bytes.load(Ordering::SeqCst);
        let sessions = self.shared.sessions.load(Ordering::SeqCst).max(1) as u64;
        let Some(tenant) = self.tenants.get_mut(&session_id) else { return };
        let over_tenant = cap_frames > 0 && tenant.server.frames().len() > cap_frames;
        let over_global = cap_bytes > 0 && global > cap_bytes;
        match policy {
            OverloadPolicy::Block => {
                if over_tenant || over_global {
                    tenant.paused = true;
                }
            }
            OverloadPolicy::DropOldest => {
                // Charge the tenant that stored: shed its oldest undrained
                // frames until it fits (per-tenant cap) and, under global
                // pressure, give back what it just added.
                while cap_frames > 0 && tenant.server.frames().len() > cap_frames {
                    if !Self::shed_one(&self.shared, tenant, true) {
                        break;
                    }
                }
                if over_global {
                    Self::shed_one(&self.shared, tenant, true);
                }
            }
            OverloadPolicy::Degrade => {
                // Halve the over-budget tenant's temporal resolution: shed
                // every other newly stored frame while pressure lasts. Fair
                // share divides the global budget across live sessions.
                let fair = if cap_bytes > 0 { cap_bytes / sessions } else { u64::MAX };
                if over_tenant || (over_global && tenant.resident_bytes > fair) {
                    tenant.decim += 1;
                    if tenant.decim % 2 == 1 {
                        Self::shed_one(&self.shared, tenant, false);
                    }
                } else {
                    tenant.decim = 0;
                }
            }
        }
    }

    /// Shed one stored frame from `tenant`; `true` if a frame was removed.
    fn shed_one(shared: &FleetShared, tenant: &mut Tenant, oldest: bool) -> bool {
        let Some(frame) = tenant.server.shed_stored(oldest) else { return false };
        tenant.resident_bytes = tenant.resident_bytes.saturating_sub(frame.bytes.len() as u64);
        shared.fleet_bytes.fetch_sub(frame.bytes.len() as u64, Ordering::SeqCst);
        shared.shed_frames.fetch_add(1, Ordering::Relaxed);
        shared.incr("fleet.shed_frames", 1);
        tenant.shed_seqs.push(frame.sequence);
        true
    }

    /// Send a typed refusal and drop the connection.
    fn reject(&mut self, conn_id: u64, session_id: u64, code: u32) {
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            if let Some(ack) = conn.ack.as_mut() {
                let _ = write_frame(ack, &Control::Reject { session_id, code }.to_frame());
            }
        }
        self.remove_conn(conn_id);
    }

    fn remove_conn(&mut self, conn_id: u64) {
        if let Some(conn) = self.conns.remove(&conn_id) {
            if let Ok(mut feed) = conn.feed.lock() {
                feed.server_closed = true;
            }
            // Dropping `conn.ack` disconnects the client's ack pump.
        }
    }

    /// Drain every tenant's stored frames (sorted by session id for
    /// deterministic output), lift pauses, and re-pump parked connections.
    fn drain_all(&mut self) -> Vec<(u64, Vec<StoredFrame>)> {
        let mut sids: Vec<u64> = self.tenants.keys().copied().collect();
        sids.sort_unstable();
        let mut out = Vec::with_capacity(sids.len());
        for sid in sids {
            let tenant = self.tenants.get_mut(&sid).expect("listed tenant");
            let frames = tenant.server.drain_frames();
            tenant.drained_seqs.extend(frames.iter().map(|f| f.sequence));
            self.shared.fleet_bytes.fetch_sub(tenant.resident_bytes, Ordering::SeqCst);
            tenant.resident_bytes = 0;
            tenant.paused = false;
            self.shared.incr("fleet.frames_drained", frames.len() as u64);
            out.push((sid, frames));
        }
        // Parked feeds hold bytes with no pending wakeup event; pump now.
        let mut conn_ids: Vec<u64> = self.conns.keys().copied().collect();
        conn_ids.sort_unstable();
        for id in conn_ids {
            self.pump(id);
        }
        out
    }

    fn evict(&mut self, session_id: u64) -> Option<Vec<StoredFrame>> {
        let tenant = self.tenants.remove(&session_id)?;
        self.shared.fleet_bytes.fetch_sub(tenant.resident_bytes, Ordering::SeqCst);
        self.shared.release_session();
        // Refuse the tenant's live connections so their clients stop cleanly.
        let bound: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.tenant == Some(session_id))
            .map(|(id, _)| *id)
            .collect();
        for conn_id in bound {
            self.reject(conn_id, session_id, REJECT_FLEET_FULL);
        }
        Some(tenant.server.into_frames())
    }

    /// Fold this shard's tenants into shutdown reports.
    fn into_reports(self) -> Vec<TenantReport> {
        let mut out = Vec::with_capacity(self.tenants.len());
        for (sid, tenant) in self.tenants {
            let (mut deduped, mut gap_dropped) = (0usize, 0usize);
            for a in tenant.server.anomalies() {
                match a.kind {
                    AnomalyKind::Duplicate => deduped += 1,
                    AnomalyKind::Gap => gap_dropped += 1,
                }
            }
            let decode_failures =
                tenant.server.dropped().iter().filter(|d| d.bytes_skipped == 0).count();
            let resyncs = tenant.server.dropped().iter().filter(|d| d.bytes_skipped > 0).count();
            let mut durable = tenant.drained_seqs;
            let resident_frames = tenant.server.into_frames();
            durable.extend(resident_frames.iter().map(|f| f.sequence));
            out.push(TenantReport {
                session_id: sid,
                durable,
                resident_frames,
                shed: tenant.shed_seqs,
                deduped,
                gap_dropped,
                decode_failures,
                resyncs,
            });
        }
        out
    }
}

/// Cloneable handle for connecting clients and driving a running fleet.
#[derive(Clone)]
pub struct FleetHandle {
    config: FleetConfig,
    txs: Arc<Vec<SyncSender<FleetEvent>>>,
    shared: Arc<FleetShared>,
    next_conn: Arc<AtomicU64>,
}

impl FleetHandle {
    /// Open an in-process connection for `session_id`. The id routes the
    /// connection to its owning shard, so the eventual hello **must** carry
    /// the same id (a mismatch is refused with
    /// [`REJECT_WRONG_SHARD`]).
    ///
    /// Returns the write half (data frames in) and the read half (acks and
    /// rejects out) — exactly the pair [`crate::session::Connect`] wants.
    pub fn connect(&self, session_id: u64) -> io::Result<(FleetConnTx, AckReceiver)> {
        let shard = self.config.shard_of(session_id);
        let conn = self.next_conn.fetch_add(1, Ordering::Relaxed);
        let feed = Arc::new(Mutex::new(FeedShared::default()));
        let (ack_tx, ack_rx) = sync_channel::<Vec<u8>>(64);
        let ack = AckSender { tx: ack_tx, buf: Vec::new(), shared: Arc::clone(&self.shared) };
        self.txs[shard]
            .send(FleetEvent::Accept { conn, feed: Arc::clone(&feed), ack })
            .map_err(|_| io::Error::new(io::ErrorKind::ConnectionRefused, "fleet shut down"))?;
        let tx = FleetConnTx {
            conn,
            shard_tx: self.txs[shard].clone(),
            feed,
            feed_cap: self.config.feed_cap,
            write_stall: self.config.write_stall,
        };
        Ok((tx, AckReceiver { rx: ack_rx, cur: Vec::new(), pos: 0 }))
    }

    /// Take every tenant's stored frames — the archival hand-off (feed them
    /// to `dbgc-store`'s `FrameStore::archive_session`). Unpauses
    /// `Block`-policy tenants. Sorted by session id.
    pub fn drain(&self) -> Vec<(u64, Vec<StoredFrame>)> {
        let mut out = Vec::new();
        for tx in self.txs.iter() {
            let (reply_tx, reply_rx) = sync_channel(1);
            if tx.send(FleetEvent::Drain { reply: reply_tx }).is_ok() {
                if let Ok(mut part) = reply_rx.recv() {
                    out.append(&mut part);
                }
            }
        }
        out.sort_unstable_by_key(|(sid, _)| *sid);
        out
    }

    /// Retire `session_id`, freeing its admission slot and refusing its live
    /// connections; returns its undrained frames if it existed.
    pub fn evict(&self, session_id: u64) -> Option<Vec<StoredFrame>> {
        let shard = self.config.shard_of(session_id);
        let (reply_tx, reply_rx) = sync_channel(1);
        self.txs[shard].send(FleetEvent::Evict { session: session_id, reply: reply_tx }).ok()?;
        reply_rx.recv().ok().flatten()
    }

    /// Barrier: returns once every shard has applied all events queued
    /// before this call. Lets tests observe a settled fleet.
    pub fn sync(&self) {
        for tx in self.txs.iter() {
            let (reply_tx, reply_rx) = sync_channel(1);
            if tx.send(FleetEvent::Sync { reply: reply_tx }).is_ok() {
                let _ = reply_rx.recv();
            }
        }
    }

    /// Sessions currently resident across the fleet.
    pub fn sessions_active(&self) -> usize {
        self.shared.sessions.load(Ordering::SeqCst)
    }

    /// High-water mark of concurrently resident sessions.
    pub fn sessions_peak(&self) -> usize {
        self.shared.sessions_peak.load(Ordering::SeqCst)
    }

    /// Hellos refused at the admission gate so far.
    pub fn admission_rejects(&self) -> u64 {
        self.shared.admission_rejects.load(Ordering::Relaxed)
    }

    /// The fleet's metrics collector (`fleet.*` gauges/counters plus every
    /// tenant's `net.*` counters).
    #[cfg(feature = "metrics")]
    pub fn metrics(&self) -> &dbgc_metrics::Collector {
        &self.shared.collector
    }
}

/// A running fleet: shard workers plus the [`FleetHandle`] to reach them.
pub struct FleetServer {
    handle: FleetHandle,
    workers: Vec<std::thread::JoinHandle<FleetCore>>,
}

impl FleetServer {
    /// Start `config.shards` event-loop workers.
    pub fn spawn(config: FleetConfig) -> FleetServer {
        let shared = Arc::new(FleetShared::new());
        let mut txs = Vec::with_capacity(config.shards.max(1));
        let mut workers = Vec::with_capacity(config.shards.max(1));
        for index in 0..config.shards.max(1) {
            let (tx, rx) = sync_channel::<FleetEvent>(config.event_queue.max(1));
            txs.push(tx);
            let mut core = FleetCore::new(index, config.clone(), Arc::clone(&shared));
            let worker = std::thread::Builder::new()
                .name(format!("dbgc-fleet-{index}"))
                .spawn(move || {
                    while let Ok(event) = rx.recv() {
                        if !core.handle_event(event) {
                            break;
                        }
                    }
                    core
                })
                .expect("spawn fleet shard");
            workers.push(worker);
        }
        let handle = FleetHandle {
            config,
            txs: Arc::new(txs),
            shared,
            next_conn: Arc::new(AtomicU64::new(0)),
        };
        FleetServer { handle, workers }
    }

    /// A handle for connecting clients and draining the archive path.
    pub fn handle(&self) -> FleetHandle {
        self.handle.clone()
    }

    /// Stop every shard and fold their state into a [`FleetReport`]. Live
    /// in-process connections see `BrokenPipe` on their next write.
    pub fn shutdown(self) -> FleetReport {
        for tx in self.handle.txs.iter() {
            let _ = tx.send(FleetEvent::Shutdown);
        }
        let mut tenants = Vec::new();
        for worker in self.workers {
            tenants.extend(worker.join().expect("fleet shard panicked").into_reports());
        }
        tenants.sort_unstable_by_key(|t| t.session_id);
        let shared = &self.handle.shared;
        #[cfg(feature = "metrics")]
        let counters: Vec<(String, u64)> =
            shared.collector.snapshot().counters.into_iter().collect();
        #[cfg(not(feature = "metrics"))]
        let counters: Vec<(String, u64)> = Vec::new();
        FleetReport {
            tenants,
            sessions_peak: shared.sessions_peak.load(Ordering::SeqCst),
            admission_rejects: shared.admission_rejects.load(Ordering::Relaxed),
            shed_frames: shared.shed_frames.load(Ordering::Relaxed),
            prehello_frames: shared.prehello_frames.load(Ordering::Relaxed),
            ack_drops: shared.ack_drops.load(Ordering::Relaxed),
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{ResilientClient, SessionConfig};

    fn fast_client(
        handle: &FleetHandle,
        session_id: u64,
    ) -> ResilientClient<impl crate::session::Connect<Tx = FleetConnTx, Rx = AckReceiver>> {
        let h = handle.clone();
        let connector = move || h.connect(session_id);
        ResilientClient::new(connector, SessionConfig::fast_test(session_id))
    }

    #[test]
    fn two_tenants_deliver_in_order() {
        let fleet = FleetServer::spawn(FleetConfig::new(8));
        let handle = fleet.handle();
        let mut threads = Vec::new();
        for sid in [3u64, 4] {
            let handle = handle.clone();
            threads.push(std::thread::spawn(move || {
                let mut client = fast_client(&handle, sid);
                for i in 0..6u8 {
                    client.send_payload(vec![sid as u8 ^ i; 64]).unwrap();
                }
                client.finish().unwrap()
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        let report = fleet.shutdown();
        assert_eq!(report.tenants.len(), 2);
        for t in &report.tenants {
            assert_eq!(t.durable, (0..6).collect::<Vec<u32>>(), "tenant {}", t.session_id);
            assert!(t.shed.is_empty());
        }
        assert_eq!(report.sessions_peak, 2);
        assert_eq!(report.admission_rejects, 0);
        report.verify_partition().unwrap();
    }

    #[test]
    fn admission_cap_rejects_with_typed_error() {
        let fleet = FleetServer::spawn(FleetConfig::new(1));
        let handle = fleet.handle();
        let mut first = fast_client(&handle, 10);
        first.send_payload(vec![1; 32]).unwrap();
        // Second tenant: the cap is 1, so the hello must be refused with the
        // typed error, promptly (no hang, no retry storm).
        let mut second = fast_client(&handle, 11);
        match second.send_payload(vec![2; 32]) {
            Err(NetError::Rejected { code }) => assert_eq!(code, REJECT_FLEET_FULL),
            other => panic!("expected Rejected, got {other:?}"),
        }
        first.finish().unwrap();
        let report = fleet.shutdown();
        assert_eq!(report.admission_rejects, 1);
        assert_eq!(report.sessions_peak, 1);
        assert!(report.tenant(11).is_none());
    }

    #[test]
    fn eviction_frees_the_slot() {
        let fleet = FleetServer::spawn(FleetConfig::new(1));
        let handle = fleet.handle();
        let mut a = fast_client(&handle, 20);
        a.send_payload(vec![1; 16]).unwrap();
        a.finish().unwrap();
        let frames = handle.evict(20).expect("tenant existed");
        assert_eq!(frames.len(), 1);
        assert_eq!(handle.sessions_active(), 0);
        // The slot is free again.
        let mut b = fast_client(&handle, 21);
        b.send_payload(vec![2; 16]).unwrap();
        b.finish().unwrap();
        let report = fleet.shutdown();
        assert_eq!(report.sessions_peak, 1);
        assert!(report.tenant(21).is_some());
    }

    #[test]
    fn drain_hands_frames_over_and_resumes_blocked_tenant() {
        let mut config = FleetConfig::new(4);
        config.max_tenant_frames = 2;
        config.policy = OverloadPolicy::Block;
        let fleet = FleetServer::spawn(config);
        let handle = fleet.handle();
        let sender = {
            let handle = handle.clone();
            std::thread::spawn(move || {
                let mut client = fast_client(&handle, 30);
                for i in 0..10u8 {
                    client.send_payload(vec![i; 128]).unwrap();
                }
                client.finish().unwrap()
            })
        };
        // Drain until the client is done; Block parks it between drains.
        let mut drained = Vec::new();
        while !sender.is_finished() {
            for (_sid, frames) in handle.drain() {
                drained.extend(frames.into_iter().map(|f| f.sequence));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        sender.join().unwrap();
        for (_sid, frames) in handle.drain() {
            drained.extend(frames.into_iter().map(|f| f.sequence));
        }
        assert_eq!(drained, (0..10).collect::<Vec<u32>>(), "drains preserve order, lossless");
        let report = fleet.shutdown();
        assert_eq!(report.shed_frames, 0, "Block never sheds");
        report.verify_partition().unwrap();
    }

    #[test]
    fn drop_oldest_sheds_but_acks_everything() {
        let mut config = FleetConfig::new(4);
        config.max_tenant_frames = 3;
        config.policy = OverloadPolicy::DropOldest;
        let fleet = FleetServer::spawn(config);
        let handle = fleet.handle();
        let mut client = fast_client(&handle, 40);
        for i in 0..12u8 {
            client.send_payload(vec![i; 64]).unwrap();
        }
        client.finish().unwrap();
        let report = fleet.shutdown();
        let t = report.tenant(40).expect("tenant admitted");
        assert!(report.shed_frames > 0, "cap 3 with 12 frames must shed");
        // Exactly-once across outcomes: durable + shed covers 0..12 exactly.
        let mut all: Vec<u32> = t.durable.iter().chain(t.shed.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<u32>>());
        report.verify_partition().unwrap();
    }

    #[test]
    fn degrade_decimates_over_budget_tenant() {
        let mut config = FleetConfig::new(4);
        config.max_tenant_frames = 2;
        config.policy = OverloadPolicy::Degrade;
        let fleet = FleetServer::spawn(config);
        let handle = fleet.handle();
        let mut client = fast_client(&handle, 50);
        for i in 0..16u8 {
            client.send_payload(vec![i; 64]).unwrap();
        }
        client.finish().unwrap();
        let report = fleet.shutdown();
        let t = report.tenant(50).expect("tenant admitted");
        assert!(!t.shed.is_empty(), "decimation sheds under sustained pressure");
        assert!(t.durable.len() >= 2, "degrade keeps frames flowing");
        let mut all: Vec<u32> = t.durable.iter().chain(t.shed.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..16).collect::<Vec<u32>>());
        report.verify_partition().unwrap();
    }

    #[test]
    fn prehello_data_is_dropped_and_counted() {
        let fleet = FleetServer::spawn(FleetConfig::new(2));
        let handle = fleet.handle();
        let (mut tx, _rx) = handle.connect(60).unwrap();
        write_frame(&mut tx, &WireFrame { sequence: 0, payload: vec![1; 32] }).unwrap();
        handle.sync();
        drop(tx);
        let report = fleet.shutdown();
        assert_eq!(report.prehello_frames, 1);
        assert!(report.tenants.is_empty());
    }

    #[test]
    fn wrong_shard_hello_is_refused() {
        let mut config = FleetConfig::new(8);
        config.shards = 4;
        let fleet = FleetServer::spawn(config.clone());
        let handle = fleet.handle();
        // Register under id 70, then hello as an id owned by another shard.
        let other = (0..64u64)
            .find(|id| config.shard_of(*id) != config.shard_of(70))
            .expect("4 shards must split ids");
        let (mut tx, ack_rx) = handle.connect(70).unwrap();
        write_frame(&mut tx, &Control::Hello { session_id: other, last_acked: 0 }.to_frame())
            .unwrap();
        let mut reader = FrameReader::new(ack_rx);
        let (frame, _) = reader.next_frame().unwrap();
        match Control::from_frame(&frame) {
            Some(Control::Reject { session_id, code }) => {
                assert_eq!(session_id, other);
                assert_eq!(code, REJECT_WRONG_SHARD);
            }
            other => panic!("expected Reject, got {other:?}"),
        }
        drop(tx);
        fleet.shutdown();
    }

    #[test]
    fn corrupt_bytes_on_a_connection_resync_per_tenant() {
        let fleet = FleetServer::spawn(FleetConfig::new(2));
        let handle = fleet.handle();
        let (mut tx, ack_rx) = handle.connect(80).unwrap();
        write_frame(&mut tx, &Control::Hello { session_id: 80, last_acked: 0 }.to_frame()).unwrap();
        write_frame(&mut tx, &WireFrame { sequence: 0, payload: vec![7; 64] }).unwrap();
        tx.write_all(&[0xEE; 37]).unwrap(); // garbage between frames
        write_frame(&mut tx, &WireFrame { sequence: 1, payload: vec![8; 64] }).unwrap();
        handle.sync();
        drop(tx);
        drop(ack_rx);
        let report = fleet.shutdown();
        let t = report.tenant(80).expect("tenant admitted");
        assert_eq!(t.durable, vec![0, 1], "frames on both sides of the garbage stored");
        assert_eq!(t.resyncs, 1);
        report.verify_partition().unwrap();
    }
}
