//! The DBGC server: receive bitstreams, decompress or store them directly.
//!
//! The paper's server either decompresses `B` into `PC'` for processing or
//! "bypasses the decompression procedure and directly stores B" (§3.1). Both
//! modes are supported; the in-memory store stands in for the ODBC sink.
//!
//! Two layers:
//!
//! * [`SessionServer`] — the transport-free state machine: frame dedup and
//!   gap detection, wire-v3 session handling (hello/ack), the frame store,
//!   and all observability counters. It outlives any single connection, so a
//!   reconnecting client resumes against the same state.
//! * [`Server`] — the classic single-transport wrapper (wire-v2 compatible):
//!   owns a [`FrameReader`] over one `Read` and delegates to the state
//!   machine. Unchanged behaviour for clean v2 streams.
//!
//! Corruption never kills a stream (resynchronization via [`FrameReader`]);
//! a stalled stream is failed with [`NetError::Timeout`] when the transport
//! is wrapped in [`crate::link::TimedReader`].

use std::io::{Read, Write};
use std::path::PathBuf;

use dbgc_geom::PointCloud;

use crate::protocol::{write_frame, Control, FrameReader, NetError};

/// A received frame: the raw bitstream plus, when decompression is enabled,
/// the restored point cloud.
#[derive(Debug, Clone)]
pub struct StoredFrame {
    /// Sequence number from the wire.
    pub sequence: u32,
    /// The received DBGC bitstream.
    pub bytes: Vec<u8>,
    /// The decompressed cloud, when decompression is enabled.
    pub cloud: Option<PointCloud>,
}

/// Record of data the server discarded instead of desyncing or dying:
/// a corrupt wire region it resynchronized past, or a checksummed frame
/// whose payload failed to decompress.
#[derive(Debug, Clone)]
pub struct DroppedFrame {
    /// Sequence number, when the frame's header survived well enough to
    /// report one.
    pub sequence: Option<u32>,
    /// Corrupt wire bytes skipped while resynchronizing (0 for decode drops).
    pub bytes_skipped: u64,
    /// Human-readable reason, for logs.
    pub reason: String,
}

/// A sequence-number anomaly on an intact (checksummed) frame: silent frame
/// loss and replay become observable instead of vanishing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqAnomaly {
    /// What went wrong.
    pub kind: AnomalyKind,
    /// Sequence number carried by the frame.
    pub sequence: u32,
    /// Sequence the server expected at that point.
    pub expected: u32,
}

/// Classification of a [`SeqAnomaly`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// The sequence was already stored (a replayed/duplicated frame).
    Duplicate,
    /// The sequence jumped forward: frames in between never arrived.
    Gap,
}

/// Optional metrics sink (always `None` with the `metrics` feature off).
#[cfg(feature = "metrics")]
type MetricsSink = Option<dbgc_metrics::Collector>;
#[cfg(not(feature = "metrics"))]
type MetricsSink = Option<std::convert::Infallible>;

/// Transport-free server state machine; see the module docs.
///
/// ### Modes
///
/// *Wire v2* (no hello seen): every intact frame is stored in arrival order,
/// exactly as the original server behaved; sequence anomalies are *recorded*
/// (counters + [`SessionServer::anomalies`]) but frames are never dropped
/// for ordering reasons.
///
/// *Wire v3 session* (after a [`Control::Hello`]): strict in-order delivery.
/// Replayed sequences are deduplicated, out-of-order arrivals are dropped
/// (the client's go-back-N retransmit resends them in order), and every
/// accepted or deduplicated frame is acknowledged so the client can advance
/// its bounded in-flight window.
///
/// ### Counter invariant
///
/// For every connection mix, intact data frames partition exactly:
/// `net.frames_intact == net.frames_stored + net.frames_deduped +
/// net.frames_gap_dropped + net.decode_failures` — the chaos suite asserts
/// this for every seed.
#[derive(Debug)]
pub struct SessionServer {
    decompress: bool,
    store: Vec<StoredFrame>,
    dropped: Vec<DroppedFrame>,
    anomalies: Vec<SeqAnomaly>,
    /// Active wire-v3 session, once a hello arrives.
    session: Option<u64>,
    /// Strict-mode cursor: next sequence the session will store.
    next_expected: u32,
    /// v2 observability cursor: sequence expected next, once any data frame
    /// has arrived.
    v2_expected: Option<u32>,
    /// Optional on-disk sink: every received bitstream is also written as
    /// `frame-<seq>.dbgc` here (stands in for the paper's ODBC storage).
    disk_store: Option<PathBuf>,
    #[cfg_attr(not(feature = "metrics"), allow(dead_code))]
    metrics: MetricsSink,
}

impl SessionServer {
    /// `decompress = false` reproduces the "store B directly" mode.
    pub fn new(decompress: bool) -> SessionServer {
        SessionServer {
            decompress,
            store: Vec::new(),
            dropped: Vec::new(),
            anomalies: Vec::new(),
            session: None,
            next_expected: 0,
            v2_expected: None,
            disk_store: None,
            metrics: None,
        }
    }

    /// Record per-connection observability data into `collector`; see
    /// [`Server::with_metrics`] for the counter inventory.
    #[cfg(feature = "metrics")]
    pub fn with_metrics(mut self, collector: &dbgc_metrics::Collector) -> SessionServer {
        self.metrics = Some(collector.clone());
        self
    }

    /// Additionally persist every received bitstream into `dir` as
    /// `frame-<seq>.dbgc`. The directory is created if missing.
    pub fn with_disk_store(mut self, dir: impl Into<PathBuf>) -> std::io::Result<SessionServer> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        self.disk_store = Some(dir);
        Ok(self)
    }

    fn incr(&self, _name: &str, _n: u64) {
        #[cfg(feature = "metrics")]
        if let Some(c) = &self.metrics {
            c.incr(_name, _n);
        }
    }

    fn record_hist(&self, _name: &str, _v: u64) {
        #[cfg(feature = "metrics")]
        if let Some(c) = &self.metrics {
            c.record(_name, _v);
        }
    }

    /// Send (or resend) the session acknowledgement. Ack-path failures are
    /// soft: the data path keeps working, the client recovers via timeout.
    fn send_ack(&mut self, ack: &mut Option<impl Write>) {
        let Some(session) = self.session else { return };
        let Some(w) = ack.as_mut() else { return };
        let frame =
            Control::Ack { session_id: session, next_expected: self.next_expected }.to_frame();
        if write_frame(w, &frame).is_ok() {
            self.incr("net.acks_sent", 1);
        } else {
            self.incr("net.ack_errors", 1);
        }
    }

    /// Process one wire frame against the session state. Returns `true` when
    /// a data frame was *stored* (control frames, duplicates, gaps and
    /// decode failures all return `false` and the caller keeps reading).
    fn process_frame(
        &mut self,
        wire: crate::protocol::WireFrame,
        ack: &mut Option<impl Write>,
    ) -> Result<bool, NetError> {
        if let Some(control) = Control::from_frame(&wire) {
            match control {
                Control::Hello { session_id, last_acked } => {
                    self.incr("net.hellos", 1);
                    match self.session {
                        Some(current) if current == session_id => {
                            // Reconnect within the session: keep dedup state.
                            self.incr("net.reconnect_hellos", 1);
                        }
                        _ => {
                            // New session (or first hello): strict mode from
                            // a fresh cursor.
                            self.session = Some(session_id);
                            self.next_expected = 0;
                        }
                    }
                    // The client's ack floor trailing our cursor is expected
                    // (lost acks); it running *ahead* would mean we lost
                    // stored frames and is worth a gap record.
                    if last_acked > self.next_expected {
                        self.incr("net.seq_gaps", 1);
                        self.anomalies.push(SeqAnomaly {
                            kind: AnomalyKind::Gap,
                            sequence: last_acked,
                            expected: self.next_expected,
                        });
                    }
                    self.send_ack(ack);
                }
                Control::Ack { .. } | Control::Reject { .. } => {
                    // Acks and rejects flow server → client; one arriving
                    // here is noise (e.g. a fuzzed stream). Ignore.
                }
            }
            return Ok(false);
        }

        self.incr("net.frames_intact", 1);
        self.record_hist("net.frame_bytes", wire.payload.len() as u64);

        if self.session.is_some() {
            // Strict session ordering.
            if wire.sequence < self.next_expected {
                self.incr("net.frames_deduped", 1);
                self.anomalies.push(SeqAnomaly {
                    kind: AnomalyKind::Duplicate,
                    sequence: wire.sequence,
                    expected: self.next_expected,
                });
                // Re-ack so a client that missed the original ack advances.
                self.send_ack(ack);
                return Ok(false);
            }
            if wire.sequence > self.next_expected {
                self.incr("net.seq_gaps", 1);
                self.incr("net.frames_gap_dropped", 1);
                self.anomalies.push(SeqAnomaly {
                    kind: AnomalyKind::Gap,
                    sequence: wire.sequence,
                    expected: self.next_expected,
                });
                // Tell the client where we are; go-back-N fills the hole.
                self.send_ack(ack);
                return Ok(false);
            }
        } else {
            // v2: observability only, store everything like the original
            // server did.
            if let Some(expected) = self.v2_expected {
                if wire.sequence > expected {
                    self.incr("net.seq_gaps", 1);
                    self.anomalies.push(SeqAnomaly {
                        kind: AnomalyKind::Gap,
                        sequence: wire.sequence,
                        expected,
                    });
                } else if wire.sequence < expected {
                    self.incr("net.seq_dups_observed", 1);
                    self.anomalies.push(SeqAnomaly {
                        kind: AnomalyKind::Duplicate,
                        sequence: wire.sequence,
                        expected,
                    });
                }
            }
            self.v2_expected = Some(wire.sequence.wrapping_add(1));
        }

        let cloud = if self.decompress {
            let decoded = {
                #[cfg(feature = "metrics")]
                match &self.metrics {
                    Some(c) => dbgc::decompress_with_metrics(&wire.payload, c),
                    None => dbgc::decompress(&wire.payload),
                }
                #[cfg(not(feature = "metrics"))]
                dbgc::decompress(&wire.payload)
            };
            match decoded {
                Ok((cloud, _)) => Some(cloud),
                Err(e) => {
                    self.incr("net.decode_failures", 1);
                    self.incr("net.frames_dropped", 1);
                    self.dropped.push(DroppedFrame {
                        sequence: Some(wire.sequence),
                        bytes_skipped: 0,
                        reason: format!("frame {} failed to decode: {e}", wire.sequence),
                    });
                    if self.session.is_some() {
                        // The payload passed its CRC, so retransmission
                        // would resend the same poisoned bytes: advance and
                        // ack to keep the session moving.
                        self.next_expected = self.next_expected.wrapping_add(1);
                        self.send_ack(ack);
                    }
                    return Ok(false);
                }
            }
        } else {
            None
        };
        if let Some(dir) = &self.disk_store {
            std::fs::write(dir.join(format!("frame-{}.dbgc", wire.sequence)), &wire.payload)?;
        }
        self.incr("net.frames_received", 1);
        self.incr("net.frames_stored", 1);
        self.incr("net.bytes_received", wire.payload.len() as u64);
        self.store.push(StoredFrame { sequence: wire.sequence, bytes: wire.payload, cloud });
        if self.session.is_some() {
            self.next_expected = self.next_expected.wrapping_add(1);
            self.send_ack(ack);
        }
        Ok(true)
    }

    /// Push one already-parsed wire frame into the state machine: the entry
    /// point for event-driven callers (the fleet server) that do their own
    /// framing instead of handing the transport over. Same semantics as the
    /// pull path: returns `Ok(true)` when a data frame was *stored*; control
    /// frames, duplicates, gaps and decode failures return `Ok(false)` after
    /// updating counters and (re-)acking as needed.
    pub fn handle_frame(
        &mut self,
        wire: crate::protocol::WireFrame,
        ack: &mut Option<impl Write>,
    ) -> Result<bool, NetError> {
        self.process_frame(wire, ack)
    }

    /// Record a wire-level resynchronization (corrupt bytes discarded before
    /// an intact frame). Event-driven callers that own their [`FrameReader`]
    /// report skips here so `net.resyncs` / `net.bytes_skipped` and the
    /// [`SessionServer::dropped`] log stay accurate.
    pub fn record_resync(&mut self, skipped: u64) {
        if skipped == 0 {
            return;
        }
        self.incr("net.resyncs", 1);
        self.incr("net.bytes_skipped", skipped);
        self.incr("net.frames_dropped", 1);
        self.dropped.push(DroppedFrame {
            sequence: None,
            bytes_skipped: skipped,
            reason: format!("resynchronized past {skipped} corrupt wire bytes"),
        });
    }

    /// Remove one stored-but-undrained frame under fleet load shedding: the
    /// oldest (`oldest = true`, policy `DropOldest`) or the newest (degrade /
    /// drop-newest decimation). The frame was already acknowledged — the
    /// client moved on — so the fleet layer owns the accounting
    /// (`fleet.shed_frames`); this only bumps `net.frames_shed` so the
    /// store-level partition `net.frames_stored == drained + resident + shed`
    /// stays checkable from counters alone.
    pub fn shed_stored(&mut self, oldest: bool) -> Option<StoredFrame> {
        if self.store.is_empty() {
            return None;
        }
        let frame = if oldest { self.store.remove(0) } else { self.store.pop()? };
        self.incr("net.frames_shed", 1);
        Some(frame)
    }

    /// Receive frames from `reader` until one is stored; `Ok(false)` on a
    /// clean end of stream. See [`Server::receive_one`].
    pub fn receive_one<R: Read>(
        &mut self,
        reader: &mut FrameReader<R>,
        ack: &mut Option<impl Write>,
    ) -> Result<bool, NetError> {
        loop {
            let (wire, skipped) = match reader.next_frame() {
                Ok(x) => x,
                Err(NetError::Closed) => return Ok(false),
                Err(e) => return Err(e),
            };
            self.record_resync(skipped);
            if self.process_frame(wire, ack)? {
                return Ok(true);
            }
        }
    }

    /// Drain one connection: read frames until the stream closes or fails.
    /// Returns the number of frames *stored* from this connection. Session
    /// state persists across calls, so the next connection resumes where
    /// this one left off.
    pub fn serve_connection<R: Read, A: Write>(
        &mut self,
        transport: R,
        ack: Option<A>,
    ) -> Result<usize, NetError> {
        let mut reader = FrameReader::new(transport);
        let mut ack = ack;
        let mut stored = 0usize;
        loop {
            match self.receive_one(&mut reader, &mut ack) {
                Ok(true) => stored += 1,
                Ok(false) => return Ok(stored),
                Err(NetError::Timeout) => {
                    self.incr("net.timeouts", 1);
                    return Err(NetError::Timeout);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// All frames stored so far (across every connection).
    pub fn frames(&self) -> &[StoredFrame] {
        &self.store
    }

    /// Frames and wire regions discarded due to corruption.
    pub fn dropped(&self) -> &[DroppedFrame] {
        &self.dropped
    }

    /// Sequence anomalies observed on intact frames (duplicates, gaps).
    pub fn anomalies(&self) -> &[SeqAnomaly] {
        &self.anomalies
    }

    /// The active wire-v3 session id, if a hello has been received.
    pub fn session_id(&self) -> Option<u64> {
        self.session
    }

    /// Strict-mode cursor: the next sequence the session will store.
    pub fn next_expected(&self) -> u32 {
        self.next_expected
    }

    /// Consume the state machine, returning its stored frames.
    pub fn into_frames(self) -> Vec<StoredFrame> {
        self.store
    }

    /// Take every stored frame, leaving the server running and empty — the
    /// hand-off point for archival (e.g. `dbgc-store`'s `FrameStore`) on a
    /// live session: drain periodically, keep receiving.
    pub fn drain_frames(&mut self) -> Vec<StoredFrame> {
        std::mem::take(&mut self.store)
    }
}

/// Discard-everything ack sink for servers on unidirectional transports.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoAck;

impl Write for NoAck {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Receives and stores compressed point-cloud frames over one transport.
///
/// The classic wire-v2 entry point; session behaviour (dedup, acks) engages
/// only if the peer sends a wire-v3 hello *and* an ack writer is attached
/// via [`Server::with_ack_writer`]. For multi-connection sessions use
/// [`SessionServer`] directly.
#[derive(Debug)]
pub struct Server<R, A: Write = NoAck> {
    reader: FrameReader<R>,
    ack: Option<A>,
    core: SessionServer,
}

impl<R: Read> Server<R> {
    /// `decompress = false` reproduces the "store B directly" mode.
    pub fn new(transport: R, decompress: bool) -> Server<R> {
        Server {
            reader: FrameReader::new(transport),
            ack: None,
            core: SessionServer::new(decompress),
        }
    }
}

impl<R: Read, A: Write> Server<R, A> {
    /// Record per-connection observability data into `collector`:
    /// `net.frames_received` / `net.bytes_received` for stored frames,
    /// `net.frames_dropped` / `net.decode_failures` for discarded ones,
    /// `net.resyncs` / `net.bytes_skipped` for wire-level recovery,
    /// `net.frames_intact` / `net.frames_stored` / `net.frames_deduped` /
    /// `net.frames_gap_dropped` / `net.seq_gaps` for sequence accounting,
    /// `net.hellos` / `net.acks_sent` / `net.timeouts` for session health,
    /// and a `net.frame_bytes` size histogram. When decompression is enabled
    /// the decoder also records its stage spans into the same collector.
    #[cfg(feature = "metrics")]
    pub fn with_metrics(mut self, collector: &dbgc_metrics::Collector) -> Server<R, A> {
        self.core = self.core.with_metrics(collector);
        self
    }

    /// Additionally persist every received bitstream into `dir` as
    /// `frame-<seq>.dbgc`. The directory is created if missing.
    pub fn with_disk_store(mut self, dir: impl Into<PathBuf>) -> std::io::Result<Server<R, A>> {
        self.core = self.core.with_disk_store(dir)?;
        Ok(self)
    }

    /// Cap header-declared payload sizes at `max_payload` bytes (defaults to
    /// [`crate::protocol::DEFAULT_MAX_PAYLOAD`]).
    pub fn with_max_payload(mut self, max_payload: u64) -> Server<R, A> {
        self.reader = self.reader.with_max_payload(max_payload);
        self
    }

    /// Attach the write half of the transport so wire-v3 sessions can be
    /// acknowledged.
    pub fn with_ack_writer<A2: Write>(self, ack: A2) -> Server<R, A2> {
        Server { reader: self.reader, ack: Some(ack), core: self.core }
    }

    /// Receive one frame; `Ok(false)` on clean end of stream.
    ///
    /// Corruption never kills the stream: a frame that fails its wire
    /// checksum (or leaves the reader desynced) is skipped via
    /// resynchronization, and a checksummed frame whose payload fails to
    /// decompress is discarded. Both are recorded in [`Server::dropped`] and
    /// reception continues with the next frame.
    pub fn receive_one(&mut self) -> Result<bool, NetError> {
        self.core.receive_one(&mut self.reader, &mut self.ack)
    }

    /// Receive until the stream closes; returns the number of frames.
    pub fn receive_all(&mut self) -> Result<usize, NetError> {
        let mut n = 0;
        while self.receive_one()? {
            n += 1;
        }
        Ok(n)
    }

    /// All frames received so far.
    pub fn frames(&self) -> &[StoredFrame] {
        self.core.frames()
    }

    /// Frames and wire regions discarded due to corruption.
    pub fn dropped(&self) -> &[DroppedFrame] {
        self.core.dropped()
    }

    /// Sequence anomalies observed on intact frames (duplicates, gaps) —
    /// silent frame loss on a lossy link made visible.
    pub fn anomalies(&self) -> &[SeqAnomaly] {
        self.core.anomalies()
    }

    /// Consume the server, returning its stored frames.
    pub fn into_frames(self) -> Vec<StoredFrame> {
        self.core.into_frames()
    }

    /// Take every stored frame, leaving the server connected and empty; see
    /// [`SessionServer::drain_frames`].
    pub fn drain_frames(&mut self) -> Vec<StoredFrame> {
        self.core.drain_frames()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::link::throttled_pipe;
    use crate::protocol::{write_frame, WireFrame};
    use dbgc::Dbgc;
    use dbgc_geom::Point3;

    fn toy_cloud(n: usize) -> PointCloud {
        (0..n)
            .map(|i| {
                let th = i as f64 / n as f64 * std::f64::consts::TAU;
                Point3::new(12.0 * th.cos(), 12.0 * th.sin(), -1.7)
            })
            .collect()
    }

    #[test]
    fn client_server_over_pipe_with_decompression() {
        let (writer, reader) = throttled_pipe(None);
        let clouds: Vec<PointCloud> = (1..4).map(|k| toy_cloud(k * 500)).collect();
        let sent = {
            let clouds = clouds.clone();
            std::thread::spawn(move || {
                let mut client = Client::new(Dbgc::with_error_bound(0.02), writer);
                let frames: Vec<_> = clouds.iter().map(|c| client.send_cloud(c).unwrap()).collect();
                frames
            })
        };
        let mut server = Server::new(reader, true);
        let n = server.receive_all().unwrap();
        let frames = sent.join().unwrap();
        assert_eq!(n, 3);
        for (i, stored) in server.frames().iter().enumerate() {
            assert_eq!(stored.sequence, i as u32);
            let cloud = stored.cloud.as_ref().unwrap();
            assert_eq!(cloud.len(), clouds[i].len());
            dbgc::verify_roundtrip(&clouds[i], cloud, &frames[i], 0.02).unwrap();
        }
        assert!(server.anomalies().is_empty(), "clean in-order stream");
    }

    #[test]
    fn store_without_decompression() {
        let (writer, reader) = throttled_pipe(None);
        let cloud = toy_cloud(800);
        let handle = std::thread::spawn(move || {
            let mut client = Client::new(Dbgc::with_error_bound(0.02), writer);
            client.send_cloud(&cloud).unwrap().bytes
        });
        let mut server = Server::new(reader, false);
        assert_eq!(server.receive_all().unwrap(), 1);
        let bytes = handle.join().unwrap();
        assert_eq!(server.frames()[0].bytes, bytes);
        assert!(server.frames()[0].cloud.is_none());
    }

    #[test]
    fn disk_store_persists_streams() {
        let dir = std::env::temp_dir().join("dbgc_server_store_test");
        let _ = std::fs::remove_dir_all(&dir);
        let (writer, reader) = throttled_pipe(None);
        let cloud = toy_cloud(600);
        let handle = std::thread::spawn(move || {
            let mut client = Client::new(Dbgc::with_error_bound(0.02), writer);
            client.send_cloud(&cloud).unwrap().bytes
        });
        let mut server = Server::new(reader, false).with_disk_store(&dir).unwrap();
        server.receive_all().unwrap();
        let bytes = handle.join().unwrap();
        let persisted = std::fs::read(dir.join("frame-0.dbgc")).unwrap();
        assert_eq!(persisted, bytes);
        // Stored file decompresses on its own.
        let (restored, _) = dbgc::decompress(&persisted).unwrap();
        assert_eq!(restored.len(), 600);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_frame_dropped_stream_continues() {
        // Build a 3-frame byte stream, flip bytes in the middle frame, and
        // check the server stores frames 0 and 2 while recording the drop.
        let clouds: Vec<PointCloud> = (1..4).map(|k| toy_cloud(k * 300)).collect();
        let mut buf = Vec::new();
        let mut offsets = vec![0usize];
        for (i, c) in clouds.iter().enumerate() {
            let payload = Dbgc::with_error_bound(0.02).compress(c).unwrap().bytes;
            write_frame(&mut buf, &WireFrame { sequence: i as u32, payload }).unwrap();
            offsets.push(buf.len());
        }
        // Flip a few payload bytes inside frame 1.
        let mid = (offsets[1] + offsets[2]) / 2;
        for d in 0..3 {
            buf[mid + d * 7] ^= 0x55;
        }
        let mut server = Server::new(&buf[..], true);
        let n = server.receive_all().unwrap();
        assert_eq!(n, 2, "two intact frames received");
        assert_eq!(server.frames()[0].cloud.as_ref().unwrap().len(), clouds[0].len());
        assert_eq!(server.frames()[1].cloud.as_ref().unwrap().len(), clouds[2].len());
        assert_eq!(server.dropped().len(), 1, "the corrupt frame is recorded");
        assert!(server.dropped()[0].bytes_skipped > 0);
        // The skipped frame also surfaces as a sequence gap (0 -> 2).
        assert_eq!(
            server.anomalies(),
            &[SeqAnomaly { kind: AnomalyKind::Gap, sequence: 2, expected: 1 }]
        );
    }

    #[test]
    fn tcp_transport_roundtrip() {
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let cloud = toy_cloud(1000);
        let client_cloud = cloud.clone();
        let client = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut client = Client::new(Dbgc::with_error_bound(0.02), stream);
            client.send_cloud(&client_cloud).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = Server::new(stream, true);
        assert_eq!(server.receive_all().unwrap(), 1);
        client.join().unwrap();
        assert_eq!(server.frames()[0].cloud.as_ref().unwrap().len(), cloud.len());
    }

    fn data_frame(seq: u32) -> WireFrame {
        WireFrame { sequence: seq, payload: vec![seq as u8; 40] }
    }

    #[test]
    fn v2_gap_and_duplicate_detection_is_observability_only() {
        // Sequences 0, 3, 3, 1: one gap, one duplicate, one rewind — all
        // stored (v2 semantics), all recorded.
        let mut buf = Vec::new();
        for seq in [0u32, 3, 3, 1] {
            write_frame(&mut buf, &data_frame(seq)).unwrap();
        }
        let mut server = Server::new(&buf[..], false);
        assert_eq!(server.receive_all().unwrap(), 4, "v2 stores everything");
        let kinds: Vec<AnomalyKind> = server.anomalies().iter().map(|a| a.kind).collect();
        assert_eq!(kinds, vec![AnomalyKind::Gap, AnomalyKind::Duplicate, AnomalyKind::Duplicate]);
        assert_eq!(
            server.anomalies()[0],
            SeqAnomaly { kind: AnomalyKind::Gap, sequence: 3, expected: 1 }
        );
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn v2_anomaly_counters_flow_through_metrics() {
        let mut buf = Vec::new();
        for seq in [0u32, 2, 2] {
            write_frame(&mut buf, &data_frame(seq)).unwrap();
        }
        let collector = dbgc_metrics::Collector::new();
        let mut server = Server::new(&buf[..], false).with_metrics(&collector);
        server.receive_all().unwrap();
        let snap = collector.snapshot();
        assert_eq!(snap.counters["net.seq_gaps"], 1);
        assert_eq!(snap.counters["net.seq_dups_observed"], 1);
        assert_eq!(snap.counters["net.frames_intact"], 3);
        assert_eq!(snap.counters["net.frames_stored"], 3);
    }

    #[test]
    fn session_mode_dedups_and_acks() {
        // hello, 0, 1, 1 (replay), 3 (gap) — strict mode stores 0 and 1,
        // dedups the replay, drops the gap, and acks each step.
        let session = 0x5E55_0001;
        let mut buf = Vec::new();
        write_frame(&mut buf, &Control::Hello { session_id: session, last_acked: 0 }.to_frame())
            .unwrap();
        for seq in [0u32, 1, 1, 3] {
            write_frame(&mut buf, &data_frame(seq)).unwrap();
        }
        let mut acks = Vec::new();
        let mut core = SessionServer::new(false);
        let stored = core.serve_connection(&buf[..], Some(&mut acks)).unwrap();
        assert_eq!(stored, 2);
        assert_eq!(core.session_id(), Some(session));
        assert_eq!(core.next_expected(), 2);
        let seqs: Vec<u32> = core.frames().iter().map(|f| f.sequence).collect();
        assert_eq!(seqs, vec![0, 1]);
        let kinds: Vec<AnomalyKind> = core.anomalies().iter().map(|a| a.kind).collect();
        assert_eq!(kinds, vec![AnomalyKind::Duplicate, AnomalyKind::Gap]);
        // The ack stream is parseable and ends at next_expected = 2.
        let mut r = &acks[..];
        let mut last = None;
        while let Ok(frame) = crate::protocol::read_frame(&mut r) {
            match Control::from_frame(&frame) {
                Some(Control::Ack { session_id, next_expected }) => {
                    assert_eq!(session_id, session);
                    last = Some(next_expected);
                }
                other => panic!("unexpected control {other:?}"),
            }
        }
        assert_eq!(last, Some(2));
    }

    #[test]
    fn session_state_survives_reconnect() {
        let session = 77;
        let mut core = SessionServer::new(false);
        // Connection 1: hello + frames 0, 1.
        let mut conn1 = Vec::new();
        write_frame(&mut conn1, &Control::Hello { session_id: session, last_acked: 0 }.to_frame())
            .unwrap();
        write_frame(&mut conn1, &data_frame(0)).unwrap();
        write_frame(&mut conn1, &data_frame(1)).unwrap();
        core.serve_connection(&conn1[..], Some(NoAck)).unwrap();
        // Connection 2 (reconnect): hello + replayed 1, then 2.
        let mut conn2 = Vec::new();
        write_frame(&mut conn2, &Control::Hello { session_id: session, last_acked: 1 }.to_frame())
            .unwrap();
        write_frame(&mut conn2, &data_frame(1)).unwrap();
        write_frame(&mut conn2, &data_frame(2)).unwrap();
        core.serve_connection(&conn2[..], Some(NoAck)).unwrap();
        let seqs: Vec<u32> = core.frames().iter().map(|f| f.sequence).collect();
        assert_eq!(seqs, vec![0, 1, 2], "replay deduplicated across reconnect");
        assert_eq!(
            core.anomalies(),
            &[SeqAnomaly { kind: AnomalyKind::Duplicate, sequence: 1, expected: 2 }]
        );
    }

    #[test]
    fn stalled_stream_fails_with_typed_timeout() {
        use crate::link::TimedReader;
        use std::time::Duration;
        let (writer, reader) = throttled_pipe(None);
        let mut server = Server::new(TimedReader::new(reader, Duration::from_millis(40)), false);
        // No bytes ever arrive; the watchdog must fire instead of hanging.
        let err = server.receive_all().unwrap_err();
        assert!(matches!(err, NetError::Timeout), "got {err}");
        drop(writer);
    }
}
